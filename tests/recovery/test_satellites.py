"""Satellite coverage: cleanup-list pool accounting, pool rewind,
spinlock violations on the official oops path, watchdog visibility,
quarantine detach, refcount reclaim."""

import pytest

from repro.core.runtime.cleanup import CleanupList
from repro.core.runtime.mempool import MemoryPool
from repro.core.runtime.watchdog import Watchdog
from repro.errors import KernelDeadlock
from repro.kernel import Kernel
from repro.kernel.locks import SpinLock


class TestCleanupPoolAccounting:
    def test_teardown_returns_the_record_block(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        pool = MemoryPool(kernel, kernel.current_cpu)
        cleanup = CleanupList(pool=pool, capacity=8)
        assert pool.used == 8 * 16        # record storage carved up front
        assert not cleanup.torn_down

        cleanup.teardown()

        assert cleanup.torn_down
        assert pool.used == 0
        assert pool.live_blocks() == []
        pool.destroy()

    def test_teardown_is_idempotent(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        pool = MemoryPool(kernel, kernel.current_cpu)
        cleanup = CleanupList(pool=pool)
        cleanup.teardown()
        cleanup.teardown()
        assert pool.used == 0
        pool.destroy()

    def test_leak_assertion_fires_before_teardown(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        pool = MemoryPool(kernel, kernel.current_cpu)
        cleanup = CleanupList(pool=pool)
        with pytest.raises(AssertionError, match="record block leaked"):
            cleanup.assert_torn_down()
        cleanup.teardown()
        cleanup.assert_torn_down()        # now passes
        pool.destroy()

    def test_poolless_cleanup_is_always_torn_down(self):
        cleanup = CleanupList()
        assert cleanup.torn_down
        cleanup.teardown()


class TestPoolRewind:
    def test_freeing_the_top_block_rewinds(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        pool = MemoryPool(kernel, kernel.current_cpu)
        a = pool.alloc(64)
        b = pool.alloc(64)
        used = pool.used
        pool.free(b)
        assert pool.used == used - 64
        pool.free(a)
        assert pool.used == 0
        pool.free(a)                      # idempotent
        assert pool.used == 0
        pool.destroy()

    def test_middle_free_reclaims_when_top_goes(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        pool = MemoryPool(kernel, kernel.current_cpu)
        a = pool.alloc(64)
        b = pool.alloc(64)
        pool.free(a)                      # middle: marked, not rewound
        assert pool.used == 128
        assert pool.live_blocks() == [b]
        pool.free(b)                      # top goes: both reclaimed
        assert pool.used == 0
        pool.destroy()


class TestSpinLockOfficialPath:
    @pytest.mark.dirty_kernel
    def test_aa_deadlock_records_an_oops(self, leakcheck):
        """Registry-created locks report violations through the
        official oops path: record first, then raise."""
        kernel = Kernel()
        leakcheck(kernel)
        lock = kernel.locks.create("map.lock")
        lock.lock("bpf:v")
        with pytest.raises(KernelDeadlock):
            lock.lock("bpf:v")
        assert kernel.log.tainted
        oops = kernel.log.last_oops()
        assert oops.category == "deadlock"
        assert oops.source == "bpf:v"
        assert "AA deadlock" in oops.reason

    @pytest.mark.dirty_kernel
    def test_unlock_violations_also_oops(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        lock = kernel.locks.create("map.lock")
        with pytest.raises(KernelDeadlock):
            lock.unlock("bpf:v")
        assert [o.category for o in kernel.log.oopses] == ["deadlock"]

    def test_bare_spinlock_still_raises_without_a_log(self):
        lock = SpinLock("orphan")
        lock.lock("a")
        with pytest.raises(KernelDeadlock):
            lock.lock("a")

    def test_force_unlock_logs_but_never_oopses(self, leakcheck):
        """The containment release is the cure, not the disease."""
        kernel = Kernel()
        leakcheck(kernel)
        lock = kernel.locks.create("map.lock")
        lock.lock("bpf:v")
        assert lock.force_unlock(source="supervisor") == "bpf:v"
        assert not lock.locked
        assert not kernel.log.tainted
        assert kernel.log.oopses == []
        assert kernel.log.grep("force-released spinlock map.lock")
        assert lock.force_unlock() is None     # idempotent


class TestWatchdogVisibility:
    def test_fire_is_visible_in_dmesg(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        dog = Watchdog(kernel.clock, budget_ns=1_000, name="victim",
                       log=kernel.log)
        dog.arm()
        kernel.clock.advance(2_000)
        assert dog.fired
        assert dog.fire_count == 1
        assert kernel.log.grep("watchdog: extension 'victim'")


class TestQuarantineDetach:
    def test_detach_everywhere_sweeps_all_chains(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        kernel.hooks.attach("trace", "bpf:v", lambda ctx: 0)
        kernel.hooks.attach("xdp", "bpf:v", lambda ctx: 0)
        kernel.hooks.attach("trace", "bpf:other", lambda ctx: 0)

        assert kernel.hooks.detach_everywhere("bpf:v") == 2
        assert [a.name for a in kernel.hooks.chain("trace")] \
            == ["bpf:other"]
        assert kernel.hooks.chain("xdp") == []
        assert kernel.hooks.detach_everywhere("bpf:v") == 0


class TestRefReclaim:
    def test_reclaim_returns_every_outstanding_ref(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        sock = kernel.refs.create("sk0", "sock")
        sock.get("bpf:v")
        sock.get("bpf:v")
        sock.get("other")

        assert kernel.refs.reclaim("bpf:v") == 2
        assert kernel.refs.outstanding_for("bpf:v") == []
        assert len(kernel.refs.outstanding_for("other")) == 1
        kernel.refs.reclaim("other")
        kernel.refs.assert_no_leaks("bpf:v")
