"""Scoped taint and kernel soft-reset semantics."""

import pytest

from repro.errors import KernelSafetyViolation
from repro.faultinject.invariants import panic_path_consistent
from repro.kernel import Kernel


class TestMarkContained:
    def test_containment_clears_scoped_taint(self):
        kernel = Kernel()
        log = kernel.log
        log.record_oops(100, "null deref", category="page-fault",
                        source="bpf:v")
        assert log.tainted

        marked = log.mark_contained({"bpf:v"}, 200,
                                    "fault domain unwound")
        assert marked == 1
        assert not log.tainted
        assert log.contained_count == 1
        assert log.uncontained_oopses() == []
        assert log.oopses[0].contained_reason == "fault domain unwound"
        # the audit trail lands in dmesg
        assert log.grep("recovery: contained oops")

    def test_taint_from_other_sources_survives(self):
        """Soft-reset is scoped: containing one extension's oops does
        not forgive another's."""
        kernel = Kernel()
        log = kernel.log
        log.record_oops(100, "a", category="oops", source="bpf:a")
        log.record_oops(110, "b", category="oops", source="bpf:b")

        assert log.mark_contained({"bpf:a"}, 200, "unwound") == 1
        assert log.tainted                  # bpf:b's oops remains
        assert [o.source for o in log.uncontained_oopses()] \
            == ["bpf:b"]

        assert log.mark_contained({"bpf:b"}, 300, "unwound") == 1
        assert not log.tainted

    def test_mark_contained_is_idempotent(self):
        kernel = Kernel()
        kernel.log.record_oops(1, "x", category="oops", source="s")
        assert kernel.log.mark_contained({"s"}, 2, "r") == 1
        assert kernel.log.mark_contained({"s"}, 3, "again") == 0
        assert kernel.log.oopses[0].contained_reason == "r"

    def test_panic_is_permanent(self):
        """A real panic can never be soft-reset away."""
        kernel = Kernel()
        log = kernel.log
        log.record_oops(100, "x", category="oops", source="bpf:v")
        log.panic(150, "containment failed", source="bpf:v")

        log.mark_contained({"bpf:v"}, 200, "attempted forgiveness")
        assert log.panicked
        assert log.tainted
        with pytest.raises(KernelSafetyViolation, match="panicked"):
            kernel.check_alive()


class TestSoftReset:
    def test_soft_reset_filters_by_source(self):
        kernel = Kernel()
        kernel.log.record_oops(1, "mine", category="oops",
                               source="bpf:v")
        kernel.log.record_oops(2, "theirs", category="oops",
                               source="safelang:w")
        cleared = kernel.soft_reset({"bpf:v"}, reason="unwound")
        assert cleared == 1
        assert kernel.log.tainted

    def test_check_alive_semantics(self):
        kernel = Kernel()
        assert kernel.check_alive()

        kernel.log.record_oops(1, "x", category="oops", source="s")
        with pytest.raises(KernelSafetyViolation, match="tainted"):
            kernel.check_alive()

        kernel.soft_reset({"s"}, reason="unwound")
        assert kernel.check_alive()


class TestPanicPathConsistency:
    def test_contained_kernel_is_consistent(self):
        kernel = Kernel()
        assert panic_path_consistent(kernel)
        kernel.log.record_oops(1, "x", category="oops", source="s")
        assert panic_path_consistent(kernel)     # tainted + oops agree
        kernel.soft_reset({"s"}, reason="unwound")
        assert panic_path_consistent(kernel)     # clear + contained

    def test_taint_without_record_is_inconsistent(self):
        kernel = Kernel()
        kernel.log._tainted = True               # died off-path
        assert not panic_path_consistent(kernel)

    def test_panic_without_taint_is_inconsistent(self):
        kernel = Kernel()
        kernel.log._panicked = True
        assert not panic_path_consistent(kernel)
