"""Supervisor behavior: containment, circuit breaker, retry, escalation."""

import pytest

from repro.ebpf.asm import Asm
from repro.ebpf.bugs import BugConfig
from repro.ebpf.helpers import ids
from repro.ebpf.isa import to_u64
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.errors import KernelPanic, VerifierError
from repro.faultinject.plane import (
    EINVAL,
    FaultAction,
    OneShot,
    Probability,
    Scripted,
)
from repro.kernel import Kernel
from repro.recovery import (
    FaultDomain,
    HealthState,
    RecoveryPolicy,
    Supervisor,
)

TRIGGER = "helper.bpf_ktime_get_ns"
EAGAIN = 11
EFAULT = 14


def victim_prog():
    """Calls a helper (the injection trigger), then returns 0 so only
    injected faults ever make the run look unhealthy."""
    return (Asm()
            .call(ids.BPF_FUNC_ktime_get_ns)
            .mov64_imm(0, 0)
            .exit_()
            .program())


def helper_prog():
    """r0 = ktime_get_ns(); exit — exposes injected helper errnos."""
    return (Asm()
            .call(ids.BPF_FUNC_ktime_get_ns)
            .exit_()
            .program())


def supervised_kernel(leakcheck, policy=None):
    kernel = Kernel()
    leakcheck(kernel)
    supervisor = kernel.enable_recovery(policy)
    bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched())
    return kernel, supervisor, bpf


class TestContainment:
    def test_oops_is_contained_and_kernel_stays_alive(self, leakcheck):
        kernel, supervisor, bpf = supervised_kernel(leakcheck)
        prog = bpf.load_program(victim_prog(), ProgType.KPROBE, "v")
        kernel.faults.enable(7)
        kernel.faults.arm(TRIGGER, OneShot(), FaultAction.panic())

        value = bpf.run_on_current_task(prog)

        assert value == to_u64(-EFAULT)
        assert not kernel.log.tainted
        assert kernel.check_alive()
        assert kernel.log.contained_count == 1
        assert supervisor.contained_total == 1
        health = supervisor.health("bpf:v")
        assert health.state is HealthState.DEGRADED
        assert health.contained == 1
        kinds = [e.kind for e in supervisor.audit_for("bpf:v")]
        assert "contain" in kinds and "degraded" in kinds

    def test_unsupervised_kernel_still_oopses(self, leakcheck):
        """Recovery changes nothing until it is enabled."""
        kernel = Kernel()
        leakcheck(kernel)
        bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched())
        prog = bpf.load_program(victim_prog(), ProgType.KPROBE, "v")
        kernel.faults.enable(7)
        kernel.faults.arm(TRIGGER, OneShot(), FaultAction.panic())
        from repro.errors import KernelOops
        with pytest.raises(KernelOops):
            bpf.run_on_current_task(prog)
        assert kernel.log.tainted
        # the leakcheck contract still holds: official panic path
        kernel.log.oopses  # tainted kernels skip the lock check


class TestCircuitBreaker:
    def test_three_faults_quarantine_and_detach(self, leakcheck):
        kernel, supervisor, bpf = supervised_kernel(leakcheck)
        prog = bpf.load_program(victim_prog(), ProgType.KPROBE, "v")
        bpf.attach_trace(prog)
        tag = "bpf:v"
        kernel.faults.enable(7)
        kernel.faults.arm(TRIGGER, Probability(1.0),
                          FaultAction.panic())

        for _ in range(3):
            assert bpf.run_on_current_task(prog) == to_u64(-EFAULT)

        health = supervisor.health(tag)
        assert health.state is HealthState.QUARANTINED
        assert health.release_at_ns is not None
        assert not any(att.name == tag
                       for att in kernel.hooks.chain("trace"))

        # breaker open: the next run is refused without executing
        refused = bpf.run_on_current_task(prog)
        assert refused == to_u64(-EAGAIN)
        assert health.refusals == 1
        assert kernel.check_alive()

    def test_half_open_reloads_and_recovers(self, leakcheck):
        kernel, supervisor, bpf = supervised_kernel(leakcheck)
        prog = bpf.load_program(victim_prog(), ProgType.KPROBE, "v")
        tag = "bpf:v"
        kernel.faults.enable(7)
        kernel.faults.arm(TRIGGER, Probability(1.0),
                          FaultAction.panic())
        for _ in range(3):
            bpf.run_on_current_task(prog)
        health = supervisor.health(tag)
        assert health.state is HealthState.QUARANTINED

        # the misbehavior stops; wait out the quarantine window
        kernel.faults.disarm(TRIGGER)
        kernel.clock.advance(
            health.release_at_ns - kernel.clock.now_ns + 1)

        value = bpf.run_on_current_task(prog)

        assert value == 0                      # trial run succeeded
        assert health.state is HealthState.HEALTHY
        assert health.reloads == 1
        assert not health.trial
        kinds = [e.kind for e in supervisor.audit_for(tag)]
        assert kinds.count("half-open") == 1
        assert "reload" in kinds and "recovered" in kinds
        # the identical bytecode came back through the load cache
        reload_events = [e for e in supervisor.audit_for(tag)
                         if e.kind == "reload"]
        assert reload_events[0].detail["cache_hit"] is True

    def test_trial_failure_requarantines_with_longer_window(
            self, leakcheck):
        kernel, supervisor, bpf = supervised_kernel(leakcheck)
        prog = bpf.load_program(victim_prog(), ProgType.KPROBE, "v")
        tag = "bpf:v"
        kernel.faults.enable(7)
        kernel.faults.arm(TRIGGER, Probability(1.0),
                          FaultAction.panic())
        for _ in range(3):
            bpf.run_on_current_task(prog)
        health = supervisor.health(tag)

        # fault still armed: the trial run oopses again
        kernel.clock.advance(
            health.release_at_ns - kernel.clock.now_ns + 1)
        assert bpf.run_on_current_task(prog) == to_u64(-EFAULT)

        assert health.state is HealthState.QUARANTINED
        assert health.quarantines == 2
        assert health.consecutive_quarantines == 2
        spans = [e.detail["release_at_ns"] - e.timestamp_ns
                 for e in supervisor.audit_for(tag)
                 if e.kind == "quarantine"]
        assert spans[1] == 2 * spans[0]        # exponential breaker
        assert kernel.check_alive()

    def test_manual_quarantine(self, leakcheck):
        kernel, supervisor, bpf = supervised_kernel(leakcheck)
        prog = bpf.load_program(victim_prog(), ProgType.KPROBE, "v")
        supervisor.quarantine("bpf:v", reason="operator request")
        health = supervisor.health("bpf:v")
        assert health.state is HealthState.QUARANTINED
        assert bpf.run_on_current_task(prog) == to_u64(-EAGAIN)
        quarantine = [e for e in supervisor.audit_for("bpf:v")
                      if e.kind == "quarantine"][0]
        assert quarantine.detail["reason"] == "operator request"


class TestTransientRetry:
    def test_injected_errno_is_retried_with_backoff(self, leakcheck):
        kernel, supervisor, bpf = supervised_kernel(leakcheck)
        prog = bpf.load_program(helper_prog(), ProgType.KPROBE, "h")
        kernel.faults.enable(7)
        kernel.faults.arm(TRIGGER, Scripted([True, True, False]),
                          FaultAction.err(EINVAL))

        value = bpf.run_on_current_task(prog)

        # two transient failures, then the real helper value
        assert value != to_u64(-EINVAL)
        health = supervisor.health("bpf:h")
        assert health.retries == 2
        assert health.faults_total == 0
        assert health.state is HealthState.HEALTHY
        retries = [e for e in supervisor.audit_for("bpf:h")
                   if e.kind == "retry"]
        assert [e.detail["backoff_ns"] for e in retries] \
            == [10_000, 20_000]
        assert [e.detail["errno"] for e in retries] \
            == [EINVAL, EINVAL]

    def test_exhausted_retries_count_as_a_fault(self, leakcheck):
        kernel, supervisor, bpf = supervised_kernel(leakcheck)
        prog = bpf.load_program(helper_prog(), ProgType.KPROBE, "h")
        kernel.faults.enable(7)
        kernel.faults.arm(TRIGGER, Probability(1.0),
                          FaultAction.err(EINVAL))

        value = bpf.run_on_current_task(prog)

        assert value == to_u64(-EINVAL)        # failure surfaces
        health = supervisor.health("bpf:h")
        assert health.retries == 2             # policy.max_retries
        assert health.faults_total == 1
        assert health.state is HealthState.DEGRADED
        assert [k for _, k in health.fault_log] == [f"errno:{EINVAL}"]

    def test_genuine_errno_return_is_not_retried(self, leakcheck):
        """Only *injected* errnos are treated as transient: a program
        that legitimately returns an errno-shaped value runs once."""
        kernel, supervisor, bpf = supervised_kernel(leakcheck)
        prog = bpf.load_program(
            Asm().mov64_imm(0, -EINVAL).exit_().program(),
            ProgType.KPROBE, "legit")
        assert bpf.run_on_current_task(prog) == to_u64(-EINVAL)
        health = supervisor.health("bpf:legit")
        assert health.retries == 0
        assert health.faults_total == 0
        assert health.state is HealthState.HEALTHY


class TestSupervisedLoad:
    def test_transient_load_errno_is_retried(self, leakcheck):
        kernel, supervisor, bpf = supervised_kernel(leakcheck)
        kernel.faults.enable(7)
        kernel.faults.arm("load.verify", Scripted([True, True, False]),
                          FaultAction.err(EINVAL))

        prog = bpf.load_program(victim_prog(), ProgType.KPROBE, "v")

        assert prog.name == "v"
        health = supervisor.health("bpf:v")
        assert health.retries == 2
        assert health.faults_total == 0

    def test_verifier_crash_is_contained(self, leakcheck):
        kernel, supervisor, bpf = supervised_kernel(leakcheck)
        kernel.faults.enable(7)
        kernel.faults.arm("load.verify", OneShot(),
                          FaultAction.panic())

        with pytest.raises(VerifierError, match="contained"):
            bpf.load_program(victim_prog(), ProgType.KPROBE, "v")

        assert not kernel.log.tainted
        assert kernel.check_alive()
        assert supervisor.health("bpf:v").state is HealthState.DEGRADED

        # the crash was transient: an unfaulted reload succeeds
        prog = bpf.load_program(victim_prog(), ProgType.KPROBE, "v")
        assert bpf.run_on_current_task(prog) == 0


class TestEscalation:
    @pytest.mark.dirty_kernel
    def test_oops_budget_exhaustion_panics(self, leakcheck):
        policy = RecoveryPolicy(oops_budget=1, quarantine_threshold=99)
        kernel, supervisor, bpf = supervised_kernel(leakcheck, policy)
        prog = bpf.load_program(victim_prog(), ProgType.KPROBE, "v")
        kernel.faults.enable(7)
        kernel.faults.arm(TRIGGER, Probability(1.0),
                          FaultAction.panic())

        assert bpf.run_on_current_task(prog) == to_u64(-EFAULT)
        with pytest.raises(KernelPanic, match="oops budget"):
            bpf.run_on_current_task(prog)

        assert kernel.log.panicked
        assert kernel.log.tainted
        assert supervisor.escalations == 1
        assert [e.kind for e in supervisor.audit][-1] == "escalate"

    @pytest.mark.dirty_kernel
    def test_containment_invariant_failure_panics(
            self, leakcheck, monkeypatch):
        kernel = Kernel()
        leakcheck(kernel)
        supervisor = Supervisor(kernel)
        domain = FaultDomain(kernel, "bpf:broken")
        monkeypatch.setattr(
            domain, "verify",
            lambda: ["leaked lock map.lock still held"])

        with pytest.raises(KernelPanic,
                           match="containment invariant failed"):
            supervisor.contain("bpf:broken", RuntimeError("boom"),
                               domain)

        assert kernel.log.panicked
        assert supervisor.escalations == 1
        assert supervisor.contained_total == 0
