"""Fault-domain tests: snapshot, unwind, containment invariant."""

import pytest

from repro.core.runtime.cleanup import CleanupList
from repro.core.runtime.mempool import MemoryPool
from repro.kernel.kernel import Kernel
from repro.recovery import FaultDomain

TAG = "bpf:victim"


def test_unwind_releases_everything_the_domain_holds(leakcheck):
    kernel = Kernel()
    leakcheck(kernel)
    lock = kernel.locks.create("map17.lock")
    domain = FaultDomain(kernel, TAG)

    lock.lock(TAG)
    kernel.rcu.read_lock(holder=TAG)
    kernel.current_cpu.preempt_disable()
    sock = kernel.refs.create("sk0", "sock")
    sock.get(TAG)
    sock.get(TAG)
    kernel.mem.kmalloc(512, type_name="bpf_stack", owner=TAG)

    report = domain.unwind()
    assert report.locks_released == 1
    assert report.rcu_rebalanced == 1
    assert report.preempt_rebalanced == 1
    assert report.refs_reclaimed == 2
    assert report.allocs_freed == 1
    assert domain.verify() == []
    assert not lock.locked
    assert not kernel.rcu.read_lock_held
    assert kernel.refs.outstanding_for(TAG) == []


def test_unwind_stops_at_the_entry_snapshot(leakcheck):
    """A domain entered inside an outer critical section never
    releases state it does not own."""
    kernel = Kernel()
    leakcheck(kernel)
    kernel.rcu.read_lock(holder="outer")
    kernel.current_cpu.preempt_disable()
    domain = FaultDomain(kernel, TAG)
    kernel.rcu.read_lock(holder=TAG)
    kernel.current_cpu.preempt_disable()

    report = domain.unwind()
    assert report.rcu_rebalanced == 1
    assert report.preempt_rebalanced == 1
    assert kernel.rcu._nesting == 1          # outer section intact
    assert kernel.current_cpu._preempt_count == 1
    assert domain.verify() == []

    kernel.current_cpu.preempt_enable()
    kernel.rcu.read_unlock()


def test_unwind_is_idempotent(leakcheck):
    kernel = Kernel()
    leakcheck(kernel)
    domain = FaultDomain(kernel, TAG)
    kernel.locks.create("l").lock(TAG)
    first = domain.unwind()
    assert first.locks_released == 1
    second = domain.unwind()
    assert second.total_actions == 0


def test_unwind_tears_down_cleanup_and_pool(leakcheck):
    kernel = Kernel()
    leakcheck(kernel)
    pool = MemoryPool(kernel, kernel.current_cpu)
    cleanup = CleanupList(pool=pool)
    assert pool.used > 0       # the record block is carved up front
    domain = FaultDomain(kernel, TAG, cleanup=cleanup, pool=pool)
    pool.alloc(64)

    report = domain.unwind()
    assert report.pool_bytes_freed > 0
    assert pool.used == 0
    assert cleanup.torn_down
    assert domain.verify() == []
    pool.destroy()


def test_verify_reports_residual_state(leakcheck):
    kernel = Kernel()
    leakcheck(kernel)
    lock = kernel.locks.create("stuck")
    domain = FaultDomain(kernel, TAG)
    lock.lock(TAG)
    problems = domain.verify()   # no unwind: the lock is residual
    assert any("leaked lock" in p for p in problems)
    lock.unlock(TAG)
    assert domain.verify() == []


def test_oops_mark_scopes_attribution():
    kernel = Kernel()
    kernel.log.record_oops(0, "pre-existing", category="oops",
                           source="elsewhere")
    domain = FaultDomain(kernel, TAG)
    assert domain.oops_mark == 1
    kernel.log.record_oops(5, "in-domain", category="oops", source=TAG)
    assert [o.reason for o in kernel.log.oopses[domain.oops_mark:]] \
        == ["in-domain"]
