"""Recovery determinism: same seed, same quarantine decisions, same
backoff timings, same audit trail — the recovery contract is a pure
function of the fault-plane seed."""

import pytest

from repro.attacks.corpus import build_corpus
from repro.faultinject.chaos import (
    SCHEDULES,
    demonstrate_recovery,
    run_case_under_schedule,
    run_chaos,
)

#: same fast subset as tests/faultinject/test_chaos.py
FAST_CASES = [
    "ebpf-probe-read", "ebpf-storage-null", "ebpf-missing-release",
    "ebpf-infinite-loop", "sl-infinite-loop", "sl-pool-exhaustion",
]


@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
def test_supervised_replay_holds_invariants(schedule):
    """Every fast case survives every schedule with recovery enabled:
    kernel alive afterwards, audit trail consistent."""
    cases = [c for c in build_corpus() if c.case_id in FAST_CASES]
    for case in cases:
        result = run_case_under_schedule(case, schedule, seed=101,
                                         recover=True)
        assert result.ok, (
            f"{case.case_id} × {schedule}: " + "; ".join(
                result.violations))


@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
def test_recovery_demo_quarantines_then_reloads(schedule):
    """Under every schedule a victim program is demonstrably driven to
    quarantine and then auto-reloaded back to health."""
    result = demonstrate_recovery(schedule, seed=101)
    assert result.outcome == "recovered", "; ".join(result.violations)
    assert result.ok


def test_recovery_demo_is_deterministic():
    one = demonstrate_recovery("helper-errno", seed=77)
    two = demonstrate_recovery("helper-errno", seed=77)
    # the trace signature folds in the supervisor audit signature, so
    # equality means identical faults, decisions, and backoff timings
    assert one.trace_signature == two.trace_signature
    assert one.outcome == two.outcome


def test_supervised_chaos_seeds_differ():
    one = run_chaos(seed=77, case_ids=FAST_CASES, recover=True)
    two = run_chaos(seed=78, case_ids=FAST_CASES, recover=True)
    assert one.signature() != two.signature()


def test_supervised_chaos_is_pure_function_of_seed():
    one = run_chaos(seed=77, case_ids=FAST_CASES, recover=True)
    two = run_chaos(seed=77, case_ids=FAST_CASES, recover=True)
    assert one.clean, "; ".join(one.violations)
    assert one.signature() == two.signature()

    def rows(report):
        return [(r.case_id, r.schedule, r.outcome, r.faults_injected,
                 r.trace_signature) for r in report.results]
    assert rows(one) == rows(two)


def test_supervised_and_classic_replays_are_distinct():
    """Recovery mode folds the audit signature into every trace
    signature, so the two modes can never be confused."""
    classic = run_chaos(seed=77, case_ids=FAST_CASES[:2],
                        schedules=["helper-errno"])
    supervised = run_chaos(seed=77, case_ids=FAST_CASES[:2],
                           schedules=["helper-errno"], recover=True)
    assert classic.signature() != supervised.signature()
