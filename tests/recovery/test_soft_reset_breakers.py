"""Pin the soft_reset / circuit-breaker contract (the rollback fix).

``kernel.soft_reset`` must reset the supervisor's breakers for the
named tags — a node rolled back to a prior release re-enters HEALTHY
cleanly — while the supervisor's own containment path (which calls
``soft_reset(breakers=False)`` mid-containment) must keep its breaker
state intact, or repeated oopses could never escalate to quarantine.
"""

import pytest

from repro.ebpf.asm import Asm
from repro.ebpf.bugs import BugConfig
from repro.ebpf.helpers import ids
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.faultinject.plane import FaultAction, NthHit
from repro.kernel import Kernel
from repro.recovery import HealthState

TRIGGER = "helper.bpf_ktime_get_ns"
TAG = "bpf:v"


def victim_prog():
    """Calls the trigger helper, then returns 0."""
    return (Asm()
            .call(ids.BPF_FUNC_ktime_get_ns)
            .mov64_imm(0, 0)
            .exit_()
            .program())


@pytest.fixture
def world(leakcheck):
    """A supervised kernel with the victim loaded and the trigger
    armed to panic on every hit."""
    kernel = Kernel()
    leakcheck(kernel)
    supervisor = kernel.enable_recovery()
    bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched())
    prog = bpf.load_program(victim_prog(), ProgType.KPROBE, "v")
    kernel.faults.enable(7)
    kernel.faults.arm(TRIGGER, NthHit(1, every=True),
                      FaultAction.panic())
    return kernel, supervisor, bpf, prog


def quarantine(kernel, supervisor, bpf, prog):
    """Drive the victim to QUARANTINED (3 contained oopses)."""
    for _ in range(3):
        bpf.run_on_current_task(prog)
    record = supervisor.health(TAG)
    assert record.state is HealthState.QUARANTINED
    return record


class TestSoftResetClearsBreakers:
    def test_quarantined_tag_reenters_healthy(self, world):
        kernel, supervisor, bpf, prog = world
        record = quarantine(kernel, supervisor, bpf, prog)
        kernel.faults.disarm(TRIGGER)

        kernel.soft_reset((TAG,), reason="rollback")

        assert record.state is HealthState.HEALTHY
        assert not record.fault_log
        assert not record.trial
        assert record.consecutive_quarantines == 0
        assert record.release_at_ns is None
        kinds = [e.kind for e in supervisor.audit_for(TAG)]
        assert "breaker-reset" in kinds

    def test_next_run_is_a_clean_run_not_a_refusal(self, world):
        """Without the fix the breaker stays open: the next run is
        refused with -EAGAIN instead of executing."""
        kernel, supervisor, bpf, prog = world
        record = quarantine(kernel, supervisor, bpf, prog)
        kernel.faults.disarm(TRIGGER)
        refusals_before = record.refusals

        kernel.soft_reset((TAG,), reason="rollback")
        value = bpf.run_on_current_task(prog)

        assert value == 0  # executed, not -EAGAIN
        assert record.refusals == refusals_before
        assert record.state is HealthState.HEALTHY

    def test_reset_publishes_health_event(self, world):
        kernel, supervisor, bpf, prog = world
        quarantine(kernel, supervisor, bpf, prog)
        seen = []
        kernel.events.subscribe(seen.append, kinds=("health",))

        kernel.soft_reset((TAG,), reason="rollback")

        assert [(e.get("old"), e.get("new")) for e in seen] \
            == [("quarantined", "healthy")]

    def test_trial_flag_is_cleared(self, world):
        kernel, supervisor, bpf, prog = world
        record = quarantine(kernel, supervisor, bpf, prog)
        record.trial = True  # as if the breaker had half-opened

        kernel.soft_reset((TAG,), reason="rollback")

        assert not record.trial

    def test_clean_tags_are_untouched(self, world):
        """Resetting a tag with no breaker history is a no-op: no
        audit entry, no health event."""
        kernel, supervisor, _, _ = world
        audit_before = len(supervisor.audit)
        reset = supervisor.reset_breakers(("bpf:never-seen",))
        assert reset == 0
        assert len(supervisor.audit) == audit_before


class TestContainmentKeepsBreakers:
    def test_contain_path_does_not_clear_the_window(self, world):
        """The supervisor's own soft_reset (breakers=False) must not
        wipe the fault window, or the third oops could never trip
        quarantine."""
        kernel, supervisor, bpf, prog = world
        bpf.run_on_current_task(prog)
        record = supervisor.health(TAG)
        assert record.state is HealthState.DEGRADED
        assert len(record.fault_log) == 1  # survived the contain

        bpf.run_on_current_task(prog)
        bpf.run_on_current_task(prog)
        assert record.state is HealthState.QUARANTINED
