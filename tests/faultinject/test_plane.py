"""FaultPlane unit tests: schedules, determinism, gate, parsing."""

import pytest

from repro.faultinject.plane import (
    EINVAL,
    ENOMEM,
    FaultAction,
    FaultPlane,
    NthHit,
    OneShot,
    Probability,
    Scripted,
    parse_action,
    parse_schedule,
)


def make_plane(seed=0):
    plane = FaultPlane()
    plane.enable(seed)
    return plane


class TestGate:
    """The hot-path contract: ``plane.armed`` is the only thing sites
    ever test when nothing is injected."""

    def test_fresh_plane_is_cold(self):
        plane = FaultPlane()
        assert not plane.armed
        assert plane.check("helper.anything") is None
        assert plane.site_hits == {}  # cold checks don't even count

    def test_enable_without_arms_stays_cold(self):
        plane = FaultPlane()
        plane.enable(1)
        assert not plane.armed

    def test_arms_without_enable_stay_cold(self):
        plane = FaultPlane()
        plane.arm("x", OneShot(), FaultAction.err(EINVAL))
        assert not plane.armed

    def test_enabled_and_armed_is_hot(self):
        plane = make_plane()
        plane.arm("x", OneShot(), FaultAction.err(EINVAL))
        assert plane.armed
        plane.disable()
        assert not plane.armed

    def test_disarm_and_reset_cool_the_gate(self):
        plane = make_plane()
        plane.arm("x", OneShot(), FaultAction.err(EINVAL))
        assert plane.disarm("x") == 1
        assert not plane.armed
        plane.arm("y", OneShot(), FaultAction.err(EINVAL))
        plane.reset()
        assert not plane.armed
        assert plane.records == []


class TestSchedules:
    def test_oneshot_fires_exactly_once(self):
        plane = make_plane()
        plane.arm("s", OneShot(), FaultAction.err(EINVAL))
        outcomes = [plane.check("s") for _ in range(5)]
        assert [a is not None for a in outcomes] == \
            [True, False, False, False, False]

    def test_nth_hit_fires_on_nth_only(self):
        plane = make_plane()
        plane.arm("s", NthHit(3), FaultAction.err(EINVAL))
        fired = [plane.check("s") is not None for _ in range(6)]
        assert fired == [False, False, True, False, False, False]

    def test_every_nth_fires_periodically(self):
        plane = make_plane()
        plane.arm("s", NthHit(2, every=True), FaultAction.err(EINVAL))
        fired = [plane.check("s") is not None for _ in range(6)]
        assert fired == [False, True, False, True, False, True]

    def test_scripted_replays_then_stops(self):
        plane = make_plane()
        plane.arm("s", Scripted([1, 0, 1]), FaultAction.err(EINVAL))
        fired = [plane.check("s") is not None for _ in range(5)]
        assert fired == [True, False, True, False, False]

    def test_probability_extremes(self):
        plane = make_plane()
        plane.arm("never", Probability(0.0), FaultAction.err(EINVAL))
        plane.arm("always", Probability(1.0), FaultAction.err(EINVAL))
        assert all(plane.check("never") is None for _ in range(20))
        assert all(plane.check("always") is not None
                   for _ in range(20))

    def test_probability_validates_range(self):
        with pytest.raises(ValueError):
            Probability(1.5)

    def test_first_matching_arm_that_fires_wins(self):
        plane = make_plane()
        plane.arm("s", NthHit(2), FaultAction.err(ENOMEM))
        plane.arm("s", OneShot(), FaultAction.err(EINVAL))
        first = plane.check("s")   # arm 1 skips (hit 1), arm 2 fires
        second = plane.check("s")  # arm 1 fires on its hit 2
        assert (first.errno, second.errno) == (EINVAL, ENOMEM)


class TestDeterminism:
    def run_workload(self, seed):
        plane = make_plane(seed)
        plane.arm("site.*", Probability(0.4),
                  FaultAction.err(EINVAL))
        for index in range(50):
            plane.check(f"site.{index % 3}")
        return plane

    def test_same_seed_same_trace(self):
        one = self.run_workload(7)
        two = self.run_workload(7)
        assert [r.as_tuple() for r in one.records] == \
            [r.as_tuple() for r in two.records]
        assert one.trace_signature() == two.trace_signature()

    def test_different_seed_different_trace(self):
        assert self.run_workload(7).trace_signature() != \
            self.run_workload(8).trace_signature()

    def test_reenable_restarts_the_replay(self):
        plane = make_plane(5)
        plane.arm("s", Probability(0.5), FaultAction.err(EINVAL))
        first = [plane.check("s") is not None for _ in range(20)]
        plane.enable(5)
        second = [plane.check("s") is not None for _ in range(20)]
        assert first == second


class TestRecordsAndStatus:
    def test_record_fields(self):
        plane = make_plane()
        plane.arm("helper.*", OneShot(), FaultAction.err(ENOMEM))
        plane.check("helper.bpf_ktime_get_ns")
        (record,) = plane.records
        assert record.seq == 0
        assert record.site == "helper.bpf_ktime_get_ns"
        assert record.pattern == "helper.*"
        assert record.kind == "errno"
        assert record.errno == ENOMEM
        assert record.hit == 1

    def test_wildcards_match_dotted_sites(self):
        plane = make_plane()
        plane.arm("map.*", OneShot(), FaultAction.err(EINVAL))
        assert plane.check("helper.foo") is None
        assert plane.check("map.update") is not None

    def test_status_counts_hits_and_fires(self):
        plane = make_plane()
        plane.arm("s", NthHit(2, every=True), FaultAction.panic())
        for _ in range(4):
            plane.check("s")
        (row,) = plane.status()
        assert row["hits"] == 4
        assert row["fires"] == 2
        assert row["schedule"] == "every:2"
        assert row["action"] == "panic"
        assert plane.site_hits == {"s": 4}


class TestActionsAndParsing:
    def test_action_validation(self):
        with pytest.raises(ValueError):
            FaultAction("errno", errno=0)
        with pytest.raises(ValueError):
            FaultAction("delay", delay_ns=0)
        with pytest.raises(ValueError):
            FaultAction("bogus")

    @pytest.mark.parametrize("text,kind,value", [
        ("errno:ENOMEM", "errno", ENOMEM),
        ("errno:22", "errno", EINVAL),
        ("panic", "panic", 0),
        ("delay:5000", "delay", 5000),
    ])
    def test_parse_action(self, text, kind, value):
        action = parse_action(text)
        assert action.kind == kind
        if kind == "errno":
            assert action.errno == value
        if kind == "delay":
            assert action.delay_ns == value

    def test_parse_action_round_trips_describe(self):
        for text in ("errno:ENOMEM", "panic", "delay:5000"):
            assert parse_action(text).describe() == text

    def test_parse_action_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_action("explode")
        with pytest.raises(ValueError):
            parse_action("errno:EWHAT")

    @pytest.mark.parametrize("text", [
        "prob:0.5", "nth:3", "every:3", "oneshot", "script:1,0,1",
    ])
    def test_parse_schedule_round_trips_describe(self, text):
        assert parse_schedule(text).describe() == text

    def test_parse_schedule_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_schedule("sometimes")
