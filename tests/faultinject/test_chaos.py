"""Chaos replay tests: corpus × schedules, invariants, determinism.

``make chaos`` runs the full matrix; here a fast subset runs per
schedule so CI failures point at the schedule that broke, plus one
full-matrix determinism check.
"""

import pytest

from repro.attacks.corpus import build_corpus
from repro.faultinject.chaos import (
    SCHEDULES,
    case_seed,
    run_case_under_schedule,
    run_chaos,
)

#: a structurally diverse subset: helper abuse, loops, maps, ringbuf,
#: safelang containment — enough surface to hit every failpoint class
FAST_CASES = [
    "ebpf-probe-read", "ebpf-storage-null", "ebpf-missing-release",
    "ebpf-infinite-loop", "sl-infinite-loop", "sl-pool-exhaustion",
]
KNOWN_IDS = {c.case_id for c in build_corpus()}


def test_fast_case_ids_exist():
    missing = [cid for cid in FAST_CASES if cid not in KNOWN_IDS]
    assert not missing, f"stale FAST_CASES entries: {missing}"


@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
def test_invariants_hold_under_schedule(schedule):
    cases = [c for c in build_corpus() if c.case_id in FAST_CASES]
    for case in cases:
        result = run_case_under_schedule(case, schedule, seed=101)
        assert result.ok, (
            f"{case.case_id} × {schedule}: " + "; ".join(
                result.violations))


def test_replay_is_pure_function_of_seed():
    one = run_chaos(seed=77, case_ids=FAST_CASES)
    two = run_chaos(seed=77, case_ids=FAST_CASES)
    assert one.signature() == two.signature()

    def rows(report):
        return [(r.case_id, r.schedule, r.outcome, r.faults_injected,
                 r.trace_signature) for r in report.results]
    assert rows(one) == rows(two)


def test_different_seeds_differ():
    one = run_chaos(seed=77, case_ids=FAST_CASES)
    two = run_chaos(seed=78, case_ids=FAST_CASES)
    assert one.signature() != two.signature()


def test_case_seed_is_stable_and_distinct():
    assert case_seed(1, "a", "s") == case_seed(1, "a", "s")
    assert case_seed(1, "a", "s") != case_seed(2, "a", "s")
    assert case_seed(1, "a", "s") != case_seed(1, "b", "s")
    assert case_seed(1, "a", "s") != case_seed(1, "a", "t")


def test_chaos_actually_injects_faults():
    report = run_chaos(seed=77, case_ids=FAST_CASES)
    assert report.total_faults > 0
    assert not report.violations


def test_cli_exit_status():
    from repro.faultinject.chaos import main
    assert main(["--case", "ebpf-probe-read",
                 "--schedule", "helper-errno",
                 "--check-determinism"]) == 0
