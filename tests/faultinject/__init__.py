"""Fault-injection plane tests."""
