"""Per-site failpoint behavior: each wired site delivers its fault in
the site's native error convention, and panic always goes through the
official panic path (oops recorded, taint set)."""

import pytest

from repro.core.runtime.mempool import MemoryPool
from repro.core.runtime.watchdog import Watchdog
from repro.ebpf.asm import Asm
from repro.ebpf.bugs import BugConfig
from repro.ebpf.helpers import ids
from repro.ebpf.isa import to_u64
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.errors import KernelOops, VerifierError
from repro.faultinject.plane import (
    EINVAL,
    ENOMEM,
    ENOSPC,
    FaultAction,
    NthHit,
    OneShot,
    Probability,
    Scripted,
)
from repro.kernel import Kernel
from repro.kernel.ktime import VirtualClock


def helper_prog():
    """r0 = ktime_get_ns(); exit."""
    return (Asm()
            .call(ids.BPF_FUNC_ktime_get_ns)
            .exit_()
            .program())


@pytest.fixture
def patched(kernel):
    """All-patched subsystem on the shared (leak-checked) kernel."""
    return BpfSubsystem(kernel, bugs=BugConfig.all_patched())


class TestHelperSite:
    def test_errno_becomes_helper_return(self, kernel, patched):
        prog = patched.load_program(helper_prog(), ProgType.KPROBE,
                                    "h")
        kernel.faults.enable(1)
        kernel.faults.arm("helper.bpf_ktime_get_ns", OneShot(),
                          FaultAction.err(EINVAL))
        assert patched.run_on_current_task(prog) == to_u64(-EINVAL)
        # one-shot spent: the next run sees the real helper
        assert patched.run_on_current_task(prog) != to_u64(-EINVAL)

    def test_panic_takes_official_path(self, kernel, patched):
        prog = patched.load_program(helper_prog(), ProgType.KPROBE,
                                    "h")
        kernel.faults.enable(1)
        kernel.faults.arm("helper.*", OneShot(), FaultAction.panic())
        with pytest.raises(KernelOops):
            patched.run_on_current_task(prog)
        assert kernel.log.tainted
        assert [o.category for o in kernel.log.oopses] == \
            ["fault-injection"]

    def test_delay_charges_virtual_time(self, kernel, patched):
        prog = patched.load_program(helper_prog(), ProgType.KPROBE,
                                    "h")
        before = kernel.clock.now_ns
        patched.run_on_current_task(prog)
        clean_cost = kernel.clock.now_ns - before
        kernel.faults.enable(1)
        kernel.faults.arm("helper.*", OneShot(),
                          FaultAction.delay(50_000))
        before = kernel.clock.now_ns
        patched.run_on_current_task(prog)
        assert kernel.clock.now_ns - before == clean_cost + 50_000


class TestMapSites:
    def test_update_and_delete_return_errno(self, kernel, patched):
        array = patched.create_map("array", key_size=4, value_size=8,
                                   max_entries=4)
        kernel.faults.enable(1)
        kernel.faults.arm("map.update", OneShot(),
                          FaultAction.err(ENOMEM))
        kernel.faults.arm("map.delete", OneShot(),
                          FaultAction.err(EINVAL))
        assert array.update(b"\x00" * 4, b"\x01" * 8) == -ENOMEM
        assert array.update(b"\x00" * 4, b"\x01" * 8) == 0
        assert array.delete(b"\x00" * 4) == -EINVAL

    def test_lookup_fault_misses(self, kernel, patched):
        array = patched.create_map("array", key_size=4, value_size=8,
                                   max_entries=4)
        assert array.update(b"\x00" * 4, b"\x02" * 8) == 0
        kernel.faults.enable(1)
        kernel.faults.arm("map.lookup", OneShot(),
                          FaultAction.err(ENOMEM))
        assert array.lookup_addr(b"\x00" * 4) is None
        assert array.lookup_addr(b"\x00" * 4) is not None

    def test_hash_alloc_fault(self, kernel, patched):
        table = patched.create_map("hash", key_size=4, value_size=8,
                                   max_entries=4)
        kernel.faults.enable(1)
        kernel.faults.arm("map.alloc", OneShot(),
                          FaultAction.err(ENOMEM))
        assert table.update(b"\x00" * 4, b"\x01" * 8) == -ENOMEM
        assert table.update(b"\x00" * 4, b"\x01" * 8) == 0

    def test_ringbuf_alloc_fault_counts_as_drop(self, kernel,
                                                patched):
        ring = patched.create_map("ringbuf", max_entries=4096)
        kernel.faults.enable(1)
        kernel.faults.arm("map.alloc", OneShot(),
                          FaultAction.err(ENOSPC))
        assert ring.output(b"data") == -ENOSPC
        assert ring.drops == 1
        assert ring.output(b"data") == 0


class TestPoolSite:
    def test_alloc_fault_is_exhaustion(self, kernel):
        pool = MemoryPool(kernel, kernel.current_cpu, size=1024)
        kernel.faults.enable(1)
        kernel.faults.arm("pool.alloc", OneShot(),
                          FaultAction.err(ENOMEM))
        assert pool.alloc(64) is None
        assert pool.failed_allocs == 1
        assert pool.alloc(64) is not None
        pool.reset()


class TestWatchdogSite:
    def arm_dog(self, kernel, schedule, action):
        """A watchdog on the kernel clock with one fault rule armed."""
        kernel.faults.enable(1)
        kernel.faults.arm("watchdog.fire", schedule, action)
        dog = Watchdog(kernel.clock, budget_ns=100,
                       faults=kernel.faults)
        dog.arm()
        return dog

    def test_delay_defers_delivery_without_losing_it(self, kernel):
        dog = self.arm_dog(kernel, OneShot(),
                           FaultAction.delay(500))
        kernel.clock.advance(100)
        assert not dog.fired  # first delivery eaten by the delay
        kernel.clock.advance(499)
        assert not dog.fired
        kernel.clock.advance(1)
        assert dog.fired      # delayed, never lost
        dog.disarm()

    def test_errno_suppresses_one_delivery(self, kernel):
        dog = self.arm_dog(kernel, Scripted([1]),
                           FaultAction.err(EINVAL))
        kernel.clock.advance(100)
        assert not dog.fired
        kernel.clock.advance(1)
        assert dog.fired
        dog.disarm()


class TestRcuSite:
    def test_delay_stretches_grace_period(self, kernel):
        base = kernel.clock.now_ns
        kernel.rcu.synchronize()
        clean = kernel.clock.now_ns - base
        kernel.faults.enable(1)
        kernel.faults.arm("rcu.synchronize", OneShot(),
                          FaultAction.delay(1_000_000))
        base = kernel.clock.now_ns
        kernel.rcu.synchronize()
        assert kernel.clock.now_ns - base == clean + 1_000_000


class TestLoadSites:
    def test_verify_errno_rejects(self, kernel, patched):
        kernel.faults.enable(1)
        kernel.faults.arm("load.verify", OneShot(),
                          FaultAction.err(EINVAL))
        with pytest.raises(VerifierError, match="injected"):
            patched.load_program(helper_prog(), ProgType.KPROBE, "p")
        patched.load_program(helper_prog(), ProgType.KPROBE, "p")

    @pytest.mark.dirty_kernel
    def test_verify_panic_oopses(self, kernel, patched):
        kernel.faults.enable(1)
        kernel.faults.arm("load.verify", OneShot(),
                          FaultAction.panic())
        with pytest.raises(KernelOops):
            patched.load_program(helper_prog(), ProgType.KPROBE, "p")
        assert kernel.log.tainted
        assert kernel.log.oopses[0].category == "fault-injection"

    def test_signature_fault_fails_install(self, kernel):
        from repro.core.loader import SafeLoader
        from repro.core.toolchain import TrustedToolchain
        from repro.errors import SignatureError
        toolchain = TrustedToolchain()
        loader = SafeLoader(kernel,
                            {toolchain.key.key_id: toolchain.key})
        ext = toolchain.compile(
            "fn prog(ctx: XdpCtx) -> i64 { return 0; }", "e")
        kernel.faults.enable(1)
        kernel.faults.arm("load.signature", OneShot(),
                          FaultAction.err(EINVAL))
        with pytest.raises(SignatureError, match="injected"):
            loader.load(ext)
        loader.load(ext)


class TestTelemetryIntegration:
    def test_faults_counted_and_traced(self, kernel, patched):
        kernel.telemetry.enable()
        prog = patched.load_program(helper_prog(), ProgType.KPROBE,
                                    "h")
        kernel.faults.enable(1)
        kernel.faults.arm("helper.*", NthHit(1), FaultAction.err(
            EINVAL))
        patched.run_on_current_task(prog)
        events = kernel.telemetry.trace.events(kind="fault")
        assert len(events) == 1
        assert events[0].data["action"] == "errno:EINVAL"

    def test_probability_uses_plane_rng_only(self, kernel, patched):
        # two planes with the same seed make identical decisions even
        # with interleaved global random usage
        import random
        decisions = []
        for _ in range(2):
            k = Kernel()
            k.faults.enable(9)
            k.faults.arm("s", Probability(0.5),
                         FaultAction.err(EINVAL))
            random.random()  # global RNG noise must not matter
            decisions.append(
                [k.faults.check("s") is not None for _ in range(30)])
        assert decisions[0] == decisions[1]
