"""Fixtures for fault-injection tests."""

import pytest

from repro.kernel import Kernel

from tests.conftest import assert_kernel_isolated


@pytest.fixture
def kernel(request):
    """A fresh kernel, isolation-checked at teardown (opt out with
    ``@pytest.mark.dirty_kernel``)."""
    k = Kernel()
    yield k
    if request.node.get_closest_marker("dirty_kernel"):
        return
    assert_kernel_isolated(k)
