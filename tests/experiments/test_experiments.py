"""Experiment-driver tests: every table/figure regenerates correctly.

These run the same code paths as the benchmarks and assert the paper's
shape claims programmatically (the benches additionally time them).
"""

import pytest

from repro.experiments import (
    exp_crash_sys_bpf,
    exp_helper_retirement,
    exp_rcu_stall,
    exp_verification_cost,
    fig2_verifier_loc,
    fig3_helper_complexity,
    fig4_helper_growth,
    table1_bug_stats,
    table2_enforcement,
)


@pytest.fixture(scope="module")
def fig2():
    return fig2_verifier_loc.run()


@pytest.fixture(scope="module")
def fig3():
    return fig3_helper_complexity.run()


@pytest.fixture(scope="module")
def fig4():
    return fig4_helper_growth.run()


@pytest.fixture(scope="module")
def table1():
    return table1_bug_stats.run()


@pytest.fixture(scope="module")
def table2():
    return table2_enforcement.run()


@pytest.fixture(scope="module")
def stall():
    return exp_rcu_stall.run(sample_limit=32)


class TestFig2:
    def test_monotone_growth(self, fig2):
        assert fig2.monotone

    def test_growth_factor(self, fig2):
        assert 5.0 <= fig2.growth_factor <= 9.0

    def test_final_loc(self, fig2):
        assert 11_000 <= fig2.final_loc <= 13_000

    def test_own_verifier_measured(self, fig2):
        assert fig2.own_verifier_total > 1000

    def test_render_passes_all_checks(self, fig2):
        assert "[FAIL]" not in fig2_verifier_loc.render(fig2)


class TestFig3:
    def test_population(self, fig3):
        assert fig3.complexity.total == 249

    def test_extremes(self, fig3):
        assert fig3.pid_tgid_nodes == 0
        assert fig3.max_name == "bpf_sys_bpf"
        assert fig3.max_nodes == 4845

    def test_paper_fractions(self, fig3):
        assert fig3.frac_30_plus == pytest.approx(0.522, abs=0.02)
        assert fig3.frac_500_plus == pytest.approx(0.345, abs=0.02)

    def test_render_passes_all_checks(self, fig3):
        assert "[FAIL]" not in fig3_helper_complexity.render(fig3)


class TestFig4:
    def test_249_at_v518(self, fig4):
        assert fig4.count_at_518 == 249

    def test_growth_rate(self, fig4):
        assert 35 <= fig4.mean_growth_per_two_years <= 75

    def test_render_passes_all_checks(self, fig4):
        assert "[FAIL]" not in fig4_helper_growth.render(fig4)


class TestTable1:
    def test_matches_paper(self, table1):
        assert table1.matches_paper

    def test_all_nine_bugs_modeled(self, table1):
        assert len(table1.demo_outcomes) == 9

    def test_demos_fire_iff_present(self, table1):
        assert table1.all_demos_correct

    def test_render_passes_all_checks(self, table1):
        assert "[FAIL]" not in table1_bug_stats.render(table1)


class TestTable2:
    def test_all_cases_expected(self, table2):
        assert table2.all_expected

    def test_ebpf_compromised_safelang_not(self, table2):
        assert len(table2.compromises("ebpf")) >= 5
        assert table2.compromises("safelang") == []

    def test_render_passes_all_checks(self, table2):
        assert "[FAIL]" not in table2_enforcement.render(table2)


class TestCrashExperiment:
    def test_reproduces_paper(self):
        result = exp_crash_sys_bpf.run()
        assert result.reproduces_paper

    def test_render(self):
        result = exp_crash_sys_bpf.run()
        assert "[FAIL]" not in exp_crash_sys_bpf.render(result)


class TestRcuStallExperiment:
    def test_linear_runtime(self, stall):
        assert stall.max_fit_error < 0.15

    def test_800_second_run(self, stall):
        assert stall.long_run_seconds >= 800

    def test_first_stall_at_timeout(self, stall):
        assert 20 <= stall.first_stall_after_s <= 22

    def test_millions_of_years_projection(self, stall):
        assert any(years >= 1e6 for __, years in stall.projections)

    def test_safelang_contained(self, stall):
        assert stall.safelang_terminated
        assert stall.safelang_kernel_healthy
        assert stall.safelang_stalls == 0
        # watchdog killed it within ~its budget, not 800 seconds
        assert stall.safelang_runtime_ns < 10_000_000

    def test_render(self, stall):
        assert "[FAIL]" not in exp_rcu_stall.render(stall)


class TestVerificationCost:
    @pytest.fixture(scope="class")
    def cost(self):
        return exp_verification_cost.run()

    def test_size_cap_rejection(self, cost):
        assert cost.size_cap_rejected_at is not None

    def test_unpruned_explosion(self, cost):
        assert any(rejected for __, __, rejected in
                   cost.unpruned_series)

    def test_pruned_stays_cheap(self, cost):
        assert cost.pruned_series[-1][1] < 10_000

    def test_signature_flat(self, cost):
        # signature check time grows at most linearly with bytes
        small = cost.signature_series[0]
        large = cost.signature_series[-1]
        byte_ratio = large[0] / small[0]
        time_ratio = large[1] / max(small[1], 1e-9)
        assert time_ratio <= 4 * byte_ratio

    def test_render(self, cost):
        assert "[FAIL]" not in exp_verification_cost.render(cost)


class TestHelperRetirement:
    @pytest.fixture(scope="class")
    def retirement(self):
        return exp_helper_retirement.run()

    def test_sixteen_retired(self, retirement):
        assert retirement.survey.count("retire") == 16

    def test_replacements_execute(self, retirement):
        assert retirement.replacements_work

    def test_render(self, retirement):
        assert "[FAIL]" not in \
            exp_helper_retirement.render(retirement)


class TestMpkProtection:
    @pytest.fixture(scope="class")
    def mpk(self):
        from repro.experiments import exp_mpk_protection
        return exp_mpk_protection.run()

    def test_corruption_without_keys(self, mpk):
        assert mpk.corrupted_without_keys

    def test_containment_with_keys(self, mpk):
        assert mpk.fault_with_keys and mpk.pool_intact_with_keys

    def test_render(self, mpk):
        from repro.experiments import exp_mpk_protection
        assert "[FAIL]" not in exp_mpk_protection.render(mpk)


class TestArchitecturePipelines:
    @pytest.fixture(scope="class")
    def pipelines(self):
        from repro.experiments import fig1_fig5_pipelines
        return fig1_fig5_pipelines.run()

    def test_verifier_lives_in_kernel_loading(self, pipelines):
        assert pipelines.verifier_steps > 0

    def test_kernel_only_checks_signature_in_fig5(self, pipelines):
        assert pipelines.signature_checked

    def test_crossings_observed_in_both(self, pipelines):
        assert pipelines.ebpf_helper_crossings > 0
        assert pipelines.safelang_kcrate_crossings > 0

    def test_render(self, pipelines):
        from repro.experiments import fig1_fig5_pipelines
        assert "[FAIL]" not in fig1_fig5_pipelines.render(pipelines)


class TestExpressiveness:
    @pytest.fixture(scope="class")
    def expressiveness(self):
        from repro.experiments import exp_expressiveness
        return exp_expressiveness.run()

    def test_three_false_positives(self, expressiveness):
        assert len(expressiveness.cases) == 3

    def test_all_rejected_yet_correct(self, expressiveness):
        assert expressiveness.all_rejected_yet_correct

    def test_each_case_names_its_massage(self, expressiveness):
        assert all(c.massage and c.massage_cost
                   for c in expressiveness.cases)

    def test_render(self, expressiveness):
        from repro.experiments import exp_expressiveness
        assert "[FAIL]" not in \
            exp_expressiveness.render(expressiveness)
