"""Metrics primitives: counters, gauges, histograms, registry."""

import pytest

from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_can_go_negative(self):
        g = Gauge()
        g.dec(2)
        assert g.value == -2


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram(bounds=(10, 100))
        for v in (1, 5, 50, 500):
            h.observe(v)
        cum = h.cumulative()
        # cumulative counts: le=10 -> 2, le=100 -> 3, +Inf -> 4
        assert cum == [(10, 2), (100, 3), (None, 4)]
        assert h.count == 4
        assert h.total == 556

    def test_boundary_value_counts_as_le(self):
        h = Histogram(bounds=(10, 100))
        h.observe(10)
        assert h.cumulative()[0] == (10, 1)

    def test_mean(self):
        h = Histogram(bounds=(10,))
        h.observe(2)
        h.observe(4)
        assert h.mean == 3.0
        assert Histogram(bounds=(10,)).mean == 0.0

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(10, 10))
        with pytest.raises(ValueError):
            Histogram(bounds=(100, 10))


class TestQuantile:
    def test_interpolates_within_bucket(self):
        h = Histogram(bounds=(10, 20, 30))
        for v in (5, 15, 25, 28):
            h.observe(v)
        # rank 2.0 falls at the top of the (10, 20] bucket
        assert h.quantile(0.5) == 20.0
        # rank 3.96 sits 1.96/2 into the (20, 30] bucket
        assert h.quantile(0.99) == pytest.approx(29.8)

    def test_empty_histogram_is_zero(self):
        assert Histogram(bounds=(10,)).quantile(0.5) == 0.0

    def test_overflow_clamps_to_last_bound(self):
        h = Histogram(bounds=(10, 20))
        h.observe(5000)
        assert h.quantile(0.5) == 20.0
        assert h.quantile(0.999) == 20.0

    def test_monotone_in_q(self):
        h = Histogram(bounds=(1, 2, 4, 8, 16))
        for v in (1, 1, 3, 3, 5, 9, 9, 15, 40):
            h.observe(v)
        qs = [h.quantile(q) for q in
              (0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)]
        assert qs == sorted(qs)

    def test_rejects_out_of_range_q(self):
        h = Histogram(bounds=(10,))
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestRegistry:
    def test_labels_children_are_stable(self):
        reg = MetricsRegistry()
        fam = reg.counter("runs", "runs", ("framework", "prog"))
        child = fam.labels("ebpf", "p")
        child.inc(3)
        assert fam.labels("ebpf", "p") is child
        assert fam.labels("ebpf", "q").value == 0

    def test_label_arity_enforced(self):
        reg = MetricsRegistry()
        fam = reg.counter("runs", "runs", ("framework",))
        with pytest.raises(ValueError):
            fam.labels("a", "b")

    def test_get_or_create_same_schema(self):
        reg = MetricsRegistry()
        a = reg.counter("x", "help", ("l",))
        assert reg.counter("x", "help", ("l",)) is a

    def test_schema_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", "help", ("l",))
        with pytest.raises(ValueError):
            reg.gauge("x", "help", ("l",))
        with pytest.raises(ValueError):
            reg.counter("x", "help", ("other",))

    def test_families_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zeta", "z", ())
        reg.gauge("alpha", "a", ())
        assert [f.name for f in reg.families()] == ["alpha", "zeta"]

    def test_non_string_label_values_stringified(self):
        reg = MetricsRegistry()
        fam = reg.counter("drops", "d", ("cpu",))
        fam.labels(3).inc()
        assert fam.labels("3").value == 1
