"""Trace ring: bounding, overwrite accounting, sinks, JSONL."""

import pytest

from repro.telemetry.trace import TraceEvent, TraceRing, parse_jsonl


def ev(i, kind="run"):
    return TraceEvent(ts_ns=i, kind=kind, framework="ebpf",
                      prog=f"p{i}", data={"i": i})


class TestBounding:
    def test_holds_up_to_capacity(self):
        ring = TraceRing(capacity=4)
        for i in range(4):
            ring.emit(ev(i))
        assert len(ring) == 4
        assert ring.dropped == 0
        assert ring.emitted == 4

    def test_overflow_drops_oldest(self):
        ring = TraceRing(capacity=4)
        for i in range(10):
            ring.emit(ev(i))
        assert len(ring) == 4
        assert ring.dropped == 6
        assert ring.emitted == 10
        assert [e.ts_ns for e in ring.events()] == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRing(capacity=0)

    def test_clear_keeps_counters(self):
        ring = TraceRing(capacity=2)
        for i in range(3):
            ring.emit(ev(i))
        ring.clear()
        assert len(ring) == 0
        assert ring.emitted == 3
        assert ring.dropped == 1


class TestFiltering:
    def test_kind_filter_and_limit(self):
        ring = TraceRing(capacity=16)
        for i in range(6):
            ring.emit(ev(i, kind="run" if i % 2 else "load"))
        runs = ring.events(kind="run")
        assert [e.ts_ns for e in runs] == [1, 3, 5]
        assert [e.ts_ns for e in ring.events(limit=2)] == [4, 5]
        assert [e.ts_ns
                for e in ring.events(kind="run", limit=1)] == [5]


class TestSinks:
    def test_sink_sees_every_emission(self):
        ring = TraceRing(capacity=2)
        seen = []
        ring.add_sink("test", seen.append)
        for i in range(5):
            ring.emit(ev(i))
        # the sink observed all 5 even though the ring holds only 2
        assert [e.ts_ns for e in seen] == [0, 1, 2, 3, 4]

    def test_remove_sink(self):
        ring = TraceRing()
        seen = []
        ring.add_sink("test", seen.append)
        ring.emit(ev(0))
        ring.remove_sink("test")
        ring.remove_sink("test")   # no-op when absent
        ring.emit(ev(1))
        assert len(seen) == 1


class TestJsonl:
    def test_round_trip(self):
        ring = TraceRing()
        ring.emit(ev(3, kind="load"))
        ring.emit(TraceEvent(7, "oops", "", "bpf:crash",
                             {"category": "page_fault"}))
        back = parse_jsonl(ring.to_jsonl())
        assert back == ring.events()

    def test_empty_ring_exports_empty_text(self):
        assert TraceRing().to_jsonl() == ""
        assert parse_jsonl("") == []

    def test_parse_skips_blank_lines(self):
        text = ev(1).to_json() + "\n\n" + ev(2).to_json() + "\n"
        assert [e.ts_ns for e in parse_jsonl(text)] == [1, 2]
