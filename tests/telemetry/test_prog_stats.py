"""End-to-end telemetry: both frameworks reporting into one hub."""

import pytest

from repro.core import SafeExtensionFramework
from repro.ebpf.asm import Asm
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.kernel import Kernel
from repro.telemetry import (parse_json, parse_prometheus, to_json,
                             to_prometheus)


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def bpf(kernel):
    return BpfSubsystem(kernel)


@pytest.fixture
def fw(kernel):
    return SafeExtensionFramework(kernel)


def alu_prog():
    asm = Asm().mov64_imm(R0, 0)
    for i in range(8):
        asm.alu64_imm("add", R0, i)
    return asm.exit_().program()


SPIN = """
fn prog(ctx: XdpCtx) -> i64 {
    let mut i: u64 = 0;
    while true { i = i + 1; if i == 0 { break; } }
    return 0;
}
"""


class TestEbpfRunStats:
    def test_run_stats_gated_off_by_default(self, kernel, bpf):
        prog = bpf.load_program(alu_prog(), ProgType.KPROBE, "cold")
        bpf.run_on_current_task(prog)
        row = kernel.telemetry.prog("ebpf", "cold")
        assert row.run_cnt == 0
        assert row.run_time_ns == 0
        assert kernel.telemetry.trace.events(kind="run") == []
        # ...but the load pipeline is always accounted
        assert row.loads == 1

    def test_run_stats_when_enabled(self, kernel, bpf):
        kernel.telemetry.enable()
        prog = bpf.load_program(alu_prog(), ProgType.KPROBE, "hot")
        before = kernel.clock.now_ns
        bpf.run_on_current_task(prog)
        bpf.run_on_current_task(prog)
        elapsed = kernel.clock.now_ns - before
        row = kernel.telemetry.prog("ebpf", "hot")
        assert row.run_cnt == 2
        assert row.insns == 2 * 10      # 1 mov + 8 alu + exit
        # virtual run time is exactly the clock the program consumed
        assert row.run_time_ns == elapsed
        assert row.avg_run_time_ns == elapsed / 2
        assert len(kernel.telemetry.trace.events(kind="run")) == 2

    def test_registry_counters_match_rows(self, kernel, bpf):
        kernel.telemetry.enable()
        prog = bpf.load_program(alu_prog(), ProgType.KPROBE, "hot")
        bpf.run_on_current_task(prog)
        fam = kernel.telemetry.registry.get("repro_prog_runs_total")
        assert fam.labels("ebpf", "hot").value == 1

    def test_helper_calls_counted_by_symbol(self, kernel, bpf):
        kernel.telemetry.enable()
        asm = (Asm().call(ids.BPF_FUNC_ktime_get_ns)
               .call(ids.BPF_FUNC_ktime_get_ns)
               .call(ids.BPF_FUNC_get_current_pid_tgid).exit_())
        prog = bpf.load_program(asm.program(), ProgType.KPROBE, "h")
        bpf.run_on_current_task(prog)
        row = kernel.telemetry.prog("ebpf", "h")
        assert row.helper_calls == 3
        assert row.helper_counts["bpf_ktime_get_ns"] == 2
        assert row.helper_counts["bpf_get_current_pid_tgid"] == 1
        events = kernel.telemetry.trace.events(kind="helper")
        assert len(events) == 3

    def test_disable_stops_recording(self, kernel, bpf):
        kernel.telemetry.enable()
        prog = bpf.load_program(alu_prog(), ProgType.KPROBE, "p")
        bpf.run_on_current_task(prog)
        kernel.telemetry.disable()
        bpf.run_on_current_task(prog)
        assert kernel.telemetry.prog("ebpf", "p").run_cnt == 1


class TestLoadPipelineStats:
    def test_cache_miss_then_hit(self, kernel, bpf):
        bpf.load_program(alu_prog(), ProgType.KPROBE, "a")
        bpf.load_program(alu_prog(), ProgType.KPROBE, "b")
        loads = kernel.telemetry.registry.get("repro_loads_total")
        assert loads.labels("ebpf", "miss").value == 1
        assert loads.labels("ebpf", "hit").value == 1
        row_a = kernel.telemetry.prog("ebpf", "a")
        row_b = kernel.telemetry.prog("ebpf", "b")
        assert (row_a.loads, row_a.cache_hits) == (1, 0)
        assert (row_b.loads, row_b.cache_hits) == (1, 1)

    def test_stage_timings_recorded_on_miss(self, kernel, bpf):
        bpf.load_program(alu_prog(), ProgType.KPROBE, "a")
        row = kernel.telemetry.prog("ebpf", "a")
        assert row.verify_ns > 0
        assert row.jit_ns > 0
        assert row.predecode_ns > 0
        assert row.verifier_insns_processed > 0
        assert row.verifier_states_explored > 0

    def test_verifier_work_not_double_counted_on_hit(self, kernel,
                                                     bpf):
        bpf.load_program(alu_prog(), ProgType.KPROBE, "a")
        work = kernel.telemetry.registry.get(
            "repro_verifier_work_total")
        after_miss = work.labels("insns_processed").value
        bpf.load_program(alu_prog(), ProgType.KPROBE, "b")
        assert work.labels("insns_processed").value == after_miss
        assert kernel.telemetry.prog(
            "ebpf", "b").verifier_insns_processed == 0

    def test_load_trace_events(self, kernel, bpf):
        bpf.load_program(alu_prog(), ProgType.KPROBE, "a")
        events = kernel.telemetry.trace.events(kind="load")
        assert len(events) == 1
        assert events[0].data["cache_hit"] is False


class TestSafelangStats:
    def test_run_stats_when_enabled(self, kernel, fw):
        kernel.telemetry.enable()
        loaded = fw.install(
            "fn prog(ctx: XdpCtx) -> i64 { return 40 + 2; }", "s")
        before = kernel.clock.now_ns
        result = fw.run_on_packet(loaded, b"x")
        elapsed = kernel.clock.now_ns - before
        assert result.value == 42
        row = kernel.telemetry.prog("safelang", "s")
        assert row.run_cnt == 1
        assert row.run_time_ns == elapsed
        assert row.insns == result.steps

    def test_load_recorded_always(self, kernel, fw):
        fw.install("fn prog(ctx: XdpCtx) -> i64 { return 0; }", "s")
        row = kernel.telemetry.prog("safelang", "s")
        assert row.loads == 1
        assert row.verify_ns > 0    # signature check + fixup time

    def test_watchdog_fire_counted(self, kernel, fw):
        loaded = fw.install(SPIN, "spin", watchdog_budget_ns=10_000)
        result = fw.run_on_packet(loaded, b"x")
        assert result.terminated
        row = kernel.telemetry.prog("safelang", "spin")
        assert row.watchdog_fires == 1
        kills = kernel.telemetry.trace.events(kind="watchdog_kill")
        assert len(kills) == 1
        assert kills[0].data["budget_ns"] == 10_000

    def test_watchdog_fire_counted_even_with_stats_off(self, kernel,
                                                       fw):
        assert not kernel.telemetry.stats_enabled
        loaded = fw.install(SPIN, "spin", watchdog_budget_ns=10_000)
        fw.run_on_packet(loaded, b"x")
        assert kernel.telemetry.prog(
            "safelang", "spin").watchdog_fires == 1

    def test_panic_counted(self, kernel, fw):
        loaded = fw.install(
            "fn prog(ctx: XdpCtx) -> i64 { let z: u64 = 0; "
            "return (5 / z) as i64; }", "boom")
        result = fw.run_on_packet(loaded, b"x")
        assert result.panicked
        assert kernel.telemetry.prog("safelang", "boom").panics == 1

    def test_budget_passes_through_without_vm_mutation(self, kernel,
                                                       fw):
        """The per-extension budget travels with the call; the shared
        VM default is never touched (the re-entrancy fix)."""
        default = fw.vm.watchdog_budget_ns
        tight = fw.install(SPIN, "tight", watchdog_budget_ns=10_000)
        seen = []
        kernel.telemetry.trace.add_sink(
            "probe",
            lambda e: seen.append(fw.vm.watchdog_budget_ns)
            if e.kind == "watchdog_kill" else None)
        fw.run_on_packet(tight, b"x")
        # even at the instant the watchdog fired, the VM default was
        # untouched — nested runs would each keep their own budget
        assert seen == [default]
        assert fw.vm.watchdog_budget_ns == default


class TestFailureAccounting:
    def test_oops_attributed_to_program(self, kernel, bpf):
        bpf.load_program(alu_prog(), ProgType.KPROBE, "crasher")
        kernel.log.record_oops(
            kernel.clock.now_ns, "wild write",
            category="page_fault", source="bpf:crasher")
        row = kernel.telemetry.prog("ebpf", "crasher")
        assert row.oopses == 1
        fam = kernel.telemetry.registry.get("repro_oops_total")
        assert fam.labels("page_fault", "bpf:crasher").value == 1
        events = kernel.telemetry.trace.events(kind="oops")
        assert len(events) == 1

    def test_oops_without_matching_program(self, kernel):
        kernel.log.record_oops(0, "bad", category="page_fault",
                               source="module:rogue")
        fam = kernel.telemetry.registry.get("repro_oops_total")
        assert fam.labels("page_fault", "module:rogue").value == 1

    def test_pool_exhaustion_counted(self, kernel):
        from repro.core.runtime.mempool import MemoryPool
        pool = MemoryPool(kernel, kernel.cpus[0], size=16)
        assert pool.alloc(64) is None
        fam = kernel.telemetry.registry.get(
            "repro_pool_alloc_failures_total")
        assert fam.labels("0").value == 1
        pool.destroy()


class TestExportRoundTrip:
    def test_prometheus_round_trip(self, kernel, bpf):
        kernel.telemetry.enable()
        prog = bpf.load_program(alu_prog(), ProgType.KPROBE, "hot")
        bpf.run_on_current_task(prog)
        bpf.run_on_current_task(prog)
        parsed = parse_prometheus(to_prometheus(kernel.telemetry))
        assert parsed[
            'repro_prog_runs_total{framework="ebpf",prog="hot"}'] == 2
        assert parsed[
            'repro_loads_total{framework="ebpf",cache="miss"}'] == 1
        # histogram invariants: +Inf bucket == count
        inf = parsed['repro_run_time_ns_bucket{framework="ebpf",'
                     'le="+Inf"}']
        assert inf == parsed['repro_run_time_ns_count{framework='
                             '"ebpf"}'] == 2

    def test_json_round_trip(self, kernel, bpf, fw):
        kernel.telemetry.enable()
        prog = bpf.load_program(alu_prog(), ProgType.KPROBE, "p")
        bpf.run_on_current_task(prog)
        loaded = fw.install(
            "fn prog(ctx: XdpCtx) -> i64 { return 1; }", "s")
        fw.run_on_packet(loaded, b"x")
        doc = parse_json(to_json(kernel.telemetry))
        assert doc["stats_enabled"] is True
        frameworks = {row["framework"]: row["name"]
                      for row in doc["progs"]}
        assert frameworks == {"ebpf": "p", "safelang": "s"}
        names = [f["name"] for f in doc["metrics"]]
        assert names == sorted(names)
        assert doc["trace"]["emitted"] > 0
