"""Telemetry subsystem tests."""
