"""Drop-counter exactness when delivery rings saturate under batched
multi-producer pressure.

The contract under test: every record of every batch is *attempted*,
so ``accepted + refused == attempted`` holds per call, the ring's
``drops`` / ``dropped_bytes`` counters stay exact across interleaved
producers, telemetry agrees with the map, and the data plane's
``pass == delivered + delivery_drops`` reconciliation survives rings
filling mid-batch — with and without armed ``map.alloc`` faults.
"""

import pytest

from repro.ebpf import BpfSubsystem, ProgType
from repro.faultinject.plane import FaultAction, NthHit
from repro.kernel import Kernel
from repro.net import DataPlane, LoadGen, SimulatedNic
from repro.net import programs as xdp_programs


@pytest.fixture
def kernel(leakcheck):
    k = Kernel()
    leakcheck(k)
    return k


class TestOutputBatchExactness:
    def test_every_record_attempted_past_first_enospc(self, kernel):
        bpf = BpfSubsystem(kernel)
        ring = bpf.create_map("ringbuf", max_entries=64)
        # 10 records of 16 bytes against a 64-byte ring: 4 fit
        batch = [bytes([i]) * 16 for i in range(10)]
        accepted, refused = ring.output_batch(batch)
        assert (accepted, refused) == (4, 6)
        assert ring.drops == 6
        assert ring.dropped_bytes == 6 * 16
        fam = kernel.telemetry.registry.get("repro_ringbuf_drops_total")
        assert fam.labels(str(ring.map_fd)).value == 6
        fam = kernel.telemetry.registry.get(
            "repro_ringbuf_dropped_bytes_total")
        assert fam.labels(str(ring.map_fd)).value == 6 * 16

    def test_interleaved_producers_reconcile(self, kernel):
        """Two producers alternating batches into one ring: the ring's
        totals must equal the sum of the per-call results exactly."""
        bpf = BpfSubsystem(kernel)
        ring = bpf.create_map("ringbuf", max_entries=100)
        attempted = accepted_total = refused_total = 0
        for round_no in range(8):
            for producer in (0, 1):
                batch = [bytes([producer]) * 9] * 5
                accepted, refused = ring.output_batch(batch)
                attempted += len(batch)
                accepted_total += accepted
                refused_total += refused
        assert accepted_total + refused_total == attempted
        assert ring.drops == refused_total
        assert ring.dropped_bytes == refused_total * 9
        assert len(ring.drain()) == accepted_total

    def test_exact_under_midbatch_alloc_fault(self, kernel):
        """An armed map.alloc fault firing mid-batch refuses exactly
        one record; later records still land."""
        bpf = BpfSubsystem(kernel)
        ring = bpf.create_map("ringbuf", max_entries=1 << 12)
        kernel.faults.enable(5)
        kernel.faults.arm("map.alloc", NthHit(3), FaultAction.err(28))
        accepted, refused = ring.output_batch([b"x" * 8] * 6)
        assert (accepted, refused) == (5, 1)
        assert ring.drops == 1
        assert ring.dropped_bytes == 8

    def test_drain_resets_capacity_accounting(self, kernel):
        bpf = BpfSubsystem(kernel)
        ring = bpf.create_map("ringbuf", max_entries=32)
        assert ring.output_batch([b"a" * 16, b"b" * 16]) == (2, 0)
        assert ring.output_batch([b"c" * 16]) == (0, 1)
        ring.drain()
        assert ring.output_batch([b"d" * 16]) == (1, 0)
        assert ring.drops == 1


class TestDataPlaneSaturation:
    def test_pass_reconciles_when_rings_saturate(self, kernel):
        """Heavy-hitter traffic into deliberately tiny delivery rings:
        pass verdicts == drained records + delivery_drops, exactly."""
        bpf = BpfSubsystem(kernel, engine="compiled")
        plane = DataPlane(kernel, bpf, ringbuf_bytes=256)
        nic = plane.create_nic(1, "sat0", queue_depth=512)
        prog = bpf.load_program(xdp_programs.pass_all_prog(),
                                ProgType.XDP, "passer")
        plane.attach(prog, nic)
        gen = LoadGen(kernel, "heavy_hitter", seed=6)
        delivered = 0
        for i, payload in enumerate(gen.packets(1200)):
            nic.receive(payload)
            if i % 128 == 127:
                plane.process_all()
                delivered += len(plane.drain())
        plane.process_all()
        delivered += len(plane.drain())
        assert plane.delivery_drops > 0
        assert plane.verdicts["pass"] == \
            delivered + plane.delivery_drops
        plane.shutdown()

    def test_reconciliation_holds_with_alloc_faults(self, kernel):
        """Same invariant with map.alloc faults injected into the
        delivery rings mid-run."""
        from repro.faultinject.plane import Probability
        bpf = BpfSubsystem(kernel, engine="compiled")
        plane = DataPlane(kernel, bpf, ringbuf_bytes=1 << 12)
        nic = plane.create_nic(1, "sat1", queue_depth=512)
        prog = bpf.load_program(xdp_programs.pass_all_prog(),
                                ProgType.XDP, "passer")
        plane.attach(prog, nic)
        kernel.faults.enable(9)
        kernel.faults.arm("map.alloc", Probability(0.3),
                          FaultAction.err(28))
        gen = LoadGen(kernel, "uniform", seed=6)
        stats = gen.drive(nic, 600, plane=plane, poll_every=64)
        plane.process_all()
        delivered = len(plane.drain())
        assert stats["processed"] == 600
        assert plane.delivery_drops > 0
        assert plane.verdicts["pass"] == \
            delivered + plane.delivery_drops
        ring_drops = sum(r.drops for r in plane.ringbufs)
        assert ring_drops == plane.delivery_drops
        plane.shutdown()
