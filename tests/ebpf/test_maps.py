"""Map implementation tests."""

import struct

import pytest

from repro.ebpf.bugs import BugConfig
from repro.ebpf.loader import BpfSubsystem
from repro.errors import BpfRuntimeError
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def bpf(kernel):
    return BpfSubsystem(kernel)


def key(i: int) -> bytes:
    return struct.pack("<I", i)


def val(v: int) -> bytes:
    return struct.pack("<Q", v)


class TestArrayMap:
    def test_preallocated_lookup(self, bpf):
        amap = bpf.create_map("array", max_entries=4)
        addr = amap.lookup_addr(key(2))
        assert addr == amap.storage.base + 2 * amap.value_size

    def test_out_of_range_lookup_none(self, bpf):
        amap = bpf.create_map("array", max_entries=4)
        assert amap.lookup_addr(key(4)) is None

    def test_update_and_read(self, bpf):
        amap = bpf.create_map("array", max_entries=4)
        assert amap.update(key(1), val(99)) == 0
        assert amap.read_value(1) == val(99)

    def test_update_out_of_range(self, bpf):
        amap = bpf.create_map("array", max_entries=4)
        assert amap.update(key(9), val(1)) == -7  # -E2BIG

    def test_update_wrong_value_size(self, bpf):
        amap = bpf.create_map("array", max_entries=4)
        assert amap.update(key(0), b"xx") == -22  # -EINVAL

    def test_delete_not_supported(self, bpf):
        amap = bpf.create_map("array", max_entries=4)
        assert amap.delete(key(0)) == -22

    def test_wrong_key_size_errno(self, bpf):
        # runtime map ops never raise: a malformed key is a miss on
        # lookup and -EINVAL on update/delete, like every other
        # runtime failure
        amap = bpf.create_map("array", max_entries=4)
        assert amap.lookup_addr(b"\x00" * 8) is None
        assert amap.update(b"\x00" * 8, val(1)) == -22
        assert amap.delete(b"\x00" * 8) == -22

    def test_requires_u32_keys(self, bpf):
        with pytest.raises(BpfRuntimeError):
            bpf.create_map("array", key_size=8)

    def test_buggy_offset_wraps_32bit(self, kernel):
        bpf = BpfSubsystem(kernel, bugs=BugConfig())
        amap = bpf.create_map("array", value_size=64, max_entries=4)
        assert amap.element_offset(1 << 26) == 0  # 2**32 wraps

    def test_patched_offset_full_precision(self, kernel):
        bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched())
        amap = bpf.create_map("array", value_size=64, max_entries=4)
        assert amap.element_offset(1 << 26) == (1 << 26) * 64


class TestHashMap:
    def test_miss_returns_none(self, bpf):
        hmap = bpf.create_map("hash", max_entries=4)
        assert hmap.lookup_addr(key(1)) is None

    def test_insert_lookup(self, bpf):
        hmap = bpf.create_map("hash", max_entries=4)
        assert hmap.update(key(1), val(7)) == 0
        assert hmap.read_value(key(1)) == val(7)

    def test_overwrite(self, bpf):
        hmap = bpf.create_map("hash", max_entries=4)
        hmap.update(key(1), val(7))
        hmap.update(key(1), val(8))
        assert hmap.read_value(key(1)) == val(8)
        assert len(hmap) == 1

    def test_capacity_enforced(self, bpf):
        hmap = bpf.create_map("hash", max_entries=2)
        assert hmap.update(key(1), val(1)) == 0
        assert hmap.update(key(2), val(2)) == 0
        assert hmap.update(key(3), val(3)) == -7

    def test_delete(self, bpf):
        hmap = bpf.create_map("hash", max_entries=4)
        hmap.update(key(1), val(1))
        assert hmap.delete(key(1)) == 0
        assert hmap.lookup_addr(key(1)) is None

    def test_delete_missing(self, bpf):
        hmap = bpf.create_map("hash", max_entries=4)
        assert hmap.delete(key(1)) == -2  # -ENOENT

    def test_value_backed_by_kernel_memory(self, bpf, kernel):
        hmap = bpf.create_map("hash", max_entries=4)
        hmap.update(key(1), val(0xAB))
        addr = hmap.lookup_addr(key(1))
        assert kernel.mem.read_u64(addr) == 0xAB


class TestRingBuf:
    def test_output_and_drain(self, bpf):
        rb = bpf.create_map("ringbuf", max_entries=4096)
        assert rb.output(b"event1") == 0
        assert rb.output(b"event2") == 0
        assert rb.drain() == [b"event1", b"event2"]
        assert rb.drain() == []

    def test_capacity(self, bpf):
        rb = bpf.create_map("ringbuf", max_entries=8)
        assert rb.output(b"12345678") == 0
        assert rb.output(b"x") == -28  # -ENOSPC

    def test_reserve_submit(self, bpf, kernel):
        rb = bpf.create_map("ringbuf", max_entries=4096)
        addr = rb.reserve(8)
        assert addr is not None
        kernel.mem.write_u64(addr, 0x42)
        assert rb.submit(addr) == 0
        assert rb.drain() == [val(0x42)]

    def test_submit_unreserved(self, bpf):
        rb = bpf.create_map("ringbuf", max_entries=4096)
        assert rb.submit(0x1234) == -22

    def test_reserve_beyond_capacity(self, bpf):
        rb = bpf.create_map("ringbuf", max_entries=8)
        assert rb.reserve(16) is None


class TestTaskStorage:
    def test_storage_created_on_demand(self, bpf, kernel):
        ts = bpf.create_map("task_storage", value_size=8)
        task_addr = kernel.current_task.address
        assert ts.storage_for(task_addr, create=False) is None
        addr = ts.storage_for(task_addr, create=True)
        assert addr is not None

    def test_storage_stable_per_task(self, bpf, kernel):
        ts = bpf.create_map("task_storage", value_size=8)
        addr1 = ts.storage_for(kernel.current_task.address, True)
        addr2 = ts.storage_for(kernel.current_task.address, True)
        assert addr1 == addr2

    def test_separate_tasks_separate_storage(self, bpf, kernel):
        ts = bpf.create_map("task_storage", value_size=8)
        other = kernel.create_task()
        a = ts.storage_for(kernel.current_task.address, True)
        b = ts.storage_for(other.address, True)
        assert a != b

    def test_delete(self, bpf, kernel):
        ts = bpf.create_map("task_storage", value_size=8)
        addr = kernel.current_task.address
        ts.storage_for(addr, True)
        assert ts.delete_for(addr) == 0
        assert ts.delete_for(addr) == -2


class TestProgArray:
    def test_set_get(self, bpf):
        pa = bpf.create_map("prog_array", max_entries=4)
        sentinel = object()
        pa.set_prog(1, sentinel)
        assert pa.get_prog(1) is sentinel
        assert pa.get_prog(0) is None

    def test_out_of_range(self, bpf):
        pa = bpf.create_map("prog_array", max_entries=4)
        with pytest.raises(BpfRuntimeError):
            pa.set_prog(4, object())


class TestSubsystemMapApi:
    def test_fds_unique_and_resolvable(self, bpf):
        a = bpf.create_map("array")
        b = bpf.create_map("hash")
        assert a.map_fd != b.map_fd
        assert bpf.map_by_fd(a.map_fd) is a
        assert bpf.map_by_fd(999) is None

    def test_unknown_type_rejected(self, bpf):
        with pytest.raises(BpfRuntimeError):
            bpf.create_map("bloom")

    def test_spin_lock_embedding(self, bpf):
        m = bpf.create_map("array", with_spin_lock=True)
        assert m.spin_lock is not None

    def test_invalid_geometry(self, bpf):
        with pytest.raises(BpfRuntimeError):
            bpf.create_map("hash", value_size=0)


class TestPercpuArrayMap:
    def test_per_cpu_isolation(self, bpf, kernel):
        pc = bpf.create_map("percpu_array", max_entries=4)
        kernel.set_current_cpu(0)
        pc.update(key(1), val(10))
        kernel.set_current_cpu(1)
        pc.update(key(1), val(20))
        values = [int.from_bytes(raw, "little")
                  for raw in pc.read_values(1)]
        assert values[0] == 10 and values[1] == 20
        assert values[2] == values[3] == 0

    def test_lookup_follows_current_cpu(self, bpf, kernel):
        pc = bpf.create_map("percpu_array", max_entries=4)
        kernel.set_current_cpu(2)
        addr2 = pc.lookup_addr(key(0))
        kernel.set_current_cpu(3)
        addr3 = pc.lookup_addr(key(0))
        assert addr2 != addr3

    def test_sum_across_cpus(self, bpf, kernel):
        pc = bpf.create_map("percpu_array", max_entries=2)
        for cpu_id in range(4):
            kernel.set_current_cpu(cpu_id)
            pc.update(key(0), val(cpu_id + 1))
        assert pc.sum_u64(0) == 1 + 2 + 3 + 4

    def test_out_of_range(self, bpf):
        pc = bpf.create_map("percpu_array", max_entries=2)
        assert pc.lookup_addr(key(2)) is None
        assert pc.update(key(5), val(1)) == -7

    def test_bytecode_counter_per_cpu(self, bpf, kernel):
        """The classic per-CPU hot counter: no lock, no races."""
        import struct as _struct
        from repro.ebpf.asm import Asm
        from repro.ebpf.helpers import ids as _ids
        from repro.ebpf.isa import R0, R1, R2, R10
        from repro.ebpf.progs import ProgType
        pc = bpf.create_map("percpu_array", max_entries=1)
        program = (Asm()
                   .st_imm(4, R10, -4, 0)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .ld_map_fd(R1, pc.map_fd)
                   .call(_ids.BPF_FUNC_map_lookup_elem)
                   .jmp_imm("jne", R0, 0, "hit")
                   .mov64_imm(R0, 0).exit_()
                   .label("hit")
                   .ldx(8, R1, R0, 0)
                   .alu64_imm("add", R1, 1)
                   .stx(8, R0, 0, R1)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        prog = bpf.load_program(program, ProgType.KPROBE, "pcnt")
        for cpu_id, runs in enumerate((3, 1, 0, 2)):
            kernel.set_current_cpu(cpu_id)
            for __ in range(runs):
                bpf.run_on_current_task(prog)
        assert pc.sum_u64(0) == 6
        per_cpu = [int.from_bytes(raw, "little")
                   for raw in pc.read_values(0)]
        assert per_cpu == [3, 1, 0, 2]
