"""Bytecode VM tests: concrete execution semantics."""

import struct

import pytest

from repro.ebpf.asm import Asm
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R4, R6, R10
from repro.ebpf.progs import ProgType
from repro.errors import BpfRuntimeError
from repro.kernel import Kernel


def run_alu(bpf, build):
    """Load + run a program returning r0."""
    asm = Asm()
    build(asm)
    asm.exit_()
    prog = bpf.load_program(asm.program(), ProgType.KPROBE, "t")
    return bpf.run_on_current_task(prog)


class TestAluSemantics:
    def test_add_wraps_u64(self, bpf):
        def build(asm):
            asm.ld_imm64(R0, (1 << 64) - 1).alu64_imm("add", R0, 2)
        assert run_alu(bpf, build) == 1

    def test_sub_negative_wraps(self, bpf):
        def build(asm):
            asm.mov64_imm(R0, 3).alu64_imm("sub", R0, 5)
        assert run_alu(bpf, build) == (1 << 64) - 2

    def test_mul(self, bpf):
        def build(asm):
            asm.mov64_imm(R0, 7).alu64_imm("mul", R0, 6)
        assert run_alu(bpf, build) == 42

    def test_div_unsigned(self, bpf):
        def build(asm):
            asm.mov64_imm(R0, -10).alu64_imm("div", R0, 2)
        # -10 as u64 / 2
        assert run_alu(bpf, build) == ((1 << 64) - 10) // 2

    def test_div_by_zero_reg_yields_zero(self, bpf):
        def build(asm):
            (asm.mov64_imm(R0, 100)
                .mov64_imm(R2, 0)
                .alu64_reg("div", R0, R2))
        assert run_alu(bpf, build) == 0

    def test_mod_by_zero_reg_keeps_dst(self, bpf):
        def build(asm):
            (asm.mov64_imm(R0, 100)
                .mov64_imm(R2, 0)
                .alu64_reg("mod", R0, R2))
        assert run_alu(bpf, build) == 100

    def test_alu32_truncates(self, bpf):
        def build(asm):
            (asm.ld_imm64(R0, 0x1_0000_0005)
                .alu32_imm("add", R0, 0))
        assert run_alu(bpf, build) == 5

    def test_arsh_sign_extends(self, bpf):
        def build(asm):
            asm.mov64_imm(R0, -8).alu64_imm("arsh", R0, 1)
        assert run_alu(bpf, build) == (1 << 64) - 4

    def test_neg(self, bpf):
        def build(asm):
            asm.mov64_imm(R0, 5).neg64(R0)
        assert run_alu(bpf, build) == (1 << 64) - 5

    def test_bitops(self, bpf):
        def build(asm):
            (asm.mov64_imm(R0, 0b1100)
                .alu64_imm("and", R0, 0b1010)
                .alu64_imm("or", R0, 0b0001)
                .alu64_imm("xor", R0, 0b1111))
        assert run_alu(bpf, build) == 0b0110

    def test_imm_sign_extended_to_64(self, bpf):
        def build(asm):
            asm.mov64_imm(R0, -1)
        assert run_alu(bpf, build) == (1 << 64) - 1

    def test_ld_imm64_full_width(self, bpf):
        def build(asm):
            asm.ld_imm64(R0, 0xDEADBEEFCAFEF00D)
        assert run_alu(bpf, build) == 0xDEADBEEFCAFEF00D


class TestJumps:
    def test_unsigned_vs_signed_comparison(self, bpf):
        # -1 as u64 is huge: jgt takes it; jsgt must not
        def build(asm):
            (asm.mov64_imm(R2, -1)
                .mov64_imm(R0, 0)
                .jmp_imm("jgt", R2, 5, "ugt")
                .ja("end")
                .label("ugt")
                .alu64_imm("add", R0, 1)
                .jmp_imm("jsgt", R2, 5, "sgt")
                .ja("end")
                .label("sgt")
                .alu64_imm("add", R0, 2)
                .label("end"))
        assert run_alu(bpf, build) == 1

    def test_jset(self, bpf):
        def build(asm):
            (asm.mov64_imm(R2, 0b100)
                .mov64_imm(R0, 0)
                .jmp_imm("jset", R2, 0b110, "hit")
                .ja("end")
                .label("hit")
                .mov64_imm(R0, 1)
                .label("end"))
        assert run_alu(bpf, build) == 1


class TestMemoryAndStack:
    def test_stack_roundtrip(self, bpf):
        def build(asm):
            (asm.st_imm(8, R10, -8, 0x11223344)
                .ldx(8, R0, R10, -8))
        assert run_alu(bpf, build) == 0x11223344

    def test_byte_granularity(self, bpf):
        def build(asm):
            (asm.st_imm(8, R10, -8, 0)
                .st_imm(1, R10, -8, 0xAB)
                .st_imm(1, R10, -7, 0xCD)
                .ldx(2, R0, R10, -8))
        assert run_alu(bpf, build) == 0xCDAB

    def test_stack_freed_after_run(self, bpf, kernel):
        prog = bpf.load_program(
            Asm().mov64_imm(R0, 0).exit_().program(),
            ProgType.KPROBE, "t")
        ctx = kernel.mem.kmalloc(64, type_name="pt_regs")
        bpf.vm.run(prog, ctx.base)
        before = kernel.mem.live_bytes
        bpf.vm.run(prog, ctx.base)   # per-run stack must be freed
        assert kernel.mem.live_bytes == before

    def test_ctx_reads_real_object(self, bpf, kernel):
        program = (Asm()
                   .ldx(4, R0, R1, 0)    # skb->len
                   .mov64_imm(R0, 2)
                   .exit_()
                   .program())
        prog = bpf.load_program(program, ProgType.XDP, "t")
        assert bpf.run_on_packet(prog, b"hello") == 2

    def test_packet_bytes_readable(self, bpf):
        prog2 = bpf.load_program(
            (Asm()
             .ldx(8, R2, R1, 8)
             .ldx(8, R3, R1, 16)
             .mov64_reg(R6, R2).alu64_imm("add", R6, 1)
             .jmp_reg("jgt", R6, R3, "out")
             .ldx(1, R0, R2, 0)
             .alu64_imm("and", R0, 3)
             .exit_()
             .label("out")
             .mov64_imm(R0, 0)
             .exit_()
             .program()), ProgType.XDP, "t2")
        assert bpf.run_on_packet(prog2, b"Q") == 0x51 & 3


class TestCallsAndTailCalls:
    def test_subprog_returns_value(self, bpf):
        program = (Asm()
                   .mov64_imm(R1, 40)
                   .mov64_imm(R2, 2)
                   .call_subprog("add")
                   .exit_()
                   .label("add")
                   .mov64_reg(R0, R1)
                   .alu64_reg("add", R0, R2)
                   .exit_()
                   .program())
        prog = bpf.load_program(program, ProgType.KPROBE, "t")
        assert bpf.run_on_current_task(prog) == 42

    def test_tail_call_switches_program(self, bpf):
        pa = bpf.create_map("prog_array", max_entries=4)
        target = bpf.load_program(
            Asm().mov64_imm(R0, 777).exit_().program(),
            ProgType.KPROBE, "target")
        pa.set_prog(0, target)
        caller = bpf.load_program(
            (Asm()
             .mov64_reg(R6, R1)
             .mov64_reg(R1, R6)
             .ld_map_fd(R2, pa.map_fd)
             .mov64_imm(R3, 0)
             .call(ids.BPF_FUNC_tail_call)
             .mov64_imm(R0, 1)     # only on tail-call failure
             .exit_()
             .program()), ProgType.KPROBE, "caller")
        assert bpf.run_on_current_task(caller) == 777

    def test_tail_call_missing_slot_falls_through(self, bpf):
        pa = bpf.create_map("prog_array", max_entries=4)
        caller = bpf.load_program(
            (Asm()
             .mov64_reg(R6, R1)
             .mov64_reg(R1, R6)
             .ld_map_fd(R2, pa.map_fd)
             .mov64_imm(R3, 2)
             .call(ids.BPF_FUNC_tail_call)
             .mov64_imm(R0, 1)
             .exit_()
             .program()), ProgType.KPROBE, "caller")
        assert bpf.run_on_current_task(caller) == 1

    def test_tail_call_chain_limited(self, bpf):
        pa = bpf.create_map("prog_array", max_entries=4)
        looper = bpf.load_program(
            (Asm()
             .mov64_reg(R6, R1)
             .mov64_reg(R1, R6)
             .ld_map_fd(R2, pa.map_fd)
             .mov64_imm(R3, 0)
             .call(ids.BPF_FUNC_tail_call)
             .mov64_imm(R0, 0)
             .exit_()
             .program()), ProgType.KPROBE, "looper")
        pa.set_prog(0, looper)   # calls itself forever
        with pytest.raises(BpfRuntimeError):
            bpf.run_on_current_task(looper)


class TestExecutionEnvironment:
    def test_runs_under_rcu_lock(self, bpf, kernel):
        observed = []
        program = Asm().mov64_imm(R0, 0).exit_().program()
        prog = bpf.load_program(program, ProgType.KPROBE, "t")
        original = kernel.rcu.read_lock

        def spy(holder="kernel"):
            observed.append(holder)
            original(holder)
        kernel.rcu.read_lock = spy
        bpf.run_on_current_task(prog)
        assert any("bpf:" in h for h in observed)

    def test_rcu_released_after_run(self, bpf, kernel):
        prog = bpf.load_program(
            Asm().mov64_imm(R0, 0).exit_().program(),
            ProgType.KPROBE, "t")
        bpf.run_on_current_task(prog)
        assert not kernel.rcu.read_lock_held

    def test_rcu_released_even_on_crash(self, bpf, kernel):
        from repro.ebpf.loader import LoadedProgram
        from repro.errors import MemoryFault
        # hand-build an unverified program (modeling a verifier bug)
        program = (Asm()
                   .ld_imm64(R1, 0xFFFF_8880_DEAD_0000)
                   .ldx(8, R0, R1, 0)
                   .exit_()
                   .program())
        prog = LoadedProgram(prog_id=99, name="rogue",
                             prog_type=ProgType.KPROBE,
                             insns=program, verifier_stats=None)
        with pytest.raises(MemoryFault):
            bpf.vm.run(prog, kernel.current_task.address)
        assert not kernel.rcu.read_lock_held

    def test_instructions_charge_virtual_time(self, bpf, kernel):
        prog = bpf.load_program(
            Asm().mov64_imm(R0, 0).exit_().program(),
            ProgType.KPROBE, "t")
        before = kernel.clock.now_ns
        bpf.run_on_current_task(prog)
        assert kernel.clock.now_ns > before

    def test_prandom_deterministic(self, bpf):
        program = (Asm()
                   .call(ids.BPF_FUNC_get_prandom_u32)
                   .exit_()
                   .program())
        prog = bpf.load_program(program, ProgType.KPROBE, "t")
        first = bpf.run_on_current_task(prog)
        second = bpf.run_on_current_task(prog)
        assert first != second  # state advances

    def test_smp_processor_id(self, bpf):
        program = (Asm()
                   .call(ids.BPF_FUNC_get_smp_processor_id)
                   .exit_()
                   .program())
        prog = bpf.load_program(program, ProgType.KPROBE, "t")
        assert bpf.run_on_current_task(prog) == 0


class TestLoopFastForward:
    def loop_prog(self, bpf, nr):
        return bpf.load_program(
            (Asm()
             .mov64_imm(R1, nr)
             .ld_func(R2, "cb")
             .mov64_imm(R3, 0)
             .mov64_imm(R4, 0)
             .call(ids.BPF_FUNC_loop)
             .exit_()
             .label("cb")
             .mov64_imm(R0, 0)
             .exit_()
             .program()), ProgType.KPROBE, f"loop{nr}")

    def test_small_loop_fully_concrete(self, bpf):
        prog = self.loop_prog(bpf, 10)
        assert bpf.run_on_current_task(prog) == 10

    def test_large_loop_fast_forwarded(self, bpf, kernel):
        bpf.vm.loop_sample_limit = 16
        prog = self.loop_prog(bpf, 1_000_000)
        before = kernel.clock.now_ns
        assert bpf.run_on_current_task(prog) == 1_000_000
        elapsed = kernel.clock.now_ns - before
        # virtual time reflects all million iterations
        assert elapsed > 1_000_000

    def test_fast_forward_linear_in_nr(self, bpf, kernel):
        bpf.vm.loop_sample_limit = 16
        times = []
        for nr in (10_000, 100_000):
            start = kernel.clock.now_ns
            bpf.run_on_current_task(self.loop_prog(bpf, nr))
            times.append(kernel.clock.now_ns - start)
        ratio = times[1] / times[0]
        assert 8 <= ratio <= 12

    def test_early_exit_callback(self, bpf):
        prog = bpf.load_program(
            (Asm()
             .mov64_imm(R1, 1_000_000)
             .ld_func(R2, "cb")
             .mov64_imm(R3, 0)
             .mov64_imm(R4, 0)
             .call(ids.BPF_FUNC_loop)
             .exit_()
             .label("cb")
             .mov64_imm(R0, 1)    # stop immediately
             .exit_()
             .program()), ProgType.KPROBE, "stop")
        assert bpf.run_on_current_task(prog) == 1

    def test_early_exit_on_any_nonzero_return(self, bpf):
        """Kernel ``bpf_loop`` stops on *any* nonzero callback return
        — regression for the bug where only ``ret == 1`` stopped the
        loop and a callback returning 2 ran all million iterations."""
        prog = bpf.load_program(
            (Asm()
             .mov64_imm(R1, 1_000_000)
             .ld_func(R2, "cb")
             .mov64_imm(R3, 0)
             .mov64_imm(R4, 0)
             .call(ids.BPF_FUNC_loop)
             .exit_()
             .label("cb")
             .mov64_imm(R0, 2)    # nonzero, but not 1
             .exit_()
             .program()), ProgType.KPROBE, "stop2")
        before = bpf.vm.insns_executed
        assert bpf.run_on_current_task(prog) == 1
        # one concrete callback iteration, not a million
        assert bpf.vm.insns_executed - before < 100
