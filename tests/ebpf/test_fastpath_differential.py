"""Differential tests: every execution engine vs the reference path.

The predecoded fast path and the compiled tier must be
observationally identical to the decode-per-step interpreter — same
return values, same ``insns_executed``, same virtual-clock totals,
same oops behaviour.  Two layers of evidence:

* the full eBPF attack corpus, run through every engine, must land on
  the same :class:`Outcome` and the same kernel taint/oops state;
* a battery of direct programs (ALU mixes, stack traffic, jumps,
  subprogs, ``bpf_loop``, atomics, tail calls, and an unverified
  wild-pointer crasher) must produce bit-identical results and
  identical accounting on every engine.
"""

import pytest

from repro.ebpf import interpreter as interp_mod
from repro.ebpf import isa
from repro.ebpf.asm import Asm
from repro.ebpf.helpers import ids
from repro.ebpf.interpreter import ENGINES
from repro.ebpf.isa import R0, R1, R2, R3, R4, R6, R10
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.attacks.corpus import build_corpus, run_case
from repro.kernel import Kernel

EBPF_CASES = [c for c in build_corpus() if c.framework == "ebpf"]


def _observe(case, engine):
    """Run one corpus case on a fresh kernel with the given engine."""
    old = interp_mod.DEFAULT_ENGINE
    interp_mod.DEFAULT_ENGINE = engine
    try:
        kernel = Kernel()
        outcome = run_case(case, kernel=kernel)
        oopses = [(o.category, o.source) for o in kernel.log.oopses]
        return outcome, kernel.log.tainted, oopses
    finally:
        interp_mod.DEFAULT_ENGINE = old


class TestCorpusDifferential:
    @pytest.mark.parametrize(
        "case", EBPF_CASES, ids=[c.case_id for c in EBPF_CASES])
    def test_engines_agree_on_attack_corpus(self, case):
        seen = {engine: _observe(case, engine) for engine in ENGINES}
        baseline = seen["interp"]
        for engine, obs in seen.items():
            assert obs == baseline, (
                f"{case.case_id}: {engine} diverged "
                f"(interp={baseline}, {engine}={obs})")


def _run_both(build, prog_type=ProgType.KPROBE):
    """Load and run the same program on every engine; assert identical
    return value, instruction count and virtual-clock total, then
    return the (shared) observation."""
    seen = {}
    for engine in ENGINES:
        kernel = Kernel()
        bpf = BpfSubsystem(kernel, engine=engine)
        prog = bpf.load_program(build(bpf), prog_type, "diff")
        ret = bpf.run_on_current_task(prog)
        seen[engine] = (ret, bpf.vm.insns_executed,
                        kernel.clock.now_ns)
    assert len(set(seen.values())) == 1, f"engines diverged: {seen}"
    return seen["interp"]


class TestDirectDifferential:
    def test_alu_mix(self):
        def build(bpf):
            asm = Asm().mov64_imm(R0, 1)
            for i, op in enumerate(
                    ("add", "mul", "or", "xor", "and", "sub",
                     "lsh", "rsh", "arsh", "div", "mod")):
                asm.alu64_imm(op, R0, i + 3)
            asm.alu32_imm("mov", R2, -5)
            asm.alu32_imm("add", R2, 7)
            asm.alu64_reg("add", R0, R2)
            asm.neg64(R0)
            return asm.exit_().program()
        _run_both(build)

    def test_stack_traffic(self):
        def build(bpf):
            asm = Asm()
            for i, size in enumerate((1, 2, 4, 8)):
                asm.st_imm(size, R10, -8 * (i + 1), 0x1122334455 + i)
            asm.mov64_imm(R0, 0)
            for i, size in enumerate((1, 2, 4, 8)):
                asm.ldx(size, R2, R10, -8 * (i + 1))
                asm.alu64_reg("add", R0, R2)
            asm.mov64_imm(R3, -1)
            asm.stx(8, R10, -40, R3)
            asm.ldx(4, R2, R10, -40)
            asm.alu64_reg("add", R0, R2)
            return asm.exit_().program()
        _run_both(build)

    def test_jump_ladder(self):
        def build(bpf):
            return (Asm()
                    .mov64_imm(R0, 0)
                    .mov64_imm(R2, 10)
                    .label("loop")
                    .alu64_reg("add", R0, R2)
                    .alu64_imm("sub", R2, 1)
                    .jmp_imm("jsgt", R2, 0, "loop")
                    .mov64_imm(R3, -4)
                    .jmp_imm("jslt", R3, 0, "neg")
                    .mov64_imm(R0, 0)
                    .label("neg")
                    .alu32_imm("mov", R2, 5)
                    .jmp32_imm("jeq", R2, 5, "done")
                    .mov64_imm(R0, 0)
                    .label("done")
                    .exit_()
                    .program())
        _run_both(build)

    def test_ld_imm64_and_wide_constants(self):
        def build(bpf):
            return (Asm()
                    .ld_imm64(R0, 0x1234_5678_9ABC_DEF0)
                    .ld_imm64(R2, -1)
                    .alu64_reg("xor", R0, R2)
                    .exit_()
                    .program())
        _run_both(build)

    def test_subprog_call(self):
        def build(bpf):
            return (Asm()
                    .mov64_imm(R1, 40)
                    .mov64_imm(R2, 2)
                    .call_subprog("add")
                    .exit_()
                    .label("add")
                    .mov64_reg(R0, R1)
                    .alu64_reg("add", R0, R2)
                    .exit_()
                    .program())
        assert _run_both(build)[0] == 42

    def test_bpf_loop(self):
        def build(bpf):
            return (Asm()
                    .mov64_imm(R1, 25)
                    .ld_func(R2, "body")
                    .mov64_imm(R3, 0)
                    .mov64_imm(R4, 0)
                    .call(ids.BPF_FUNC_loop)
                    .exit_()
                    .label("body")
                    .mov64_imm(R0, 0)
                    .exit_()
                    .program())
        assert _run_both(build)[0] == 25

    def test_atomics_all_sub_ops(self):
        def build(bpf):
            asm = (Asm()
                   .st_imm(8, R10, -8, 0b1100)
                   .mov64_imm(R2, 0b1010))
            for op in ("add", "or", "and", "xor"):
                asm.atomic_op(op, 8, R10, -8, R2, fetch=True)
            asm.mov64_imm(R2, 77)
            asm.atomic_xchg(8, R10, -8, R2)
            asm.mov64_reg(R0, R2)      # old value from xchg
            asm.mov64_imm(R2, 5)
            asm.atomic_cmpxchg(8, R10, -8, R2)
            asm.ldx(8, R2, R10, -8)
            asm.alu64_reg("add", R0, R2)
            return asm.exit_().program()
        _run_both(build)

    def test_map_access(self):
        def build(bpf):
            amap = bpf.create_map("array", key_size=4, value_size=8,
                                  max_entries=4)
            return (Asm()
                    .st_imm(4, R10, -4, 0)
                    .mov64_reg(R2, R10)
                    .alu64_imm("add", R2, -4)
                    .ld_map_fd(R1, amap.map_fd)
                    .call(ids.BPF_FUNC_map_lookup_elem)
                    .jmp_imm("jeq", R0, 0, "miss")
                    .st_imm(8, R0, 0, 123)
                    .ldx(8, R0, R0, 0)
                    .exit_()
                    .label("miss")
                    .mov64_imm(R0, 0)
                    .exit_()
                    .program())
        assert _run_both(build)[0] == 123

    def test_tail_call(self):
        seen = []
        for engine in ENGINES:
            kernel = Kernel()
            bpf = BpfSubsystem(kernel, engine=engine)
            pa = bpf.create_map("prog_array", max_entries=4)
            target = bpf.load_program(
                Asm().mov64_imm(R0, 777).exit_().program(),
                ProgType.KPROBE, "target")
            pa.set_prog(0, target)
            caller = bpf.load_program(
                (Asm()
                 .mov64_reg(R6, R1)
                 .mov64_reg(R1, R6)
                 .ld_map_fd(R2, pa.map_fd)
                 .mov64_imm(R3, 0)
                 .call(ids.BPF_FUNC_tail_call)
                 .mov64_imm(R0, 1)
                 .exit_()
                 .program()), ProgType.KPROBE, "caller")
            ret = bpf.run_on_current_task(caller)
            seen.append((ret, bpf.vm.insns_executed,
                         kernel.clock.now_ns))
        assert len(set(seen)) == 1, seen
        assert seen[0][0] == 777

    def test_unverified_wild_pointer_oopses_identically(self):
        """Every engine must fault the same way on a raw store through
        a garbage pointer (no verifier in the loop)."""
        from repro.ebpf.interpreter import BpfVm
        from repro.ebpf.loader import LoadedProgram
        from repro.ebpf.verifier.analyzer import VerifierStats
        from repro.errors import KernelOops

        seen = []
        for engine in ENGINES:
            kernel = Kernel()
            bpf = BpfSubsystem(kernel)
            vm = BpfVm(kernel, bpf, engine=engine)
            insns = (Asm()
                     .ld_imm64(R2, 0xDEAD_BEEF_0000)
                     .st_imm(8, R2, 0, 1)
                     .mov64_imm(R0, 0)
                     .exit_()
                     .program())
            prog = LoadedProgram(1, "wild", ProgType.KPROBE, insns,
                                 VerifierStats())
            regs = kernel.mem.kmalloc(64, type_name="pt_regs",
                                      owner="test")
            with pytest.raises(KernelOops):
                vm.run(prog, regs.base)
            seen.append((vm.insns_executed, kernel.log.tainted,
                         tuple((o.category, o.source)
                               for o in kernel.log.oopses)))
        assert len(set(seen)) == 1, seen

    def test_decode_error_matches(self):
        """A bogus opcode raises the same message on every engine."""
        from repro.ebpf.interpreter import BpfVm
        from repro.ebpf.isa import Insn
        from repro.ebpf.loader import LoadedProgram
        from repro.ebpf.verifier.analyzer import VerifierStats
        from repro.errors import BpfRuntimeError

        msgs = []
        for engine in ENGINES:
            kernel = Kernel()
            bpf = BpfSubsystem(kernel)
            vm = BpfVm(kernel, bpf, engine=engine)
            insns = [Insn(0xFF, 0, 0, 0, 0),
                     Insn(isa.BPF_JMP | isa.BPF_EXIT)]
            prog = LoadedProgram(1, "junk", ProgType.KPROBE, insns,
                                 VerifierStats())
            regs = kernel.mem.kmalloc(64, type_name="pt_regs",
                                      owner="test")
            with pytest.raises(BpfRuntimeError) as err:
                vm.run(prog, regs.base)
            msgs.append(str(err.value))
        assert len(set(msgs)) == 1, msgs


class TestStatsDifferential:
    """With stats enabled, every engine must report identical
    per-program telemetry — run_cnt, run_time_ns, insns and helper
    counts are part of the observational contract."""

    def _stats_both(self, build, runs=3):
        seen = []
        for engine in ENGINES:
            kernel = Kernel()
            kernel.telemetry.enable()
            bpf = BpfSubsystem(kernel, engine=engine)
            prog = bpf.load_program(build(bpf), ProgType.KPROBE,
                                    "diff")
            for _ in range(runs):
                bpf.run_on_current_task(prog)
            row = kernel.telemetry.prog("ebpf", "diff")
            seen.append((row.run_cnt, row.run_time_ns, row.insns,
                         row.helper_calls,
                         dict(row.helper_counts)))
        assert seen[0] == seen[1] == seen[2], (
            f"stats diverged across engines: {seen}")
        return seen[0]

    def test_alu_loop_stats_identical(self):
        def build(bpf):
            return (Asm()
                    .mov64_imm(R0, 0).mov64_imm(R1, 64)
                    .label("loop")
                    .alu64_reg("add", R0, R1)
                    .alu64_imm("sub", R1, 1)
                    .jmp_imm("jne", R1, 0, "loop")
                    .exit_()
                    .program())
        run_cnt, run_time_ns, insns, helpers, _ = \
            self._stats_both(build)
        assert run_cnt == 3
        assert insns == run_time_ns       # 1 virtual ns per insn
        assert helpers == 0

    def test_helper_call_stats_identical(self):
        def build(bpf):
            return (Asm()
                    .call(ids.BPF_FUNC_ktime_get_ns)
                    .call(ids.BPF_FUNC_get_current_pid_tgid)
                    .call(ids.BPF_FUNC_ktime_get_ns)
                    .exit_()
                    .program())
        run_cnt, _, _, helpers, counts = self._stats_both(build)
        assert run_cnt == 3
        assert helpers == 9               # 3 calls x 3 runs
        assert counts == {"bpf_ktime_get_ns": 6,
                          "bpf_get_current_pid_tgid": 3}

    def test_stats_off_engines_record_nothing(self):
        for engine in ENGINES:
            kernel = Kernel()
            bpf = BpfSubsystem(kernel, engine=engine)
            prog = bpf.load_program(
                Asm().mov64_imm(R0, 0).exit_().program(),
                ProgType.KPROBE, "cold")
            bpf.run_on_current_task(prog)
            row = kernel.telemetry.prog("ebpf", "cold")
            assert (row.run_cnt, row.run_time_ns, row.insns) == \
                (0, 0, 0)
