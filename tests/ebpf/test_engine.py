"""The Engine enum and the single engine resolver."""

import pytest

from repro.ebpf.bugs import BugConfig
from repro.ebpf.engine import ENGINE_NAMES, Engine, resolve_engine
from repro.ebpf.interpreter import ENGINES
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.errors import BpfRuntimeError
from repro.kernel import Kernel
from repro.net.programs import pass_all_prog


class TestResolver:
    def test_enum_members_match_names(self):
        assert ENGINE_NAMES == ("interp", "fast", "compiled")
        assert ENGINES == ENGINE_NAMES  # legacy alias preserved
        assert [str(e) for e in Engine] == list(ENGINE_NAMES)

    def test_resolves_strings_enums_and_none(self):
        assert resolve_engine("fast") == "fast"
        assert resolve_engine(Engine.COMPILED) == "compiled"
        assert resolve_engine(None) is None
        assert resolve_engine(None, default=Engine.INTERP) == "interp"

    def test_unknown_engine_is_loud(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("turbo")


class TestWiring:
    def test_subsystem_accepts_enum(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched(),
                           engine=Engine.INTERP)
        assert bpf.vm.engine == "interp"

    def test_set_engine_rejects_unknown_as_runtime_error(
            self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched())
        prog = bpf.load_program(pass_all_prog(), ProgType.XDP, "p")
        with pytest.raises(BpfRuntimeError, match="unknown engine"):
            bpf.set_engine(prog, "warp")

    def test_set_engine_accepts_enum(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched())
        prog = bpf.load_program(pass_all_prog(), ProgType.XDP, "p")
        bpf.set_engine(prog, Engine.COMPILED)
        assert prog.engine == "compiled"
        assert prog.compiled is not None
