"""Verifier tests: structural checks, register init, exit rules."""

import pytest

from repro.ebpf import isa
from repro.ebpf.asm import Asm
from repro.ebpf.isa import Insn, R0, R1, R2, R5, R10
from repro.ebpf.progs import ProgType
from repro.ebpf.verifier.limits import VerifierLimits
from repro.errors import VerifierError, VerifierLimitExceeded


def expect_reject(load, program, needle, **kwargs):
    with pytest.raises(VerifierError) as exc_info:
        load(program, **kwargs)
    assert needle in str(exc_info.value), str(exc_info.value)


class TestStructural:
    def test_empty_program(self, load):
        expect_reject(load, [], "empty")

    def test_too_long_program(self, load):
        asm = Asm()
        for __ in range(5000):
            asm.mov64_imm(R0, 0)
        asm.exit_()
        with pytest.raises(VerifierLimitExceeded):
            load(asm.program())

    def test_jump_out_of_range(self, load):
        expect_reject(load, Asm().ja(100).exit_().program(),
                      "out of range")

    def test_backward_jump_out_of_range(self, load):
        expect_reject(load, Asm().ja(-5).exit_().program(),
                      "out of range")

    def test_last_insn_must_be_exit_or_ja(self, load):
        expect_reject(load, Asm().mov64_imm(R0, 0).program(),
                      "last insn")

    def test_jump_into_ld_imm64_second_slot(self, load):
        program = (Asm()
                   .jmp_imm("jeq", R1, 0, 1)
                   .ld_imm64(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "ld_imm64")

    def test_incomplete_ld_imm64(self, load):
        program = [Insn(isa.BPF_LD | isa.BPF_IMM | isa.BPF_DW, 0, 0,
                        0, 0)]
        expect_reject(load, program, "incomplete")

    def test_unknown_map_fd(self, load):
        program = Asm().ld_map_fd(R1, 99).mov64_imm(R0, 0).exit_() \
            .program()
        expect_reject(load, program, "unknown map fd")

    def test_minimal_program_accepted(self, load):
        prog = load(Asm().mov64_imm(R0, 0).exit_().program())
        assert prog.verifier_stats.insns_processed == 2


class TestRegisterInit:
    def test_uninitialized_read_rejected(self, load):
        expect_reject(load,
                      Asm().mov64_reg(R0, R5).exit_().program(),
                      "!read_ok")

    def test_r1_is_ctx_at_entry(self, load):
        # dereferencing ctx at a valid offset works
        prog = load(Asm().ldx(8, R0, R1, 0).exit_().program())
        assert prog is not None

    def test_r2_to_r5_uninitialized(self, load):
        expect_reject(load,
                      Asm().mov64_reg(R0, R2).exit_().program(),
                      "!read_ok")

    def test_r10_read_only(self, load):
        expect_reject(load,
                      Asm().mov64_imm(R10, 0).exit_().program(),
                      "read only")

    def test_r0_must_be_set_before_exit(self, load):
        expect_reject(load, Asm().exit_().program(), "R0 !read_ok")

    def test_callee_saved_preserved_across_helper(self, load, bpf):
        from repro.ebpf.helpers import ids
        from repro.ebpf.isa import R6
        program = (Asm()
                   .mov64_imm(R6, 7)
                   .call(ids.BPF_FUNC_ktime_get_ns)
                   .mov64_reg(R0, R6)    # r6 must survive the call
                   .exit_()
                   .program())
        load(program)

    def test_caller_saved_clobbered_by_helper(self, load):
        from repro.ebpf.helpers import ids
        program = (Asm()
                   .mov64_imm(R1, 7)
                   .call(ids.BPF_FUNC_ktime_get_ns)
                   .mov64_reg(R0, R1)    # r1 is dead after the call
                   .exit_()
                   .program())
        expect_reject(load, program, "!read_ok")


class TestReturnValue:
    def test_xdp_range_enforced(self, load):
        expect_reject(load, Asm().mov64_imm(R0, 7).exit_().program(),
                      "return value", prog_type=ProgType.XDP)

    def test_xdp_valid_verdicts(self, load):
        for verdict in range(5):
            load(Asm().mov64_imm(R0, verdict).exit_().program(),
                 prog_type=ProgType.XDP)

    def test_kprobe_any_return(self, load):
        load(Asm().mov64_imm(R0, -12345).exit_().program())

    def test_pointer_return_rejected(self, load):
        program = Asm().mov64_reg(R0, R10).exit_().program()
        expect_reject(load, program, "scalar at")

    def test_socket_filter_range(self, load):
        load(Asm().mov64_imm(R0, 0xFFFF).exit_().program(),
             prog_type=ProgType.SOCKET_FILTER)
        expect_reject(load,
                      Asm().mov64_imm(R0, 0x10000).exit_().program(),
                      "return value",
                      prog_type=ProgType.SOCKET_FILTER)

    def test_unknown_scalar_return_rejected_for_xdp(self, load):
        # a fully unknown ctx load cannot be proven within [0, 4]
        program = Asm().ldx(4, R0, R1, 0).exit_().program()
        expect_reject(load, program, "return value",
                      prog_type=ProgType.XDP)


class TestTermination:
    def test_self_loop_rejected(self, load):
        expect_reject(load,
                      Asm().label("x").ja("x").program(),
                      "infinite loop")

    def test_two_insn_loop_rejected(self, load):
        program = (Asm()
                   .label("a")
                   .mov64_imm(R0, 0)
                   .ja("a")
                   .program())
        expect_reject(load, program, "infinite loop")

    def test_dead_code_after_loop_rejected_as_unreachable(self, load):
        # the real verifier rejects this shape for its dead exit
        program = Asm().label("x").ja("x").exit_().program()
        expect_reject(load, program, "unreachable")

    def test_counting_loop_without_progress_rejected(self, load):
        # r0 constant each iteration -> identical state -> loop
        program = (Asm()
                   .mov64_imm(R0, 5)
                   .label("top")
                   .mov64_imm(R0, 5)
                   .jmp_imm("jne", R0, 0, "top")
                   .exit_()
                   .program())
        expect_reject(load, program, "infinite loop")

    def test_bounded_loop_accepted(self, load):
        program = (Asm()
                   .mov64_imm(R0, 10)
                   .label("top")
                   .alu64_imm("sub", R0, 1)
                   .jmp_imm("jne", R0, 0, "top")
                   .exit_()
                   .program())
        prog = load(program)
        # walked iteration by iteration
        assert prog.verifier_stats.insns_processed >= 20

    def test_unbounded_progress_loop_hits_budget(self, load):
        # r0 grows forever: state changes every iteration until the
        # complexity cap fires
        program = (Asm()
                   .mov64_imm(R0, 1)
                   .label("top")
                   .alu64_imm("add", R0, 1)
                   .jmp_imm("jne", R0, 0, "top")
                   .exit_()
                   .program())
        with pytest.raises(VerifierLimitExceeded):
            load(program,
                 limits=VerifierLimits(complexity_limit=5000))

    def test_trailing_jump_off_end_rejected(self, load):
        # last insn is ja +0 -> target past the program end
        program = (Asm()
                   .mov64_imm(R0, 0)
                   .ja(0)
                   .program())
        expect_reject(load, program, "out of range")


class TestUnprivilegedLoading:
    """The [22] posture: the kernel community's own response to
    verifier distrust was to turn unprivileged eBPF off."""

    def test_disabled_by_default(self, bpf):
        program = Asm().mov64_imm(R0, 0).exit_().program()
        with pytest.raises(VerifierError) as exc_info:
            bpf.load_program(program, ProgType.SOCKET_FILTER, "t",
                             unprivileged=True)
        assert "unprivileged_bpf_disabled" in str(exc_info.value)

    def test_sysctl_reenables(self, bpf):
        bpf.unprivileged_bpf_disabled = False
        program = Asm().mov64_imm(R0, 0).exit_().program()
        prog = bpf.load_program(program, ProgType.SOCKET_FILTER, "t",
                                unprivileged=True)
        assert prog is not None

    def test_unprivileged_gets_tight_complexity_cap(self, bpf):
        bpf.unprivileged_bpf_disabled = False
        # bounded loop whose walk exceeds the unprivileged budget but
        # not the privileged one
        asm = (Asm()
               .ld_imm64(R0, 66_000)
               .label("top")
               .alu64_imm("sub", R0, 1)
               .jmp_imm("jne", R0, 0, "top")
               .exit_())
        program = asm.program()
        bpf.load_program(program, ProgType.KPROBE, "priv")
        with pytest.raises(VerifierLimitExceeded):
            bpf.load_program(program, ProgType.KPROBE, "unpriv",
                             unprivileged=True)

    def test_unprivileged_never_leaks_pointers(self, bpf):
        bpf.unprivileged_bpf_disabled = False
        program = (Asm()
                   .mov64_reg(R2, R10)
                   .alu64_reg("sub", R2, R10)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        # privileged: allowed with allow_ptr_leaks
        bpf.load_program(program, ProgType.KPROBE, "priv",
                         allow_ptr_leaks=True)
        # unprivileged: the flag is ignored
        with pytest.raises(VerifierError):
            bpf.load_program(program, ProgType.KPROBE, "unpriv",
                             unprivileged=True, allow_ptr_leaks=True)
