"""BPF_ATOMIC sub-operation tests (OR/AND/XOR, FETCH, XCHG, CMPXCHG).

Regression coverage for the bug where the interpreter ignored
``insn.imm`` and treated *every* atomic as XADD: an atomic XOR with
imm=BPF_XOR silently added instead.  Both execution engines and the
verifier must now honour the sub-op encoding.
"""

import pytest

from repro.ebpf import isa
from repro.ebpf.asm import Asm
from repro.ebpf.isa import Insn, R0, R2, R3, R10
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.errors import BpfRuntimeError, VerifierError
from repro.kernel import Kernel


def run_value(bpf, program):
    prog = bpf.load_program(program, ProgType.KPROBE, "t")
    return bpf.run_on_current_task(prog)


class TestAtomicSubOps:
    @pytest.mark.parametrize("op,seed,operand,expected", [
        ("add", 40, 2, 42),
        ("or", 0b1100, 0b1010, 0b1110),
        ("and", 0b1100, 0b1010, 0b1000),
        ("xor", 0b1100, 0b1010, 0b0110),
    ])
    def test_sub_op_result_in_memory(self, bpf, op, seed, operand,
                                     expected):
        program = (Asm()
                   .st_imm(8, R10, -8, seed)
                   .mov64_imm(R2, operand)
                   .atomic_op(op, 8, R10, -8, R2)
                   .ldx(8, R0, R10, -8)
                   .exit_()
                   .program())
        assert run_value(bpf, program) == expected

    def test_xor_is_not_silently_an_add(self, bpf):
        # the original bug: imm=BPF_XOR executed as XADD, so
        # 6 ^ 6 "became" 12 instead of 0
        program = (Asm()
                   .st_imm(8, R10, -8, 6)
                   .mov64_imm(R2, 6)
                   .atomic_op("xor", 8, R10, -8, R2)
                   .ldx(8, R0, R10, -8)
                   .exit_()
                   .program())
        assert run_value(bpf, program) == 0

    @pytest.mark.parametrize("op,seed,operand,old", [
        ("add", 40, 2, 40),
        ("or", 0b1100, 0b1010, 0b1100),
        ("and", 0b1100, 0b1010, 0b1100),
        ("xor", 0b1100, 0b1010, 0b1100),
    ])
    def test_fetch_returns_old_value(self, bpf, op, seed, operand,
                                     old):
        program = (Asm()
                   .st_imm(8, R10, -8, seed)
                   .mov64_imm(R2, operand)
                   .atomic_op(op, 8, R10, -8, R2, fetch=True)
                   .mov64_reg(R0, R2)     # fetch landed in R2
                   .exit_()
                   .program())
        assert run_value(bpf, program) == old

    def test_fetch_4byte_zero_extends(self, bpf):
        program = (Asm()
                   .st_imm(4, R10, -8, -1)    # 0xFFFFFFFF
                   .st_imm(4, R10, -4, 0)
                   .mov64_imm(R2, 1)
                   .atomic_op("add", 4, R10, -8, R2, fetch=True)
                   .mov64_reg(R0, R2)
                   .exit_()
                   .program())
        assert run_value(bpf, program) == 0xFFFF_FFFF

    def test_xchg(self, bpf):
        program = (Asm()
                   .st_imm(8, R10, -8, 7)
                   .mov64_imm(R2, 99)
                   .atomic_xchg(8, R10, -8, R2)
                   .ldx(8, R3, R10, -8)       # memory now 99
                   .alu64_reg("mul", R3, R2)  # R2 fetched old 7
                   .mov64_reg(R0, R3)
                   .exit_()
                   .program())
        assert run_value(bpf, program) == 99 * 7

    def test_cmpxchg_match_swaps(self, bpf):
        program = (Asm()
                   .st_imm(8, R10, -8, 7)
                   .mov64_imm(R0, 7)          # comparand matches
                   .mov64_imm(R2, 99)
                   .atomic_cmpxchg(8, R10, -8, R2)
                   .ldx(8, R0, R10, -8)       # swapped in
                   .exit_()
                   .program())
        assert run_value(bpf, program) == 99

    def test_cmpxchg_mismatch_leaves_memory(self, bpf):
        program = (Asm()
                   .st_imm(8, R10, -8, 7)
                   .mov64_imm(R0, 8)          # comparand mismatches
                   .mov64_imm(R2, 99)
                   .atomic_cmpxchg(8, R10, -8, R2)
                   .ldx(8, R3, R10, -8)       # still 7
                   .alu64_imm("mul", R3, 100)
                   .alu64_reg("add", R3, R0)  # R0 got old value 7
                   .mov64_reg(R0, R3)
                   .exit_()
                   .program())
        assert run_value(bpf, program) == 707

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_unknown_sub_op_raises_at_runtime(self, kernel,
                                              fast_path):
        """An unverified atomic with a junk sub-op must raise, not
        silently execute as XADD — on both engines."""
        from repro.ebpf.interpreter import BpfVm
        from repro.ebpf.loader import LoadedProgram
        from repro.ebpf.verifier.analyzer import VerifierStats

        bpf = BpfSubsystem(kernel)
        vm = BpfVm(kernel, bpf, fast_path=fast_path)
        insns = (Asm()
                 .st_imm(8, R10, -8, 0)
                 .mov64_imm(R2, 1)
                 .program())
        insns.append(Insn(
            isa.BPF_STX | isa.BPF_DW | isa.BPF_ATOMIC,
            R10, R2, -8, 0x30))  # 0x30 = BPF_DIV: not an atomic op
        insns.extend(Asm().mov64_imm(R0, 0).exit_().program())
        prog = LoadedProgram(1, "wild", ProgType.KPROBE, insns,
                             VerifierStats())
        regs = kernel.mem.kmalloc(64, type_name="pt_regs",
                                  owner="test")
        with pytest.raises(BpfRuntimeError, match="atomic"):
            vm.run(prog, regs.base)


class TestAtomicVerifierSubOps:
    @pytest.mark.parametrize("op", ["or", "and", "xor"])
    def test_sub_ops_verify(self, load, op):
        program = (Asm()
                   .st_imm(8, R10, -8, 5)
                   .mov64_imm(R2, 3)
                   .atomic_op(op, 8, R10, -8, R2, fetch=True)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        load(program)

    def test_fetch_result_is_usable(self, load):
        # after a fetch, src holds a scalar the program may compute on
        program = (Asm()
                   .st_imm(8, R10, -8, 5)
                   .mov64_imm(R2, 3)
                   .atomic_op("xor", 8, R10, -8, R2, fetch=True)
                   .mov64_reg(R0, R2)
                   .exit_()
                   .program())
        load(program)

    def test_cmpxchg_verifies_and_clobbers_r0(self, load):
        program = (Asm()
                   .st_imm(8, R10, -8, 5)
                   .mov64_imm(R0, 5)
                   .mov64_imm(R2, 9)
                   .atomic_cmpxchg(8, R10, -8, R2)
                   .exit_()                   # R0 = old value: valid
                   .program())
        load(program)

    def test_cmpxchg_pointer_comparand_rejected(self, load):
        program = (Asm()
                   .st_imm(8, R10, -8, 5)
                   .mov64_reg(R0, R10)        # pointer comparand?!
                   .mov64_imm(R2, 9)
                   .atomic_cmpxchg(8, R10, -8, R2)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        with pytest.raises(VerifierError, match="pointer"):
            load(program)

    def test_xchg_of_pointer_rejected(self, load):
        program = (Asm()
                   .st_imm(8, R10, -8, 0)
                   .atomic_xchg(8, R10, -8, R10)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        with pytest.raises(VerifierError, match="pointer"):
            load(program)

    def test_unknown_sub_op_rejected(self, load):
        program = [
            Insn(isa.BPF_ST | isa.BPF_DW | isa.BPF_MEM, R10, 0, -8, 0),
            Insn(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K, R2, 0, 0, 1),
            Insn(isa.BPF_STX | isa.BPF_DW | isa.BPF_ATOMIC,
                 R10, R2, -8, 0x30),
            Insn(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K, R0, 0, 0, 0),
            Insn(isa.BPF_JMP | isa.BPF_EXIT),
        ]
        with pytest.raises(VerifierError, match="atomic"):
            load(program)
