"""Unit tests for the compiled execution tier.

The differential suites prove the compiled tier *behaves* like the
other engines; these tests pin the machinery itself — block splitting,
frame entry points, the load-time compile cache, per-program engine
pinning, and the lazy compile fallback for hand-built programs.
"""

import pytest

from repro.ebpf.asm import Asm
from repro.ebpf.compile import compile_program, render_source
from repro.ebpf.helpers import ids
from repro.ebpf.interpreter import BpfVm
from repro.ebpf.isa import R0, R1, R2, R3, R4
from repro.ebpf.loader import BpfSubsystem, LoadedProgram
from repro.ebpf.predecode import predecode
from repro.ebpf.progs import ProgType
from repro.ebpf.verifier.analyzer import VerifierStats
from repro.errors import BpfRuntimeError
from repro.kernel import Kernel


def _branchy_program():
    return (Asm()
            .mov64_imm(R0, 0)
            .mov64_imm(R2, 4)
            .label("loop")
            .alu64_reg("add", R0, R2)
            .alu64_imm("sub", R2, 1)
            .jmp_imm("jne", R2, 0, "loop")
            .exit_()
            .program())


class TestBlockStructure:
    def test_leaders_are_entry_points(self):
        compiled = compile_program(predecode(_branchy_program()))
        # program start, the loop head, the conditional fallthrough
        assert set(compiled.entry_blocks) == {0, 2, 5}
        assert compiled.entry_blocks[0] == 0
        assert compiled.n_blocks == 3
        assert compiled.n_insns == 6

    def test_subprog_and_callback_targets_are_leaders(self):
        insns = (Asm()
                 .mov64_imm(R1, 3)
                 .ld_func(R2, "body")
                 .mov64_imm(R3, 0)
                 .mov64_imm(R4, 0)
                 .call(ids.BPF_FUNC_loop)
                 .call_subprog("sub")
                 .exit_()
                 .label("sub")
                 .mov64_reg(R0, R1)
                 .exit_()
                 .label("body")
                 .mov64_imm(R0, 0)
                 .exit_()
                 .program())
        compiled = compile_program(predecode(insns))
        # the bpf_loop callback and the subprogram must be enterable
        # as frames, not just jump targets (ld_func occupies 2 slots)
        assert 8 in compiled.entry_blocks   # "sub"
        assert 10 in compiled.entry_blocks  # "body"

    def test_source_is_inspectable(self):
        source, entry_blocks = render_source(
            predecode(_branchy_program()))
        assert "def _frame(" in source
        assert "pending" in source
        assert entry_blocks == {0: 0, 2: 1, 5: 2}

    def test_empty_program_compiles_to_pc_error(self):
        compiled = compile_program(predecode([]))
        assert compiled.entry_blocks == {0: 0}
        assert "pc out of range: 0" in compiled.source


class TestLoaderIntegration:
    def test_compiled_attached_at_load(self):
        kernel = Kernel()
        bpf = BpfSubsystem(kernel, engine="compiled")
        prog = bpf.load_program(_branchy_program(), ProgType.KPROBE,
                                "c1")
        assert prog.compiled is not None
        assert bpf.compile_cache_misses == 1
        assert bpf.compile_cache_hits == 0
        assert bpf.run_on_current_task(prog) == 10
        # the loader compiled eagerly; the VM never had to
        assert bpf.vm.compiles == 0

    def test_reload_hits_compile_cache(self):
        kernel = Kernel()
        bpf = BpfSubsystem(kernel, engine="compiled")
        first = bpf.load_program(_branchy_program(), ProgType.KPROBE,
                                 "c1")
        second = bpf.load_program(_branchy_program(), ProgType.KPROBE,
                                  "c2")
        assert bpf.compile_cache_misses == 1
        assert bpf.compile_cache_hits == 1
        assert second.compiled is first.compiled

    def test_backfill_when_cached_under_other_engine(self):
        # first load under the fast engine caches verify/jit/predecode
        # artifacts with no compiled function; a compiled-tier reload
        # of the same bytes compiles once and backfills the entry
        kernel = Kernel()
        fast = BpfSubsystem(kernel, engine="fast")
        fast.load_program(_branchy_program(), ProgType.KPROBE, "c1")
        compiled = BpfSubsystem(kernel, engine="compiled")
        compiled.load_cache = fast.load_cache
        prog = compiled.load_program(_branchy_program(),
                                     ProgType.KPROBE, "c2")
        assert prog.compiled is not None
        assert compiled.compile_cache_misses == 1
        reload = compiled.load_program(_branchy_program(),
                                       ProgType.KPROBE, "c3")
        assert compiled.compile_cache_hits == 1
        assert reload.compiled is prog.compiled

    def test_compile_ns_recorded_in_telemetry(self):
        kernel = Kernel()
        bpf = BpfSubsystem(kernel, engine="compiled")
        bpf.load_program(_branchy_program(), ProgType.KPROBE, "c1")
        row = kernel.telemetry.prog("ebpf", "c1")
        assert row.compile_ns > 0
        assert "compile_ns" in row.as_dict()

    def test_other_engines_skip_compilation(self):
        kernel = Kernel()
        bpf = BpfSubsystem(kernel, engine="fast")
        prog = bpf.load_program(_branchy_program(), ProgType.KPROBE,
                                "c1")
        assert prog.compiled is None
        assert bpf.compile_cache_misses == 0


class TestEnginePinning:
    def test_set_engine_pins_one_program(self):
        kernel = Kernel()
        bpf = BpfSubsystem(kernel, engine="fast")
        prog = bpf.load_program(_branchy_program(), ProgType.KPROBE,
                                "pin")
        bpf.set_engine(prog, "compiled")
        assert prog.engine == "compiled"
        assert prog.compiled is not None   # compiled eagerly
        assert bpf.run_on_current_task(prog) == 10
        bpf.set_engine(prog, None)
        assert prog.engine is None
        assert bpf.run_on_current_task(prog) == 10

    def test_set_engine_rejects_unknown_tier(self):
        kernel = Kernel()
        bpf = BpfSubsystem(kernel)
        prog = bpf.load_program(_branchy_program(), ProgType.KPROBE,
                                "pin")
        with pytest.raises(BpfRuntimeError):
            bpf.set_engine(prog, "turbo")

    def test_vm_rejects_unknown_engine(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            BpfSubsystem(kernel, engine="turbo")

    def test_prog_by_id_round_trip(self):
        kernel = Kernel()
        bpf = BpfSubsystem(kernel)
        prog = bpf.load_program(_branchy_program(), ProgType.KPROBE,
                                "pin")
        assert bpf.prog_by_id(prog.prog_id) is prog
        assert bpf.prog_by_id(999) is None
        assert prog in bpf.all_progs()


class TestLazyCompile:
    def test_hand_built_program_compiles_once(self):
        # no loader in the loop: the VM compiles lazily on first run
        # and reuses the attached artifact afterwards
        kernel = Kernel()
        bpf = BpfSubsystem(kernel)
        vm = BpfVm(kernel, bpf, engine="compiled")
        prog = LoadedProgram(1, "hand", ProgType.KPROBE,
                             _branchy_program(), VerifierStats())
        ctx = kernel.mem.kmalloc(64, type_name="pt_regs",
                                 owner="test")
        assert vm.run(prog, ctx.base) == 10
        assert vm.compiles == 1
        assert vm.run(prog, ctx.base) == 10
        assert vm.compiles == 1  # cached on the program object
