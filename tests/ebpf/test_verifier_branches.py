"""Verifier tests: branch refinement, pruning, branch elimination."""

import pytest

from repro.ebpf.asm import Asm
from repro.ebpf.isa import R0, R1, R2, R3, R10
from repro.ebpf.progs import ProgType
from repro.errors import VerifierError


class TestBranchRefinement:
    def test_jle_bounds_enable_xdp_return(self, load):
        # if r0 > 4 we return 0; otherwise r0 proven <= 4
        program = (Asm()
                   .ldx(4, R0, R1, 0)
                   .jmp_imm("jle", R0, 4, "ok")
                   .mov64_imm(R0, 0)
                   .label("ok")
                   .exit_()
                   .program())
        load(program, prog_type=ProgType.XDP)

    def test_jeq_pins_value(self, load):
        program = (Asm()
                   .ldx(4, R0, R1, 0)
                   .jmp_imm("jeq", R0, 2, "is2")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .label("is2")      # r0 proven == 2 here
                   .exit_()
                   .program())
        load(program, prog_type=ProgType.XDP)

    def test_jge_lower_bound(self, bpf):
        amap = bpf.create_map("array", key_size=4, value_size=16,
                              max_entries=1)
        from repro.ebpf.helpers import ids
        # value + idx access valid only because jge/jle sandwich
        program = (Asm()
                   .st_imm(4, R10, -4, 0)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .ld_map_fd(R1, amap.map_fd)
                   .call(ids.BPF_FUNC_map_lookup_elem)
                   .jmp_imm("jne", R0, 0, "have")
                   .mov64_imm(R0, 0).exit_()
                   .label("have")
                   .ldx(8, R3, R0, 0)
                   .jmp_imm("jgt", R3, 8, "out")   # r3 <= 8 after
                   .alu64_reg("add", R0, R3)
                   .st_imm(8, R0, 0, 1)            # 8 + 8 <= 16 ok
                   .label("out")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        bpf.load_program(program, ProgType.KPROBE, "t")

    def test_signed_refinement(self, load):
        program = (Asm()
                   .ldx(4, R0, R1, 0)
                   .jmp_imm("jslt", R0, 0, "neg")
                   .jmp_imm("jsgt", R0, 4, "big")
                   .exit_()            # 0 <= r0 <= 4
                   .label("neg")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .label("big")
                   .mov64_imm(R0, 1)
                   .exit_()
                   .program())
        load(program, prog_type=ProgType.XDP)

    def test_reg_reg_refinement(self, load):
        program = (Asm()
                   .ldx(4, R0, R1, 0)
                   .mov64_imm(R2, 4)
                   .jmp_reg("jgt", R0, R2, "big")
                   .exit_()            # r0 <= 4
                   .label("big")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        load(program, prog_type=ProgType.XDP)


class TestBranchElimination:
    def test_const_condition_walks_one_side(self, load):
        """if 5 == 5 always takes the branch; the dead side can even
        contain garbage the verifier never sees (dead-code issue the
        real verifier also has pre-sanitization)."""
        program = (Asm()
                   .mov64_imm(R2, 5)
                   .jmp_imm("jeq", R2, 5, "alive")
                   .ldx(8, R0, R3, 0)   # dead: R3 uninitialized
                   .exit_()
                   .label("alive")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        prog = load(program)
        assert prog is not None

    def test_impossible_branch_not_walked(self, load):
        program = (Asm()
                   .mov64_imm(R2, 3)
                   .jmp_imm("jgt", R2, 10, "never")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .label("never")
                   .ldx(8, R0, R3, 0)   # dead
                   .exit_()
                   .program())
        load(program)


class TestPruning:
    def diamond_chain(self, count):
        asm = Asm().mov64_imm(R0, 0)
        for index in range(count):
            asm.jmp_imm("jeq", R1, index + 1, f"o{index}")
            asm.alu64_imm("add", R0, 1)
            asm.ja(f"j{index}")
            asm.label(f"o{index}")
            asm.alu64_imm("add", R0, 2)
            asm.label(f"j{index}")
        asm.alu64_imm("and", R0, 0)
        asm.exit_()
        return asm.program()

    def test_pruning_bounds_state_growth(self, load):
        pruned = load(self.diamond_chain(10))
        unpruned = load(self.diamond_chain(10), prune_states=False)
        assert pruned.verifier_stats.insns_processed < \
            unpruned.verifier_stats.insns_processed

    def test_unpruned_grows_exponentially(self, load):
        eight = load(self.diamond_chain(8),
                     prune_states=False).verifier_stats
        ten = load(self.diamond_chain(10),
                   prune_states=False).verifier_stats
        # two more diamonds ~ 4x the work without pruning
        assert ten.insns_processed > 3 * eight.insns_processed

    def test_pruned_grows_linearly(self, load):
        eight = load(self.diamond_chain(8)).verifier_stats
        sixteen = load(self.diamond_chain(16)).verifier_stats
        assert sixteen.insns_processed < 4 * eight.insns_processed

    def test_prune_hits_recorded(self, load):
        stats = load(self.diamond_chain(6)).verifier_stats
        assert stats.prune_hits > 0


class TestJsetRefinement:
    def test_false_branch_clears_tested_bits(self, bpf):
        """`if r & ~7 goto out` on the fall-through proves r <= 7 —
        the classic mask-check idiom."""
        from repro.ebpf.helpers import ids
        amap = bpf.create_map("array", key_size=4, value_size=16,
                              max_entries=1)
        from repro.ebpf.isa import R0, R1, R2, R3, R10
        program = (Asm()
                   .st_imm(4, R10, -4, 0)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .ld_map_fd(R1, amap.map_fd)
                   .call(ids.BPF_FUNC_map_lookup_elem)
                   .jmp_imm("jne", R0, 0, "have")
                   .mov64_imm(R0, 0).exit_()
                   .label("have")
                   .ldx(8, R3, R0, 0)
                   .jmp_imm("jset", R3, -8, "out")   # any bit >= 3 set?
                   .alu64_reg("add", R0, R3)          # r3 <= 7 here
                   .st_imm(8, R0, 0, 1)               # 7 + 8 <= 16
                   .label("out")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        bpf.load_program(program, __import__(
            "repro.ebpf.progs", fromlist=["ProgType"]
        ).ProgType.KPROBE, "jset")

    def test_taken_branch_not_overrefined(self, load):
        # on the taken branch nothing is known; both sides must verify
        from repro.ebpf.isa import R0, R1, R2
        program = (Asm()
                   .ldx(8, R2, R1, 0)
                   .jmp_imm("jset", R2, 0xF0, "some")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .label("some")
                   .mov64_imm(R0, 1)
                   .exit_()
                   .program())
        load(program)
