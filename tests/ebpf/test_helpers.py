"""Helper-implementation tests: behaviours and Table 1 bug paths."""

import struct

import pytest

from repro.ebpf.asm import Asm
from repro.ebpf.bugs import BugConfig
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R4, R5, R6, R10
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.errors import MemoryFault, NullDereference, UseAfterFree
from repro.kernel import Kernel


def load_run(bpf, asm, name="t"):
    prog = bpf.load_program(asm.program(), ProgType.KPROBE, name)
    return bpf.run_on_current_task(prog)


class TestCoreHelpers:
    def test_pid_tgid_packs_both(self, bpf, kernel):
        result = load_run(
            bpf, Asm().call(ids.BPF_FUNC_get_current_pid_tgid).exit_())
        task = kernel.current_task
        assert result == (task.tgid << 32) | task.pid

    def test_ktime_returns_clock(self, bpf, kernel):
        kernel.clock.advance(12345)
        result = load_run(
            bpf, Asm().call(ids.BPF_FUNC_ktime_get_ns).exit_())
        assert result >= 12345

    def test_get_current_comm_writes_buffer(self, bpf, kernel):
        asm = (Asm()
               .mov64_reg(R1, R10).alu64_imm("add", R1, -16)
               .mov64_imm(R2, 16)
               .call(ids.BPF_FUNC_get_current_comm)
               .ldx(1, R0, R10, -16)
               .exit_())
        result = load_run(bpf, asm)
        assert result == ord(kernel.current_task.comm[0])

    def test_get_current_task_returns_kernel_addr(self, bpf, kernel):
        result = load_run(
            bpf, Asm().call(ids.BPF_FUNC_get_current_task).exit_())
        assert result == kernel.current_task.address

    def test_trace_printk_logs(self, bpf, kernel):
        asm = (Asm()
               .st_imm(4, R10, -8, 0x69682121)  # "!!hi" LE -> "!!ih"?
               .st_imm(4, R10, -4, 0)
               .mov64_reg(R1, R10).alu64_imm("add", R1, -8)
               .mov64_imm(R2, 8)
               .call(ids.BPF_FUNC_trace_printk)
               .mov64_imm(R0, 0)
               .exit_())
        load_run(bpf, asm)
        assert kernel.log.grep("bpf_trace_printk")

    def test_probe_read_valid_address(self, bpf, kernel):
        task = kernel.current_task
        asm = (Asm()
               .mov64_reg(R1, R10).alu64_imm("add", R1, -8)
               .mov64_imm(R2, 4)
               .ld_imm64(R3, task.address)      # read pid field
               .call(ids.BPF_FUNC_probe_read)
               .ldx(4, R0, R10, -8)
               .exit_())
        assert load_run(bpf, asm) == task.pid

    def test_probe_read_bad_address_returns_efault(self, bpf):
        asm = (Asm()
               .mov64_reg(R1, R10).alu64_imm("add", R1, -8)
               .mov64_imm(R2, 8)
               .ld_imm64(R3, 0xFFFF_8880_DEAD_0000)
               .call(ids.BPF_FUNC_probe_read)
               .exit_())
        result = load_run(bpf, asm)
        assert result == (1 << 64) - 14  # -EFAULT, no oops

    def test_probe_read_failure_does_not_crash(self, bpf, kernel):
        self.test_probe_read_bad_address_returns_efault(bpf)
        assert kernel.healthy


class TestMapHelpers:
    def test_lookup_update_through_bytecode(self, bpf):
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=2)
        asm = (Asm()
               .st_imm(4, R10, -4, 1)
               .st_imm(8, R10, -16, 777)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .mov64_reg(R3, R10).alu64_imm("add", R3, -16)
               .ld_map_fd(R1, amap.map_fd)
               .mov64_imm(R4, 0)
               .call(ids.BPF_FUNC_map_update_elem)
               .exit_())
        assert load_run(bpf, asm) == 0
        assert amap.read_value(1) == struct.pack("<Q", 777)

    def test_delete_through_bytecode(self, bpf):
        hmap = bpf.create_map("hash", key_size=4, value_size=8,
                              max_entries=2)
        hmap.update(struct.pack("<I", 5), struct.pack("<Q", 1))
        asm = (Asm()
               .st_imm(4, R10, -4, 5)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .ld_map_fd(R1, hmap.map_fd)
               .call(ids.BPF_FUNC_map_delete_elem)
               .exit_())
        assert load_run(bpf, asm) == 0
        assert len(hmap) == 0


class TestStringHelpers:
    def strtol_prog(self, text: bytes):
        asm = Asm()
        padded = text.ljust(8, b"\x00")
        asm.st_imm(4, R10, -16, int.from_bytes(padded[:4], "little"))
        asm.st_imm(4, R10, -12, int.from_bytes(padded[4:8], "little"))
        (asm.mov64_reg(R1, R10).alu64_imm("add", R1, -16)
            .mov64_imm(R2, 8)
            .mov64_imm(R3, 10)
            .mov64_reg(R4, R10).alu64_imm("add", R4, -8)
            .st_imm(8, R10, -8, 0)
            .call(ids.BPF_FUNC_strtol)
            .mov64_reg(R6, R0)
            .ldx(8, R0, R10, -8)
            .exit_())
        return asm

    def test_strtol_parses(self, bpf):
        assert load_run(bpf, self.strtol_prog(b"1234")) == 1234

    def test_strtol_negative(self, bpf):
        result = load_run(bpf, self.strtol_prog(b"-42"))
        assert result == (1 << 64) - 42

    def test_strtol_garbage_stops(self, bpf):
        assert load_run(bpf, self.strtol_prog(b"77xy")) == 77

    def test_strncmp_equal(self, bpf):
        asm = (Asm()
               .st_imm(4, R10, -8, 0x61626364)
               .st_imm(4, R10, -16, 0x61626364)
               .mov64_reg(R1, R10).alu64_imm("add", R1, -8)
               .mov64_imm(R2, 4)
               .mov64_reg(R3, R10).alu64_imm("add", R3, -16)
               .call(ids.BPF_FUNC_strncmp)
               .exit_())
        assert load_run(bpf, asm) == 0


class TestRingbufHelpers:
    def test_output_through_bytecode(self, bpf):
        rb = bpf.create_map("ringbuf", max_entries=4096)
        asm = (Asm()
               .st_imm(8, R10, -8, 0xABCD)
               .ld_map_fd(R1, rb.map_fd)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -8)
               .mov64_imm(R3, 8)
               .mov64_imm(R4, 0)
               .call(ids.BPF_FUNC_ringbuf_output)
               .exit_())
        assert load_run(bpf, asm) == 0
        assert rb.drain() == [struct.pack("<Q", 0xABCD)]

    def test_reserve_submit_through_bytecode(self, bpf):
        rb = bpf.create_map("ringbuf", max_entries=4096)
        asm = (Asm()
               .ld_map_fd(R1, rb.map_fd)
               .mov64_imm(R2, 8)
               .mov64_imm(R3, 0)
               .call(ids.BPF_FUNC_ringbuf_reserve)
               .jmp_imm("jne", R0, 0, "got")
               .mov64_imm(R0, 1)
               .exit_()
               .label("got")
               .st_imm(8, R0, 0, 99)
               .mov64_reg(R1, R0)
               .mov64_imm(R2, 0)
               .call(ids.BPF_FUNC_ringbuf_submit)
               .mov64_imm(R0, 0)
               .exit_())
        assert load_run(bpf, asm) == 0
        assert rb.drain() == [struct.pack("<Q", 99)]


class TestBuggyHelpers:
    """Table 1 bug paths: fire on buggy kernels, silent when patched."""

    def storage_null_prog(self, ts_map):
        return (Asm()
                .ld_map_fd(R1, ts_map.map_fd)
                .mov64_imm(R2, 0)
                .mov64_imm(R3, 0)
                .mov64_imm(R4, 1)
                .call(ids.BPF_FUNC_task_storage_get)
                .mov64_imm(R0, 0)
                .exit_())

    def test_task_storage_null_crashes_buggy(self, kernel):
        bpf = BpfSubsystem(kernel)
        ts = bpf.create_map("task_storage", value_size=8)
        prog = bpf.load_program(self.storage_null_prog(ts).program(),
                                ProgType.KPROBE, "t")
        with pytest.raises(NullDereference):
            bpf.run_on_current_task(prog)
        assert not kernel.healthy

    def test_task_storage_null_safe_when_patched(self, kernel):
        bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched())
        ts = bpf.create_map("task_storage", value_size=8)
        prog = bpf.load_program(self.storage_null_prog(ts).program(),
                                ProgType.KPROBE, "t")
        assert bpf.run_on_current_task(prog) == 0
        assert kernel.healthy

    def test_task_storage_valid_task_works(self, kernel):
        bpf = BpfSubsystem(kernel)
        ts = bpf.create_map("task_storage", value_size=8)
        asm = (Asm()
               .call(ids.BPF_FUNC_get_current_task)
               .mov64_reg(R6, R0)
               .ld_map_fd(R1, ts.map_fd)
               .mov64_reg(R2, R6)
               .mov64_imm(R3, 0)
               .mov64_imm(R4, 1)
               .call(ids.BPF_FUNC_task_storage_get)
               .jmp_imm("jne", R0, 0, "ok")
               .mov64_imm(R0, 1).exit_()
               .label("ok")
               .mov64_imm(R0, 0)
               .exit_())
        assert load_run(bpf, asm) == 0

    def task_stack_prog(self, task):
        return (Asm()
                .ld_imm64(R1, task.address)
                .mov64_reg(R2, R10).alu64_imm("add", R2, -64)
                .st_imm(8, R10, -64, 0)
                .mov64_imm(R3, 64)
                .mov64_imm(R4, 0)
                .call(ids.BPF_FUNC_get_task_stack)
                .exit_())

    def test_task_stack_uaf_when_buggy(self, kernel):
        bpf = BpfSubsystem(kernel)
        victim = kernel.create_task()
        kernel.mem.kfree(victim.kernel_stack)  # concurrent exit
        prog = bpf.load_program(self.task_stack_prog(victim).program(),
                                ProgType.KPROBE, "t")
        with pytest.raises(UseAfterFree):
            bpf.run_on_current_task(prog)

    def test_task_stack_efault_when_patched(self, kernel):
        bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched())
        victim = kernel.create_task()
        kernel.mem.kfree(victim.kernel_stack)
        prog = bpf.load_program(self.task_stack_prog(victim).program(),
                                ProgType.KPROBE, "t")
        result = bpf.run_on_current_task(prog)
        assert result == (1 << 64) - 14  # -EFAULT
        assert kernel.healthy

    def test_task_stack_live_task_works_in_both(self, kernel):
        for bugs in (BugConfig(), BugConfig.all_patched()):
            k = Kernel()
            bpf = BpfSubsystem(k, bugs=bugs)
            victim = k.create_task()
            prog = bpf.load_program(
                self.task_stack_prog(victim).program(),
                ProgType.KPROBE, "t")
            assert bpf.run_on_current_task(prog) > 0

    def test_sk_lookup_reqsk_leak_only_when_buggy(self):
        for bugs, expect_leak in ((BugConfig(), True),
                                  (BugConfig.all_patched(), False)):
            kernel = Kernel()
            sock = kernel.create_socket(src_ip=0x0A000001, src_port=80)
            sock.write_field("state", 12)
            sock.pending_reqsk = kernel.create_request_sock("r")
            bpf = BpfSubsystem(kernel, bugs=bugs)
            asm = (Asm()
                   .st_imm(4, R10, -12, 0)
                   .st_imm(4, R10, -8, 0x0A000001)
                   .st_imm(2, R10, -4, 0)
                   .st_imm(2, R10, -2, 80)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -12)
                   .mov64_imm(R3, 12)
                   .mov64_imm(R4, 0)
                   .mov64_imm(R5, 0)
                   .call(ids.BPF_FUNC_sk_lookup_tcp)
                   .jmp_imm("jne", R0, 0, "found")
                   .mov64_imm(R0, 0).exit_()
                   .label("found")
                   .mov64_reg(R1, R0)
                   .call(ids.BPF_FUNC_sk_release)
                   .mov64_imm(R0, 0)
                   .exit_())
            prog = bpf.load_program(asm.program(), ProgType.XDP, "t")
            bpf.run_on_packet(prog, b"x")
            leaked = kernel.refs.outstanding_for(
                "kernel-sk-lookup-lost")
            assert bool(leaked) == expect_leak
            # the program itself balanced its refs either way
            kernel.refs.assert_no_leaks("bpf:t")

    def test_sys_bpf_map_create_works(self, bpf):
        asm = (Asm()
               .st_imm(4, R10, -16, 1)    # map_type (ignored)
               .st_imm(4, R10, -12, 4)    # key_size
               .st_imm(4, R10, -8, 8)     # value_size
               .st_imm(4, R10, -4, 8)     # max_entries
               .mov64_imm(R1, 0)          # BPF_MAP_CREATE
               .mov64_reg(R2, R10).alu64_imm("add", R2, -16)
               .mov64_imm(R3, 16)
               .call(ids.BPF_FUNC_sys_bpf)
               .exit_())
        fd = load_run(bpf, asm)
        assert bpf.map_by_fd(fd) is not None

    def test_sys_bpf_null_key_crashes_buggy(self, kernel):
        bpf = BpfSubsystem(kernel)
        hmap = bpf.create_map("hash", key_size=4, value_size=4,
                              max_entries=4)
        asm = (Asm()
               .st_imm(4, R10, -32, hmap.map_fd)
               .st_imm(4, R10, -28, 0)
               .st_imm(8, R10, -24, 0)
               .st_imm(8, R10, -16, 0)
               .st_imm(8, R10, -8, 0)
               .mov64_imm(R1, 2)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -32)
               .mov64_imm(R3, 32)
               .call(ids.BPF_FUNC_sys_bpf)
               .mov64_imm(R0, 0)
               .exit_())
        prog = bpf.load_program(asm.program(), ProgType.KPROBE, "t")
        with pytest.raises(NullDereference):
            bpf.run_on_current_task(prog)

    def test_sys_bpf_null_key_efault_patched(self, kernel):
        bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched())
        hmap = bpf.create_map("hash", key_size=4, value_size=4,
                              max_entries=4)
        asm = (Asm()
               .st_imm(4, R10, -32, hmap.map_fd)
               .st_imm(4, R10, -28, 0)
               .st_imm(8, R10, -24, 0)
               .st_imm(8, R10, -16, 0)
               .st_imm(8, R10, -8, 0)
               .mov64_imm(R1, 2)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -32)
               .mov64_imm(R3, 32)
               .call(ids.BPF_FUNC_sys_bpf)
               .exit_())
        result = load_run(bpf, asm)
        assert result == (1 << 64) - 14  # -EFAULT
        assert kernel.healthy


class TestRegistryPopulation:
    def test_249_helpers(self, bpf):
        assert len(bpf.registry) == 249

    def test_36_implemented(self, bpf):
        assert len(bpf.registry.implemented()) == 36

    def test_paper_distribution(self, bpf):
        sizes = [s.callgraph_size for s in bpf.registry.all_specs()]
        n = len(sizes)
        assert sum(1 for s in sizes if s >= 30) / n == \
            pytest.approx(0.522, abs=0.01)
        assert sum(1 for s in sizes if s >= 500) / n == \
            pytest.approx(0.345, abs=0.01)
        assert max(sizes) == 4845

    def test_retire_count_matches_moat_study(self, bpf):
        retire = [s for s in bpf.registry.all_specs()
                  if s.classification == "retire"]
        assert len(retire) == 16

    def test_named_helpers_present(self, bpf):
        for name in ("bpf_sys_bpf", "bpf_loop", "bpf_strtol",
                     "bpf_strncmp", "bpf_get_current_pid_tgid",
                     "bpf_sk_lookup_tcp", "bpf_task_storage_get"):
            assert bpf.registry.by_name(name) is not None

    def test_duplicate_registration_rejected(self, bpf):
        from repro.ebpf.helpers.base import FuncProto, HelperSpec, \
            RetType
        spec = bpf.registry.by_name("bpf_loop")
        clone = HelperSpec(spec.helper_id, "bpf_clone",
                           FuncProto([], RetType.INTEGER))
        with pytest.raises(ValueError):
            bpf.registry.register(clone)


class TestNewerHelpers:
    def test_probe_read_str_copies_string(self, bpf, kernel):
        src = kernel.mem.kmalloc(32)
        kernel.mem.write(src.base, b"hello\x00garbage")
        asm = (Asm()
               .mov64_reg(R1, R10).alu64_imm("add", R1, -16)
               .mov64_imm(R2, 16)
               .ld_imm64(R3, src.base)
               .call(ids.BPF_FUNC_probe_read_str)
               .exit_())
        result = load_run(bpf, asm)
        assert result == 6  # "hello\0"

    def test_probe_read_str_bad_pointer(self, bpf):
        asm = (Asm()
               .mov64_reg(R1, R10).alu64_imm("add", R1, -16)
               .mov64_imm(R2, 16)
               .ld_imm64(R3, 0xFFFF_8880_DEAD_0000)
               .call(ids.BPF_FUNC_probe_read_str)
               .exit_())
        assert load_run(bpf, asm) == (1 << 64) - 14  # -EFAULT

    def test_probe_read_str_truncates_to_size(self, bpf, kernel):
        src = kernel.mem.kmalloc(32)
        kernel.mem.write(src.base, b"0123456789ABCDEF\x00")
        asm = (Asm()
               .mov64_reg(R1, R10).alu64_imm("add", R1, -8)
               .mov64_imm(R2, 8)
               .ld_imm64(R3, src.base)
               .call(ids.BPF_FUNC_probe_read_str)
               .exit_())
        assert load_run(bpf, asm) == 8  # 7 chars + forced NUL

    def test_jiffies_and_boot_clock(self, bpf, kernel):
        kernel.clock.advance(8_000_000)  # 8ms = 2 jiffies at 250 HZ
        asm = Asm().call(ids.BPF_FUNC_jiffies64).exit_()
        assert load_run(bpf, asm) >= 2
        asm2 = Asm().call(ids.BPF_FUNC_ktime_get_boot_ns).exit_()
        assert load_run(bpf, asm2) >= 8_000_000

    def test_perf_event_output_streams(self, bpf):
        pe = bpf.create_map("perf_event_array", max_entries=4096)
        asm = (Asm()
               .mov64_reg(R6, R1)
               .st_imm(8, R10, -8, 0xCAFE)
               .mov64_reg(R1, R6)
               .ld_map_fd(R2, pe.map_fd)
               .mov64_imm(R3, 0)
               .mov64_reg(R4, R10).alu64_imm("add", R4, -8)
               .mov64_imm(R5, 8)
               .call(ids.BPF_FUNC_perf_event_output)
               .exit_())
        assert load_run(bpf, asm) == 0
        assert pe.drain() == [struct.pack("<Q", 0xCAFE)]

    def test_snprintf_formats(self, bpf, kernel):
        fmt = kernel.mem.kmalloc(32)
        kernel.mem.write(fmt.base, b"pid=%d hex=%x\x00")
        asm = (Asm()
               # data array: two u64s on the stack
               .st_imm(8, R10, -16, 42)
               .st_imm(8, R10, -8, 255)
               .mov64_reg(R1, R10).alu64_imm("add", R1, -64)
               .st_imm(8, R10, -64, 0)   # init head of out buffer
               .mov64_imm(R2, 32)
               .ld_imm64(R3, fmt.base)
               .mov64_reg(R4, R10).alu64_imm("add", R4, -16)
               .mov64_imm(R5, 16)
               .call(ids.BPF_FUNC_snprintf)
               .mov64_reg(R6, R0)
               .ldx(1, R0, R10, -64)
               .exit_())
        result = load_run(bpf, asm)
        assert result == ord("p")
        # and the whole rendering landed on the stack
        # (read via the map-free kernel view)

    def test_snprintf_rejects_bad_spec(self, bpf, kernel):
        fmt = kernel.mem.kmalloc(16)
        kernel.mem.write(fmt.base, b"%s\x00")   # %s unsupported
        asm = (Asm()
               .st_imm(8, R10, -8, 1)
               .mov64_reg(R1, R10).alu64_imm("add", R1, -32)
               .st_imm(8, R10, -32, 0)
               .mov64_imm(R2, 16)
               .ld_imm64(R3, fmt.base)
               .mov64_reg(R4, R10).alu64_imm("add", R4, -8)
               .mov64_imm(R5, 8)
               .call(ids.BPF_FUNC_snprintf)
               .exit_())
        assert load_run(bpf, asm) == (1 << 64) - 22  # -EINVAL
