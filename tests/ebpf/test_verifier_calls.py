"""Verifier tests: helper calls, references, locks, subprogs, loops."""

import pytest

from repro.ebpf.asm import Asm
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R4, R5, R6, R10
from repro.ebpf.progs import ProgType
from repro.ebpf.verifier.limits import VerifierLimits
from repro.errors import VerifierError, VerifierLimitExceeded


def expect_reject(load, program, needle, **kwargs):
    with pytest.raises(VerifierError) as exc_info:
        load(program, **kwargs)
    assert needle in str(exc_info.value), str(exc_info.value)


def sk_lookup_asm(map_free_variant="release"):
    """Build the canonical lookup-then-release program."""
    asm = (Asm()
           .st_imm(4, R10, -12, 0)
           .st_imm(4, R10, -8, 0x0A000001)
           .st_imm(2, R10, -4, 0)
           .st_imm(2, R10, -2, 80)
           .mov64_reg(R2, R10).alu64_imm("add", R2, -12)
           .mov64_imm(R3, 12)
           .mov64_imm(R4, 0)
           .mov64_imm(R5, 0)
           .call(ids.BPF_FUNC_sk_lookup_tcp)
           .jmp_imm("jne", R0, 0, "found")
           .mov64_imm(R0, 0).exit_()
           .label("found"))
    if map_free_variant == "release":
        asm.mov64_reg(R1, R0).call(ids.BPF_FUNC_sk_release)
    asm.mov64_imm(R0, 0).exit_()
    return asm.program()


class TestHelperArgs:
    def test_unknown_helper_rejected(self, load):
        expect_reject(load,
                      Asm().call(9999).exit_().program(),
                      "unknown#9999")

    def test_map_arg_must_be_map(self, load):
        program = (Asm()
                   .mov64_imm(R1, 5)     # scalar, not a map
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .st_imm(4, R10, -4, 0)
                   .call(ids.BPF_FUNC_map_lookup_elem)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "map pointer")

    def test_key_must_point_to_initialized_stack(self, bpf):
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=1)
        program = (Asm()
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .ld_map_fd(R1, amap.map_fd)
                   .call(ids.BPF_FUNC_map_lookup_elem)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        with pytest.raises(VerifierError) as exc_info:
            bpf.load_program(program, ProgType.KPROBE, "t")
        assert "uninitialized" in str(exc_info.value)

    def test_const_size_must_be_bounded(self, load):
        program = (Asm()
                   .st_imm(8, R10, -8, 0)
                   .ldx(8, R2, R1, 0)          # ctx load: unknown size
                   .mov64_reg(R1, R10).alu64_imm("add", R1, -8)
                   .mov64_imm(R3, 0)
                   .call(ids.BPF_FUNC_probe_read)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "unbounded")

    def test_mem_size_pair_checked_against_stack(self, load):
        program = (Asm()
                   .st_imm(8, R10, -8, 0)
                   .mov64_reg(R1, R10).alu64_imm("add", R1, -8)
                   .mov64_imm(R2, 64)          # claims 64 bytes
                   .mov64_imm(R3, 0)
                   .call(ids.BPF_FUNC_probe_read)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "invalid stack range")

    def test_helper_with_no_args(self, load):
        load(Asm().call(ids.BPF_FUNC_ktime_get_ns)
             .mov64_imm(R0, 0).exit_().program())

    def test_anything_arg_accepts_scalar_and_pointer(self, bpf):
        # bpf_get_task_stack's first arg is ANYTHING: the shallow
        # check the paper criticizes — even fp passes
        program = (Asm()
                   .mov64_reg(R1, R10)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -8)
                   .st_imm(8, R10, -8, 0)
                   .mov64_imm(R3, 8)
                   .mov64_imm(R4, 0)
                   .call(ids.BPF_FUNC_get_task_stack)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        bpf.load_program(program, ProgType.KPROBE, "t")


class TestReferences:
    def test_leak_rejected(self, load):
        expect_reject(load, sk_lookup_asm(map_free_variant="leak"),
                      "unreleased reference", prog_type=ProgType.XDP)

    def test_lookup_release_accepted(self, load):
        load(sk_lookup_asm(), prog_type=ProgType.XDP)

    def test_release_unreferenced_rejected(self, load):
        program = (Asm()
                   .mov64_reg(R1, R10)   # not a socket at all
                   .call(ids.BPF_FUNC_sk_release)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "socket")

    def test_double_release_rejected(self, load):
        asm = (Asm()
               .st_imm(4, R10, -12, 0)
               .st_imm(4, R10, -8, 0)
               .st_imm(2, R10, -4, 0)
               .st_imm(2, R10, -2, 80)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -12)
               .mov64_imm(R3, 12)
               .mov64_imm(R4, 0)
               .mov64_imm(R5, 0)
               .call(ids.BPF_FUNC_sk_lookup_tcp)
               .jmp_imm("jne", R0, 0, "found")
               .mov64_imm(R0, 0).exit_()
               .label("found")
               .mov64_reg(R6, R0)
               .mov64_reg(R1, R0).call(ids.BPF_FUNC_sk_release)
               .mov64_reg(R1, R6).call(ids.BPF_FUNC_sk_release)
               .mov64_imm(R0, 0)
               .exit_())
        expect_reject(load, asm.program(), "socket",
                      prog_type=ProgType.XDP)

    def test_null_branch_drops_the_obligation(self, load):
        # if the lookup returned NULL there is nothing to release
        asm = (Asm()
               .st_imm(4, R10, -12, 0)
               .st_imm(4, R10, -8, 0)
               .st_imm(2, R10, -4, 0)
               .st_imm(2, R10, -2, 80)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -12)
               .mov64_imm(R3, 12)
               .mov64_imm(R4, 0)
               .mov64_imm(R5, 0)
               .call(ids.BPF_FUNC_sk_lookup_tcp)
               .jmp_imm("jeq", R0, 0, "null")
               .mov64_reg(R1, R0).call(ids.BPF_FUNC_sk_release)
               .label("null")
               .mov64_imm(R0, 0)
               .exit_())
        load(asm.program(), prog_type=ProgType.XDP)

    def test_ringbuf_reserve_needs_submit(self, bpf):
        rb = bpf.create_map("ringbuf", max_entries=4096)
        program = (Asm()
                   .ld_map_fd(R1, rb.map_fd)
                   .mov64_imm(R2, 8)
                   .mov64_imm(R3, 0)
                   .call(ids.BPF_FUNC_ringbuf_reserve)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        with pytest.raises(VerifierError) as exc_info:
            bpf.load_program(program, ProgType.KPROBE, "t")
        assert "unreleased" in str(exc_info.value)

    def test_ringbuf_reserve_submit_ok(self, bpf):
        rb = bpf.create_map("ringbuf", max_entries=4096)
        program = (Asm()
                   .ld_map_fd(R1, rb.map_fd)
                   .mov64_imm(R2, 8)
                   .mov64_imm(R3, 0)
                   .call(ids.BPF_FUNC_ringbuf_reserve)
                   .jmp_imm("jeq", R0, 0, "out")
                   .st_imm(8, R0, 0, 42)      # write into the record
                   .mov64_reg(R1, R0)
                   .mov64_imm(R2, 0)
                   .call(ids.BPF_FUNC_ringbuf_submit)
                   .label("out")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        bpf.load_program(program, ProgType.KPROBE, "t")


class TestSpinLocks:
    @pytest.fixture
    def lock_map(self, bpf):
        return bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=1, with_spin_lock=True)

    def lock_prog(self, lock_map, *, unlock=True, double=False):
        asm = (Asm()
               .st_imm(4, R10, -4, 0)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .ld_map_fd(R1, lock_map.map_fd)
               .call(ids.BPF_FUNC_map_lookup_elem)
               .jmp_imm("jne", R0, 0, "have")
               .mov64_imm(R0, 0).exit_()
               .label("have")
               .mov64_reg(R6, R0)
               .mov64_reg(R1, R6)
               .call(ids.BPF_FUNC_spin_lock))
        if double:
            asm.mov64_reg(R1, R6).call(ids.BPF_FUNC_spin_lock)
        if unlock:
            asm.mov64_reg(R1, R6).call(ids.BPF_FUNC_spin_unlock)
        asm.mov64_imm(R0, 0).exit_()
        return asm.program()

    def test_lock_unlock_ok(self, bpf, lock_map):
        bpf.load_program(self.lock_prog(lock_map), ProgType.KPROBE,
                         "t")

    def test_lock_without_unlock_rejected(self, bpf, lock_map):
        with pytest.raises(VerifierError) as exc_info:
            bpf.load_program(self.lock_prog(lock_map, unlock=False),
                             ProgType.KPROBE, "t")
        assert "spin_lock" in str(exc_info.value)

    def test_double_lock_rejected(self, bpf, lock_map):
        with pytest.raises(VerifierError) as exc_info:
            bpf.load_program(self.lock_prog(lock_map, double=True),
                             ProgType.KPROBE, "t")
        assert "one bpf_spin_lock" in str(exc_info.value)

    def test_helper_call_under_lock_rejected(self, bpf, lock_map):
        asm = (Asm()
               .st_imm(4, R10, -4, 0)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .ld_map_fd(R1, lock_map.map_fd)
               .call(ids.BPF_FUNC_map_lookup_elem)
               .jmp_imm("jne", R0, 0, "have")
               .mov64_imm(R0, 0).exit_()
               .label("have")
               .mov64_reg(R6, R0)
               .mov64_reg(R1, R6)
               .call(ids.BPF_FUNC_spin_lock)
               .call(ids.BPF_FUNC_get_current_task)  # forbidden
               .mov64_reg(R1, R6)
               .call(ids.BPF_FUNC_spin_unlock)
               .mov64_imm(R0, 0)
               .exit_())
        with pytest.raises(VerifierError) as exc_info:
            bpf.load_program(asm.program(), ProgType.KPROBE, "t")
        assert "holding a lock" in str(exc_info.value)

    def test_unlock_without_lock_rejected(self, bpf, lock_map):
        asm = (Asm()
               .st_imm(4, R10, -4, 0)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .ld_map_fd(R1, lock_map.map_fd)
               .call(ids.BPF_FUNC_map_lookup_elem)
               .jmp_imm("jne", R0, 0, "have")
               .mov64_imm(R0, 0).exit_()
               .label("have")
               .mov64_reg(R1, R0)
               .call(ids.BPF_FUNC_spin_unlock)
               .mov64_imm(R0, 0)
               .exit_())
        with pytest.raises(VerifierError) as exc_info:
            bpf.load_program(asm.program(), ProgType.KPROBE, "t")
        assert "not held" in str(exc_info.value)


class TestSubprogs:
    def test_simple_call(self, load):
        program = (Asm()
                   .mov64_imm(R1, 1)
                   .mov64_imm(R2, 2)
                   .call_subprog("add")
                   .exit_()
                   .label("add")
                   .mov64_reg(R0, R1)
                   .alu64_reg("add", R0, R2)
                   .exit_()
                   .program())
        load(program)

    def test_args_passed_r1_to_r5(self, load):
        program = (Asm()
                   .mov64_imm(R1, 1).mov64_imm(R2, 2)
                   .mov64_imm(R3, 3).mov64_imm(R4, 4)
                   .mov64_imm(R5, 5)
                   .call_subprog("f")
                   .exit_()
                   .label("f")
                   .mov64_reg(R0, R5)
                   .exit_()
                   .program())
        load(program)

    def test_callee_r6_not_initialized(self, load):
        program = (Asm()
                   .mov64_imm(R6, 9)
                   .call_subprog("f")
                   .exit_()
                   .label("f")
                   .mov64_reg(R0, R6)   # fresh frame: r6 dead
                   .exit_()
                   .program())
        expect_reject(load, program, "!read_ok")

    def test_recursion_depth_limited(self, load):
        program = (Asm()
                   .label("f")
                   .call_subprog("f")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        with pytest.raises(VerifierLimitExceeded):
            load(program)

    def test_callee_stack_is_private(self, load):
        # caller writes -8; callee reading its own -8 must fail
        program = (Asm()
                   .st_imm(8, R10, -8, 1)
                   .call_subprog("f")
                   .exit_()
                   .label("f")
                   .ldx(8, R0, R10, -8)
                   .exit_()
                   .program())
        expect_reject(load, program, "uninitialized")

    def test_caller_stack_via_arg_pointer(self, load):
        program = (Asm()
                   .st_imm(8, R10, -8, 7)
                   .mov64_reg(R1, R10).alu64_imm("add", R1, -8)
                   .call_subprog("f")
                   .exit_()
                   .label("f")
                   .ldx(8, R0, R1, 0)   # reads the caller's frame
                   .exit_()
                   .program())
        load(program)


class TestBpfLoop:
    def loop_program(self, bpf, nr=10, callback_ret_scalar=True):
        asm = (Asm()
               .mov64_imm(R1, nr)
               .ld_func(R2, "cb")
               .mov64_imm(R3, 0)
               .mov64_imm(R4, 0)
               .call(ids.BPF_FUNC_loop)
               .mov64_imm(R0, 0)
               .exit_()
               .label("cb"))
        if callback_ret_scalar:
            asm.mov64_imm(R0, 0)
        else:
            asm.mov64_reg(R0, R10)  # returns a pointer: rejected
        asm.exit_()
        return asm.program()

    def test_loop_with_callback_accepted(self, bpf):
        bpf.load_program(self.loop_program(bpf), ProgType.KPROBE, "t")

    def test_callback_must_return_scalar(self, bpf):
        with pytest.raises(VerifierError) as exc_info:
            bpf.load_program(
                self.loop_program(bpf, callback_ret_scalar=False),
                ProgType.KPROBE, "t")
        assert "scalar" in str(exc_info.value)

    def test_callback_arg_must_be_func(self, load):
        program = (Asm()
                   .mov64_imm(R1, 10)
                   .mov64_imm(R2, 0)    # not a PTR_TO_FUNC
                   .mov64_imm(R3, 0)
                   .mov64_imm(R4, 0)
                   .call(ids.BPF_FUNC_loop)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "callback")

    def test_ctx_arg_stack_or_null(self, bpf):
        program = (Asm()
                   .st_imm(8, R10, -8, 0)
                   .mov64_imm(R1, 10)
                   .ld_func(R2, "cb")
                   .mov64_reg(R3, R10).alu64_imm("add", R3, -8)
                   .mov64_imm(R4, 0)
                   .call(ids.BPF_FUNC_loop)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .label("cb")
                   .ldx(8, R0, R2, 0)    # callback reads caller stack
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        bpf.load_program(program, ProgType.KPROBE, "t")

    def test_huge_nr_loops_verifies_in_constant_work(self, bpf):
        """The verifier checks the callback once, not per iteration —
        which is exactly why it cannot bound total run time (§2.2)."""
        small = bpf.load_program(self.loop_program(bpf, nr=10),
                                 ProgType.KPROBE, "a")
        huge = bpf.load_program(self.loop_program(bpf, nr=1 << 23),
                                ProgType.KPROBE, "b")
        assert small.verifier_stats.insns_processed == \
            huge.verifier_stats.insns_processed


class TestTailCall:
    def test_tail_call_args_checked(self, bpf):
        pa = bpf.create_map("prog_array", max_entries=4)
        program = (Asm()
                   .mov64_reg(R1, R10)     # not ctx
                   .ld_map_fd(R2, pa.map_fd)
                   .mov64_imm(R3, 0)
                   .call(ids.BPF_FUNC_tail_call)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        with pytest.raises(VerifierError):
            bpf.load_program(program, ProgType.KPROBE, "t")

    def test_tail_call_ok(self, bpf):
        pa = bpf.create_map("prog_array", max_entries=4)
        program = (Asm()
                   .mov64_reg(R6, R1)
                   .mov64_reg(R1, R6)
                   .ld_map_fd(R2, pa.map_fd)
                   .mov64_imm(R3, 0)
                   .call(ids.BPF_FUNC_tail_call)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        bpf.load_program(program, ProgType.KPROBE, "t")
