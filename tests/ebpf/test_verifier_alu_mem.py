"""Verifier tests: ALU rules, pointer arithmetic, memory access."""

import pytest

from repro.ebpf.asm import Asm
from repro.ebpf.bugs import BugConfig
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R4, R5, R6, R10
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.errors import VerifierError


def expect_reject(load, program, needle, **kwargs):
    with pytest.raises(VerifierError) as exc_info:
        load(program, **kwargs)
    assert needle in str(exc_info.value), str(exc_info.value)


class TestScalarAlu:
    def test_div_by_zero_const_rejected(self, load):
        program = (Asm().mov64_imm(R0, 8).alu64_imm("div", R0, 0)
                   .exit_().program())
        expect_reject(load, program, "division by zero")

    def test_mod_by_zero_const_rejected(self, load):
        program = (Asm().mov64_imm(R0, 8).alu64_imm("mod", R0, 0)
                   .exit_().program())
        expect_reject(load, program, "division by zero")

    def test_oversize_shift_rejected(self, load):
        program = (Asm().mov64_imm(R0, 1).alu64_imm("lsh", R0, 64)
                   .exit_().program())
        expect_reject(load, program, "invalid shift")

    def test_alu32_shift_32_rejected(self, load):
        program = (Asm().mov64_imm(R0, 1).alu32_imm("lsh", R0, 32)
                   .exit_().program())
        expect_reject(load, program, "invalid shift")

    def test_shift_63_ok(self, load):
        load(Asm().mov64_imm(R0, 1).alu64_imm("lsh", R0, 63)
             .mov64_imm(R0, 0).exit_().program())

    def test_neg_scalar_ok(self, load):
        load(Asm().mov64_imm(R0, 5).neg64(R0).mov64_imm(R0, 0)
             .exit_().program())

    def test_neg_pointer_rejected(self, load):
        program = (Asm().mov64_reg(R2, R10).neg64(R2)
                   .mov64_imm(R0, 0).exit_().program())
        expect_reject(load, program, "negation")

    def test_bounds_tracked_through_and(self, load):
        # r0 &= 3 makes return provably in [0, 3] -> legal for XDP
        program = (Asm()
                   .ldx(4, R0, R1, 0)
                   .alu64_imm("and", R0, 3)
                   .exit_()
                   .program())
        load(program, prog_type=ProgType.XDP)

    def test_mov32_truncates_bounds(self, load):
        # after alu32 mov, the value fits in 32 bits
        program = (Asm()
                   .ldx(4, R0, R1, 0)
                   .alu32_reg("mov", R0, R0)
                   .alu64_imm("and", R0, 1)
                   .exit_()
                   .program())
        load(program, prog_type=ProgType.XDP)


class TestPointerArithmetic:
    def test_stack_plus_const_ok(self, load):
        program = (Asm()
                   .mov64_reg(R2, R10)
                   .alu64_imm("add", R2, -8)
                   .st_imm(8, R2, 0, 1)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        load(program)

    def test_pointer_minus_pointer_rejected_unpriv(self, load):
        program = (Asm()
                   .mov64_reg(R2, R10)
                   .alu64_reg("sub", R2, R10)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "pointer")

    def test_pointer_minus_pointer_ok_privileged(self, load):
        program = (Asm()
                   .mov64_reg(R2, R10)
                   .alu64_reg("sub", R2, R10)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        load(program, allow_ptr_leaks=True)

    def test_pointer_mul_rejected(self, load):
        program = (Asm()
                   .mov64_reg(R2, R10)
                   .alu64_imm("mul", R2, 2)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "mul")

    def test_scalar_minus_pointer_rejected(self, load):
        program = (Asm()
                   .mov64_imm(R2, 100)
                   .alu64_reg("sub", R2, R10)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "pointer")

    def test_32bit_pointer_arith_rejected(self, load):
        program = (Asm()
                   .mov64_reg(R2, R10)
                   .alu32_imm("add", R2, 4)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "32-bit arithmetic")

    def test_ctx_plus_const_ok(self, load):
        program = (Asm()
                   .mov64_reg(R2, R1)
                   .alu64_imm("add", R2, 4)
                   .ldx(4, R0, R2, 0)   # = ctx field at offset 4
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        load(program)

    def test_or_null_arith_rejected_when_patched(self, kernel):
        bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched())
        hmap = bpf.create_map("hash", key_size=4, value_size=8,
                              max_entries=4)
        program = (Asm()
                   .st_imm(4, R10, -4, 0)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .ld_map_fd(R1, hmap.map_fd)
                   .call(ids.BPF_FUNC_map_lookup_elem)
                   .alu64_imm("add", R0, 16)   # before null check!
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        with pytest.raises(VerifierError) as exc_info:
            bpf.load_program(program, ProgType.KPROBE, "t")
        assert "or_null" in str(exc_info.value) or \
            "prohibited" in str(exc_info.value)


class TestStackAccess:
    def test_read_uninitialized_stack_rejected(self, load):
        program = (Asm().ldx(8, R0, R10, -8).exit_().program())
        expect_reject(load, program, "uninitialized")

    def test_write_then_read_ok(self, load):
        program = (Asm()
                   .st_imm(8, R10, -8, 42)
                   .ldx(8, R0, R10, -8)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        load(program)

    def test_below_stack_rejected(self, load):
        program = (Asm().st_imm(8, R10, -520, 1).mov64_imm(R0, 0)
                   .exit_().program())
        expect_reject(load, program, "invalid stack access")

    def test_above_fp_rejected(self, load):
        program = (Asm().st_imm(8, R10, 8, 1).mov64_imm(R0, 0)
                   .exit_().program())
        expect_reject(load, program, "invalid stack access")

    def test_misaligned_stack_access_rejected(self, load):
        program = (Asm().st_imm(4, R10, -7, 1).mov64_imm(R0, 0)
                   .exit_().program())
        expect_reject(load, program, "misaligned")

    def test_spill_and_fill_pointer(self, load):
        program = (Asm()
                   .stx(8, R10, -8, R1)     # spill ctx
                   .ldx(8, R2, R10, -8)     # fill it back
                   .ldx(4, R0, R2, 0)       # still usable as ctx
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        load(program)

    def test_partial_spill_of_pointer_rejected(self, load):
        program = (Asm()
                   .stx(4, R10, -4, R1)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "partial spill")

    def test_partial_read_of_spilled_pointer_rejected(self, load):
        program = (Asm()
                   .stx(8, R10, -8, R1)
                   .ldx(4, R0, R10, -8)
                   .exit_()
                   .program())
        expect_reject(load, program, "partial read")

    def test_corrupting_spilled_pointer_rejected(self, load):
        program = (Asm()
                   .stx(8, R10, -8, R1)
                   .st_imm(1, R10, -8, 0x41)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "corrupting")

    def test_variable_stack_offset_rejected(self, load):
        program = (Asm()
                   .ldx(8, R2, R1, 0)        # unknown scalar
                   .mov64_reg(R3, R10)
                   .alu64_reg("add", R3, R2)
                   .st_imm(8, R3, -8, 1)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "variable stack")

    def test_scalar_deref_rejected(self, load):
        program = (Asm()
                   .mov64_imm(R2, 0x1234)
                   .ldx(8, R0, R2, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "scalar")


class TestMapAccess:
    @pytest.fixture
    def setup(self, bpf):
        amap = bpf.create_map("array", key_size=4, value_size=16,
                              max_entries=4)

        def build(after_lookup):
            asm = (Asm()
                   .st_imm(4, R10, -4, 0)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .ld_map_fd(R1, amap.map_fd)
                   .call(ids.BPF_FUNC_map_lookup_elem)
                   .jmp_imm("jne", R0, 0, "have")
                   .mov64_imm(R0, 0).exit_()
                   .label("have"))
            after_lookup(asm)
            asm.mov64_imm(R0, 0).exit_()
            return asm.program()
        return bpf, build

    def test_in_bounds_access(self, setup):
        bpf, build = setup
        program = build(lambda asm: asm.st_imm(8, R0, 8, 1))
        bpf.load_program(program, ProgType.KPROBE, "t")

    def test_access_past_value_size_rejected(self, setup):
        bpf, build = setup
        program = build(lambda asm: asm.st_imm(8, R0, 16, 1))
        with pytest.raises(VerifierError) as exc_info:
            bpf.load_program(program, ProgType.KPROBE, "t")
        assert "map value" in str(exc_info.value)

    def test_negative_offset_rejected(self, setup):
        bpf, build = setup
        program = build(lambda asm: asm.st_imm(8, R0, -8, 1))
        with pytest.raises(VerifierError):
            bpf.load_program(program, ProgType.KPROBE, "t")

    def test_unchecked_or_null_deref_rejected(self, bpf):
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=4)
        program = (Asm()
                   .st_imm(4, R10, -4, 0)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .ld_map_fd(R1, amap.map_fd)
                   .call(ids.BPF_FUNC_map_lookup_elem)
                   .ldx(8, R0, R0, 0)   # no null check!
                   .exit_()
                   .program())
        with pytest.raises(VerifierError) as exc_info:
            bpf.load_program(program, ProgType.KPROBE, "t")
        assert "NULL" in str(exc_info.value)

    def test_bounded_variable_offset_ok(self, setup):
        bpf, build = setup

        def body(asm):
            (asm.ldx(8, R3, R0, 0)
                .alu64_imm("and", R3, 7)     # r3 in [0, 7]
                .alu64_reg("add", R0, R3)    # value + [0,7]
                .st_imm(8, R0, 0, 1))        # max off 7+8 <= 16
        bpf.load_program(build(body), ProgType.KPROBE, "t")

    def test_unbounded_variable_offset_rejected(self, setup):
        bpf, build = setup

        def body(asm):
            (asm.ldx(8, R3, R0, 0)           # unknown scalar
                .alu64_reg("add", R0, R3)
                .st_imm(8, R0, 0, 1))
        with pytest.raises(VerifierError):
            bpf.load_program(build(body), ProgType.KPROBE, "t")


class TestCtxAndPacket:
    def test_ctx_field_load(self, load):
        load(Asm().ldx(4, R0, R1, 0).mov64_imm(R0, 0).exit_()
             .program(), prog_type=ProgType.XDP)

    def test_ctx_out_of_range_rejected(self, load):
        expect_reject(load,
                      Asm().ldx(8, R0, R1, 400).exit_().program(),
                      "context", prog_type=ProgType.XDP)

    def test_ctx_write_readonly_rejected(self, load):
        program = (Asm().st_imm(4, R1, 0, 7).mov64_imm(R0, 0)
                   .exit_().program())
        expect_reject(load, program, "read-only",
                      prog_type=ProgType.XDP)

    def test_ctx_write_writable_field_ok(self, load):
        # 'mark' at offset 24 is writable
        load(Asm().st_imm(4, R1, 24, 7).mov64_imm(R0, 0).exit_()
             .program(), prog_type=ProgType.XDP)

    def test_packet_access_without_check_rejected(self, load):
        program = (Asm()
                   .ldx(8, R2, R1, 8)
                   .ldx(1, R0, R2, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "packet",
                      prog_type=ProgType.XDP)

    def test_packet_access_with_check_ok(self, load):
        program = (Asm()
                   .ldx(8, R2, R1, 8)
                   .ldx(8, R3, R1, 16)
                   .mov64_reg(R4, R2).alu64_imm("add", R4, 14)
                   .jmp_reg("jgt", R4, R3, "out")
                   .ldx(1, R0, R2, 13)
                   .label("out")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        load(program, prog_type=ProgType.XDP)

    def test_packet_access_beyond_proven_range_rejected(self, load):
        program = (Asm()
                   .ldx(8, R2, R1, 8)
                   .ldx(8, R3, R1, 16)
                   .mov64_reg(R4, R2).alu64_imm("add", R4, 14)
                   .jmp_reg("jgt", R4, R3, "out")
                   .ldx(1, R0, R2, 14)     # one past the proven 14
                   .label("out")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "packet",
                      prog_type=ProgType.XDP)

    def test_pkt_end_deref_rejected(self, load):
        program = (Asm()
                   .ldx(8, R3, R1, 16)
                   .ldx(1, R0, R3, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "pkt_end",
                      prog_type=ProgType.XDP)

    def test_write_into_packet_ok_xdp(self, load):
        program = (Asm()
                   .ldx(8, R2, R1, 8)
                   .ldx(8, R3, R1, 16)
                   .mov64_reg(R4, R2).alu64_imm("add", R4, 2)
                   .jmp_reg("jgt", R4, R3, "out")
                   .st_imm(1, R2, 0, 0xAA)
                   .label("out")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        load(program, prog_type=ProgType.XDP)


class TestPointerLeaks:
    def test_store_pointer_to_map_rejected_when_patched(self, kernel):
        bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched())
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=1)
        program = (Asm()
                   .st_imm(4, R10, -4, 0)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .ld_map_fd(R1, amap.map_fd)
                   .call(ids.BPF_FUNC_map_lookup_elem)
                   .jmp_imm("jne", R0, 0, "have")
                   .mov64_imm(R0, 0).exit_()
                   .label("have")
                   .stx(8, R0, 0, R10)      # leak fp into the map
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        with pytest.raises(VerifierError) as exc_info:
            bpf.load_program(program, ProgType.KPROBE, "t")
        assert "leak" in str(exc_info.value)

    def test_store_pointer_allowed_privileged(self, kernel):
        bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched())
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=1)
        program = (Asm()
                   .st_imm(4, R10, -4, 0)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .ld_map_fd(R1, amap.map_fd)
                   .call(ids.BPF_FUNC_map_lookup_elem)
                   .jmp_imm("jne", R0, 0, "have")
                   .mov64_imm(R0, 0).exit_()
                   .label("have")
                   .stx(8, R0, 0, R10)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        bpf.load_program(program, ProgType.KPROBE, "t",
                         allow_ptr_leaks=True)
