"""Malformed-program parity: every engine rejects garbage identically.

The simulator explicitly supports running *unverified* programs — that
is how the attack corpus demonstrates what the verifier is for.  The
flip side is a contract on the engines themselves: undecodable,
truncated and out-of-range programs must fail with the same
:class:`~repro.errors.BpfRuntimeError` message, the same instruction
accounting, the same virtual-clock total and the same kernel state on
every tier, and no engine may leak its frame's stack allocation on
the way out.  Two real divergences motivated this suite (and are
regression-pinned here):

* truncated ``ld_imm64``: the pseudo (``BPF_PSEUDO_MAP_FD`` /
  ``BPF_PSEUDO_FUNC``) forms skipped the predecode bounds check, and
  the decode-per-step path let a raw ``IndexError`` escape instead of
  a ``BpfRuntimeError``;
* the precomputed signed jump immediates predecode promised but no
  engine consumed (now load-bearing in the fast and compiled tiers,
  exercised by the signed-jump case below).
"""

import pytest

from repro.ebpf import isa
from repro.ebpf.asm import Asm
from repro.ebpf.interpreter import ENGINES, BpfVm
from repro.ebpf.isa import R0, R2, Insn
from repro.ebpf.loader import BpfSubsystem, LoadedProgram
from repro.ebpf.progs import ProgType
from repro.ebpf.verifier.analyzer import VerifierStats
from repro.errors import BpfRuntimeError
from repro.kernel import Kernel

LD_IMM64_OP = isa.BPF_LD | isa.BPF_IMM | isa.BPF_DW


def _observe_failure(insns):
    """Run an unverified program on one engine per pass and capture
    the full failure observation: message, accounting, clock, taint,
    and whether the frame's stack allocation leaked."""
    seen = {}
    for engine in ENGINES:
        kernel = Kernel()
        bpf = BpfSubsystem(kernel)
        vm = BpfVm(kernel, bpf, engine=engine)
        prog = LoadedProgram(1, "junk", ProgType.KPROBE, list(insns),
                             VerifierStats())
        ctx = kernel.mem.kmalloc(64, type_name="pt_regs", owner="test")
        with pytest.raises(BpfRuntimeError) as err:
            vm.run(prog, ctx.base)
        leaked = [a for a in kernel.mem.live_allocations(owner="bpf:junk")
                  if a.type_name == "bpf_stack"]
        seen[engine] = (str(err.value), vm.insns_executed,
                        kernel.clock.now_ns, kernel.log.tainted,
                        len(leaked))
    baseline = seen["interp"]
    for engine, obs in seen.items():
        assert obs == baseline, (
            f"{engine} diverged: interp={baseline}, {engine}={obs}")
    assert baseline[4] == 0, f"stack allocation leaked: {baseline}"
    return baseline


class TestTruncatedLdImm64:
    """All three ``ld_imm64`` forms, truncated to one slot at the end
    of the program, must raise the same decode error everywhere."""

    @pytest.mark.parametrize("src", [0, isa.BPF_PSEUDO_MAP_FD,
                                     isa.BPF_PSEUDO_FUNC],
                             ids=["generic", "map_fd", "func"])
    def test_truncated_forms_agree(self, src):
        insns = [
            Insn(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K, 0, 0, 0, 0),
            Insn(LD_IMM64_OP, 2, src, 0, 7),   # second slot missing
        ]
        message, executed, _, _, _ = _observe_failure(insns)
        assert message == "incomplete ld_imm64 at 1"
        assert executed == 2  # the mov, plus the bad slot itself

    def test_truncated_as_first_insn(self):
        message, executed, _, _, _ = _observe_failure(
            [Insn(LD_IMM64_OP, 2, 0, 0, 7)])
        assert message == "incomplete ld_imm64 at 0"
        assert executed == 1


class TestOutOfRangePc:
    def test_fall_off_the_end(self):
        message, executed, _, _, _ = _observe_failure(
            [Insn(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K,
                  0, 0, 0, 0)])
        assert message == "pc out of range: 1"
        assert executed == 1

    def test_empty_program(self):
        message, executed, _, _, _ = _observe_failure([])
        assert message == "pc out of range: 0"
        assert executed == 0

    def test_ja_beyond_the_end(self):
        message, _, _, _, _ = _observe_failure(
            [Insn(isa.BPF_JMP | isa.BPF_JA, 0, 0, 100, 0),
             Insn(isa.BPF_JMP | isa.BPF_EXIT)])
        assert message == "pc out of range: 101"

    def test_ja_before_the_start(self):
        message, _, _, _, _ = _observe_failure(
            [Insn(isa.BPF_JMP | isa.BPF_JA, 0, 0, -5, 0),
             Insn(isa.BPF_JMP | isa.BPF_EXIT)])
        assert message == "pc out of range: -4"

    def test_taken_conditional_beyond_the_end(self):
        # jsgt with a negative immediate: exercises the precomputed
        # signed immediate in the taken decision on every tier
        insns = [
            Insn(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K, 0, 0, 0, 5),
            Insn(isa.BPF_JMP | isa.BPF_JSGT | isa.BPF_K,
                 0, 0, 50, -3),
            Insn(isa.BPF_JMP | isa.BPF_EXIT),
        ]
        message, executed, _, _, _ = _observe_failure(insns)
        assert message == "pc out of range: 52"
        assert executed == 2

    def test_untaken_conditional_falls_through(self):
        # same shape, but r0 makes the signed compare false — every
        # engine must fall through to EXIT instead of jumping
        insns = [
            Insn(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K,
                 0, 0, 0, -7),
            Insn(isa.BPF_JMP | isa.BPF_JSGT | isa.BPF_K,
                 0, 0, 50, -3),
            Insn(isa.BPF_JMP | isa.BPF_EXIT),
        ]
        seen = {}
        for engine in ENGINES:
            kernel = Kernel()
            bpf = BpfSubsystem(kernel)
            vm = BpfVm(kernel, bpf, engine=engine)
            prog = LoadedProgram(1, "junk", ProgType.KPROBE, insns,
                                 VerifierStats())
            ctx = kernel.mem.kmalloc(64, type_name="pt_regs",
                                     owner="test")
            seen[engine] = (vm.run(prog, ctx.base),
                            vm.insns_executed, kernel.clock.now_ns)
        assert len(set(seen.values())) == 1, seen


class TestUndecodable:
    def test_bad_opcode(self):
        # BPF_LD | BPF_ABS: a real opcode the simulator doesn't model
        message, _, _, _, _ = _observe_failure(
            [Insn(0x20, 0, 0, 0, 0),
             Insn(isa.BPF_JMP | isa.BPF_EXIT)])
        assert "unsupported opcode" in message

    def test_unsupported_alu_op(self):
        # BPF_END is not in the simulator's ALU repertoire
        message, _, _, _, _ = _observe_failure(
            [Insn(isa.BPF_ALU64 | 0xD0 | isa.BPF_K, 0, 0, 0, 16),
             Insn(isa.BPF_JMP | isa.BPF_EXIT)])
        assert "unsupported" in message

    def test_bad_opcode_mid_program_counts_prefix(self):
        _, executed, clock_ns, _, _ = _observe_failure(
            [Insn(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K,
                  0, 0, 0, 1),
             Insn(isa.BPF_ALU64 | isa.BPF_ADD | isa.BPF_K,
                  0, 0, 0, 1),
             Insn(0xFF, 0, 0, 0, 0)])
        assert executed == 3
        assert clock_ns == 3


class TestRuntimeLimits:
    def test_call_depth_agrees(self):
        # a subprogram that calls itself: depth 9 must be refused with
        # the same message and accounting on every engine
        insns = (Asm()
                 .call_subprog("self")
                 .exit_()
                 .label("self")
                 .call_subprog("self")
                 .exit_()
                 .program())
        message, _, _, _, _ = _observe_failure(insns)
        assert message == "call depth exceeded at run time"

    def test_deep_stack_frames_all_freed(self):
        # nested (non-recursive) calls: every frame's 512-byte stack
        # must be freed on success, on every engine
        for engine in ENGINES:
            kernel = Kernel()
            bpf = BpfSubsystem(kernel)
            vm = BpfVm(kernel, bpf, engine=engine)
            insns = (Asm()
                     .call_subprog("a")
                     .exit_()
                     .label("a")
                     .call_subprog("b")
                     .exit_()
                     .label("b")
                     .mov64_imm(R0, 9)
                     .exit_()
                     .program())
            prog = LoadedProgram(1, "deep", ProgType.KPROBE, insns,
                                 VerifierStats())
            ctx = kernel.mem.kmalloc(64, type_name="pt_regs",
                                     owner="test")
            assert vm.run(prog, ctx.base) == 9
            assert not [a for a in
                        kernel.mem.live_allocations(owner="bpf:deep")
                        if a.type_name == "bpf_stack"], engine

    def test_oops_path_frees_stack_everywhere(self):
        # a wild store raises KernelOops (not BpfRuntimeError) — the
        # unwind must still free the frame stack on every engine
        from repro.errors import KernelOops
        insns = (Asm()
                 .ld_imm64(R2, 0xDEAD_0000)
                 .st_imm(8, R2, 0, 1)
                 .mov64_imm(R0, 0)
                 .exit_()
                 .program())
        for engine in ENGINES:
            kernel = Kernel()
            bpf = BpfSubsystem(kernel)
            vm = BpfVm(kernel, bpf, engine=engine)
            prog = LoadedProgram(1, "wild", ProgType.KPROBE, insns,
                                 VerifierStats())
            ctx = kernel.mem.kmalloc(64, type_name="pt_regs",
                                     owner="test")
            with pytest.raises(KernelOops):
                vm.run(prog, ctx.base)
            assert not [a for a in
                        kernel.mem.live_allocations(owner="bpf:wild")
                        if a.type_name == "bpf_stack"], engine
