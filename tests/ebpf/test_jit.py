"""JIT lowering tests."""

import pytest

from repro.ebpf import isa
from repro.ebpf.asm import Asm
from repro.ebpf.bugs import BugConfig
from repro.ebpf.isa import R0, R1, R3
from repro.ebpf.jit import jit_compile


def div_then_branch():
    return (Asm()
            .mov64_imm(R3, 8)
            .alu64_imm("div", R3, 2)
            .jmp_imm("jgt", R3, 7, "skip")
            .mov64_imm(R0, 1)
            .label("skip")
            .mov64_imm(R0, 0)
            .exit_()
            .program())


class TestJit:
    def test_identity_without_bug(self):
        program = div_then_branch()
        result = jit_compile(program, BugConfig.all_patched())
        assert result.insns == program
        assert result.miscompiled == []

    def test_bug_shifts_branch_after_div(self):
        program = div_then_branch()
        result = jit_compile(program, BugConfig())
        assert len(result.miscompiled) == 1
        index = result.miscompiled[0]
        assert result.insns[index].off == program[index].off + 1

    def test_branch_without_preceding_div_untouched(self):
        program = (Asm()
                   .mov64_imm(R3, 8)
                   .jmp_imm("jgt", R3, 7, "skip")
                   .mov64_imm(R0, 1)
                   .label("skip")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        result = jit_compile(program, BugConfig())
        assert result.insns == program

    def test_mod_also_triggers_gadget(self):
        program = (Asm()
                   .mov64_imm(R3, 8)
                   .alu64_imm("mod", R3, 3)
                   .jmp_imm("jgt", R3, 7, "skip")
                   .mov64_imm(R0, 1)
                   .label("skip")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        result = jit_compile(program, BugConfig())
        assert result.miscompiled

    def test_unconditional_jump_untouched(self):
        program = (Asm()
                   .mov64_imm(R3, 8)
                   .alu64_imm("div", R3, 2)
                   .ja("end")
                   .mov64_imm(R0, 1)
                   .label("end")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        result = jit_compile(program, BugConfig())
        assert result.insns == program

    def test_backward_branch_untouched(self):
        program = (Asm()
                   .label("top")
                   .mov64_imm(R3, 8)
                   .alu64_imm("div", R3, 2)
                   .jmp_imm("jgt", R3, 100, "top")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        result = jit_compile(program, BugConfig())
        # off < 0: the modeled bug only affects forward displacement
        assert result.insns == program

    def test_length_preserved(self):
        program = div_then_branch()
        assert len(jit_compile(program).insns) == len(program)
