"""BPF_ATOMIC (XADD) and JMP32 tests."""

import struct

import pytest

from repro.ebpf.asm import Asm
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R10
from repro.ebpf.progs import ProgType
from repro.errors import VerifierError


def expect_reject(load, program, needle, **kwargs):
    with pytest.raises(VerifierError) as exc_info:
        load(program, **kwargs)
    assert needle in str(exc_info.value), str(exc_info.value)


class TestAtomicVerifier:
    def test_xadd_on_stack_ok(self, load):
        program = (Asm()
                   .st_imm(8, R10, -8, 5)
                   .mov64_imm(R2, 3)
                   .atomic_add(8, R10, -8, R2)
                   .ldx(8, R0, R10, -8)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        load(program)

    def test_xadd_on_map_value_ok(self, bpf):
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=1)
        program = (Asm()
                   .st_imm(4, R10, -4, 0)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .ld_map_fd(R1, amap.map_fd)
                   .call(ids.BPF_FUNC_map_lookup_elem)
                   .jmp_imm("jne", R0, 0, "have")
                   .mov64_imm(R0, 0).exit_()
                   .label("have")
                   .mov64_imm(R2, 1)
                   .atomic_add(8, R0, 0, R2)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        bpf.load_program(program, ProgType.KPROBE, "t")

    def test_xadd_on_uninitialized_stack_rejected(self, load):
        program = (Asm()
                   .mov64_imm(R2, 3)
                   .atomic_add(8, R10, -8, R2)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "uninitialized")

    def test_xadd_of_pointer_rejected(self, load):
        program = (Asm()
                   .st_imm(8, R10, -8, 0)
                   .atomic_add(8, R10, -8, R10)   # add fp?!
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        expect_reject(load, program, "pointer")

    def test_xadd_out_of_bounds_rejected(self, bpf):
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=1)
        program = (Asm()
                   .st_imm(4, R10, -4, 0)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .ld_map_fd(R1, amap.map_fd)
                   .call(ids.BPF_FUNC_map_lookup_elem)
                   .jmp_imm("jne", R0, 0, "have")
                   .mov64_imm(R0, 0).exit_()
                   .label("have")
                   .mov64_imm(R2, 1)
                   .atomic_add(8, R0, 8, R2)     # off 8 + 8 > 8
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        with pytest.raises(VerifierError):
            bpf.load_program(program, ProgType.KPROBE, "t")


class TestAtomicInterpreter:
    def test_xadd_executes(self, bpf):
        program = (Asm()
                   .st_imm(8, R10, -8, 40)
                   .mov64_imm(R2, 2)
                   .atomic_add(8, R10, -8, R2)
                   .ldx(8, R0, R10, -8)
                   .exit_()
                   .program())
        prog = bpf.load_program(program, ProgType.KPROBE, "t")
        assert bpf.run_on_current_task(prog) == 42

    def test_xadd_4byte_wraps(self, bpf):
        program = (Asm()
                   .st_imm(4, R10, -8, -1)    # 0xFFFFFFFF
                   .st_imm(4, R10, -4, 0)
                   .mov64_imm(R2, 1)
                   .atomic_add(4, R10, -8, R2)
                   .ldx(8, R0, R10, -8)
                   .exit_()
                   .program())
        prog = bpf.load_program(program, ProgType.KPROBE, "t")
        assert bpf.run_on_current_task(prog) == 0  # wrapped in place

    def test_concurrent_counter_pattern(self, bpf):
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=1)
        program = (Asm()
                   .st_imm(4, R10, -4, 0)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .ld_map_fd(R1, amap.map_fd)
                   .call(ids.BPF_FUNC_map_lookup_elem)
                   .jmp_imm("jne", R0, 0, "have")
                   .mov64_imm(R0, 0).exit_()
                   .label("have")
                   .mov64_imm(R2, 1)
                   .atomic_add(8, R0, 0, R2)
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        prog = bpf.load_program(program, ProgType.KPROBE, "t")
        for __ in range(5):
            bpf.run_on_current_task(prog)
        assert struct.unpack("<Q", amap.read_value(0))[0] == 5


class TestJmp32:
    def test_const_decision(self, load):
        # 0x1_0000_0001 compared as 32-bit == 1
        program = (Asm()
                   .ld_imm64(R2, 0x1_0000_0001)
                   .jmp32_imm("jeq", R2, 1, "yes")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .label("yes")
                   .mov64_imm(R0, 1)
                   .exit_()
                   .program())
        load(program)

    def test_jmp32_runtime_masks_high_bits(self, bpf):
        program = (Asm()
                   .ld_imm64(R2, 0x1_0000_0001)
                   .jmp32_imm("jeq", R2, 1, "yes")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .label("yes")
                   .mov64_imm(R0, 1)
                   .exit_()
                   .program())
        prog = bpf.load_program(program, ProgType.KPROBE, "t")
        assert bpf.run_on_current_task(prog) == 1

    def test_jmp64_would_differ(self, bpf):
        program = (Asm()
                   .ld_imm64(R2, 0x1_0000_0001)
                   .jmp_imm("jeq", R2, 1, "yes")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .label("yes")
                   .mov64_imm(R0, 1)
                   .exit_()
                   .program())
        prog = bpf.load_program(program, ProgType.KPROBE, "t")
        assert bpf.run_on_current_task(prog) == 0

    def test_jmp32_signed_comparison(self, bpf):
        # low 32 bits 0xFFFFFFFF are -1 as s32
        program = (Asm()
                   .ld_imm64(R2, 0xFFFF_FFFF)
                   .jmp32_imm("jslt", R2, 0, "neg")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .label("neg")
                   .mov64_imm(R0, 1)
                   .exit_()
                   .program())
        prog = bpf.load_program(program, ProgType.KPROBE, "t")
        assert bpf.run_on_current_task(prog) == 1

    def test_jmp32_on_pointer_rejected(self, load):
        program = (Asm()
                   .jmp32_imm("jeq", R10, 0, "x")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .label("x")
                   .mov64_imm(R0, 1)
                   .exit_()
                   .program())
        expect_reject(load, program, "pointer")

    def test_jmp32_reg_form(self, bpf):
        program = (Asm()
                   .ld_imm64(R2, 0x1_0000_0005)
                   .mov64_imm(R3, 5)
                   .jmp32_reg("jeq", R2, R3, "yes")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .label("yes")
                   .mov64_imm(R0, 1)
                   .exit_()
                   .program())
        prog = bpf.load_program(program, ProgType.KPROBE, "t")
        assert bpf.run_on_current_task(prog) == 1

    def test_jmp32_unknown_operands_fork(self, load):
        # both sides must verify
        program = (Asm()
                   .ldx(8, R2, R1, 0)
                   .jmp32_imm("jgt", R2, 100, "big")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .label("big")
                   .mov64_imm(R0, 1)
                   .exit_()
                   .program())
        load(program)


class TestJmp32Refinement:
    def test_jmp32_refines_small_ranges(self, bpf):
        """When operands provably fit in the positive 32-bit range,
        jmp32 refinement is as precise as the 64-bit one — enough to
        prove a variable map offset in bounds."""
        from repro.ebpf.helpers import ids
        amap = bpf.create_map("array", key_size=4, value_size=16,
                              max_entries=1)
        program = (Asm()
                   .st_imm(4, R10, -4, 0)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .ld_map_fd(R1, amap.map_fd)
                   .call(ids.BPF_FUNC_map_lookup_elem)
                   .jmp_imm("jne", R0, 0, "have")
                   .mov64_imm(R0, 0).exit_()
                   .label("have")
                   .ldx(8, R3, R0, 0)
                   .alu32_reg("mov", R3, R3)       # r3 fits in 32 bits
                   .alu64_imm("and", R3, 0x7fffffff)
                   .jmp32_imm("jgt", R3, 7, "out")  # 32-bit bound check
                   .alu64_reg("add", R0, R3)        # off <= 7
                   .st_imm(8, R0, 0, 1)             # 7 + 8 <= 16
                   .label("out")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        bpf.load_program(program, ProgType.KPROBE, "t")

    def test_jmp32_no_refinement_with_high_bits(self, bpf):
        """With possible high bits the 32- and 64-bit orders diverge,
        so no refinement happens and the access must be rejected."""
        from repro.ebpf.helpers import ids
        amap = bpf.create_map("array", key_size=4, value_size=16,
                              max_entries=1)
        program = (Asm()
                   .st_imm(4, R10, -4, 0)
                   .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                   .ld_map_fd(R1, amap.map_fd)
                   .call(ids.BPF_FUNC_map_lookup_elem)
                   .jmp_imm("jne", R0, 0, "have")
                   .mov64_imm(R0, 0).exit_()
                   .label("have")
                   .ldx(8, R3, R0, 0)               # full 64 bits
                   .jmp32_imm("jgt", R3, 7, "out")  # only bounds w-reg!
                   .alu64_reg("add", R0, R3)        # 64-bit off unbounded
                   .st_imm(8, R0, 0, 1)
                   .label("out")
                   .mov64_imm(R0, 0)
                   .exit_()
                   .program())
        with pytest.raises(VerifierError):
            bpf.load_program(program, ProgType.KPROBE, "t")
