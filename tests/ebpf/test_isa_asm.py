"""ISA encoding and assembler tests."""

import pytest
from hypothesis import given, strategies as st

from repro.ebpf import isa
from repro.ebpf.asm import Asm
from repro.ebpf.disasm import disasm, disasm_insn
from repro.ebpf.isa import Insn, sign_extend, to_s64, to_u64
from repro.ebpf.isa import R0, R1, R2, R10


class TestEncoding:
    def test_roundtrip_simple(self):
        insn = Insn(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K, 1, 0, 0,
                    42)
        assert Insn.decode(insn.encode()) == insn

    def test_roundtrip_negative_off_imm(self):
        insn = Insn(isa.BPF_JMP | isa.BPF_JA, 0, 0, -5, -1000)
        assert Insn.decode(insn.encode()) == insn

    def test_encode_length(self):
        insn = Insn(isa.BPF_JMP | isa.BPF_EXIT)
        assert len(insn.encode()) == 8

    def test_decode_wrong_length(self):
        with pytest.raises(ValueError):
            Insn.decode(b"\x00" * 7)

    def test_register_out_of_range(self):
        with pytest.raises(ValueError):
            Insn(0, dst=16).encode()

    @given(st.integers(0, 255), st.integers(0, 10),
           st.integers(0, 10), st.integers(-(1 << 15), (1 << 15) - 1),
           st.integers(-(1 << 31), (1 << 31) - 1))
    def test_roundtrip_property(self, opcode, dst, src, off, imm):
        insn = Insn(opcode, dst, src, off, imm)
        assert Insn.decode(insn.encode()) == insn

    def test_class_predicates(self):
        alu = Insn(isa.BPF_ALU64 | isa.BPF_ADD | isa.BPF_K, 0, 0, 0, 1)
        jmp = Insn(isa.BPF_JMP | isa.BPF_JEQ | isa.BPF_K, 0, 0, 1, 0)
        ld = Insn(isa.BPF_LD | isa.BPF_IMM | isa.BPF_DW, 0, 0, 0, 0)
        assert alu.is_alu and not alu.is_jump
        assert jmp.is_jump and not jmp.is_alu
        assert ld.is_ld_imm64


class TestHelpers:
    def test_sign_extend(self):
        assert sign_extend(0xFF, 8) == -1
        assert sign_extend(0x7F, 8) == 127
        assert sign_extend(0xFFFF, 16) == -1

    def test_to_u64_to_s64(self):
        assert to_u64(-1) == (1 << 64) - 1
        assert to_s64((1 << 64) - 1) == -1
        assert to_s64(5) == 5

    @given(st.integers(-(1 << 63), (1 << 63) - 1))
    def test_u64_s64_roundtrip(self, value):
        assert to_s64(to_u64(value)) == value


class TestAsm:
    def test_forward_label(self):
        prog = (Asm()
                .jmp_imm("jeq", R1, 0, "end")
                .mov64_imm(R0, 1)
                .label("end")
                .exit_()
                .program())
        assert prog[0].off == 1  # skips one insn

    def test_backward_label(self):
        prog = (Asm()
                .label("top")
                .mov64_imm(R0, 0)
                .ja("top")
                .exit_()
                .program())
        assert prog[1].off == -2

    def test_undefined_label(self):
        asm = Asm().ja("nowhere").exit_()
        with pytest.raises(ValueError):
            asm.program()

    def test_duplicate_label(self):
        asm = Asm().label("x")
        with pytest.raises(ValueError):
            asm.label("x")

    def test_ld_imm64_two_slots(self):
        prog = Asm().ld_imm64(R0, 0x1122334455667788).program()
        assert len(prog) == 2
        assert prog[0].imm == 0x55667788
        assert prog[1].imm == 0x11223344

    def test_ld_map_fd_pseudo(self):
        prog = Asm().ld_map_fd(R1, 5).program()
        assert prog[0].src == isa.BPF_PSEUDO_MAP_FD
        assert prog[0].imm == 5

    def test_ld_func_relative_target(self):
        prog = (Asm()
                .ld_func(R2, "cb")     # insns 0-1
                .exit_()               # insn 2
                .label("cb")
                .exit_()               # insn 3
                .program())
        assert prog[0].src == isa.BPF_PSEUDO_FUNC
        assert prog[0].imm == 2  # 0 + 2 + 1 == 3

    def test_call_subprog_relative(self):
        prog = (Asm()
                .call_subprog("f")     # insn 0
                .exit_()               # insn 1
                .label("f")
                .exit_()               # insn 2
                .program())
        assert prog[0].src == isa.BPF_PSEUDO_CALL
        assert prog[0].imm == 1

    def test_len(self):
        asm = Asm().mov64_imm(R0, 0).exit_()
        assert len(asm) == 2

    def test_chaining_returns_self(self):
        asm = Asm()
        assert asm.mov64_imm(R0, 0) is asm


class TestDisasm:
    def test_mov_imm(self):
        insn = Asm().mov64_imm(R0, 42).program()[0]
        assert disasm_insn(insn) == "r0 = 42"

    def test_alu_reg(self):
        insn = Asm().alu64_reg("add", R0, R1).program()[0]
        assert disasm_insn(insn) == "r0 += r1"

    def test_load(self):
        insn = Asm().ldx(4, R2, R1, 8).program()[0]
        assert disasm_insn(insn) == "r2 = *(u32 *)(r1 +8)"

    def test_store_imm(self):
        insn = Asm().st_imm(8, R10, -16, 7).program()[0]
        assert disasm_insn(insn) == "*(u64 *)(r10 -16) = 7"

    def test_cond_jump(self):
        insn = Asm().jmp_imm("jne", R1, 0, 3).program()[0]
        assert disasm_insn(insn) == "if r1 != 0 goto +3"

    def test_call_and_exit(self):
        prog = Asm().call(14).exit_().program()
        assert disasm_insn(prog[0]) == "call helper#14"
        assert disasm_insn(prog[1]) == "exit"

    def test_map_fd_rendering(self):
        prog = Asm().ld_map_fd(R1, 3).program()
        assert disasm_insn(prog[0], 0, prog[1]) == "r1 = map_fd[3]"

    def test_full_program_listing(self):
        prog = Asm().mov64_imm(R0, 2).exit_().program()
        listing = disasm(prog)
        assert "0: r0 = 2" in listing
        assert "1: exit" in listing

    def test_ld_imm64_listing_skips_second_slot(self):
        prog = Asm().ld_imm64(R0, 0xAABBCCDD11223344).exit_().program()
        listing = disasm(prog)
        assert listing.count("\n") == 1  # two lines total
        assert "0xaabbccdd11223344 ll" in listing
