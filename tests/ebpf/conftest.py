"""Shared fixtures for eBPF-layer tests."""

import pytest

from repro.ebpf.bugs import BugConfig
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.kernel import Kernel

from tests.conftest import assert_kernel_isolated


@pytest.fixture
def kernel(request):
    """A fresh kernel, isolation-checked at teardown (opt out with
    ``@pytest.mark.dirty_kernel``)."""
    k = Kernel()
    yield k
    if request.node.get_closest_marker("dirty_kernel"):
        return
    assert_kernel_isolated(k)


@pytest.fixture
def bpf(kernel):
    """Buggy-era subsystem (paper defaults)."""
    return BpfSubsystem(kernel)


@pytest.fixture
def patched_bpf(kernel):
    """Subsystem with every modeled bug fixed."""
    return BpfSubsystem(kernel, bugs=BugConfig.all_patched())


@pytest.fixture
def load(bpf):
    """Load a program list as KPROBE (most permissive ret range)."""
    def _load(program, prog_type=ProgType.KPROBE, **kwargs):
        return bpf.load_program(program, prog_type, "test", **kwargs)
    return _load
