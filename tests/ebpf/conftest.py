"""Shared fixtures for eBPF-layer tests."""

import pytest

from repro.ebpf.bugs import BugConfig
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def bpf(kernel):
    """Buggy-era subsystem (paper defaults)."""
    return BpfSubsystem(kernel)


@pytest.fixture
def patched_bpf(kernel):
    """Subsystem with every modeled bug fixed."""
    return BpfSubsystem(kernel, bugs=BugConfig.all_patched())


@pytest.fixture
def load(bpf):
    """Load a program list as KPROBE (most permissive ret range)."""
    def _load(program, prog_type=ProgType.KPROBE, **kwargs):
        return bpf.load_program(program, prog_type, "test", **kwargs)
    return _load
