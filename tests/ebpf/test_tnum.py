"""Tristate-number tests, including hypothesis soundness properties.

The key property for every abstract operation: if concrete values x, y
are contained in tnums A, B, then op(x, y) is contained in op(A, B)
(soundness, per Vishwanathan et al. [50]).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ebpf.verifier.tnum import Tnum, U64


def tnum_with_member():
    """Strategy: a (tnum, member value) pair."""
    @st.composite
    def build(draw):
        value = draw(st.integers(0, U64))
        mask = draw(st.integers(0, U64))
        known = value & ~mask
        tnum = Tnum(known, mask)
        # pick a member: known bits fixed, unknown bits arbitrary
        noise = draw(st.integers(0, U64))
        member = known | (noise & mask)
        return tnum, member
    return build()


class TestConstruction:
    def test_const(self):
        t = Tnum.const(42)
        assert t.is_const and t.value == 42

    def test_const_wraps(self):
        assert Tnum.const(-1).value == U64

    def test_unknown(self):
        t = Tnum.unknown()
        assert t.is_unknown and t.mask == U64

    def test_invariant_enforced(self):
        with pytest.raises(ValueError):
            Tnum(1, 1)  # overlapping value and mask

    def test_range_exact_for_pow2(self):
        t = Tnum.range(0, 255)
        assert t.value == 0 and t.mask == 255

    def test_range_single_value(self):
        t = Tnum.range(7, 7)
        assert t.is_const and t.value == 7

    def test_range_contains_endpoints(self):
        t = Tnum.range(100, 200)
        assert t.contains_value(100)
        assert t.contains_value(200)


class TestPredicates:
    def test_contains_value(self):
        t = Tnum(0b1000, 0b0111)
        assert t.contains_value(0b1000)
        assert t.contains_value(0b1111)
        assert not t.contains_value(0b0111)

    def test_contains_tnum(self):
        wide = Tnum(0, 0xFF)
        narrow = Tnum(0x10, 0x0F)
        assert wide.contains(narrow)
        assert not narrow.contains(wide)

    def test_is_aligned(self):
        assert Tnum.const(8).is_aligned(8)
        assert not Tnum.const(4).is_aligned(8)
        assert not Tnum(0, 0b111).is_aligned(8)
        assert Tnum(0, ~0b111 & U64).is_aligned(8)

    def test_umin_umax(self):
        t = Tnum(0b100, 0b011)
        assert t.umin == 4 and t.umax == 7


class TestConcreteOps:
    def test_add_consts(self):
        assert Tnum.const(3).add(Tnum.const(4)) == Tnum.const(7)

    def test_add_wraps(self):
        assert Tnum.const(U64).add(Tnum.const(1)) == Tnum.const(0)

    def test_sub_consts(self):
        assert Tnum.const(10).sub(Tnum.const(4)) == Tnum.const(6)

    def test_mul_consts(self):
        assert Tnum.const(6).mul(Tnum.const(7)) == Tnum.const(42)

    def test_and_known_zero_bits(self):
        t = Tnum.unknown().and_(Tnum.const(0xFF))
        assert t.umax <= 0xFF

    def test_or_known_one_bits(self):
        t = Tnum.unknown().or_(Tnum.const(0x80))
        assert t.value & 0x80

    def test_shifts(self):
        t = Tnum.const(0b101)
        assert t.lshift(2) == Tnum.const(0b10100)
        assert t.rshift(1) == Tnum.const(0b10)

    def test_arshift_sign(self):
        negative = Tnum.const(1 << 63)
        shifted = negative.arshift(1)
        assert shifted.value >> 62 == 0b11

    def test_neg(self):
        assert Tnum.const(5).neg() == Tnum.const(U64 - 4)

    def test_cast_truncates(self):
        t = Tnum.const(0x1_0000_00FF).cast(4)
        assert t == Tnum.const(0xFF)

    def test_intersect_merges_knowledge(self):
        a = Tnum(0x10, 0x0F)    # high nibble known 1
        b = Tnum(0x01, 0xF0)    # low nibble known 1
        merged = a.intersect(b)
        assert merged == Tnum.const(0x11)

    def test_union_forgets_disagreement(self):
        u = Tnum.const(0b01).union(Tnum.const(0b10))
        assert u.contains_value(0b01)
        assert u.contains_value(0b10)


class TestSoundness:
    """op(member, member) must stay inside op(tnum, tnum)."""

    @settings(max_examples=200)
    @given(tnum_with_member(), tnum_with_member())
    def test_add_sound(self, a, b):
        (ta, xa), (tb, xb) = a, b
        assert ta.add(tb).contains_value((xa + xb) & U64)

    @settings(max_examples=200)
    @given(tnum_with_member(), tnum_with_member())
    def test_sub_sound(self, a, b):
        (ta, xa), (tb, xb) = a, b
        assert ta.sub(tb).contains_value((xa - xb) & U64)

    @settings(max_examples=200)
    @given(tnum_with_member(), tnum_with_member())
    def test_mul_sound(self, a, b):
        (ta, xa), (tb, xb) = a, b
        assert ta.mul(tb).contains_value((xa * xb) & U64)

    @settings(max_examples=200)
    @given(tnum_with_member(), tnum_with_member())
    def test_and_sound(self, a, b):
        (ta, xa), (tb, xb) = a, b
        assert ta.and_(tb).contains_value(xa & xb)

    @settings(max_examples=200)
    @given(tnum_with_member(), tnum_with_member())
    def test_or_sound(self, a, b):
        (ta, xa), (tb, xb) = a, b
        assert ta.or_(tb).contains_value(xa | xb)

    @settings(max_examples=200)
    @given(tnum_with_member(), tnum_with_member())
    def test_xor_sound(self, a, b):
        (ta, xa), (tb, xb) = a, b
        assert ta.xor(tb).contains_value(xa ^ xb)

    @settings(max_examples=200)
    @given(tnum_with_member(), st.integers(0, 63))
    def test_lshift_sound(self, a, shift):
        ta, xa = a
        assert ta.lshift(shift).contains_value((xa << shift) & U64)

    @settings(max_examples=200)
    @given(tnum_with_member(), st.integers(0, 63))
    def test_rshift_sound(self, a, shift):
        ta, xa = a
        assert ta.rshift(shift).contains_value(xa >> shift)

    @settings(max_examples=200)
    @given(tnum_with_member(), st.integers(0, 63))
    def test_arshift_sound(self, a, shift):
        ta, xa = a
        signed = xa - (1 << 64) if xa & (1 << 63) else xa
        expected = (signed >> shift) & U64
        assert ta.arshift(shift).contains_value(expected)

    @settings(max_examples=200)
    @given(tnum_with_member(), tnum_with_member())
    def test_union_sound_both_sides(self, a, b):
        (ta, xa), (tb, xb) = a, b
        joined = ta.union(tb)
        assert joined.contains_value(xa)
        assert joined.contains_value(xb)

    @settings(max_examples=200)
    @given(st.integers(0, U64), st.integers(0, U64))
    def test_range_sound(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        t = Tnum.range(lo, hi)
        assert t.contains_value(lo)
        assert t.contains_value(hi)
        assert t.contains_value((lo + hi) // 2) or True  # envelope only

    @settings(max_examples=200)
    @given(tnum_with_member(), st.integers(1, 8))
    def test_cast_sound(self, a, size):
        ta, xa = a
        keep = (1 << (size * 8)) - 1
        assert ta.cast(size).contains_value(xa & keep)
