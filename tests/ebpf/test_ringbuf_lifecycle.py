"""Ring buffer reservation lifecycle, drop accounting, teardown.

The reservation API hands extensions real kernel memory; this file
pins the lifecycle rules — submit/discard must free the backing
allocation, teardown must release abandoned reservations, and every
``-ENOSPC`` refusal must be counted both on the map and in telemetry.
Also covers the perf-event array's honest per-CPU record streams.
"""

import pytest

from repro.ebpf.loader import BpfSubsystem
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def bpf(kernel):
    return BpfSubsystem(kernel)


def ringbuf_allocs(kernel, map_fd):
    """Live backing allocations for one ringbuf's reservations."""
    return [a for a in kernel.mem.live_allocations(owner="bpf-map")
            if a.type_name == f"ringbuf{map_fd}_rec"]


class TestReservationLifecycle:
    def test_submit_frees_backing_allocation(self, kernel, bpf):
        rb = bpf.create_map("ringbuf", max_entries=4096)
        addr = rb.reserve(16)
        assert len(ringbuf_allocs(kernel, rb.map_fd)) == 1
        assert rb.submit(addr) == 0
        assert ringbuf_allocs(kernel, rb.map_fd) == []
        assert rb.outstanding_reservations() == 0
        # the record itself survives the free
        assert len(rb.drain()) == 1

    def test_discard_frees_and_returns_space(self, kernel, bpf):
        rb = bpf.create_map("ringbuf", max_entries=16)
        addr = rb.reserve(16)        # ring now full
        assert rb.reserve(1) is None
        assert rb.discard(addr) == 0
        assert ringbuf_allocs(kernel, rb.map_fd) == []
        # discarded space is reusable and nothing was published
        assert rb.reserve(16) is not None
        assert rb.drain() == []

    def test_double_submit_and_double_discard_rejected(self, bpf):
        rb = bpf.create_map("ringbuf", max_entries=64)
        addr = rb.reserve(8)
        assert rb.submit(addr) == 0
        assert rb.submit(addr) == -22
        assert rb.discard(addr) == -22
        addr2 = rb.reserve(8)
        assert rb.discard(addr2) == 0
        assert rb.discard(addr2) == -22

    def test_submitted_space_held_until_drain(self, bpf):
        rb = bpf.create_map("ringbuf", max_entries=16)
        addr = rb.reserve(16)
        rb.submit(addr)
        # the committed record still occupies the ring...
        assert rb.reserve(1) is None
        rb.drain()
        # ...until userspace consumes it
        assert rb.reserve(16) is not None

    def test_drain_keeps_outstanding_reservation_space(self, bpf):
        rb = bpf.create_map("ringbuf", max_entries=16)
        rb.output(b"1234")
        addr = rb.reserve(8)
        rb.drain()
        # 8 bytes stay reserved: only 8 more fit
        assert rb.reserve(16) is None
        assert rb.reserve(8) is not None
        assert rb.discard(addr) == 0


class TestDropAccounting:
    def test_output_enospc_counted(self, kernel, bpf):
        rb = bpf.create_map("ringbuf", max_entries=8)
        assert rb.output(b"12345678") == 0
        assert rb.output(b"abc") == -28
        assert rb.output(b"defg") == -28
        assert rb.drops == 2
        assert rb.dropped_bytes == 7
        fam = kernel.telemetry.registry.get(
            "repro_ringbuf_drops_total")
        assert fam.labels(str(rb.map_fd)).value == 2
        by = kernel.telemetry.registry.get(
            "repro_ringbuf_dropped_bytes_total")
        assert by.labels(str(rb.map_fd)).value == 7

    def test_reserve_enospc_counted(self, kernel, bpf):
        rb = bpf.create_map("ringbuf", max_entries=8)
        assert rb.reserve(16) is None
        assert rb.drops == 1
        assert rb.dropped_bytes == 16
        events = kernel.telemetry.trace.events(kind="ringbuf_drop")
        assert len(events) == 1
        assert events[0].data["requested"] == 16

    def test_bad_reserve_size_not_a_drop(self, bpf):
        rb = bpf.create_map("ringbuf", max_entries=8)
        assert rb.reserve(0) is None
        assert rb.reserve(-4) is None
        assert rb.drops == 0


class TestTeardown:
    def test_destroy_frees_abandoned_reservations(self, kernel, bpf):
        rb = bpf.create_map("ringbuf", max_entries=4096)
        rb.reserve(16)
        rb.reserve(32)
        rb.output(b"published")
        assert len(ringbuf_allocs(kernel, rb.map_fd)) == 2
        bpf.destroy_map(rb.map_fd)
        assert ringbuf_allocs(kernel, rb.map_fd) == []
        assert rb.outstanding_reservations() == 0

    def test_destroy_is_idempotent(self, kernel, bpf):
        rb = bpf.create_map("ringbuf", max_entries=64)
        rb.reserve(8)
        bpf.destroy_map(rb.map_fd)
        rb.destroy()   # second teardown must not double-free

    def test_subsystem_shutdown_leaves_no_map_memory(self, kernel,
                                                     bpf):
        rb = bpf.create_map("ringbuf", max_entries=64)
        rb.reserve(8)
        bpf.create_map("array", max_entries=4)
        bpf.create_map("hash", max_entries=4)
        bpf.create_map("task_storage", value_size=8) \
           .storage_for(kernel.current_task.address, True)
        assert kernel.mem.live_allocations(owner="bpf-map")
        bpf.shutdown()
        assert kernel.mem.live_allocations(owner="bpf-map") == []

    def test_destroy_updates_live_map_gauge(self, kernel, bpf):
        rb = bpf.create_map("ringbuf", max_entries=64)
        fam = kernel.telemetry.registry.get("repro_maps_live")
        assert fam.labels("ringbuf").value == 1
        bpf.destroy_map(rb.map_fd)
        assert fam.labels("ringbuf").value == 0

    def test_destroy_unknown_fd_raises(self, bpf):
        from repro.errors import BpfRuntimeError
        with pytest.raises(BpfRuntimeError):
            bpf.destroy_map(999)


class TestPerCpuPerfStreams:
    def test_records_keyed_by_running_cpu(self, kernel, bpf):
        pe = bpf.create_map("perf_event_array", max_entries=4096)
        kernel.set_current_cpu(0)
        assert pe.output(b"on-cpu0") == 0
        kernel.set_current_cpu(2)
        assert pe.output(b"on-cpu2") == 0
        assert pe.records_for_cpu(0) == [b"on-cpu0"]
        assert pe.records_for_cpu(1) == []
        assert pe.records_for_cpu(2) == [b"on-cpu2"]

    def test_drain_one_cpu_leaves_others(self, kernel, bpf):
        pe = bpf.create_map("perf_event_array", max_entries=4096)
        kernel.set_current_cpu(0)
        pe.output(b"a")
        kernel.set_current_cpu(1)
        pe.output(b"b")
        assert pe.drain(0) == [b"a"]
        assert pe.records_for_cpu(1) == [b"b"]
        assert pe.drain() == [b"b"]

    def test_capacity_and_drops_are_per_cpu(self, kernel, bpf):
        pe = bpf.create_map("perf_event_array", max_entries=8)
        kernel.set_current_cpu(0)
        assert pe.output(b"12345678") == 0
        assert pe.output(b"x") == -28       # cpu0 full
        kernel.set_current_cpu(1)
        assert pe.output(b"x") == 0         # cpu1 unaffected
        assert pe.cpu_drops == [1, 0, 0, 0]
        fam = kernel.telemetry.registry.get(
            "repro_perf_event_drops_total")
        assert fam.labels(str(pe.map_fd), "0").value == 1
        assert fam.labels(str(pe.map_fd), "1").value == 0
