"""Text assembler tests, including disassembly round-trips."""

import pytest

from repro.ebpf.asm import Asm
from repro.ebpf.asm_text import assemble_text
from repro.ebpf.disasm import disasm
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R10
from repro.ebpf.progs import ProgType
from repro.errors import InvalidProgram


class TestTextAssembly:
    def test_minimal(self):
        program = assemble_text("r0 = 0\nexit")
        assert len(program) == 2

    def test_comments_and_blanks(self):
        program = assemble_text("""
            ; a comment
            r0 = 0     ; trailing comment

            exit
        """)
        assert len(program) == 2

    def test_alu_forms(self):
        program = assemble_text("""
            r0 = 10
            r1 = 3
            r0 += r1
            r0 -= 1
            r0 *= 2
            r0 &= 0xff
            r0 >>= 1
            r0 s>>= 1
            exit
        """)
        assert len(program) == 9

    def test_memory_forms(self):
        program = assemble_text("""
            *(u64 *)(r10 -8) = 42
            r0 = *(u64 *)(r10 -8)
            *(u8 *)(r10 -16) = r0
            exit
        """)
        assert len(program) == 4

    def test_labels_and_jumps(self):
        program = assemble_text("""
            r0 = 0
            if r1 != 0 goto nonzero
            exit
        nonzero:
            r0 = 1
            exit
        """)
        assert program[1].off == 1

    def test_relative_jump(self):
        program = assemble_text("""
            if r1 == 0 goto +1
            r0 = 1
            r0 = 0
            exit
        """)
        assert program[0].off == 1

    def test_ld64_and_map(self):
        program = assemble_text("""
            r1 = 0xdeadbeefcafef00d ll
            r2 = map_fd[3]
            r0 = 0
            exit
        """)
        assert len(program) == 6  # two 2-slot loads

    def test_call_and_negation(self):
        program = assemble_text("""
            call helper#14
            r0 = -r0
            exit
        """)
        assert program[0].imm == 14

    def test_unparseable_line(self):
        with pytest.raises(InvalidProgram):
            assemble_text("r0 <- 5\nexit")

    def test_misplaced_negation(self):
        with pytest.raises(InvalidProgram):
            assemble_text("r0 = -r1\nexit")


class TestRoundTrip:
    def build_reference(self):
        return (Asm()
                .mov64_imm(R0, 0)
                .st_imm(8, R10, -8, 7)
                .ldx(8, R2, R10, -8)
                .alu64_imm("add", R2, 5)
                .alu64_reg("add", R0, R2)
                .jmp_imm("jgt", R0, 100, 1)
                .alu64_imm("and", R0, 0)
                .exit_()
                .program())

    def test_disasm_reassembles(self):
        reference = self.build_reference()
        text = disasm(reference)
        rebuilt = assemble_text(text)
        assert rebuilt == reference

    def test_text_program_verifies_and_runs(self, bpf):
        program = assemble_text("""
            r0 = 40
            r1 = 2
            r0 += r1
            exit
        """)
        prog = bpf.load_program(program, ProgType.KPROBE, "text")
        assert bpf.run_on_current_task(prog) == 42

    def test_text_program_with_helper(self, bpf, kernel):
        program = assemble_text(f"""
            call helper#{ids.BPF_FUNC_get_current_pid_tgid}
            exit
        """)
        prog = bpf.load_program(program, ProgType.KPROBE, "text")
        task = kernel.current_task
        assert bpf.run_on_current_task(prog) == \
            (task.tgid << 32) | task.pid


class TestAtomicAndJmp32Text:
    def test_atomic_roundtrip(self):
        reference = (Asm()
                     .st_imm(8, R10, -8, 1)
                     .mov64_imm(R2, 2)
                     .atomic_add(8, R10, -8, R2)
                     .mov64_imm(R0, 0)
                     .exit_()
                     .program())
        text = disasm(reference)
        assert "lock *(u64 *)(r10 -8) += r2" in text
        assert assemble_text(text) == reference

    def test_jmp32_roundtrip(self):
        reference = (Asm()
                     .mov64_imm(R2, 5)
                     .jmp32_imm("jeq", R2, 5, 1)
                     .mov64_imm(R0, 1)
                     .mov64_imm(R0, 0)
                     .exit_()
                     .program())
        text = disasm(reference)
        assert "if w2 == 5 goto +1" in text
        assert assemble_text(text) == reference

    def test_jmp32_reg_roundtrip(self):
        reference = (Asm()
                     .mov64_imm(R1, 5)
                     .mov64_imm(R2, 5)
                     .jmp32_reg("jne", R1, R2, 1)
                     .mov64_imm(R0, 1)
                     .mov64_imm(R0, 0)
                     .exit_()
                     .program())
        text = disasm(reference)
        assert "if w1 != w2 goto +1" in text
        assert assemble_text(text) == reference

    def test_subprog_call_disasm(self):
        program = (Asm()
                   .mov64_imm(R1, 1)
                   .call_subprog("f")
                   .exit_()
                   .label("f")
                   .mov64_reg(R0, R1)
                   .exit_()
                   .program())
        assert "call subprog+1" in disasm(program)
