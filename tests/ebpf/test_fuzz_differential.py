"""Seeded differential fuzzing: interpreter vs fast path vs JIT.

:func:`repro.analysis.fuzz.differential_campaign` generates random
programs and demands that all three execution engines agree on every
observable — result or exception, final register file, instruction
and helper accounting, virtual-clock totals, kernel health, and the
telemetry row.  CI replays fixed seeds so a divergence is a
reproducible bug report, not a flake; set ``FUZZ_DIFF_MIN`` to raise
the per-seed quota for longer local runs.
"""

import os

import pytest

from repro.analysis.fuzz import (
    DIFF_ENGINES,
    differential_campaign,
    observe_engine,
    random_program,
)

#: executed-program quota per seed (the issue's CI floor is 200 total)
MIN_COMPARED = int(os.environ.get("FUZZ_DIFF_MIN", "100"))

#: fixed CI seeds; together they clear the 200-program floor
CI_SEEDS = [421, 99173]


@pytest.mark.parametrize("seed", CI_SEEDS)
def test_engines_agree_on_random_programs(seed):
    report = differential_campaign(min_compared=MIN_COMPARED,
                                   seed=seed)
    assert report.compared >= MIN_COMPARED, (
        f"generation cap hit after only {report.compared} executed "
        f"programs ({report.total} generated)")
    assert report.clean, "\n".join(report.divergences[:5])


def test_campaign_is_deterministic():
    first = differential_campaign(min_compared=20, seed=7)
    second = differential_campaign(min_compared=20, seed=7)
    assert (first.total, first.rejected, first.compared) == \
        (second.total, second.rejected, second.compared)
    assert first.divergences == second.divergences


def test_rejections_agree_across_engines():
    # every engine shares one verifier; a program rejected on one
    # engine must be rejected on all (kind == "rejected" observations
    # compare equal, so any disagreement is a divergence)
    import random
    rng = random.Random(3)
    saw_rejection = False
    for index in range(40):
        program = random_program(rng)
        kinds = {engine: observe_engine(program, index, kwargs)["kind"]
                 for engine, kwargs in DIFF_ENGINES}
        assert len(set(kinds.values())) == 1, kinds
        saw_rejection |= "rejected" in kinds.values()
    assert saw_rejection, "generator never produced a rejected program"
