"""Verification load-cache tests (§3's signature-at-load-time model)."""

import pytest

from repro.ebpf.asm import Asm
from repro.ebpf.isa import R0, R2, R10
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.errors import VerifierError
from repro.kernel import Kernel


def counter_prog(n=5):
    asm = Asm().mov64_imm(R0, 0)
    for i in range(n):
        asm.alu64_imm("add", R0, i)
    return asm.exit_().program()


def bad_prog():
    # reads uninitialized R2: always rejected
    return (Asm()
            .mov64_reg(R0, R2)
            .exit_()
            .program())


class TestLoadCache:
    def test_identical_reload_hits(self, bpf):
        bpf.load_program(counter_prog(), ProgType.KPROBE, "a")
        bpf.load_program(counter_prog(), ProgType.KPROBE, "b")
        assert bpf.load_cache.hits == 1
        assert bpf.load_cache.misses == 1
        assert bpf.load_cache.hit_rate == 0.5

    def test_cached_stats_marked(self, bpf):
        first = bpf.load_program(counter_prog(), ProgType.KPROBE, "a")
        second = bpf.load_program(counter_prog(), ProgType.KPROBE, "b")
        assert not first.verifier_stats.from_cache
        assert second.verifier_stats.from_cache
        # the replayed stats describe the original verification run
        assert second.verifier_stats.insns_processed == \
            first.verifier_stats.insns_processed

    def test_cached_artifacts_shared(self, bpf):
        first = bpf.load_program(counter_prog(), ProgType.KPROBE, "a")
        second = bpf.load_program(counter_prog(), ProgType.KPROBE, "b")
        assert second.predecoded is first.predecoded
        assert second.jit is first.jit

    def test_cached_program_still_runs(self, bpf):
        expected = sum(range(5))
        first = bpf.load_program(counter_prog(), ProgType.KPROBE, "a")
        second = bpf.load_program(counter_prog(), ProgType.KPROBE, "b")
        assert bpf.run_on_current_task(first) == expected
        assert bpf.run_on_current_task(second) == expected

    def test_different_bytecode_misses(self, bpf):
        bpf.load_program(counter_prog(5), ProgType.KPROBE, "a")
        bpf.load_program(counter_prog(6), ProgType.KPROBE, "b")
        assert bpf.load_cache.hits == 0
        assert bpf.load_cache.misses == 2

    def test_prog_type_is_part_of_the_key(self, bpf):
        program = (Asm().mov64_imm(R0, 1).exit_().program())
        bpf.load_program(program, ProgType.KPROBE, "a")
        bpf.load_program(program, ProgType.SOCKET_FILTER, "b")
        assert bpf.load_cache.hits == 0

    def test_verifier_config_is_part_of_the_key(self, bpf):
        bpf.load_program(counter_prog(), ProgType.KPROBE, "a",
                         prune_states=True)
        bpf.load_program(counter_prog(), ProgType.KPROBE, "b",
                         prune_states=False)
        assert bpf.load_cache.hits == 0
        assert bpf.load_cache.misses == 2

    def test_map_shape_is_part_of_the_key(self, kernel):
        """Same bytecode, differently-shaped maps: must re-verify.

        The verifier's bounds checks depend on value_size, so a cache
        collision here would replay an acceptance that no longer
        holds."""
        from repro.ebpf.helpers import ids
        for value_size in (8, 16):
            bpf = BpfSubsystem(kernel)
            amap = bpf.create_map("array", key_size=4,
                                  value_size=value_size, max_entries=1)
            program = (Asm()
                       .st_imm(4, R10, -4, 0)
                       .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                       .ld_map_fd(R0, amap.map_fd)
                       .mov64_imm(R0, 0)
                       .exit_()
                       .program())
            bpf.load_program(program, ProgType.KPROBE, "m")
        # separate subsystems: just prove the fingerprints differ
        from repro.ebpf.progcache import fingerprint
        from repro.ebpf.verifier.analyzer import VerifierConfig
        keys = set()
        for value_size in (8, 16):
            bpf = BpfSubsystem(kernel)
            amap = bpf.create_map("array", key_size=4,
                                  value_size=value_size, max_entries=1)
            keys.add(fingerprint(counter_prog(), ProgType.KPROBE,
                                 VerifierConfig(), bpf._maps.items(),
                                 True))
        assert len(keys) == 2

    def test_rejections_are_not_cached(self, bpf):
        for name in ("a", "b"):
            with pytest.raises(VerifierError):
                bpf.load_program(bad_prog(), ProgType.KPROBE, name)
        assert bpf.load_cache.hits == 0
        assert bpf.load_cache.misses == 2
        assert len(bpf.load_cache) == 0

    def test_lru_eviction(self, bpf):
        bpf.load_cache.max_entries = 2
        bpf.load_program(counter_prog(3), ProgType.KPROBE, "a")
        bpf.load_program(counter_prog(4), ProgType.KPROBE, "b")
        bpf.load_program(counter_prog(5), ProgType.KPROBE, "c")
        assert len(bpf.load_cache) == 2
        # "a" was evicted: reloading it is a miss again
        bpf.load_program(counter_prog(3), ProgType.KPROBE, "a2")
        assert bpf.load_cache.hits == 0

    def test_cache_can_be_disabled(self, kernel):
        bpf = BpfSubsystem(kernel, use_load_cache=False)
        assert bpf.load_cache is None
        prog = bpf.load_program(counter_prog(), ProgType.KPROBE, "a")
        assert bpf.run_on_current_task(prog) == sum(range(5))

    def test_hit_is_logged(self, bpf, kernel):
        bpf.load_program(counter_prog(), ProgType.KPROBE, "a")
        bpf.load_program(counter_prog(), ProgType.KPROBE, "b")
        assert kernel.log.grep("verification cache hit")
