"""Register-state and bounds-propagation tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ebpf.verifier import bounds
from repro.ebpf.verifier.regstate import (
    RegState,
    RegType,
    S64_MAX,
    S64_MIN,
    U64_MAX,
    u64_to_s64,
)
from repro.ebpf.verifier.tnum import Tnum


class TestConstruction:
    def test_const_scalar(self):
        reg = RegState.const_scalar(42)
        assert reg.is_const and reg.const_value == 42
        assert reg.umin == reg.umax == 42
        assert reg.smin == reg.smax == 42

    def test_const_scalar_negative(self):
        reg = RegState.const_scalar(-1)
        assert reg.smin == reg.smax == -1
        assert reg.umin == reg.umax == U64_MAX

    def test_unknown_scalar(self):
        reg = RegState.unknown_scalar()
        assert reg.type == RegType.SCALAR
        assert not reg.is_const
        assert reg.umin == 0 and reg.umax == U64_MAX

    def test_pointer(self):
        reg = RegState.pointer(RegType.PTR_TO_STACK, off=-8)
        assert reg.is_pointer and reg.off == -8
        assert reg.var_off.is_const

    def test_mark_unknown_clears_everything(self):
        reg = RegState.pointer(RegType.PTR_TO_MAP_VALUE, off=4)
        reg.ref_obj_id = 3
        reg.mark_unknown()
        assert reg.type == RegType.SCALAR
        assert reg.ref_obj_id == 0 and reg.off == 0


class TestBoundsPropagation:
    def test_update_bounds_from_tnum(self):
        reg = RegState.unknown_scalar()
        reg.var_off = Tnum(0, 0xFF)  # low byte unknown, rest zero
        reg.update_bounds()
        assert reg.umax == 0xFF and reg.umin == 0
        assert reg.smax == 0xFF and reg.smin == 0

    def test_deduce_signed_from_unsigned(self):
        reg = RegState.unknown_scalar()
        reg.umax = 100
        reg.deduce_bounds()
        assert reg.smin >= 0 and reg.smax <= 100

    def test_deduce_unsigned_from_signed_positive(self):
        reg = RegState.unknown_scalar()
        reg.smin, reg.smax = 5, 10
        reg.deduce_bounds()
        assert reg.umin == 5 and reg.umax == 10

    def test_deduce_negative_range(self):
        reg = RegState.unknown_scalar()
        reg.smin, reg.smax = -3, -1
        reg.deduce_bounds()
        # unsigned view of [-3, -1]
        assert reg.umin == (1 << 64) - 3
        assert reg.umax == U64_MAX

    def test_bound_offset_feeds_tnum(self):
        reg = RegState.unknown_scalar()
        reg.umin, reg.umax = 0, 7
        reg.bound_offset()
        assert reg.var_off.umax <= 7

    def test_settle_pipeline(self):
        reg = RegState.unknown_scalar()
        reg.var_off = Tnum(0, 0b111)
        reg.settle_bounds()
        assert reg.umax == 7 and reg.smax == 7


class TestScalarAluBounds:
    def test_add_consts(self):
        dst = RegState.const_scalar(5)
        bounds.alu_add(dst, RegState.const_scalar(3))
        assert dst.is_const and dst.const_value == 8

    def test_add_ranges(self):
        dst = RegState.unknown_scalar()
        dst.umin, dst.umax = 0, 10
        dst.smin, dst.smax = 0, 10
        src = RegState.const_scalar(5)
        bounds.alu_add(dst, src)
        assert dst.umin == 5 and dst.umax == 15

    def test_add_overflow_poisons(self):
        dst = RegState.unknown_scalar()
        dst.umin, dst.umax = 0, U64_MAX
        bounds.alu_add(dst, RegState.const_scalar(1))
        assert dst.umax == U64_MAX and dst.umin == 0

    def test_sub_ranges(self):
        dst = RegState.const_scalar(100)
        src = RegState.unknown_scalar()
        src.umin, src.umax = 0, 10
        src.smin, src.smax = 0, 10
        bounds.alu_sub(dst, src)
        assert dst.umin == 90 and dst.umax == 100

    def test_sub_possible_wrap_unbounded(self):
        dst = RegState.const_scalar(5)
        src = RegState.const_scalar(10)
        bounds.alu_sub(dst, src)
        # 5 - 10 wraps in unsigned: full unsigned range expected
        assert dst.umax == U64_MAX or dst.smin < 0

    def test_and_const_bounds(self):
        dst = RegState.unknown_scalar()
        bounds.alu_and(dst, RegState.const_scalar(0xFF))
        assert dst.umax == 0xFF and dst.umin == 0

    def test_mod_const_bounds(self):
        dst = RegState.unknown_scalar()
        bounds.alu_mod(dst, RegState.const_scalar(10))
        assert dst.umax <= 15  # tnum.range envelope of [0, 9]

    def test_mul_small_ranges(self):
        dst = RegState.unknown_scalar()
        dst.umin, dst.umax, dst.smin, dst.smax = 2, 4, 2, 4
        bounds.alu_mul(dst, RegState.const_scalar(10))
        assert dst.umin == 20 and dst.umax == 40

    def test_lsh_const(self):
        dst = RegState.const_scalar(1)
        bounds.alu_lsh(dst, RegState.const_scalar(8))
        assert dst.is_const and dst.const_value == 256

    def test_div_unknown_divisor_unbounded(self):
        dst = RegState.const_scalar(100)
        bounds.alu_div(dst, RegState.unknown_scalar())
        assert dst.umax == U64_MAX

    @settings(max_examples=100)
    @given(st.integers(0, U64_MAX), st.integers(0, U64_MAX))
    def test_add_soundness(self, x, y):
        """Concrete result must lie in the abstract result's range."""
        dst = RegState.const_scalar(x)
        bounds.alu_add(dst, RegState.const_scalar(y))
        concrete = (x + y) & U64_MAX
        assert dst.umin <= concrete <= dst.umax


class TestSubsumes:
    def test_wider_scalar_subsumes_narrower(self):
        wide = RegState.unknown_scalar()
        narrow = RegState.const_scalar(5)
        assert wide.subsumes(narrow)
        assert not narrow.subsumes(wide)

    def test_equal_pointers_subsume(self):
        a = RegState.pointer(RegType.PTR_TO_STACK, off=-8)
        b = RegState.pointer(RegType.PTR_TO_STACK, off=-8)
        assert a.subsumes(b)

    def test_different_offsets_do_not(self):
        a = RegState.pointer(RegType.PTR_TO_STACK, off=-8)
        b = RegState.pointer(RegType.PTR_TO_STACK, off=-16)
        assert not a.subsumes(b)

    def test_different_types_do_not(self):
        a = RegState.unknown_scalar()
        b = RegState.pointer(RegType.PTR_TO_STACK)
        assert not a.subsumes(b)

    def test_different_frameno_do_not(self):
        a = RegState.pointer(RegType.PTR_TO_STACK, frameno=0)
        b = RegState.pointer(RegType.PTR_TO_STACK, frameno=1)
        assert not a.subsumes(b)


class TestStateKeys:
    def test_key_stable_across_copies(self):
        reg = RegState.const_scalar(7)
        assert reg.state_key() == reg.copy().state_key()

    def test_key_differs_on_value(self):
        assert RegState.const_scalar(7).state_key() != \
            RegState.const_scalar(8).state_key()


class TestRefinementSoundness:
    """After a branch refines a register's bounds, every concrete
    value that actually takes that branch must still be inside the
    refined bounds — otherwise the verifier could be talked out of a
    bounds check (CVE-2021-31440 was exactly this class)."""

    @staticmethod
    def _refined(op_name, taken, dst_lo, dst_hi, imm):
        """Run the analyzer's reg_set_min_max on a synthetic state."""
        from repro.ebpf import isa
        from repro.ebpf.asm import Asm
        from repro.ebpf.verifier.analyzer import Verifier, \
            VerifierConfig
        from repro.ebpf.verifier.states import VerifierState
        from repro.ebpf.helpers.registry import build_default_registry

        insn = Asm().jmp_imm(op_name, 2, imm, 1).program()[0]
        verifier = Verifier([insn], __import__(
            "repro.ebpf.progs", fromlist=["ProgType"]).ProgType.KPROBE,
            build_default_registry(), {}, VerifierConfig())
        state = VerifierState()
        reg = RegState.unknown_scalar()
        reg.umin, reg.umax = dst_lo, dst_hi
        reg.smin = u64_to_s64(dst_lo) if dst_lo <= S64_MAX else S64_MIN
        reg.smax = u64_to_s64(dst_hi) if dst_hi <= S64_MAX else S64_MAX
        if reg.smin > reg.smax:
            reg.smin, reg.smax = S64_MIN, S64_MAX
        state.cur.regs[2] = reg
        verifier._refine(state, insn, op_name, taken)
        return state.cur.regs[2]

    @settings(max_examples=150, deadline=None)
    @given(st.sampled_from(["jeq", "jne", "jgt", "jge", "jlt", "jle"]),
           st.booleans(),
           st.integers(0, 1 << 40), st.integers(0, 1 << 40),
           st.integers(0, (1 << 31) - 1),
           st.integers(0, 1 << 40))
    def test_unsigned_refinement_sound(self, op_name, taken, lo, hi,
                                       imm, probe):
        lo, hi = min(lo, hi), max(lo, hi)
        value = lo + probe % (hi - lo + 1)
        takes = {
            "jeq": value == imm, "jne": value != imm,
            "jgt": value > imm, "jge": value >= imm,
            "jlt": value < imm, "jle": value <= imm,
        }[op_name]
        if takes != taken:
            return  # this concrete value goes down the other branch
        reg = self._refined(op_name, taken, lo, hi, imm)
        assert reg.umin <= value <= reg.umax, \
            (op_name, taken, lo, hi, imm, value,
             (reg.umin, reg.umax))

    @settings(max_examples=150, deadline=None)
    @given(st.sampled_from(["jsgt", "jsge", "jslt", "jsle"]),
           st.booleans(),
           st.integers(-(1 << 40), 1 << 40),
           st.integers(-(1 << 40), 1 << 40),
           st.integers(-(1 << 31), (1 << 31) - 1),
           st.integers(0, 1 << 41))
    def test_signed_refinement_sound(self, op_name, taken, lo, hi,
                                     imm, probe):
        lo, hi = min(lo, hi), max(lo, hi)
        value = lo + probe % (hi - lo + 1)
        takes = {
            "jsgt": value > imm, "jsge": value >= imm,
            "jslt": value < imm, "jsle": value <= imm,
        }[op_name]
        if takes != taken:
            return
        from repro.ebpf.verifier.regstate import s64_to_u64
        reg = self._refined(op_name, taken, s64_to_u64(lo) if lo < 0
                            else lo, s64_to_u64(hi) if hi < 0 else hi,
                            imm)
        # build the synthetic state in signed terms instead
        reg2 = self._refined_signed(op_name, taken, lo, hi, imm)
        assert reg2.smin <= value <= reg2.smax, \
            (op_name, taken, lo, hi, imm, value,
             (reg2.smin, reg2.smax))

    @staticmethod
    def _refined_signed(op_name, taken, lo, hi, imm):
        from repro.ebpf.asm import Asm
        from repro.ebpf.verifier.analyzer import Verifier, \
            VerifierConfig
        from repro.ebpf.verifier.states import VerifierState
        from repro.ebpf.helpers.registry import build_default_registry
        from repro.ebpf.progs import ProgType
        from repro.ebpf.verifier.regstate import s64_to_u64

        insn = Asm().jmp_imm(op_name, 2, imm, 1).program()[0]
        verifier = Verifier([insn], ProgType.KPROBE,
                            build_default_registry(), {},
                            VerifierConfig())
        state = VerifierState()
        reg = RegState.unknown_scalar()
        reg.smin, reg.smax = lo, hi
        if lo >= 0:
            reg.umin, reg.umax = lo, hi
        state.cur.regs[2] = reg
        verifier._refine(state, insn, op_name, taken)
        return state.cur.regs[2]
