"""Analysis-layer tests: history, call graph, LoC, bugs, survey."""

import pytest

from repro.analysis.bugs import (
    NAMED_BUGS,
    TABLE1_EXPECTED,
    executable_bugs,
    full_bug_table,
    table1_counts,
    totals,
)
from repro.analysis.callgraph import (
    log_histogram,
    measure_helper_complexity,
    reachable_count,
)
from repro.analysis.helper_survey import run_survey
from repro.analysis.history import (
    VERIFIER_LOC,
    growth_per_two_years,
    helper_count_series,
    verifier_loc_series,
)
from repro.analysis.loc import (
    count_python_file,
    funcdb_loc_by_subsystem,
    verifier_loc_breakdown,
)
from repro.ebpf.bugs import BugConfig
from repro.ebpf.helpers.registry import build_default_registry
from repro.kernel.funcdb import FunctionDatabase, build_default_funcdb


class TestHistory:
    def test_fig2_series_ordered_and_monotone(self):
        series = verifier_loc_series()
        assert [p.value for p in series] == sorted(
            p.value for p in series)

    def test_fig2_matches_paper_endpoints(self):
        assert VERIFIER_LOC["v3.18"] < 2500
        assert 11_000 <= VERIFIER_LOC["v6.1"] <= 13_000

    def test_fig4_series_from_registry(self):
        series = helper_count_series()
        by_version = {p.version: p.value for p in series}
        assert by_version["v5.18"] == 249

    def test_growth_rate_computation(self):
        series = verifier_loc_series()
        rates = growth_per_two_years(series)
        assert all(r > 0 for r in rates)

    def test_growth_empty_series(self):
        assert growth_per_two_years([]) == []


class TestCallgraph:
    def test_reachable_count_simple_chain(self):
        db = FunctionDatabase()
        a = db.add_function("a", "lib", 5)
        b = db.add_function("b", "lib", 5, callees=[a])
        c = db.add_function("c", "lib", 5, callees=[b])
        assert reachable_count(db, c) == 2
        assert reachable_count(db, a) == 0

    def test_measurement_agrees_with_generator(self):
        """The independent BFS must agree with the generator's DP."""
        db = build_default_funcdb()
        for fn_id in range(0, len(db), 2500):
            assert reachable_count(db, fn_id) == db.closure_size(fn_id)

    def test_full_measurement(self):
        report = measure_helper_complexity(build_default_funcdb(),
                                           build_default_registry())
        assert report.total == 249
        assert report.max_helper.name == "bpf_sys_bpf"
        assert report.min_helper.callgraph_nodes == 0

    def test_fraction_and_percentile(self):
        report = measure_helper_complexity(build_default_funcdb(),
                                           build_default_registry())
        assert 0.45 <= report.fraction_at_least(30) <= 0.60
        assert report.percentile(0.0) == 0
        assert report.percentile(1.0) >= 4500

    def test_histogram_covers_population(self):
        report = measure_helper_complexity(build_default_funcdb(),
                                           build_default_registry())
        buckets = log_histogram(report)
        assert sum(count for __, count in buckets) == 249

    def test_attach_idempotent(self):
        db = build_default_funcdb()
        registry = build_default_registry()
        first = registry.attach_to_funcdb(db)
        second = registry.attach_to_funcdb(db)
        assert first == second


class TestLoc:
    def test_count_this_test_file(self, tmp_path):
        sample = tmp_path / "sample.py"
        sample.write_text('"""Doc."""\n\n# comment\nx = 1\n')
        entry = count_python_file(str(sample))
        assert entry.code == 1
        assert entry.comment == 2
        assert entry.blank == 1

    def test_multiline_docstring(self, tmp_path):
        sample = tmp_path / "doc.py"
        sample.write_text('"""line one\nline two\n"""\nx = 1\n')
        entry = count_python_file(str(sample))
        assert entry.comment == 3 and entry.code == 1

    def test_verifier_breakdown_has_modules(self):
        breakdown = verifier_loc_breakdown()
        assert "analyzer.py" in breakdown
        assert "tnum.py" in breakdown
        assert breakdown["analyzer.py"] > breakdown["tnum.py"]

    def test_funcdb_loc_by_subsystem(self):
        db = build_default_funcdb()
        by_subsystem = funcdb_loc_by_subsystem(db)
        assert sum(by_subsystem.values()) == db.total_loc()


class TestBugTable:
    def test_counts_match_paper(self):
        assert table1_counts() == TABLE1_EXPECTED

    def test_totals(self):
        assert totals() == (40, 18, 22)

    def test_named_bugs_have_references(self):
        assert all(b.reference for b in NAMED_BUGS)

    def test_executable_bugs_have_valid_flags(self):
        flags = set(BugConfig().as_dict())
        for bug in executable_bugs():
            assert bug.repro_flag in flags

    def test_every_bugconfig_flag_appears_in_table(self):
        table_flags = {b.repro_flag for b in executable_bugs()}
        assert table_flags == set(BugConfig().as_dict())

    def test_components_valid(self):
        assert all(b.component in ("helper", "verifier")
                   for b in full_bug_table())

    def test_years_in_window(self):
        assert all(b.year in (2021, 2022) for b in full_bug_table())


class TestSurvey:
    def test_population_complete(self):
        survey = run_survey()
        assert len(survey.rows) == 249

    def test_sixteen_retired(self):
        survey = run_survey()
        assert survey.count("retire") == 16

    def test_paper_examples_classified(self):
        survey = run_survey()
        by_name = {r.name: r for r in survey.rows}
        assert by_name["bpf_loop"].classification == "retire"
        assert by_name["bpf_strtol"].classification == "retire"
        assert by_name["bpf_sk_lookup_tcp"].classification == \
            "simplify"
        assert by_name["bpf_sys_bpf"].classification == "wrap"

    def test_named_helpers_carry_evidence(self):
        survey = run_survey()
        by_name = {r.name: r for r in survey.rows}
        assert by_name["bpf_strtol"].evidence
        assert by_name["bpf_sys_bpf"].evidence

    def test_class_counts_sum(self):
        survey = run_survey()
        assert sum(survey.by_class().values()) == 249
