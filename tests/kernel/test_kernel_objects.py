"""Kernel aggregate, CPU, panic and object-model tests."""

import pytest

from repro.errors import KernelSafetyViolation, MemoryFault
from repro.kernel import Kernel
from repro.kernel.cpu import Cpu, InterruptContext
from repro.kernel.panic import KernelLog


class TestCpu:
    def test_starts_preemptible(self):
        cpu = Cpu(0)
        assert cpu.preemptible and not cpu.in_interrupt

    def test_irq_nesting(self):
        cpu = Cpu(0)
        cpu.irq_enter()
        cpu.irq_enter()
        assert cpu.in_interrupt
        cpu.irq_exit()
        assert cpu.in_interrupt
        cpu.irq_exit()
        assert not cpu.in_interrupt

    def test_irq_exit_underflow(self):
        with pytest.raises(RuntimeError):
            Cpu(0).irq_exit()

    def test_preempt_disable_enable(self):
        cpu = Cpu(0)
        cpu.preempt_disable()
        assert not cpu.preemptible
        cpu.preempt_enable()
        assert cpu.preemptible

    def test_preempt_enable_underflow(self):
        with pytest.raises(RuntimeError):
            Cpu(0).preempt_enable()

    def test_interrupt_context_manager(self):
        cpu = Cpu(0)
        with InterruptContext(cpu):
            assert cpu.in_interrupt
        assert not cpu.in_interrupt

    def test_irq_means_not_preemptible(self):
        cpu = Cpu(0)
        cpu.irq_enter()
        assert not cpu.preemptible
        cpu.irq_exit()


class TestKernelLog:
    def test_log_and_grep(self):
        log = KernelLog()
        log.log(0, "hello world")
        log.log(1, "other line")
        assert len(log.grep("hello")) == 1

    def test_dmesg_format(self):
        log = KernelLog()
        log.log(1_500_000_000, "booted")
        assert "[    1.500000] booted" in log.dmesg()

    def test_oops_taints(self):
        log = KernelLog()
        assert not log.tainted
        log.record_oops(0, "bad deref", category="null-deref",
                        source="bpf")
        assert log.tainted
        assert log.last_oops().category == "null-deref"

    def test_oops_writes_bug_line(self):
        log = KernelLog()
        log.record_oops(0, "boom", category="oops", source="x")
        assert log.grep("BUG:")
        assert log.grep("end trace")


class TestKernelAggregate:
    def test_boot_creates_init_task(self):
        kernel = Kernel()
        assert kernel.current_task.pid == 1
        assert kernel.current_task.comm == "init"

    def test_memory_fault_routes_to_oops(self):
        kernel = Kernel()
        with pytest.raises(MemoryFault):
            kernel.mem.read(0, 8, source="bpf:test")
        assert not kernel.healthy
        assert kernel.log.last_oops().source == "bpf:test"

    def test_assert_healthy_raises_after_oops(self):
        kernel = Kernel()
        with pytest.raises(MemoryFault):
            kernel.mem.read(0, 8)
        with pytest.raises(KernelSafetyViolation):
            kernel.assert_healthy()

    def test_work_advances_clock(self):
        kernel = Kernel()
        kernel.work(1000)
        assert kernel.clock.now_ns == 1000

    def test_create_task_assigns_pids(self):
        kernel = Kernel()
        a = kernel.create_task()
        b = kernel.create_task()
        assert a.pid != b.pid
        assert kernel.task_by_pid(a.pid) is a

    def test_lookup_socket_by_tuple(self):
        kernel = Kernel()
        sock = kernel.create_socket(src_ip=0x0A000001, src_port=443)
        assert kernel.lookup_socket(0x0A000001, 443) is sock
        assert kernel.lookup_socket(0x0A000001, 80) is None

    def test_funcdb_lazy_and_shared(self):
        kernel = Kernel()
        assert kernel.funcdb is kernel.funcdb
        assert len(kernel.funcdb) > 0


class TestObjects:
    def test_task_fields_via_memory(self):
        kernel = Kernel()
        task = kernel.create_task(comm="worker", pid=42)
        assert task.read_field("pid") == 42
        assert task.read_field("tgid") == 42
        raw = kernel.mem.read(task.field_address("comm"), 6)
        assert raw == b"worker"

    def test_task_has_kernel_stack(self):
        kernel = Kernel()
        task = kernel.create_task()
        assert task.read_field("stack_ptr") == task.kernel_stack.base

    def test_sock_fields(self):
        kernel = Kernel()
        sock = kernel.create_socket(src_ip=0x7F000001, src_port=8080,
                                    dst_ip=0x0A000002, dst_port=9090)
        assert sock.read_field("src_port") == 8080
        assert sock.read_field("dst_ip") == 0x0A000002
        assert sock.read_field("family") == 2

    def test_skb_data_pointers(self):
        kernel = Kernel()
        skb = kernel.create_skb(b"hello")
        assert skb.data_end - skb.data == 5
        assert kernel.mem.read(skb.data, 5) == b"hello"
        assert skb.read_field("len") == 5

    def test_skb_empty_payload(self):
        kernel = Kernel()
        skb = kernel.create_skb(b"")
        assert skb.read_field("len") == 0

    def test_write_field_truncates(self):
        kernel = Kernel()
        skb = kernel.create_skb(b"x")
        skb.write_field("mark", 0x1_FFFF_FFFF)
        assert skb.read_field("mark") == 0xFFFF_FFFF

    def test_object_free_then_access_faults(self):
        kernel = Kernel()
        task = kernel.create_task()
        task.free()
        with pytest.raises(MemoryFault):
            task.read_field("pid")

    def test_request_sock_refcounted(self):
        kernel = Kernel()
        reqsk = kernel.create_request_sock("r1")
        assert reqsk.refs.refcount == 1
