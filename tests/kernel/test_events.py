"""The kernel event stream: pub/sub semantics and the kernel's
built-in producers (oops, load, soft-reset, telemetry)."""

from repro.ebpf.bugs import BugConfig
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.kernel import EventBus, Kernel
from repro.net.programs import pass_all_prog


class TestEventBus:
    def test_publish_delivers_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e.kind)))
        bus.subscribe(lambda e: seen.append(("b", e.kind)))
        bus.publish("ping", source="t")
        assert seen == [("a", "ping"), ("b", "ping")]

    def test_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(e.kind), kinds=("x",))
        bus.publish("x")
        bus.publish("y")
        assert seen == ["x"]
        assert bus.emitted == {"x": 1, "y": 1}

    def test_cancel_stops_delivery(self):
        bus = EventBus()
        seen = []
        sub = bus.subscribe(lambda e: seen.append(e.kind))
        bus.publish("one")
        sub.cancel()
        bus.publish("two")
        assert seen == ["one"]

    def test_events_are_sequenced_and_stable(self):
        bus = EventBus()
        a = bus.publish("k", source="s", z=1, a=2)
        b = bus.publish("k")
        assert (a.seq, b.seq) == (0, 1)
        assert a.detail == (("a", 2), ("z", 1))  # sorted pairs
        assert a.get("z") == 1
        assert a.signature_bytes() == a.signature_bytes()


class TestKernelProducers:
    def test_oops_is_published_with_its_own_timestamp(self):
        kernel = Kernel()
        seen = []
        kernel.events.subscribe(seen.append, kinds=("oops",))
        kernel.clock.advance(500)
        kernel.log.record_oops(123, "boom", category="test-oops",
                               source="bpf:t")
        assert len(seen) == 1
        assert seen[0].timestamp_ns == 123
        assert seen[0].source == "bpf:t"
        assert seen[0].get("category") == "test-oops"

    def test_oops_event_still_feeds_telemetry(self):
        """Telemetry subscribes first: counters update before any
        external observer runs."""
        kernel = Kernel()
        kernel.log.record_oops(0, "boom", category="c", source="s")
        family = kernel.telemetry.registry.get("repro_oops_total")
        assert family.labels("c", "s").value == 1

    def test_load_is_published(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        seen = []
        kernel.events.subscribe(seen.append, kinds=("load",))
        bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched())
        prog = bpf.load_program(pass_all_prog(), ProgType.XDP, "p")
        assert len(seen) == 1
        assert seen[0].get("prog_id") == prog.prog_id
        assert seen[0].source == "bpf:p"

    def test_soft_reset_is_published(self):
        kernel = Kernel()
        seen = []
        kernel.events.subscribe(seen.append, kinds=("soft-reset",))
        kernel.log.record_oops(0, "boom", category="c", source="bpf:x")
        kernel.soft_reset(("bpf:x",), reason="test")
        assert len(seen) == 1
        assert seen[0].get("cleared") == 1
        assert seen[0].get("sources") == ("bpf:x",)

    def test_telemetry_snapshot_event(self):
        kernel = Kernel()
        event = kernel.emit_telemetry_snapshot()
        assert event.kind == "telemetry"
        assert event.get("panicked") is False
        assert kernel.events.emitted["telemetry"] == 1
