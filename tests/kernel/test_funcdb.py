"""Synthetic kernel function database tests."""

import pytest

from repro.kernel.funcdb import FunctionDatabase, build_default_funcdb


@pytest.fixture(scope="module")
def db():
    return build_default_funcdb()


class TestGeneration:
    def test_default_size(self, db):
        assert len(db) >= 20_000

    def test_deterministic(self):
        a = build_default_funcdb(seed=7, total=500)
        b = build_default_funcdb.__wrapped__(seed=7, total=500)
        assert [f.name for f in a.functions] == \
            [f.name for f in b.functions]

    def test_dag_invariant(self, db):
        for fn_id, callees in enumerate(db.callees[:2000]):
            assert all(c < fn_id for c in callees)

    def test_names_unique(self, db):
        names = [f.name for f in db.functions]
        assert len(names) == len(set(names))

    def test_lookup_by_name(self, db):
        fn = db.functions[100]
        assert db.lookup(fn.name) is fn
        assert db.lookup("no_such_function") is None

    def test_loc_positive(self, db):
        assert all(f.loc >= 3 for f in db.functions[:1000])

    def test_subsystems_assigned(self, db):
        subsystems = {f.subsystem for f in db.functions}
        assert {"mm", "net", "fs", "lib"} <= subsystems

    def test_total_loc(self, db):
        assert db.total_loc() > 100_000
        assert db.total_loc("net") < db.total_loc()


class TestClosureSizes:
    def test_leaves_have_zero_closure(self, db):
        leaf_ids = [i for i, c in enumerate(db.callees[:100]) if not c]
        assert leaf_ids
        assert all(db.closure_size(i) == 0 for i in leaf_ids)

    def test_closure_monotone_along_spine(self, db):
        """A caller's closure strictly contains its callee's."""
        for fn_id in range(1000, 1100):
            for callee in db.callees_of(fn_id):
                assert db.closure_size(fn_id) > db.closure_size(callee) \
                    or db.closure_size(fn_id) >= \
                    db.closure_size(callee)

    def test_spectrum_covers_paper_range(self, db):
        spectrum = db.closure_spectrum()
        assert spectrum[0] == 0
        assert spectrum[-1] >= 4845

    def test_entry_with_closure_accuracy(self, db):
        for target in (0, 10, 100, 1000, 4844):
            got = db.closure_size(db.entry_with_closure(target))
            assert abs(got - target) <= max(5, target * 0.05)


class TestAddFunction:
    def test_add_function_computes_closure(self):
        db = FunctionDatabase()
        a = db.add_function("a", "lib", 10)
        b = db.add_function("b", "lib", 10, callees=[a])
        c = db.add_function("c", "lib", 10, callees=[b])
        assert db.closure_size(a) == 0
        assert db.closure_size(b) == 1
        assert db.closure_size(c) == 2

    def test_shared_callees_counted_once(self):
        db = FunctionDatabase()
        a = db.add_function("a", "lib", 10)
        b = db.add_function("b", "lib", 10, callees=[a])
        c = db.add_function("c", "lib", 10, callees=[a])
        d = db.add_function("d", "lib", 10, callees=[b, c])
        assert db.closure_size(d) == 3  # a, b, c

    def test_forward_edge_rejected(self):
        db = FunctionDatabase()
        db.add_function("a", "lib", 10)
        with pytest.raises(ValueError):
            db.add_function("b", "lib", 10, callees=[5])

    def test_duplicate_name_rejected(self):
        db = FunctionDatabase()
        db.add_function("a", "lib", 10)
        with pytest.raises(ValueError):
            db.add_function("a", "lib", 10)

    def test_self_call_rejected(self):
        db = FunctionDatabase()
        with pytest.raises(ValueError):
            db.add_function("a", "lib", 10, callees=[0])
