"""RCU, spinlock and refcount subsystem tests."""

import pytest

from repro.errors import KernelDeadlock, RcuStall, ResourceLeak, \
    UseAfterFree
from repro.kernel.ktime import NSEC_PER_SEC, VirtualClock
from repro.kernel.locks import LockRegistry, SpinLock
from repro.kernel.panic import KernelLog
from repro.kernel.rcu import RcuReadGuard, RcuSubsystem
from repro.kernel.refcount import RefcountRegistry


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def rcu(clock):
    return RcuSubsystem(clock, KernelLog())


class TestRcu:
    def test_read_lock_nesting(self, rcu):
        rcu.read_lock()
        rcu.read_lock()
        assert rcu.read_lock_held
        rcu.read_unlock()
        assert rcu.read_lock_held
        rcu.read_unlock()
        assert not rcu.read_lock_held

    def test_unbalanced_unlock_raises(self, rcu):
        with pytest.raises(RuntimeError):
            rcu.read_unlock()

    def test_guard_context_manager(self, rcu):
        with RcuReadGuard(rcu):
            assert rcu.read_lock_held
        assert not rcu.read_lock_held

    def test_no_stall_below_timeout(self, rcu, clock):
        rcu.read_lock()
        clock.advance(rcu.stall_timeout_ns - 1)
        assert rcu.stall_reports == []

    def test_stall_detected_at_timeout(self, rcu, clock):
        rcu.read_lock(holder="prog")
        clock.advance(rcu.stall_timeout_ns)
        assert len(rcu.stall_reports) == 1
        assert rcu.stall_reports[0].holder == "prog"

    def test_stall_reports_repeat(self, rcu, clock):
        rcu.read_lock()
        for __ in range(3):
            clock.advance(rcu.stall_timeout_ns)
        assert len(rcu.stall_reports) == 3

    def test_bulk_advance_stamps_first_stall_at_deadline(self, rcu,
                                                         clock):
        """A fast-forward jump must still report the first stall at
        exactly the timeout (21s), not at the jump end."""
        rcu.read_lock()
        clock.advance(100 * rcu.stall_timeout_ns)
        assert rcu.stall_reports
        first = rcu.stall_reports[0]
        assert first.duration_ns == rcu.stall_timeout_ns

    def test_bulk_advance_report_count_bounded(self, rcu, clock):
        rcu.read_lock()
        clock.advance(10**6 * rcu.stall_timeout_ns)
        assert len(rcu.stall_reports) <= rcu.MAX_REPORTS_PER_TICK

    def test_unlock_resets_stall_tracking(self, rcu, clock):
        rcu.read_lock()
        rcu.read_unlock()
        clock.advance(10 * rcu.stall_timeout_ns)
        assert rcu.stall_reports == []

    def test_stall_logged_to_dmesg(self, rcu, clock):
        rcu.read_lock(holder="bpf:stall")
        clock.advance(rcu.stall_timeout_ns)
        assert rcu._log.grep("self-detected stall")

    def test_synchronize_under_read_lock_deadlocks(self, rcu):
        rcu.read_lock()
        with pytest.raises(RcuStall):
            rcu.synchronize()

    def test_synchronize_outside_section_ok(self, rcu):
        rcu.synchronize()  # no exception


class TestSpinLock:
    def test_lock_unlock(self):
        lock = SpinLock("l")
        lock.lock("a")
        assert lock.locked and lock.owner == "a"
        lock.unlock("a")
        assert not lock.locked

    def test_aa_deadlock_detected(self):
        lock = SpinLock("l")
        lock.lock("a")
        with pytest.raises(KernelDeadlock):
            lock.lock("a")

    def test_contended_lock_detected(self):
        lock = SpinLock("l")
        lock.lock("a")
        with pytest.raises(KernelDeadlock):
            lock.lock("b")

    def test_unlock_not_held(self):
        with pytest.raises(KernelDeadlock):
            SpinLock("l").unlock("a")

    def test_unlock_wrong_owner(self):
        lock = SpinLock("l")
        lock.lock("a")
        with pytest.raises(KernelDeadlock):
            lock.unlock("b")

    def test_acquire_count(self):
        lock = SpinLock("l")
        for __ in range(3):
            lock.lock("a")
            lock.unlock("a")
        assert lock.acquire_count == 3

    def test_registry_audit_clean(self):
        registry = LockRegistry()
        lock = registry.create("l")
        lock.lock("prog")
        lock.unlock("prog")
        registry.assert_none_held("prog")

    def test_registry_audit_held_at_exit(self):
        registry = LockRegistry()
        registry.create("l").lock("prog")
        with pytest.raises(ResourceLeak):
            registry.assert_none_held("prog")

    def test_registry_held_by(self):
        registry = LockRegistry()
        a = registry.create("a")
        registry.create("b")
        a.lock("prog")
        assert registry.held_by("prog") == [a]


class TestRefcount:
    def test_initial_count_is_one(self):
        registry = RefcountRegistry()
        obj = registry.create("s", "sock")
        assert obj.refcount == 1

    def test_get_put_balance(self):
        registry = RefcountRegistry()
        obj = registry.create("s", "sock")
        obj.get("prog")
        assert obj.refcount == 2
        obj.put("prog")
        assert obj.refcount == 1

    def test_release_at_zero(self):
        registry = RefcountRegistry()
        obj = registry.create("s", "sock")
        obj.put("kernel")
        assert obj.released

    def test_get_after_release_faults(self):
        registry = RefcountRegistry()
        obj = registry.create("s", "sock")
        obj.put("kernel")
        with pytest.raises(UseAfterFree):
            obj.get("prog")

    def test_put_after_release_faults(self):
        registry = RefcountRegistry()
        obj = registry.create("s", "sock")
        obj.put("kernel")
        with pytest.raises(UseAfterFree):
            obj.put("prog")

    def test_outstanding_tracked_per_holder(self):
        registry = RefcountRegistry()
        obj = registry.create("s", "sock")
        obj.get("a")
        obj.get("b")
        obj.put("b")
        leaks = registry.outstanding_for("a")
        assert len(leaks) == 1 and leaks[0].outstanding == 1
        assert registry.outstanding_for("b") == []

    def test_assert_no_leaks_raises(self):
        registry = RefcountRegistry()
        registry.create("s", "sock").get("prog")
        with pytest.raises(ResourceLeak):
            registry.assert_no_leaks("prog")

    def test_assert_no_leaks_clean(self):
        registry = RefcountRegistry()
        obj = registry.create("s", "sock")
        obj.get("prog")
        obj.put("prog")
        registry.assert_no_leaks("prog")

    def test_multiple_gets_same_holder(self):
        registry = RefcountRegistry()
        obj = registry.create("s", "sock")
        obj.get("prog")
        obj.get("prog")
        assert registry.outstanding_for("prog")[0].outstanding == 2
