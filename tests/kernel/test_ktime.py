"""Virtual clock unit tests."""

import pytest

from repro.kernel.ktime import NSEC_PER_SEC, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_ns == 0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(5)
        clock.advance(7)
        assert clock.now_ns == 12

    def test_now_seconds(self):
        clock = VirtualClock()
        clock.advance(3 * NSEC_PER_SEC)
        assert clock.now_seconds == pytest.approx(3.0)

    def test_zero_advance_is_noop(self):
        clock = VirtualClock()
        fired = []
        clock.add_tick_callback("t", fired.append)
        clock.advance(0)
        assert clock.now_ns == 0
        assert fired == []

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_tick_callback_receives_now(self):
        clock = VirtualClock()
        seen = []
        clock.add_tick_callback("t", seen.append)
        clock.advance(10)
        clock.advance(5)
        assert seen == [10, 15]

    def test_multiple_callbacks_all_fire(self):
        clock = VirtualClock()
        seen_a, seen_b = [], []
        clock.add_tick_callback("a", seen_a.append)
        clock.add_tick_callback("b", seen_b.append)
        clock.advance(1)
        assert seen_a == [1] and seen_b == [1]

    def test_remove_tick_callback(self):
        clock = VirtualClock()
        seen = []
        clock.add_tick_callback("t", seen.append)
        clock.remove_tick_callback("t")
        clock.advance(1)
        assert seen == []

    def test_remove_only_named_callback(self):
        clock = VirtualClock()
        seen_a, seen_b = [], []
        clock.add_tick_callback("a", seen_a.append)
        clock.add_tick_callback("b", seen_b.append)
        clock.remove_tick_callback("a")
        clock.advance(2)
        assert seen_a == [] and seen_b == [2]

    def test_huge_advance(self):
        clock = VirtualClock()
        clock.advance(10**18)  # ~31 years of nanoseconds
        assert clock.now_seconds > 10**8
