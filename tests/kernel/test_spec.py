"""KernelSpec: declarative construction and the constructor shim."""

import pytest

from repro.ebpf.loader import BpfSubsystem
from repro.kernel import Kernel, KernelSpec
from repro.recovery import RecoveryPolicy


class TestBoot:
    def test_defaults_match_legacy_constructor(self):
        via_spec = Kernel.from_spec(KernelSpec())
        legacy = Kernel()
        assert len(via_spec.cpus) == len(legacy.cpus) == 4
        assert via_spec.recovery is None
        assert not via_spec.telemetry.stats_enabled

    def test_spec_is_recorded_on_the_kernel(self):
        spec = KernelSpec(nr_cpus=2)
        kernel = Kernel.from_spec(spec)
        assert kernel.spec is spec
        assert len(kernel.cpus) == 2

    def test_stats_and_recovery_applied_at_boot(self):
        kernel = Kernel.from_spec(
            KernelSpec(stats_enabled=True, recovery=True))
        assert kernel.telemetry.stats_enabled
        assert kernel.recovery is not None

    def test_policy_implies_recovery(self):
        policy = RecoveryPolicy(quarantine_threshold=9)
        spec = KernelSpec(recovery_policy=policy)
        assert spec.wants_recovery
        kernel = Kernel.from_spec(spec)
        assert kernel.recovery.policy.quarantine_threshold == 9

    def test_fault_arms_applied_at_boot(self):
        spec = KernelSpec().with_faults(
            5, "helper.bpf_ktime_get_ns=every:1=panic")
        kernel = Kernel.from_spec(spec)
        assert kernel.faults.enabled
        assert len(kernel.faults.arms) == 1

    def test_with_faults_accumulates_arms(self):
        spec = KernelSpec().with_faults(1, "a.site=oneshot=panic") \
            .with_faults(1, "b.site=oneshot=panic")
        assert len(spec.fault_arms) == 2

    def test_bad_arm_is_loud(self):
        spec = KernelSpec(fault_arms=("not-an-arm",))
        with pytest.raises(ValueError, match="SITE=SCHEDULE=ACTION"):
            Kernel.from_spec(spec)

    def test_equal_specs_are_interchangeable(self):
        """Frozen + hashable: a fleet can key caches by spec."""
        a = KernelSpec(nr_cpus=2, recovery=True)
        b = KernelSpec(nr_cpus=2, recovery=True)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestSubsystemSide:
    def test_from_spec_threads_engine_and_toggles(self, leakcheck):
        spec = KernelSpec(engine="interp", use_jit=False,
                          use_load_cache=False)
        kernel = Kernel.from_spec(spec)
        leakcheck(kernel)
        bpf = BpfSubsystem.from_spec(kernel)
        assert bpf.vm.engine == "interp"
        assert bpf.use_jit is False
        assert bpf.load_cache is None

    def test_from_spec_defaults_to_kernel_spec(self, leakcheck):
        kernel = Kernel.from_spec(KernelSpec(engine="compiled"))
        leakcheck(kernel)
        bpf = BpfSubsystem.from_spec(kernel)
        assert bpf.vm.engine == "compiled"

    def test_describe_is_one_line(self):
        spec = KernelSpec(engine="fast", recovery=True,
                          stats_enabled=True).with_faults(3, "x=oneshot=panic")
        text = spec.describe()
        assert "engine=fast" in text
        assert "recovery=on" in text
        assert "seed=3" in text
