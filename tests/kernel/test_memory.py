"""Kernel address space unit tests."""

import pytest

from repro.errors import (
    MemoryFault,
    NullDereference,
    OutOfBoundsAccess,
    UseAfterFree,
)
from repro.kernel.memory import (
    KERNEL_BASE,
    KernelAddressSpace,
    NULL_PAGE_SIZE,
)


@pytest.fixture
def mem():
    return KernelAddressSpace()


class TestAllocation:
    def test_kmalloc_returns_kernel_address(self, mem):
        alloc = mem.kmalloc(64)
        assert alloc.base >= KERNEL_BASE

    def test_allocations_do_not_overlap(self, mem):
        a = mem.kmalloc(64)
        b = mem.kmalloc(64)
        assert a.end <= b.base or b.end <= a.base

    def test_red_zone_between_allocations(self, mem):
        a = mem.kmalloc(16)
        b = mem.kmalloc(16)
        assert b.base > a.end  # gap exists

    def test_zeroed_on_allocation(self, mem):
        alloc = mem.kmalloc(32)
        assert mem.read(alloc.base, 32) == b"\x00" * 32

    def test_zero_size_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.kmalloc(0)

    def test_negative_size_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.kmalloc(-8)

    def test_live_bytes_accounting(self, mem):
        a = mem.kmalloc(100)
        mem.kmalloc(50)
        assert mem.live_bytes == 150
        mem.kfree(a)
        assert mem.live_bytes == 50

    def test_live_allocations_filter_by_owner(self, mem):
        mem.kmalloc(8, owner="bpf")
        mem.kmalloc(8, owner="net")
        mem.kmalloc(8, owner="bpf")
        assert len(mem.live_allocations(owner="bpf")) == 2

    def test_alloc_ids_unique(self, mem):
        ids = {mem.kmalloc(8).alloc_id for __ in range(10)}
        assert len(ids) == 10


class TestCheckedAccess:
    def test_write_read_roundtrip(self, mem):
        alloc = mem.kmalloc(16)
        mem.write(alloc.base + 4, b"\xde\xad")
        assert mem.read(alloc.base + 4, 2) == b"\xde\xad"

    def test_u64_roundtrip(self, mem):
        alloc = mem.kmalloc(8)
        mem.write_u64(alloc.base, 0x0123456789ABCDEF)
        assert mem.read_u64(alloc.base) == 0x0123456789ABCDEF

    def test_u64_wraps_to_64_bits(self, mem):
        alloc = mem.kmalloc(8)
        mem.write_u64(alloc.base, -1)
        assert mem.read_u64(alloc.base) == (1 << 64) - 1

    def test_null_dereference_faults(self, mem):
        with pytest.raises(NullDereference):
            mem.read(0, 8)

    def test_near_null_faults(self, mem):
        with pytest.raises(NullDereference):
            mem.read(NULL_PAGE_SIZE - 1, 1)

    def test_wild_access_faults(self, mem):
        with pytest.raises(MemoryFault):
            mem.read(KERNEL_BASE + 0x123456, 8)

    def test_use_after_free_faults(self, mem):
        alloc = mem.kmalloc(8)
        mem.kfree(alloc)
        with pytest.raises(UseAfterFree):
            mem.read(alloc.base, 8)

    def test_double_free_faults(self, mem):
        alloc = mem.kmalloc(8)
        mem.kfree(alloc)
        with pytest.raises(UseAfterFree):
            mem.kfree(alloc)

    def test_out_of_bounds_faults(self, mem):
        alloc = mem.kmalloc(8)
        with pytest.raises(OutOfBoundsAccess):
            mem.read(alloc.base + 4, 8)

    def test_fault_carries_address_and_source(self, mem):
        alloc = mem.kmalloc(8)
        try:
            mem.read(alloc.base + 100, 1, source="test-prog")
        except MemoryFault as fault:
            assert fault.address == alloc.base + 100
            assert fault.source == "test-prog"
        else:
            pytest.fail("no fault raised")

    def test_fault_hook_invoked_before_raise(self, mem):
        seen = []
        mem.fault_hook = seen.append
        with pytest.raises(NullDereference):
            mem.read(0, 1)
        assert len(seen) == 1
        assert seen[0].category == "null-deref"

    def test_zero_size_read_returns_empty(self, mem):
        alloc = mem.kmalloc(8)
        assert mem.read(alloc.base, 0) == b""

    def test_empty_write_is_noop(self, mem):
        alloc = mem.kmalloc(8)
        mem.write(alloc.base, b"")
        assert mem.read(alloc.base, 8) == b"\x00" * 8


class TestNonFaultingAccess:
    def test_try_read_valid(self, mem):
        alloc = mem.kmalloc(8)
        mem.write(alloc.base, b"hi")
        assert mem.try_read(alloc.base, 2) == b"hi"

    def test_try_read_null_returns_none(self, mem):
        assert mem.try_read(0, 8) is None

    def test_try_read_freed_returns_none(self, mem):
        alloc = mem.kmalloc(8)
        mem.kfree(alloc)
        assert mem.try_read(alloc.base, 8) is None

    def test_try_read_oob_returns_none(self, mem):
        alloc = mem.kmalloc(8)
        assert mem.try_read(alloc.base + 4, 8) is None

    def test_try_write_valid(self, mem):
        alloc = mem.kmalloc(8)
        assert mem.try_write(alloc.base, b"ab")
        assert mem.read(alloc.base, 2) == b"ab"

    def test_try_write_invalid_returns_false(self, mem):
        assert not mem.try_write(0x1234, b"ab")

    def test_valid_range(self, mem):
        alloc = mem.kmalloc(16)
        assert mem.valid_range(alloc.base, 16)
        assert not mem.valid_range(alloc.base, 17)
        assert not mem.valid_range(0, 1)

    def test_try_read_never_triggers_fault_hook(self, mem):
        seen = []
        mem.fault_hook = seen.append
        mem.try_read(0, 8)
        assert seen == []


class TestFindAllocation:
    def test_finds_containing_allocation(self, mem):
        allocs = [mem.kmalloc(32) for __ in range(5)]
        target = allocs[2]
        found = mem.find_allocation(target.base + 10)
        assert found is target

    def test_returns_none_for_gap(self, mem):
        alloc = mem.kmalloc(16)
        assert mem.find_allocation(alloc.end + 1) is None

    def test_freed_allocation_still_found(self, mem):
        alloc = mem.kmalloc(16)
        mem.kfree(alloc)
        found = mem.find_allocation(alloc.base)
        assert found is alloc and found.freed
