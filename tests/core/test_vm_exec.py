"""SafeLang execution semantics tests."""

import pytest

from repro.core import SafeExtensionFramework
from repro.ebpf.loader import BpfSubsystem
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def fw(kernel):
    return SafeExtensionFramework(kernel)


def run(fw, body: str, maps=None, budget_ns=None,
        full_source: str = None):
    source = full_source or \
        f"fn prog(ctx: XdpCtx) -> i64 {{ {body} }}"
    if budget_ns is not None:
        fw.vm.watchdog_budget_ns = budget_ns
    loaded = fw.install(source, "t", maps=maps or [])
    return fw.run_on_packet(loaded, b"payload!")


class TestArithmetic:
    def test_basic_math(self, fw):
        assert run(fw, "return 2 + 3 * 4;").value == 14

    def test_signed_division_truncates_toward_zero(self, fw):
        assert run(fw, "let a: i64 = 0 - 7; return a / 2;").value == -3

    def test_signed_remainder(self, fw):
        assert run(fw, "let a: i64 = 0 - 7; return a % 2;").value == -1

    def test_unsigned_overflow_panics(self, fw, kernel):
        result = run(fw, "let x: u64 = 18446744073709551615; "
                         "return (x + 1) as i64;")
        assert result.panicked
        assert "overflow" in result.reason
        assert kernel.healthy

    def test_signed_overflow_panics(self, fw):
        result = run(fw, "let x: i64 = 9223372036854775807; "
                         "return x + 1;")
        assert result.panicked

    def test_underflow_panics(self, fw):
        result = run(fw, "let x: u64 = 0; return (x - 1) as i64;")
        assert result.panicked

    def test_division_by_zero_panics(self, fw):
        result = run(fw, "let z: u64 = 0; return (5 / z) as i64;")
        assert result.panicked
        assert "division" in result.reason

    def test_oversize_shift_panics(self, fw):
        result = run(fw, "let s: u64 = 64; return (1 << s) as i64;")
        assert result.panicked

    def test_cast_wraps(self, fw):
        assert run(fw, "let x: u64 = 300; "
                       "return (x as u8) as i64;").value == 44

    def test_cast_to_signed(self, fw):
        assert run(fw, "let x: u64 = 18446744073709551615; "
                       "let y = x as i64; return y;").value == -1

    def test_bitwise_ops(self, fw):
        assert run(fw, "let a: u64 = 12; "
                       "return ((a & 10) | 1) as i64;").value == 9

    def test_explicit_panic_contained(self, fw, kernel):
        result = run(fw, 'panic!("ouch"); return 0;')
        assert result.panicked and "ouch" in result.reason
        assert kernel.healthy


class TestControlFlow:
    def test_if_else(self, fw):
        assert run(fw, "if 1 < 2 { return 10; } else "
                       "{ return 20; }").value == 10

    def test_while_loop(self, fw):
        assert run(fw, "let mut i: u64 = 0; let mut acc: u64 = 0; "
                       "while i < 10 { acc = acc + i; i = i + 1; } "
                       "return acc as i64;").value == 45

    def test_for_loop(self, fw):
        assert run(fw, "let mut acc: u64 = 0; for i in 1..5 "
                       "{ acc = acc + i; } return acc as i64;"
                   ).value == 10

    def test_break(self, fw):
        assert run(fw, "let mut i: u64 = 0; while true "
                       "{ i = i + 1; if i == 5 { break; } } "
                       "return i as i64;").value == 5

    def test_continue(self, fw):
        assert run(fw, "let mut acc: u64 = 0; for i in 0..10 "
                       "{ if i % 2 == 0 { continue; } "
                       "acc = acc + i; } return acc as i64;"
                   ).value == 25

    def test_nested_loops(self, fw):
        assert run(fw, "let mut acc: u64 = 0; for i in 0..3 "
                       "{ for j in 0..3 { acc = acc + 1; } } "
                       "return acc as i64;").value == 9

    def test_empty_for_range(self, fw):
        assert run(fw, "let mut acc: u64 = 7; for i in 5..5 "
                       "{ acc = 0; } return acc as i64;").value == 7

    def test_match_some(self, fw):
        assert run(fw, "let o: Option<u64> = Some(3); match o "
                       "{ Some(v) => { return v as i64; }, "
                       "None => { return -1; }, } return 0;"
                   ).value == 3

    def test_match_none(self, fw):
        assert run(fw, "let o: Option<u64> = None; match o "
                       "{ Some(v) => { return 1; }, "
                       "None => { return 2; }, } return 0;"
                   ).value == 2


class TestFunctions:
    def test_user_function(self, fw):
        source = """
        fn double(x: u64) -> u64 { return x * 2; }
        fn prog(ctx: XdpCtx) -> i64 { return double(21) as i64; }
        """
        assert run(fw, "", full_source=source).value == 42

    def test_bounded_recursion(self, fw):
        source = """
        fn fib(n: u64) -> u64 {
            if n < 2 { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn prog(ctx: XdpCtx) -> i64 { return fib(10) as i64; }
        """
        assert run(fw, "", full_source=source).value == 55

    def test_references_through_functions(self, fw):
        source = """
        fn bump(x: &mut u64) {
            *x = *x + 1;
        }
        fn prog(ctx: XdpCtx) -> i64 {
            let mut n: u64 = 41;
            bump(&mut n);
            return n as i64;
        }
        """
        assert run(fw, "", full_source=source).value == 42

    def test_ctx_methods(self, fw):
        assert run(fw, "return ctx.len() as i64;").value == 8

    def test_ctx_load_in_bounds(self, fw):
        # payload "payload!"[0] = 'p' = 112
        assert run(fw, "match ctx.load_u8(0) { Some(b) => "
                       "{ return b as i64; }, None => "
                       "{ return -1; }, } return 0;").value == 112

    def test_ctx_load_out_of_bounds_is_none(self, fw):
        assert run(fw, "match ctx.load_u8(100) { Some(b) => "
                       "{ return 1; }, None => { return 2; }, } "
                       "return 0;").value == 2

    def test_string_parse(self, fw):
        assert run(fw, 'let s = "-77"; match s.parse_i64() '
                       "{ Some(v) => { return v; }, None => "
                       "{ return 0; }, } return 0;").value == -77

    def test_vec_operations(self, fw):
        body = """
        let v = vec_new();
        v.push(10);
        v.push(20);
        match v.get(1) {
            Some(x) => { return x as i64; },
            None => { return -1; },
        }
        return 0;
        """
        assert run(fw, body).value == 20

    def test_vec_out_of_bounds_is_none(self, fw):
        body = """
        let v = vec_new();
        v.push(1);
        match v.get(5) {
            Some(x) => { return 1; },
            None => { return 2; },
        }
        return 0;
        """
        assert run(fw, body).value == 2


class TestMapsFromSafeLang:
    def test_lookup_update(self, fw, kernel):
        bpf = BpfSubsystem(kernel)
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=4)
        body = """
        map_update(0, 2, 99);
        match map_lookup(0, 2) {
            Some(v) => { return v as i64; },
            None => { return -1; },
        }
        return 0;
        """
        assert run(fw, body, maps=[amap]).value == 99

    def test_out_of_range_index_is_none(self, fw, kernel):
        bpf = BpfSubsystem(kernel)
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=4)
        body = """
        match map_lookup(0, 100) {
            Some(v) => { return 1; },
            None => { return 2; },
        }
        return 0;
        """
        assert run(fw, body, maps=[amap]).value == 2

    def test_unbound_map_slot_panics(self, fw):
        result = run(fw, "map_update(5, 0, 1); return 0;")
        assert result.panicked
        assert "unbound" in result.reason

    def test_array_index_math_full_precision(self, fw, kernel):
        """The §3.2 integer-move: even on a buggy-era kernel the
        kcrate's safe index computation never wraps."""
        bpf = BpfSubsystem(kernel)   # buggy-era BugConfig
        amap = bpf.create_map("array", key_size=4, value_size=64,
                              max_entries=4)
        body = """
        match map_lookup(0, 67108864) {  // 2**26: wraps in buggy C
            Some(v) => { return 1; },    // would alias element 0
            None => { return 2; },       // honest out-of-range
        }
        return 0;
        """
        assert run(fw, body, maps=[amap]).value == 2


class TestOptionCombinators:
    def test_unwrap_or_some(self, fw):
        assert run(fw, "let o: Option<u64> = Some(5); "
                       "return o.unwrap_or(9) as i64;").value == 5

    def test_unwrap_or_none(self, fw):
        assert run(fw, "let o: Option<u64> = None; "
                       "return o.unwrap_or(9) as i64;").value == 9

    def test_is_some_is_none(self, fw):
        body = """
        let a: Option<u64> = Some(1);
        let b: Option<u64> = None;
        if a.is_some() && b.is_none() { return 1; }
        return 0;
        """
        assert run(fw, body).value == 1

    def test_unwrap_or_on_kcrate_result(self, fw, kernel):
        bpf = BpfSubsystem(kernel)
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=4)
        body = """
        map_update(0, 1, 41);
        let v = map_lookup(0, 1).unwrap_or(0);
        let miss = map_lookup(0, 3).unwrap_or(100);
        return (v + miss + 1) as i64;
        """
        # note: array values default to 0, so slot 3 is Some(0)
        assert run(fw, body, maps=[amap]).value == 42

    def test_unwrap_or_resource_rejected(self, fw):
        from repro.errors import TypeCheckError
        import pytest as _pytest
        with _pytest.raises(TypeCheckError):
            run(fw, "let s = sk_lookup_tcp(1, 2).unwrap_or(0); "
                    "return 0;")

    def test_option_unknown_method(self, fw):
        from repro.errors import TypeCheckError
        import pytest as _pytest
        with _pytest.raises(TypeCheckError):
            run(fw, "let o: Option<u64> = None; o.expect(); "
                    "return 0;")


class TestStringEquality:
    def test_str_eq(self, fw):
        assert run(fw, 'let a = "xdp"; if a == "xdp" { return 1; } '
                       "return 0;").value == 1

    def test_str_ne(self, fw):
        assert run(fw, 'let a = "xdp"; if a != "tc" { return 1; } '
                       "return 0;").value == 1
