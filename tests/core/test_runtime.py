"""Runtime-mechanism tests: watchdog, cleanup, pool, stack guard."""

import pytest

from repro.core.kcrate.resources import KernelResource, VecHandle
from repro.core.runtime.cleanup import CleanupList
from repro.core.runtime.mempool import MemoryPool
from repro.core.runtime.stack import StackGuard
from repro.core.runtime.watchdog import Watchdog
from repro.errors import StackOverflow
from repro.kernel import Kernel
from repro.kernel.ktime import VirtualClock


class TestWatchdog:
    def test_fires_at_deadline(self):
        clock = VirtualClock()
        dog = Watchdog(clock, budget_ns=100)
        dog.arm()
        clock.advance(99)
        assert not dog.fired
        clock.advance(1)
        assert dog.fired

    def test_disarm_stops_firing(self):
        clock = VirtualClock()
        dog = Watchdog(clock, budget_ns=100)
        dog.arm()
        dog.disarm()
        clock.advance(1000)
        assert not dog.fired

    def test_rearm_resets(self):
        clock = VirtualClock()
        dog = Watchdog(clock, budget_ns=100)
        dog.arm()
        clock.advance(150)
        assert dog.fired
        dog.disarm()
        dog.arm()
        assert not dog.fired
        clock.advance(50)
        assert not dog.fired

    def test_remaining_ns(self):
        clock = VirtualClock()
        dog = Watchdog(clock, budget_ns=100)
        dog.arm()
        clock.advance(30)
        assert dog.remaining_ns() == 70

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            Watchdog(VirtualClock(), budget_ns=0)

    def test_two_watchdogs_independent(self):
        clock = VirtualClock()
        a = Watchdog(clock, budget_ns=50, name="a")
        b = Watchdog(clock, budget_ns=200, name="b")
        a.arm()
        b.arm()
        clock.advance(100)
        assert a.fired and not b.fired

    def test_fire_removes_tick_callback(self):
        """Regression: a fired watchdog used to leave its tick hook on
        the clock forever when the extension was killed before
        ``disarm()`` ran."""
        clock = VirtualClock()
        dog = Watchdog(clock, budget_ns=100, name="leaky")
        dog.arm()
        clock.advance(150)
        assert dog.fired
        assert clock.tick_callback_count() == 0

    def test_no_callback_growth_over_repeated_timeouts(self):
        """Arm-and-fire many times without ever disarming: the clock
        must not accumulate stale callbacks."""
        clock = VirtualClock()
        for __ in range(50):
            dog = Watchdog(clock, budget_ns=10, name="ext")
            dog.arm()
            clock.advance(20)   # fires; extension "killed", no disarm
            assert dog.fired
        assert clock.tick_callback_count() == 0

    def test_rearm_without_disarm_keeps_one_callback(self):
        clock = VirtualClock()
        dog = Watchdog(clock, budget_ns=100, name="re")
        dog.arm()
        dog.arm()
        dog.arm()
        assert clock.tick_callback_count() == 1
        dog.disarm()
        assert clock.tick_callback_count() == 0

    def test_fired_watchdog_stays_fired_until_rearm(self):
        clock = VirtualClock()
        dog = Watchdog(clock, budget_ns=10)
        dog.arm()
        clock.advance(50)
        assert dog.fired
        clock.advance(50)
        assert dog.fired     # still reports the timeout
        assert not dog.armed


class TestCleanupList:
    def make_resource(self, log, name):
        return KernelResource("test", name,
                              lambda: log.append(name))

    def test_terminate_runs_destructors_lifo(self):
        log = []
        cleanup = CleanupList()
        for name in ("a", "b", "c"):
            cleanup.register(self.make_resource(log, name))
        ran = cleanup.terminate()
        assert ran == 3
        assert log == ["c", "b", "a"]

    def test_released_resources_skipped(self):
        log = []
        cleanup = CleanupList()
        res = self.make_resource(log, "a")
        cleanup.register(res)
        res.release()
        assert cleanup.terminate() == 0
        assert log == ["a"]  # released once, not twice

    def test_release_idempotent(self):
        log = []
        res = self.make_resource(log, "a")
        res.release()
        res.release()
        assert log == ["a"]

    def test_live_count(self):
        cleanup = CleanupList()
        resources = [self.make_resource([], str(i)) for i in range(3)]
        for res in resources:
            cleanup.register(res)
        resources[0].release()
        assert cleanup.live_count == 2

    def test_capacity_compacts_released(self):
        cleanup = CleanupList(capacity=4)
        for i in range(20):
            res = self.make_resource([], str(i))
            cleanup.register(res)
            res.release()   # scope exit each iteration
        assert len(cleanup) <= 4

    def test_capacity_exceeded_terminates(self):
        log = []
        cleanup = CleanupList(capacity=4)
        for i in range(4):
            cleanup.register(self.make_resource(log, str(i)))
        with pytest.raises(MemoryError):
            cleanup.register(self.make_resource(log, "overflow"))
        # the fail-safe released everything already held
        assert len(log) == 4

    def test_assert_clean(self):
        cleanup = CleanupList()
        res = self.make_resource([], "a")
        cleanup.register(res)
        with pytest.raises(AssertionError):
            cleanup.assert_clean()
        res.release()
        cleanup.assert_clean()


class TestMemoryPool:
    def test_alloc_within_region(self):
        kernel = Kernel()
        pool = MemoryPool(kernel, kernel.current_cpu, size=1024)
        block = pool.alloc(100)
        assert block is not None
        assert pool.used >= 100

    def test_exhaustion_returns_none(self):
        kernel = Kernel()
        pool = MemoryPool(kernel, kernel.current_cpu, size=128)
        assert pool.alloc(100) is not None
        assert pool.alloc(100) is None
        assert pool.failed_allocs == 1

    def test_reset_frees_all(self):
        kernel = Kernel()
        pool = MemoryPool(kernel, kernel.current_cpu, size=128)
        pool.alloc(100)
        pool.reset()
        assert pool.used == 0
        assert pool.alloc(100) is not None

    def test_high_water_survives_reset(self):
        kernel = Kernel()
        pool = MemoryPool(kernel, kernel.current_cpu, size=1024)
        pool.alloc(500)
        pool.reset()
        assert pool.high_water >= 500

    def test_region_is_real_kernel_memory(self):
        kernel = Kernel()
        pool = MemoryPool(kernel, kernel.current_cpu, size=256)
        assert kernel.mem.valid_range(pool.region.base, 256)

    def test_zero_alloc_rejected(self):
        kernel = Kernel()
        pool = MemoryPool(kernel, kernel.current_cpu)
        assert pool.alloc(0) is None

    def test_zero_alloc_is_not_an_exhaustion_failure(self):
        """alloc(0) is a defined refusal, not pool exhaustion: it must
        not inflate the failure counter operators alert on."""
        kernel = Kernel()
        pool = MemoryPool(kernel, kernel.current_cpu)
        pool.alloc(0)
        pool.alloc(0)
        assert pool.failed_allocs == 0

    def test_negative_alloc_raises(self):
        kernel = Kernel()
        pool = MemoryPool(kernel, kernel.current_cpu)
        with pytest.raises(ValueError):
            pool.alloc(-8)

    def test_destroy_returns_region_to_kernel(self):
        """Regression: the pool's backing region was never kfree'd, so
        every framework instance leaked its pool for the kernel's
        lifetime."""
        kernel = Kernel()
        baseline = kernel.mem.live_bytes
        pool = MemoryPool(kernel, kernel.current_cpu, size=4096)
        assert kernel.mem.live_bytes == baseline + 4096
        pool.destroy()
        assert kernel.mem.live_bytes == baseline
        assert "safelang_pool" not in kernel.current_cpu.storage

    def test_destroy_idempotent(self):
        kernel = Kernel()
        pool = MemoryPool(kernel, kernel.current_cpu, size=256)
        pool.destroy()
        pool.destroy()   # second teardown is a no-op, not a double-free

    def test_framework_shutdown_frees_pool(self):
        from repro.core.framework import SafeExtensionFramework
        kernel = Kernel()
        baseline = kernel.mem.live_bytes
        fw = SafeExtensionFramework(kernel)
        loaded = fw.install("fn prog() -> i64 { return 7; }", "tiny")
        assert fw.run_on_trace(loaded).value == 7
        fw.shutdown()
        assert kernel.mem.live_bytes == baseline

    def test_framework_usable_leak_free_across_instances(self):
        """Create/destroy many frameworks on one kernel: no growth."""
        from repro.core.framework import SafeExtensionFramework
        kernel = Kernel()
        baseline = kernel.mem.live_bytes
        for __ in range(10):
            fw = SafeExtensionFramework(kernel)
            fw.shutdown()
        assert kernel.mem.live_bytes == baseline

    def test_vec_backed_by_pool(self):
        kernel = Kernel()
        pool = MemoryPool(kernel, kernel.current_cpu, size=1024)
        vec = VecHandle(pool, capacity=8)
        for i in range(8):
            assert vec.push(i)
        assert not vec.push(9)   # capacity, not unbounded growth
        assert vec.get(3) == 3
        assert vec.get(8) is None
        assert vec.set(0, 42) and vec.get(0) == 42
        assert not vec.set(9, 1)

    def test_vec_on_exhausted_pool_has_zero_capacity(self):
        kernel = Kernel()
        pool = MemoryPool(kernel, kernel.current_cpu, size=64)
        pool.alloc(64)
        vec = VecHandle(pool, capacity=8)
        assert vec.capacity == 0
        assert not vec.push(1)


class TestStackGuard:
    def test_depth_limit(self):
        guard = StackGuard(max_depth=3, max_bytes=10_000)
        for __ in range(3):
            guard.push(10)
        with pytest.raises(StackOverflow):
            guard.push(10)

    def test_byte_limit(self):
        guard = StackGuard(max_depth=100, max_bytes=100)
        guard.push(60)
        with pytest.raises(StackOverflow):
            guard.push(60)

    def test_pop_releases(self):
        guard = StackGuard(max_depth=2, max_bytes=1000)
        guard.push(10)
        guard.push(10)
        guard.pop(10)
        guard.push(10)  # fits again

    def test_peak_depth_tracked(self):
        guard = StackGuard()
        guard.push(8)
        guard.push(8)
        guard.pop(8)
        assert guard.peak_depth == 2


class TestPerExtensionWatchdogBudget:
    SPIN = """
    fn prog(ctx: XdpCtx) -> i64 {
        let mut i: u64 = 0;
        while true { i = i + 1; if i == 0 { break; } }
        return 0;
    }
    """

    def test_tighter_budget_kills_sooner(self):
        from repro.core import SafeExtensionFramework
        kernel = Kernel()
        framework = SafeExtensionFramework(
            kernel, watchdog_budget_ns=1_000_000)
        tight = framework.install(self.SPIN, "tight",
                                  watchdog_budget_ns=10_000)
        start = kernel.clock.now_ns
        result = framework.run_on_packet(tight, b"x")
        elapsed = kernel.clock.now_ns - start
        assert result.terminated
        assert elapsed < 100_000   # killed at ~10us, not 1ms

    def test_default_budget_restored_after_run(self):
        from repro.core import SafeExtensionFramework
        kernel = Kernel()
        framework = SafeExtensionFramework(
            kernel, watchdog_budget_ns=1_000_000)
        tight = framework.install(self.SPIN, "tight",
                                  watchdog_budget_ns=10_000)
        framework.run_on_packet(tight, b"x")
        assert framework.vm.watchdog_budget_ns == 1_000_000

    def test_unset_budget_uses_framework_default(self):
        from repro.core import SafeExtensionFramework
        kernel = Kernel()
        framework = SafeExtensionFramework(
            kernel, watchdog_budget_ns=50_000)
        loaded = framework.install(self.SPIN, "default")
        start = kernel.clock.now_ns
        result = framework.run_on_packet(loaded, b"x")
        elapsed = kernel.clock.now_ns - start
        assert result.terminated
        assert 50_000 <= elapsed < 500_000
