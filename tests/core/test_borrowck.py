"""SafeLang borrow checker tests — the ownership rules §3 leans on."""

import pytest

from repro.core.kcrate.api import build_api_table
from repro.core.lang.borrowck import BorrowChecker
from repro.core.lang.parser import parse_program
from repro.core.lang.typecheck import TypeChecker
from repro.errors import BorrowCheckError

API = build_api_table()


def check_body(body: str):
    program = parse_program(
        f"fn prog(ctx: XdpCtx) -> i64 {{ {body} }}")
    TypeChecker(program, API).check()
    BorrowChecker(program, API).check()
    return program


def expect_error(body: str, needle: str):
    with pytest.raises(BorrowCheckError) as exc_info:
        check_body(body)
    assert needle in str(exc_info.value), str(exc_info.value)


SOCK = "match sk_lookup_tcp(1, 2) { Some(s) => { %s }, None => { }, }"


class TestMoves:
    def test_copy_types_freely_reused(self):
        check_body("let x: u64 = 1; let y = x; let z = x; return 0;")

    def test_resource_moves_on_let(self):
        expect_error(
            SOCK % "let t = s; let u = s;" + " return 0;",
            "moved")

    def test_resource_moves_into_call(self):
        # consume(s) moves; second use fails
        program_source = """
        fn consume(sock: Socket) -> u64 { return 0; }
        fn prog(ctx: XdpCtx) -> i64 {
            match sk_lookup_tcp(1, 2) {
                Some(s) => {
                    consume(s);
                    let p = s.src_port();
                },
                None => { },
            }
            return 0;
        }
        """
        program = parse_program(program_source)
        TypeChecker(program, API).check()
        with pytest.raises(BorrowCheckError):
            BorrowChecker(program, API).check()

    def test_method_call_does_not_move(self):
        check_body(SOCK % "let a = s.src_port(); "
                   "let b = s.dst_port();" + " return 0;")

    def test_drop_then_use_rejected(self):
        expect_error(SOCK % "drop(s); let p = s.src_port();" +
                     " return 0;", "moved")

    def test_double_drop_rejected(self):
        expect_error(SOCK % "drop(s); drop(s);" + " return 0;",
                     "moved")

    def test_move_in_some_expr(self):
        expect_error(SOCK % "let o = Some(s); let p = s.src_port();" +
                     " return 0;", "moved")

    def test_shared_ref_is_copy(self):
        check_body("let x = 1; let r = &x; let r2 = r; "
                   "let r3 = r; return 0;")


class TestBorrowRules:
    def test_two_shared_borrows_ok(self):
        check_body("let x = 1; let a = &x; let b = &x; return 0;")

    def test_mut_borrow_excludes_shared(self):
        expect_error("let mut x = 1; let m = &mut x; let s = &x; "
                     "return 0;", "mutably borrowed")

    def test_shared_excludes_mut(self):
        expect_error("let mut x = 1; let s = &x; let m = &mut x; "
                     "return 0;", "already borrowed")

    def test_two_mut_borrows_rejected(self):
        expect_error("let mut x = 1; let a = &mut x; let b = &mut x; "
                     "return 0;", "already borrowed")

    def test_borrow_released_at_scope_exit(self):
        check_body("let mut x = 1; if true { let m = &mut x; } "
                   "let s = &x; return 0;")

    def test_assign_while_borrowed_rejected(self):
        expect_error("let mut x = 1; let r = &x; x = 2; return 0;",
                     "borrowed")

    def test_move_while_borrowed_rejected(self):
        expect_error(
            SOCK % "let r = &s; let t = s;" + " return 0;",
            "borrowed")

    def test_rebinding_releases_old_borrow(self):
        check_body("let mut x = 1; let mut y = 2; let mut r = &x; "
                   "r = &y; let m = &mut x; return 0;")

    def test_borrow_of_moved_rejected(self):
        expect_error(SOCK % "drop(s); let r = &s;" + " return 0;",
                     "moved")


class TestControlFlow:
    def test_move_in_one_branch_poisons_after(self):
        source = SOCK % (
            "if true { drop(s); } else { } let p = s.src_port();")
        expect_error(source + " return 0;", "moved")

    def test_move_in_both_arms_separately_ok(self):
        check_body(SOCK % "if true { drop(s); } else { drop(s); }" +
                   " return 0;")

    def test_move_inside_loop_rejected(self):
        source = """
        fn consume(sock: Socket) -> u64 { return 0; }
        fn prog(ctx: XdpCtx) -> i64 {
            match sk_lookup_tcp(1, 2) {
                Some(s) => {
                    for i in 0..3 { consume(s); }
                },
                None => { },
            }
            return 0;
        }
        """
        program = parse_program(source)
        TypeChecker(program, API).check()
        with pytest.raises(BorrowCheckError) as exc_info:
            BorrowChecker(program, API).check()
        assert "moved" in str(exc_info.value)

    def test_acquire_and_drop_inside_loop_ok(self):
        check_body("""
        for i in 0..3 {
            match sk_lookup_tcp(1, 2) {
                Some(s) => { let p = s.src_port(); },
                None => { },
            }
        }
        return 0;
        """)

    def test_while_loop_move_rejected(self):
        source = SOCK % "while true { let t = s; break; }"
        expect_error(source + " return 0;", "moved")

    def test_match_scrutinee_moves(self):
        # moving the option itself, then using it again
        expect_error("""
        let o = sk_lookup_tcp(1, 2);
        match o { Some(s) => { }, None => { }, }
        match o { Some(s) => { }, None => { }, }
        return 0;
        """, "moved")
