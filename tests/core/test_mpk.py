"""Protection-key domain tests (§4: protection from unsafe code)."""

import pytest

from repro.core.runtime.mpk import (
    MemoryProtectionKeys,
    PKEY_DEFAULT,
    PKEY_EXTENSION,
    PKEY_KCRATE,
    protect_extension_memory,
)
from repro.core.runtime.mempool import MemoryPool
from repro.errors import ProtectionKeyFault
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def mpk(kernel):
    return MemoryProtectionKeys(kernel.mem)


class TestTagging:
    def test_untagged_is_default_key(self, kernel, mpk):
        alloc = kernel.mem.kmalloc(64)
        assert mpk.pkey_of(alloc) == PKEY_DEFAULT

    def test_tag_and_count(self, kernel, mpk):
        a = kernel.mem.kmalloc(64)
        b = kernel.mem.kmalloc(64)
        mpk.tag(a, PKEY_EXTENSION)
        mpk.tag(b, PKEY_EXTENSION)
        assert mpk.tagged_count(PKEY_EXTENSION) == 2

    def test_domain_resolution(self, mpk):
        assert mpk.domain_for("safelang:filter").name == \
            "safe-extension"
        assert mpk.domain_for("kcrate").name == "safe-extension"
        assert mpk.domain_for("bpf_sys_bpf").name == "unsafe-kernel"
        assert mpk.domain_for("kernel").name == "unsafe-kernel"


class TestWriteProtection:
    def test_unsafe_write_into_extension_memory_faults(self, kernel,
                                                       mpk):
        """The §4 scenario: a stray write from unsafe kernel code into
        safe-extension memory is caught by the key check."""
        region = kernel.mem.kmalloc(256, owner="pool:cpu0")
        mpk.tag(region, PKEY_EXTENSION)
        with pytest.raises(ProtectionKeyFault) as exc_info:
            kernel.mem.write(region.base, b"corruption",
                             source="bpf_sys_bpf")
        assert exc_info.value.pkey == PKEY_EXTENSION
        assert mpk.faults

    def test_extension_writes_its_own_memory(self, kernel, mpk):
        region = kernel.mem.kmalloc(256)
        mpk.tag(region, PKEY_EXTENSION)
        kernel.mem.write(region.base, b"fine", source="safelang:ext")
        assert kernel.mem.read(region.base, 4) == b"fine"

    def test_kcrate_writes_extension_memory(self, kernel, mpk):
        region = kernel.mem.kmalloc(64)
        mpk.tag(region, PKEY_EXTENSION)
        kernel.mem.write(region.base, b"ok", source="kcrate")

    def test_unsafe_code_still_writes_default_memory(self, kernel,
                                                     mpk):
        alloc = kernel.mem.kmalloc(64)
        kernel.mem.write(alloc.base, b"normal", source="kernel")

    def test_reads_never_key_fault(self, kernel, mpk):
        region = kernel.mem.kmalloc(64)
        mpk.tag(region, PKEY_EXTENSION)
        assert kernel.mem.read(region.base, 4,
                               source="bpf_sys_bpf") == b"\x00" * 4

    def test_disabled_mpk_allows_corruption(self, kernel, mpk):
        """The ablation: without the keys, the same stray write lands
        silently — the §4 motivation."""
        region = kernel.mem.kmalloc(64)
        mpk.tag(region, PKEY_EXTENSION)
        mpk.enabled = False
        kernel.mem.write(region.base, b"corrupted",
                         source="bpf_sys_bpf")
        assert kernel.mem.read(region.base, 9) == b"corrupted"

    def test_kcrate_pkey_protected_from_extension_peer(self, kernel,
                                                       mpk):
        """Defence in depth: even another *unsafe* path cannot touch
        kcrate records (cleanup lists etc.)."""
        record = kernel.mem.kmalloc(64)
        mpk.tag(record, PKEY_KCRATE)
        with pytest.raises(ProtectionKeyFault):
            kernel.mem.write(record.base, b"x", source="bpf:prog")


class TestEndToEnd:
    def test_buggy_helper_cannot_corrupt_extension_pool(self, kernel):
        """Full scenario: the extension's memory pool is key-tagged;
        the CVE-2022-2785-style helper path writing through a wild
        pointer that happens to land in the pool is contained."""
        mpk = MemoryProtectionKeys(kernel.mem)
        pool = MemoryPool(kernel, kernel.current_cpu, size=1024)
        protect_extension_memory(mpk, pool.region)

        with pytest.raises(ProtectionKeyFault):
            kernel.mem.write_u64(pool.region.base + 128, 0x41414141,
                                 source="bpf_sys_bpf")
        # the pool contents survived
        assert kernel.mem.read_u64(pool.region.base + 128) == 0

    def test_safelang_extension_runs_under_mpk(self, kernel):
        """The framework keeps functioning with keys armed (its own
        writes are in-domain)."""
        from repro.core import SafeExtensionFramework
        mpk = MemoryProtectionKeys(kernel.mem)
        framework = SafeExtensionFramework(kernel)
        protect_extension_memory(mpk, framework.vm.pool.region)
        loaded = framework.install(
            "fn prog(ctx: XdpCtx) -> i64 { let v = vec_new(); "
            "v.push(7); return 0; }", "vecuser")
        result = framework.run_on_packet(loaded, b"x")
        assert result.value == 0 and not result.panicked
