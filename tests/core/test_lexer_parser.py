"""SafeLang lexer and parser tests."""

import pytest

from repro.core.lang import ast
from repro.core.lang import types as T
from repro.core.lang.lexer import tokenize
from repro.core.lang.parser import parse_program
from repro.errors import LexError, ParseError


class TestLexer:
    def test_keywords_vs_idents(self):
        tokens = tokenize("fn foo let letx")
        kinds = [(t.kind, t.text) for t in tokens[:-1]]
        assert kinds == [("kw", "fn"), ("ident", "foo"),
                         ("kw", "let"), ("ident", "letx")]

    def test_numbers(self):
        tokens = tokenize("42 0xff 1_000")
        assert [t.text for t in tokens[:-1]] == ["42", "0xff", "1_000"]

    def test_string_literal_with_escapes(self):
        tokens = tokenize(r'"a\n\"b"')
        assert tokens[0].text == 'a\n"b'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_multi_char_operators(self):
        tokens = tokenize("== != <= >= && || << >> -> => ..")
        assert [t.text for t in tokens[:-1]] == \
            ["==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->",
             "=>", ".."]

    def test_comments_skipped(self):
        tokens = tokenize("a // comment\nb")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_line_tracking(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3 and tokens[2].col == 3

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestParser:
    def parse_fn(self, body: str) -> ast.FnDef:
        program = parse_program(
            f"fn prog(ctx: XdpCtx) -> i64 {{ {body} }}")
        return program.functions[0]

    def test_function_signature(self):
        fn = self.parse_fn("return 0;")
        assert fn.name == "prog"
        assert fn.params[0].ty == T.ResourceTy("XdpCtx")
        assert fn.ret_ty == T.I64

    def test_unit_return_type(self):
        program = parse_program("fn f() { }")
        assert program.functions[0].ret_ty == T.UNIT

    def test_let_with_type(self):
        fn = self.parse_fn("let mut x: u64 = 5; return 0;")
        let = fn.body[0]
        assert isinstance(let, ast.Let)
        assert let.mut and let.declared_ty == T.U64

    def test_ref_types(self):
        program = parse_program("fn f(a: &u64, b: &mut Task) { }")
        params = program.functions[0].params
        assert params[0].ty == T.RefTy(T.U64)
        assert params[1].ty == T.RefTy(T.ResourceTy("Task"), mut=True)

    def test_option_and_vec_types(self):
        program = parse_program(
            "fn f(a: Option<u64>, b: Vec<u64>) { }")
        params = program.functions[0].params
        assert params[0].ty == T.OptionTy(T.U64)
        assert params[1].ty == T.VecTy(T.U64)

    def test_if_else_chain(self):
        fn = self.parse_fn(
            "if a == 1 { return 1; } else if a == 2 { return 2; } "
            "else { return 3; }")
        top = fn.body[0]
        assert isinstance(top, ast.If)
        nested = top.else_body[0]
        assert isinstance(nested, ast.If)
        assert nested.else_body is not None

    def test_while_and_for(self):
        fn = self.parse_fn(
            "while x < 10 { x = x + 1; } for i in 0..5 { } return 0;")
        assert isinstance(fn.body[0], ast.While)
        assert isinstance(fn.body[1], ast.For)

    def test_match_arms(self):
        fn = self.parse_fn(
            "match opt { Some(v) => { return v; }, "
            "None => { return 0; }, }")
        match = fn.body[0]
        assert isinstance(match, ast.Match)
        assert match.some_var == "v"

    def test_match_requires_both_arms(self):
        with pytest.raises(ParseError):
            self.parse_fn("match o { Some(v) => { }, Some(w) => { } }")

    def test_operator_precedence(self):
        fn = self.parse_fn("let x = 1 + 2 * 3; return 0;")
        add = fn.body[0].value
        assert isinstance(add, ast.Binary) and add.op == "+"
        assert isinstance(add.right, ast.Binary) and \
            add.right.op == "*"

    def test_comparison_precedence(self):
        fn = self.parse_fn("let b = 1 + 1 == 2; return 0;")
        cmp = fn.body[0].value
        assert cmp.op == "=="

    def test_cast_expression(self):
        fn = self.parse_fn("let x = y as u32; return 0;")
        assert isinstance(fn.body[0].value, ast.Cast)

    def test_method_call_chain_args(self):
        fn = self.parse_fn("let x = ctx.load_u8(4); return 0;")
        call = fn.body[0].value
        assert isinstance(call, ast.MethodCall)
        assert call.method == "load_u8"
        assert len(call.args) == 1

    def test_borrow_expressions(self):
        fn = self.parse_fn("let r = &x; let m = &mut y; return 0;")
        assert isinstance(fn.body[0].value, ast.Borrow)
        assert fn.body[1].value.mut

    def test_deref_assignment(self):
        fn = self.parse_fn("*r = 5; return 0;")
        assign = fn.body[0]
        assert isinstance(assign, ast.Assign) and assign.through_ref

    def test_panic_macro(self):
        fn = self.parse_fn('panic!("boom"); return 0;')
        assert isinstance(fn.body[0].expr, ast.Panic)
        assert fn.body[0].expr.message == "boom"

    def test_some_none_literals(self):
        fn = self.parse_fn("let a = Some(3); let b: Option<u64> = "
                           "None; return 0;")
        assert isinstance(fn.body[0].value, ast.SomeExpr)
        assert isinstance(fn.body[1].value, ast.NoneLit)

    def test_unsafe_block_parses(self):
        fn = self.parse_fn("unsafe { } return 0;")
        assert isinstance(fn.body[0], ast.UnsafeBlock)

    def test_drop_statement(self):
        fn = self.parse_fn("drop(sock); return 0;")
        assert isinstance(fn.body[0], ast.DropStmt)

    def test_break_continue(self):
        fn = self.parse_fn(
            "while true { break; } while true { continue; } return 0;")
        assert isinstance(fn.body[0].body[0], ast.Break)
        assert isinstance(fn.body[1].body[0], ast.Continue)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            self.parse_fn("let x = 1 return 0;")

    def test_unbalanced_braces(self):
        with pytest.raises(ParseError):
            parse_program("fn f() { if x { }")

    def test_hex_literal(self):
        fn = self.parse_fn("let x = 0xff; return 0;")
        assert fn.body[0].value.value == 255

    def test_multiple_functions(self):
        program = parse_program("fn a() { } fn b() { }")
        assert [f.name for f in program.functions] == ["a", "b"]
        assert program.function("b") is program.functions[1]
