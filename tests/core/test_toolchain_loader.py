"""Toolchain, signing, serialization and loader tests."""

import pytest

from repro.core import SafeExtensionFramework
from repro.core.lang import ast
from repro.core.lang import types as T
from repro.core.lang.parser import parse_program
from repro.core.lang.serialize import (
    dict_to_program,
    program_to_dict,
    str_to_ty,
    ty_to_str,
)
from repro.core.loader import SafeLoader
from repro.core.signing import SigningKey
from repro.core.toolchain import TrustedToolchain
from repro.errors import (
    BorrowCheckError,
    SignatureError,
    TypeCheckError,
    UnsafeCodeError,
)
from repro.kernel import Kernel

GOOD = """
fn prog(ctx: XdpCtx) -> i64 {
    let mut total: u64 = 0;
    for i in 0..4 {
        match ctx.load_u8(i) {
            Some(b) => { total = total + b; },
            None => { },
        }
    }
    return total as i64;
}
"""


class TestSigning:
    def test_sign_verify(self):
        key = SigningKey.generate("k1")
        signature = key.sign(b"image")
        assert key.verify(b"image", signature)

    def test_verify_rejects_tamper(self):
        key = SigningKey.generate("k1")
        signature = key.sign(b"image")
        assert not key.verify(b"imagex", signature)

    def test_keys_deterministic_per_id(self):
        assert SigningKey.generate("a").secret == \
            SigningKey.generate("a").secret
        assert SigningKey.generate("a").secret != \
            SigningKey.generate("b").secret


class TestTypeSerialization:
    @pytest.mark.parametrize("ty", [
        T.U64, T.I64, T.BOOL, T.STR, T.UNIT,
        T.RefTy(T.U64), T.RefTy(T.ResourceTy("Task"), mut=True),
        T.OptionTy(T.U64), T.OptionTy(T.ResourceTy("Socket")),
        T.VecTy(T.U64), T.ResourceTy("XdpCtx"),
        T.OptionTy(T.RefTy(T.U64)),
    ])
    def test_roundtrip(self, ty):
        assert str_to_ty(ty_to_str(ty)) == ty

    def test_none_roundtrip(self):
        assert ty_to_str(None) is None
        assert str_to_ty(None) is None


class TestProgramSerialization:
    def test_roundtrip_preserves_structure(self):
        toolchain = TrustedToolchain()
        program = toolchain.check(GOOD)
        data = program_to_dict(program)
        rebuilt = dict_to_program(data)
        assert program_to_dict(rebuilt) == data

    def test_types_preserved(self):
        toolchain = TrustedToolchain()
        program = toolchain.check(GOOD)
        rebuilt = dict_to_program(program_to_dict(program))
        let = rebuilt.functions[0].body[0]
        assert isinstance(let, ast.Let)
        assert let.value.ty == T.U64

    def test_serialization_is_json_safe(self):
        import json
        toolchain = TrustedToolchain()
        data = program_to_dict(toolchain.check(GOOD))
        assert json.loads(json.dumps(data)) == data


class TestToolchain:
    def test_compile_produces_signed_image(self):
        toolchain = TrustedToolchain()
        ext = toolchain.compile(GOOD, "good")
        assert ext.signature
        assert toolchain.key.verify(ext.image_bytes(), ext.signature)

    def test_symbols_collected(self):
        toolchain = TrustedToolchain()
        ext = toolchain.compile(GOOD, "good")
        assert "XdpCtx::load_u8" in ext.required_symbols

    def test_pipeline_rejects_unsafe(self):
        toolchain = TrustedToolchain()
        with pytest.raises(UnsafeCodeError):
            toolchain.compile(
                "fn prog(ctx: XdpCtx) -> i64 { unsafe { } "
                "return 0; }", "bad")

    def test_pipeline_rejects_type_errors(self):
        toolchain = TrustedToolchain()
        with pytest.raises(TypeCheckError):
            toolchain.compile(
                "fn prog(ctx: XdpCtx) -> i64 { return true; }", "bad")

    def test_pipeline_rejects_borrow_errors(self):
        toolchain = TrustedToolchain()
        with pytest.raises(BorrowCheckError):
            toolchain.compile("""
            fn prog(ctx: XdpCtx) -> i64 {
                match sk_lookup_tcp(1, 2) {
                    Some(s) => { drop(s); drop(s); },
                    None => { },
                }
                return 0;
            }
            """, "bad")

    def test_compile_time_recorded(self):
        ext = TrustedToolchain().compile(GOOD, "good")
        assert ext.compile_time_s > 0


class TestLoader:
    def test_load_validates_and_fixes_up(self):
        kernel = Kernel()
        toolchain = TrustedToolchain()
        loader = SafeLoader(kernel,
                            {toolchain.key.key_id: toolchain.key})
        loaded = loader.load(toolchain.compile(GOOD, "good"))
        assert loaded.symbols
        assert loaded.program.function("prog") is not None

    def test_unknown_key_rejected(self):
        kernel = Kernel()
        toolchain = TrustedToolchain(SigningKey.generate("rogue"))
        trusted = SigningKey.generate("official")
        loader = SafeLoader(kernel, {trusted.key_id: trusted})
        with pytest.raises(SignatureError) as exc_info:
            loader.load(toolchain.compile(GOOD, "good"))
        assert "unknown key" in str(exc_info.value)

    def test_payload_tamper_rejected(self):
        kernel = Kernel()
        toolchain = TrustedToolchain()
        loader = SafeLoader(kernel,
                            {toolchain.key.key_id: toolchain.key})
        ext = toolchain.compile(GOOD, "good")
        ext.payload["functions"][0]["name"] = "evil"
        with pytest.raises(SignatureError) as exc_info:
            loader.load(ext)
        assert "signature" in str(exc_info.value)

    def test_symbol_list_tamper_rejected(self):
        kernel = Kernel()
        toolchain = TrustedToolchain()
        loader = SafeLoader(kernel,
                            {toolchain.key.key_id: toolchain.key})
        ext = toolchain.compile(GOOD, "good")
        ext.required_symbols.append("made_up_symbol")
        with pytest.raises(SignatureError):
            loader.load(ext)

    def test_abi_mismatch_rejected(self):
        kernel = Kernel()
        toolchain = TrustedToolchain()
        loader = SafeLoader(kernel,
                            {toolchain.key.key_id: toolchain.key})
        ext = toolchain.compile(GOOD, "good")
        ext.abi_version = 99
        with pytest.raises(SignatureError):
            loader.load(ext)

    def test_load_logged(self):
        kernel = Kernel()
        framework = SafeExtensionFramework(kernel)
        framework.install(GOOD, "good")
        assert kernel.log.grep("safelang: loaded extension")

    def test_load_does_no_semantic_analysis(self):
        """A signed-but-ill-typed payload loads fine — the kernel
        trusts the signature, exactly as designed.  (Only the trusted
        toolchain could have produced such an image, so this is the
        trust model, not a hole.)"""
        kernel = Kernel()
        toolchain = TrustedToolchain()
        loader = SafeLoader(kernel,
                            {toolchain.key.key_id: toolchain.key})
        ext = toolchain.compile(GOOD, "good")
        # re-sign a modified payload with the trusted key (an insider
        # with key access can do this — the design's stated boundary)
        ext.payload["functions"][0]["name"] = "renamed"
        ext.signature = toolchain.key.sign(ext.image_bytes())
        loaded = loader.load(ext)
        assert loaded.program.function("renamed") is not None


class TestFrameworkFacade:
    def test_install_and_run(self):
        kernel = Kernel()
        framework = SafeExtensionFramework(kernel)
        loaded = framework.install(GOOD, "good")
        result = framework.run_on_packet(loaded, b"abcd")
        assert result.value == sum(b"abcd")

    def test_run_on_trace(self):
        kernel = Kernel()
        framework = SafeExtensionFramework(kernel)
        loaded = framework.install(
            "fn prog(ctx: XdpCtx) -> i64 { return pid_tgid() as i64; }",
            "tr")
        result = framework.run_on_trace(loaded)
        task = kernel.current_task
        assert result.value == (task.tgid << 32) | task.pid
