"""SafeLang type checker tests."""

import pytest

from repro.core.kcrate.api import build_api_table
from repro.core.lang.parser import parse_program
from repro.core.lang.typecheck import TypeChecker
from repro.core.lang.unsafeck import reject_unsafe
from repro.errors import TypeCheckError, UnsafeCodeError


API = build_api_table()


def check(source: str):
    program = parse_program(source)
    TypeChecker(program, API).check()
    return program


def check_body(body: str):
    return check(f"fn prog(ctx: XdpCtx) -> i64 {{ {body} }}")


def expect_error(body: str, needle: str):
    with pytest.raises(TypeCheckError) as exc_info:
        check_body(body)
    assert needle in str(exc_info.value), str(exc_info.value)


class TestBasics:
    def test_literal_types(self):
        check_body("let a = 5; let b = true; let c = \"s\"; return 0;")

    def test_literal_adopts_declared_type(self):
        program = check_body("let a: u64 = 5; return 0;")
        assert str(program.functions[0].body[0].value.ty) == "u64"

    def test_literal_out_of_range(self):
        expect_error("let a: u8 = 300; return 0;", "out of range")

    def test_undeclared_name(self):
        expect_error("return nope;", "undeclared")

    def test_bool_int_mismatch(self):
        expect_error("let a: u64 = true; return 0;", "mismatch")

    def test_arithmetic_same_types(self):
        check_body("let a: u64 = 1; let b: u64 = 2; "
                   "let c = a + b; return 0;")

    def test_mixed_int_types_rejected(self):
        expect_error("let a: u64 = 1; let b: i64 = 2; "
                     "let c = a + b; return 0;", "mismatch")

    def test_cast_bridges_int_types(self):
        check_body("let a: u64 = 1; let b: i64 = 2; "
                   "let c = a + (b as u64); return 0;")

    def test_cast_non_int_rejected(self):
        expect_error("let a = true as u64; return 0;",
                     "integer-to-integer")

    def test_comparison_yields_bool(self):
        check_body("let b: bool = 1 < 2; return 0;")

    def test_condition_must_be_bool(self):
        expect_error("if 5 { } return 0;", "mismatch")

    def test_logical_ops_need_bool(self):
        expect_error("let b = 1 && 2; return 0;", "mismatch")

    def test_unary_minus_signed_only(self):
        check_body("let a: i64 = 5; let b = -a; return 0;")
        expect_error("let a: u64 = 5; let b = -a; return 0;",
                     "signed")

    def test_not_requires_bool(self):
        expect_error("let b = !5; return 0;", "bool")


class TestMutability:
    def test_assign_to_immutable_rejected(self):
        expect_error("let x = 1; x = 2; return 0;", "immutable")

    def test_assign_to_mut_ok(self):
        check_body("let mut x = 1; x = 2; return 0;")

    def test_assignment_type_checked(self):
        expect_error("let mut x: u64 = 1; x = true; return 0;",
                     "mismatch")

    def test_assign_undeclared(self):
        expect_error("y = 2; return 0;", "undeclared")


class TestReferences:
    def test_borrow_type(self):
        check_body("let x = 1; let r = &x; return 0;")

    def test_mut_borrow_requires_mut_binding(self):
        expect_error("let x = 1; let r = &mut x; return 0;",
                     "not declared mut")

    def test_deref_assignment(self):
        check_body("let mut x: u64 = 1; let r = &mut x; *r = 2; "
                   "return 0;")

    def test_deref_assignment_needs_mut_ref(self):
        expect_error("let x: u64 = 1; let r = &x; *r = 2; return 0;",
                     "&mut")

    def test_deref_read(self):
        check_body("let x: u64 = 1; let r = &x; let y = *r; return 0;")

    def test_deref_non_reference(self):
        expect_error("let x = 1; let y = *x; return 0;",
                     "non-reference")

    def test_auto_deref_in_arithmetic(self):
        check_body("let x: u64 = 1; let r = &x; "
                   "let y: u64 = r + 1; return 0;")


class TestOptionsAndMatch:
    def test_match_on_option(self):
        check_body("match map_lookup(0, 0) { Some(v) => "
                   "{ return v as i64; }, None => { }, } return 0;")

    def test_match_on_non_option(self):
        expect_error("let x = 1; match x { Some(v) => { }, "
                     "None => { }, } return 0;", "Option")

    def test_some_var_typed_as_inner(self):
        check_body("match map_lookup(0, 0) { Some(v) => "
                   "{ let w: u64 = v; }, None => { }, } return 0;")

    def test_none_needs_context(self):
        expect_error("let x = None; return 0;", "infer")

    def test_none_with_declared_option(self):
        check_body("let x: Option<u64> = None; return 0;")

    def test_some_coercion(self):
        check_body("let x: Option<u64> = Some(5); return 0;")


class TestFunctions:
    def test_user_function_call(self):
        check("""
        fn helper(a: u64) -> u64 { return a + 1; }
        fn prog(ctx: XdpCtx) -> i64 { return helper(1) as i64; }
        """)

    def test_wrong_arg_count(self):
        with pytest.raises(TypeCheckError):
            check("""
            fn helper(a: u64) -> u64 { return a; }
            fn prog(ctx: XdpCtx) -> i64 { return helper() as i64; }
            """)

    def test_wrong_arg_type(self):
        with pytest.raises(TypeCheckError):
            check("""
            fn helper(a: u64) -> u64 { return a; }
            fn prog(ctx: XdpCtx) -> i64 {
                return helper(true) as i64;
            }
            """)

    def test_unknown_function(self):
        expect_error("backdoor(); return 0;", "unknown function")

    def test_shadowing_kcrate_rejected(self):
        with pytest.raises(TypeCheckError):
            check("fn map_lookup(a: u64) -> u64 { return a; }")

    def test_duplicate_function(self):
        with pytest.raises(TypeCheckError):
            check("fn f() { } fn f() { }")

    def test_return_type_enforced(self):
        with pytest.raises(TypeCheckError):
            check("fn f() -> u64 { return true; }")

    def test_kcrate_fn_signature(self):
        check_body("let rc: i64 = map_update(0, 1, 2); return rc;")

    def test_kcrate_ref_param(self):
        check_body("let t = current_task(); "
                   "let s = task_storage_get(&t, 0); return 0;")

    def test_kcrate_ref_param_wrong_type(self):
        expect_error("let s = task_storage_get(5, 0); return 0;",
                     "mismatch")


class TestMethods:
    def test_ctx_methods(self):
        check_body("let l = ctx.len(); let p = ctx.protocol(); "
                   "return 0;")

    def test_unknown_method(self):
        expect_error("ctx.explode(); return 0;", "no method")

    def test_method_arg_types(self):
        expect_error("ctx.load_u8(true); return 0;", "mismatch")

    def test_str_methods(self):
        check_body('let s = "42"; match s.parse_i64() '
                   "{ Some(v) => { return v; }, None => { }, } "
                   "return 0;")

    def test_vec_methods(self):
        check_body("let v = vec_new(); v.push(1); "
                   "let n: u64 = v.len(); return 0;")

    def test_method_on_reference_auto_derefs(self):
        check("""
        fn peek(c: &XdpCtx) -> u64 { return c.len(); }
        fn prog(ctx: XdpCtx) -> i64 { return peek(&ctx) as i64; }
        """)


class TestForLoop:
    def test_literal_bounds(self):
        check_body("for i in 0..10 { let x = i + 1; } return 0;")

    def test_bounds_adopt_variable_type(self):
        check_body("let n: u64 = 5; for i in 0..n "
                   "{ let x: u64 = i; } return 0;")

    def test_non_int_bounds_rejected(self):
        expect_error("for i in true..false { } return 0;", "integers")

    def test_loop_var_immutable(self):
        expect_error("for i in 0..10 { i = 5; } return 0;",
                     "immutable")


class TestUnsafeGate:
    def test_unsafe_rejected(self):
        program = parse_program(
            "fn prog(ctx: XdpCtx) -> i64 { unsafe { } return 0; }")
        with pytest.raises(UnsafeCodeError):
            reject_unsafe(program)

    def test_nested_unsafe_rejected(self):
        program = parse_program(
            "fn prog(ctx: XdpCtx) -> i64 { if true { unsafe { } } "
            "return 0; }")
        with pytest.raises(UnsafeCodeError):
            reject_unsafe(program)

    def test_safe_program_passes(self):
        program = parse_program(
            "fn prog(ctx: XdpCtx) -> i64 { return 0; }")
        reject_unsafe(program)


class TestMissingReturn:
    def test_fall_off_end_rejected(self):
        with pytest.raises(TypeCheckError) as exc_info:
            check("fn f() -> u64 { let x = 1; }")
        assert "without returning" in str(exc_info.value)

    def test_if_without_else_rejected(self):
        with pytest.raises(TypeCheckError):
            check("fn f(c: bool) -> u64 { if c { return 1; } }")

    def test_if_else_both_return_ok(self):
        check("fn f(c: bool) -> u64 { if c { return 1; } "
              "else { return 2; } }")

    def test_match_both_arms_return_ok(self):
        check("fn f(o: Option<u64>) -> u64 { match o "
              "{ Some(v) => { return v; }, None => { return 0; }, } }")

    def test_match_one_arm_missing_rejected(self):
        with pytest.raises(TypeCheckError):
            check("fn f(o: Option<u64>) -> u64 { match o "
                  "{ Some(v) => { return v; }, None => { }, } }")

    def test_panic_counts_as_diverging(self):
        check('fn f() -> u64 { panic!("never returns"); }')

    def test_trailing_return_after_loop_ok(self):
        check("fn f() -> u64 { for i in 0..3 { } return 0; }")

    def test_unit_function_needs_no_return(self):
        check("fn f() { let x = 1; }")
