"""Kernel-crate tests: the safe interface and its RAII guarantees."""

import pytest

from repro.core import SafeExtensionFramework
from repro.ebpf.loader import BpfSubsystem
from repro.errors import KernelDeadlock
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def fw(kernel):
    return SafeExtensionFramework(kernel)


def run(fw, source, name="t", maps=None):
    loaded = fw.install(source, name, maps=maps or [])
    return fw.run_on_packet(loaded, b"payload")


class TestSocketRaii:
    SOURCE_USE = """
    fn prog(ctx: XdpCtx) -> i64 {
        match sk_lookup_tcp(167772161, 443) {
            Some(s) => { return s.src_port() as i64; },
            None => { return -1; },
        }
        return 0;
    }
    """

    def test_reference_released_at_scope_exit(self, fw, kernel):
        sock = kernel.create_socket(src_ip=0x0A000001, src_port=443)
        result = run(fw, self.SOURCE_USE)
        assert result.value == 443
        assert sock.refs.refcount == 1
        kernel.refs.assert_no_leaks("safelang:t")

    def test_lookup_miss_is_none(self, fw, kernel):
        result = run(fw, self.SOURCE_USE)
        assert result.value == -1

    def test_reqsk_ref_owned_by_handle(self, fw, kernel):
        """The [35] killer: the handle owns the request-sock reference
        too, and the destructor drops it — even on the buggy-era
        kernel where the C helper leaks it."""
        sock = kernel.create_socket(src_ip=0x0A000001, src_port=443)
        sock.write_field("state", 12)
        reqsk = kernel.create_request_sock("pending")
        sock.pending_reqsk = reqsk
        run(fw, self.SOURCE_USE)
        assert reqsk.refs.refcount == 1
        kernel.refs.assert_no_leaks("safelang:t")

    def test_release_on_early_return(self, fw, kernel):
        sock = kernel.create_socket(src_ip=0x0A000001, src_port=443)
        source = """
        fn prog(ctx: XdpCtx) -> i64 {
            match sk_lookup_tcp(167772161, 443) {
                Some(s) => {
                    if s.src_port() == 443 { return 1; }
                    return 2;
                },
                None => { },
            }
            return 0;
        }
        """
        assert run(fw, source).value == 1
        assert sock.refs.refcount == 1

    def test_release_on_panic(self, fw, kernel):
        sock = kernel.create_socket(src_ip=0x0A000001, src_port=443)
        source = """
        fn prog(ctx: XdpCtx) -> i64 {
            match sk_lookup_tcp(167772161, 443) {
                Some(s) => { panic!("mid-use"); },
                None => { },
            }
            return 0;
        }
        """
        result = run(fw, source)
        assert result.panicked
        assert sock.refs.refcount == 1   # trusted cleanup ran

    def test_explicit_drop_releases_early(self, fw, kernel):
        sock = kernel.create_socket(src_ip=0x0A000001, src_port=443)
        source = """
        fn prog(ctx: XdpCtx) -> i64 {
            match sk_lookup_tcp(167772161, 443) {
                Some(s) => { drop(s); return 7; },
                None => { },
            }
            return 0;
        }
        """
        assert run(fw, source).value == 7
        assert sock.refs.refcount == 1


class TestSpinGuard:
    def test_lock_released_by_destructor(self, fw, kernel):
        bpf = BpfSubsystem(kernel)
        lock_map = bpf.create_map("array", with_spin_lock=True)
        source = """
        fn prog(ctx: XdpCtx) -> i64 {
            let guard = spin_lock(0);
            map_update(0, 0, 1);
            return 0;
        }
        """
        run(fw, source, maps=[lock_map])
        assert not lock_map.spin_lock.locked

    def test_lock_released_on_watchdog_kill(self, fw, kernel):
        bpf = BpfSubsystem(kernel)
        lock_map = bpf.create_map("array", with_spin_lock=True)
        fw.vm.watchdog_budget_ns = 10_000
        source = """
        fn prog(ctx: XdpCtx) -> i64 {
            let guard = spin_lock(0);
            let mut i: u64 = 0;
            while true { i = i + 1; if i == 0 { break; } }
            return 0;
        }
        """
        result = run(fw, source, maps=[lock_map])
        assert result.terminated
        assert not lock_map.spin_lock.locked  # trusted cleanup
        assert kernel.healthy


class TestTaskApis:
    def test_current_task_pid(self, fw, kernel):
        source = """
        fn prog(ctx: XdpCtx) -> i64 {
            let t = current_task();
            return t.pid() as i64;
        }
        """
        assert run(fw, source).value == kernel.current_task.pid

    def test_task_ref_released(self, fw, kernel):
        source = """
        fn prog(ctx: XdpCtx) -> i64 {
            let t = current_task();
            return t.tgid() as i64;
        }
        """
        run(fw, source)
        assert kernel.current_task.refs.refcount == 1

    def test_task_storage_roundtrip(self, fw, kernel):
        bpf = BpfSubsystem(kernel)
        storage = bpf.create_map("task_storage", value_size=8)
        source = """
        fn prog(ctx: XdpCtx) -> i64 {
            let t = current_task();
            task_storage_set(&t, 0, 123);
            match task_storage_get(&t, 0) {
                Some(v) => { return v as i64; },
                None => { return -1; },
            }
            return 0;
        }
        """
        assert run(fw, source, maps=[storage]).value == 123

    def test_task_stack_sum_live(self, fw, kernel):
        source = """
        fn prog(ctx: XdpCtx) -> i64 {
            let t = current_task();
            match task_stack_sum(&t, 64) {
                Some(v) => { return 1; },
                None => { return 2; },
            }
            return 0;
        }
        """
        assert run(fw, source).value == 1

    def test_task_stack_sum_freed_is_none(self, fw, kernel):
        """[34] by construction: freed stack -> honest None, no UAF."""
        kernel.mem.kfree(kernel.current_task.kernel_stack)
        source = """
        fn prog(ctx: XdpCtx) -> i64 {
            let t = current_task();
            match task_stack_sum(&t, 64) {
                Some(v) => { return 1; },
                None => { return 2; },
            }
            return 0;
        }
        """
        assert run(fw, source).value == 2
        assert kernel.healthy


class TestWrappedSysBpf:
    def test_sys_map_update_works(self, fw, kernel):
        bpf = BpfSubsystem(kernel)
        hmap = bpf.create_map("hash", key_size=4, value_size=8,
                              max_entries=4)
        source = """
        fn prog(ctx: XdpCtx) -> i64 {
            return sys_map_update(0, 7, 4242);
        }
        """
        assert run(fw, source, maps=[hmap]).value == 0
        import struct
        assert hmap.read_value(struct.pack("<I", 7)) == \
            struct.pack("<Q", 4242)

    def test_wrapper_cleans_its_buffers(self, fw, kernel):
        bpf = BpfSubsystem(kernel)
        hmap = bpf.create_map("hash", key_size=4, value_size=8,
                              max_entries=4)
        before = kernel.mem.live_bytes
        run(fw, "fn prog(ctx: XdpCtx) -> i64 { "
                "return sys_map_update(0, 1, 2); }", maps=[hmap])
        # wrapper temporaries freed; only the map entry remains
        assert kernel.mem.live_bytes - before < 600

    def test_buggy_kernel_irrelevant(self, kernel):
        """On the same buggy-era kernel that crashes via bpf_sys_bpf,
        the wrapped interface is fine — CVE-2022-2785 unrepresentable."""
        fw = SafeExtensionFramework(kernel)
        bpf = BpfSubsystem(kernel)   # default = buggy BugConfig
        hmap = bpf.create_map("hash", key_size=4, value_size=8,
                              max_entries=4)
        result = run(fw, "fn prog(ctx: XdpCtx) -> i64 { "
                         "return sys_map_update(0, 1, 2); }",
                     maps=[hmap])
        assert result.value == 0
        assert kernel.healthy


class TestMiscApis:
    def test_ktime_and_cpu(self, fw, kernel):
        kernel.clock.advance(5000)
        source = """
        fn prog(ctx: XdpCtx) -> i64 {
            let t = ktime_ns();
            let c = cpu_id();
            if t >= 5000 && c == 0 { return 1; }
            return 0;
        }
        """
        assert run(fw, source).value == 1

    def test_trace_writes_log(self, fw, kernel):
        run(fw, 'fn prog(ctx: XdpCtx) -> i64 { trace("mark"); '
                "return 0; }")
        assert kernel.log.grep("safelang[t]: mark".replace("[t]",
                                                           "[t]"))

    def test_prandom_advances(self, fw):
        source = """
        fn prog(ctx: XdpCtx) -> i64 {
            let a = prandom();
            let b = prandom();
            if a == b { return 1; }
            return 0;
        }
        """
        assert run(fw, source).value == 0

    def test_ringbuf_output(self, fw, kernel):
        bpf = BpfSubsystem(kernel)
        rb = bpf.create_map("ringbuf", max_entries=4096)
        run(fw, "fn prog(ctx: XdpCtx) -> i64 { "
                "return ringbuf_output(0, 77); }", maps=[rb])
        import struct
        assert rb.drain() == [struct.pack("<Q", 77)]

    def test_pool_reset_between_runs(self, fw):
        source = """
        fn prog(ctx: XdpCtx) -> i64 {
            let v = vec_new();
            let mut ok: u64 = 0;
            for i in 0..64 {
                if v.push(i) { ok = ok + 1; }
            }
            return ok as i64;
        }
        """
        loaded = fw.install(source, "vec")
        for __ in range(10):
            # without per-run pool reset the pool would exhaust
            assert fw.run_on_packet(loaded, b"x").value == 64
