"""Attack-corpus tests: every case, buggy era and patched."""

import pytest

from repro.attacks import Outcome, build_corpus, run_case
from repro.ebpf.bugs import BugConfig
from repro.kernel import Kernel

CORPUS = build_corpus()


@pytest.mark.parametrize("case", CORPUS,
                         ids=[c.case_id for c in CORPUS])
def test_case_matches_expected_outcome(case):
    """Each attack produces its documented outcome on a buggy-era
    kernel — this parametrized test IS the Table 2 matrix."""
    assert run_case(case) == case.expected


class TestCorpusIsolation:
    """Whatever the outcome — harmless, contained, or a full
    compromise — the framework must release every transient resource
    it took while the case ran.  The chaos harness enforces this same
    contract under injected faults; this is the fault-free baseline,
    via the shared ``leakcheck`` fixture."""

    @pytest.mark.parametrize("case", CORPUS,
                             ids=[c.case_id for c in CORPUS])
    def test_transient_state_balanced_after_case(self, case,
                                                 leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        run_case(case, kernel=kernel)


class TestCorpusShape:
    def test_every_property_covered_in_both_frameworks(self):
        properties = {c.safety_property for c in CORPUS}
        assert len(properties) == 6
        for prop in properties:
            frameworks = {c.framework for c in CORPUS
                          if c.safety_property == prop}
            assert "ebpf" in frameworks
            # stack property intentionally has no SafeLang reject case

    def test_ebpf_has_verified_compromises(self):
        compromised = [c for c in CORPUS
                       if c.framework == "ebpf"
                       and c.expected == Outcome.KERNEL_COMPROMISED]
        assert len(compromised) >= 5

    def test_safelang_never_compromised(self):
        assert all(c.expected != Outcome.KERNEL_COMPROMISED
                   for c in CORPUS if c.framework == "safelang")

    def test_safelang_uses_both_mechanisms(self):
        outcomes = {c.expected for c in CORPUS
                    if c.framework == "safelang"}
        assert Outcome.REJECTED_STATIC in outcomes
        assert Outcome.CONTAINED in outcomes

    def test_case_ids_unique(self):
        ids_ = [c.case_id for c in CORPUS]
        assert len(ids_) == len(set(ids_))


class TestPatchedKernel:
    """The helper/verifier-bug attacks stop compromising once the
    2021-2022 fixes are applied — but the structural escapes remain."""

    @pytest.mark.parametrize("case_id", [
        "ebpf-sys-bpf-crash", "ebpf-storage-null", "ebpf-jit-hijack",
        "ebpf-reqsk-leak",
    ])
    def test_bug_attacks_harmless_when_patched(self, case_id):
        case = next(c for c in CORPUS if c.case_id == case_id)
        outcome = run_case(case, bugs=BugConfig.all_patched())
        assert outcome == Outcome.HARMLESS

    def test_ptr_arith_rejected_when_patched(self):
        case = next(c for c in CORPUS
                    if c.case_id == "ebpf-ptr-arith")
        outcome = run_case(case, bugs=BugConfig.all_patched())
        assert outcome == Outcome.REJECTED_STATIC

    def test_probe_read_still_escapes_when_patched(self):
        """The paper's deeper point: patching bugs does not remove the
        escape hatch *by design* — probe_read still reads anything."""
        case = next(c for c in CORPUS
                    if c.case_id == "ebpf-probe-read")
        outcome = run_case(case, bugs=BugConfig.all_patched())
        assert outcome == Outcome.KERNEL_COMPROMISED

    def test_rcu_stall_still_fires_when_patched(self):
        """Same for termination: bpf_loop is working as intended."""
        case = next(c for c in CORPUS
                    if c.case_id == "ebpf-rcu-stall")
        outcome = run_case(case, bugs=BugConfig.all_patched())
        assert outcome == Outcome.KERNEL_COMPROMISED


class TestKernelStateAfterAttacks:
    def test_crash_attack_taints_kernel(self):
        case = next(c for c in CORPUS
                    if c.case_id == "ebpf-sys-bpf-crash")
        kernel = Kernel()
        run_case(case, kernel=kernel)
        assert not kernel.healthy
        assert kernel.log.last_oops().category == "null-deref"

    def test_safelang_attacks_leave_kernel_clean(self):
        for case in CORPUS:
            if case.framework != "safelang":
                continue
            kernel = Kernel()
            run_case(case, kernel=kernel)
            assert kernel.healthy, case.case_id
            assert not kernel.rcu.stall_reports, case.case_id

    def test_rcu_stall_attack_reports_stalls(self):
        case = next(c for c in CORPUS
                    if c.case_id == "ebpf-rcu-stall")
        kernel = Kernel()
        run_case(case, kernel=kernel)
        assert kernel.rcu.stall_reports
        assert kernel.rcu.stall_reports[0].duration_ns == \
            kernel.rcu.stall_timeout_ns
