"""RCU under SMP: real concurrent readers, blocking grace periods."""

import re

import pytest

from repro.analysis.racehunt import ScheduleExplorer, replay
from repro.errors import RcuStall, UseAfterFree
from repro.faultinject.interleave import scenario_rcu_use_after_grace
from repro.kernel import Kernel
from repro.kernel.smp import ScriptedInterleaving, SmpScheduler


class TestGracePeriodBlocks:
    def test_writer_blocks_until_reader_exits(self):
        """Forced interleaving: the writer's synchronize() starts
        while the reader is inside its section, blocks, and returns
        only after the reader exits."""
        kernel = Kernel(nr_cpus=2)
        events = []
        smp_box = {}
        def reader():
            kernel.rcu.read_lock(holder="reader")
            events.append("enter")
            smp_box["smp"].yield_point("preempt", "inside")
            events.append("exiting")
            kernel.rcu.read_unlock()
        def writer():
            kernel.rcu.synchronize()
            events.append("gp")
        # reader enters (decisions 1-2), is preempted (3), the writer
        # starts its grace period and blocks (4-5), the reader drains,
        # and the writer completes
        schedule = ScriptedInterleaving([0, 0, 1, 1, 0, 1])
        smp = SmpScheduler(kernel, schedule=schedule)
        smp_box["smp"] = smp
        smp.spawn(reader, cpu=0, name="reader")
        smp.spawn(writer, cpu=1, name="writer")
        smp.run()
        assert events == ["enter", "exiting", "gp"]
        assert kernel.rcu.gp_seq == 1
        blocked = [e for e in smp.trace
                   if e[1] == "block" and e[2].startswith("rcu.gp")]
        assert blocked, "writer never actually blocked on the gp"

    def test_gp_waits_for_all_snapshot_readers_on_every_seed(self):
        """Property over seeds: whenever synchronize() blocked on a
        set of readers, it returned only after every one of them
        exited."""
        spanning_runs = 0
        for seed in range(12):
            kernel = Kernel(nr_cpus=3)
            smp = SmpScheduler(kernel, seed=seed)
            events = []
            def make_reader(name):
                def body():
                    kernel.rcu.read_lock(holder=name)
                    smp.yield_point("preempt", name)
                    events.append(f"exit:{name}")
                    kernel.rcu.read_unlock()
                return body
            def writer():
                kernel.rcu.synchronize()
                events.append("gp")
            smp.spawn(make_reader("r1"), cpu=0, name="r1")
            smp.spawn(make_reader("r2"), cpu=1, name="r2")
            smp.spawn(writer, cpu=2, name="writer")
            smp.run()
            waited_on = set()
            for entry in smp.trace:
                if entry[1] == "block" and entry[2].startswith("rcu.gp"):
                    match = re.match(r"rcu\.gp\(([^)]*)\)", entry[2])
                    waited_on.update(match.group(1).split(","))
            if waited_on:
                spanning_runs += 1
                gp_at = events.index("gp")
                for name in waited_on:
                    assert events.index(f"exit:{name}") < gp_at, \
                        f"seed {seed}: gp completed before {name} exited"
            assert kernel.rcu.gp_seq == 1
        assert spanning_runs > 0, \
            "no seed produced a reader-spanning grace period"

    def test_readers_nest_per_task(self):
        kernel = Kernel(nr_cpus=2)
        smp = SmpScheduler(kernel, seed=0)
        def reader():
            kernel.rcu.read_lock(holder="outer")
            kernel.rcu.read_lock(holder="inner")
            assert kernel.rcu.readers_active() == ["reader"]
            kernel.rcu.read_unlock()
            kernel.rcu.read_unlock()
        smp.spawn(reader, cpu=0, name="reader")
        smp.run()
        assert kernel.rcu.readers_active() == []
        assert not kernel.rcu.read_lock_held

    def test_unlock_without_lock_by_task_raises(self):
        kernel = Kernel(nr_cpus=2)
        # holder enters its section first, then the rogue unlocks
        smp = SmpScheduler(kernel,
                           schedule=ScriptedInterleaving([0, 0, 1]))
        events = []
        def holder():
            kernel.rcu.read_lock(holder="holder")
            smp.yield_point("preempt", "inside")
            kernel.rcu.read_unlock()
            events.append("ok")
        def rogue():
            kernel.rcu.read_unlock()  # holds nothing
        smp.spawn(holder, cpu=0, name="holder")
        smp.spawn(rogue, cpu=1, name="rogue")
        smp.run(collect_errors=True)
        errors = smp.errors()
        assert len(errors) == 1
        assert isinstance(errors[0], RuntimeError)
        assert "holds no read lock" in str(errors[0])
        assert events == ["ok"]

    def test_synchronize_inside_own_section_is_self_deadlock(self):
        kernel = Kernel(nr_cpus=2)
        smp = SmpScheduler(kernel, seed=0)
        def bad_writer():
            kernel.rcu.read_lock(holder="w")
            try:
                kernel.rcu.synchronize()
            finally:
                kernel.rcu.read_unlock()
        smp.spawn(bad_writer, cpu=0, name="w")
        with pytest.raises(RcuStall, match="self-deadlock"):
            smp.run()

    def test_serialized_synchronize_unchanged(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        kernel.rcu.synchronize()
        assert kernel.rcu.gp_seq == 1
        kernel.rcu.read_lock(holder="r")
        with pytest.raises(RcuStall):
            kernel.rcu.synchronize()
        kernel.rcu.read_unlock()


class TestUseAfterGrace:
    def test_explorer_finds_planted_use_after_grace(self):
        """The planted free-without-grace-period bug must surface as
        a use-after-free within a small seeded budget, with a seed
        that replays to the identical trace."""
        explorer = ScheduleExplorer(scenario_rcu_use_after_grace,
                                    nr_cpus=2, base_seed=0)
        result = explorer.explore(budget=16)
        oopses = result.by_kind("oops")
        assert oopses, "use-after-grace bug not found in 16 schedules"
        finding = oopses[0]
        assert "use-after-free" in finding.description
        assert "rcu_obj" in finding.description
        replayed = replay(scenario_rcu_use_after_grace, finding.seed,
                          nr_cpus=2)
        assert replayed.trace_signature() == finding.trace_signature
        assert any(isinstance(e, UseAfterFree)
                   for e in replayed.errors())

    def test_discovery_is_reproducible(self):
        def hunt():
            result = ScheduleExplorer(
                scenario_rcu_use_after_grace, nr_cpus=2,
                base_seed=0).explore(budget=16)
            return [(f.kind, f.seed, f.trace_signature)
                    for f in result.findings]
        assert hunt() == hunt()
