"""SMP lock discipline: owner-CPU tracking, lockdep, real contention."""

import pytest

from repro.errors import KernelDeadlock
from repro.kernel import Kernel
from repro.kernel.smp import ScriptedInterleaving, SmpScheduler


class TestLockdepSameCpu:
    def test_same_cpu_reacquire_oopses_through_panic_path(self):
        """An IRQ-style re-entry on the holder's own CPU can never
        make progress: lockdep oopses immediately via the official
        path instead of hanging the schedule."""
        kernel = Kernel(nr_cpus=2)
        lock = kernel.locks.create("dev.lock")
        smp = SmpScheduler(kernel, seed=0)
        def body():
            lock.lock("prog")
            # simulated interrupt handler on the same CPU re-enters
            lock.lock("irq")
        smp.spawn(body, cpu=0, name="prog")
        with pytest.raises(KernelDeadlock, match="lockdep"):
            smp.run()
        assert kernel.log.tainted
        oops = kernel.log.oopses[-1]
        assert oops.category == "deadlock"
        assert "non-preemptible self-spin" in oops.reason
        assert "cpu0" in oops.reason

    def test_aa_reacquire_still_detected_under_smp(self):
        kernel = Kernel(nr_cpus=2)
        lock = kernel.locks.create("aa.lock")
        smp = SmpScheduler(kernel, seed=0)
        def body():
            lock.lock("prog")
            lock.lock("prog")
        smp.spawn(body, cpu=0, name="prog")
        with pytest.raises(KernelDeadlock, match="AA deadlock"):
            smp.run()
        assert kernel.log.oopses[-1].category == "deadlock"

    def test_serialized_behavior_unchanged(self, leakcheck):
        """Without an SMP run, any contention is still an immediate
        deadlock (nothing else could ever release the lock)."""
        kernel = Kernel(nr_cpus=2)
        leakcheck(kernel)
        lock = kernel.locks.create("serial.lock")
        lock.lock("a")
        with pytest.raises(KernelDeadlock):
            lock.lock("b")


class TestCrossCpuContention:
    def test_contended_acquire_spins_until_release(self):
        """A cross-CPU contended acquire blocks (does not oops) and
        proceeds once the holder releases — strict mutual exclusion."""
        kernel = Kernel(nr_cpus=2)
        lock = kernel.locks.create("counter.lock")
        smp = SmpScheduler(kernel, seed=0)
        events = []
        def holder():
            lock.lock("holder")
            events.append("h:locked")
            smp.yield_point("helper", "hold")  # contender tries here
            events.append("h:unlocking")
            lock.unlock("holder")
        def contender():
            lock.lock("contender")
            events.append("c:locked")
            lock.unlock("contender")
        # force: holder takes the lock (decisions 1-2), the contender
        # then attempts the acquire and spins (3-4); the tail is
        # seeded but the order is already pinned by the blocking
        schedule = ScriptedInterleaving([0, 0, 1, 1])
        smp = SmpScheduler(kernel, schedule=schedule)
        smp.spawn(holder, cpu=0, name="holder")
        smp.spawn(contender, cpu=1, name="contender")
        smp.run()
        assert events.index("c:locked") > events.index("h:unlocking")
        assert lock.contended_count == 1
        assert lock.owner is None and lock.owner_cpu is None

    def test_owner_cpu_recorded_while_held(self):
        kernel = Kernel(nr_cpus=4)
        lock = kernel.locks.create("pin.lock")
        smp = SmpScheduler(kernel, seed=0)
        seen = {}
        def body():
            lock.lock("prog")
            seen["cpu"] = lock.owner_cpu
            lock.unlock("prog")
        smp.spawn(body, cpu=2, name="prog")
        smp.run()
        assert seen["cpu"] == 2
        assert lock.owner_cpu is None

    def test_contention_counted_in_telemetry(self):
        kernel = Kernel(nr_cpus=2)
        lock = kernel.locks.create("hot.lock")
        smp = SmpScheduler(kernel, seed=1)
        def writer(owner):
            def body():
                for __ in range(3):
                    lock.lock(owner)
                    smp.yield_point("helper", owner)
                    lock.unlock(owner)
            return body
        smp.spawn(writer("a"), cpu=0, name="a")
        smp.spawn(writer("b"), cpu=1, name="b")
        smp.run()
        family = kernel.telemetry._smp_contention
        total = sum(inst.value for __, inst in family.samples())
        assert total == smp.lock_contentions == lock.contended_count
        assert lock.acquire_count == 6

    def test_mutual_exclusion_holds_on_every_seed(self):
        """Across many seeds, the critical section is never entered
        by two tasks at once."""
        for seed in range(10):
            kernel = Kernel(nr_cpus=2)
            lock = kernel.locks.create("mx.lock")
            smp = SmpScheduler(kernel, seed=seed)
            inside = {"count": 0, "max": 0}
            def writer(owner):
                def run():
                    for __ in range(2):
                        lock.lock(owner)
                        inside["count"] += 1
                        inside["max"] = max(inside["max"],
                                            inside["count"])
                        smp.yield_point("helper", "cs")
                        inside["count"] -= 1
                        lock.unlock(owner)
                return run
            smp.spawn(writer("a"), cpu=0, name="a")
            smp.spawn(writer("b"), cpu=1, name="b")
            smp.run()
            assert inside["max"] == 1, f"seed {seed} broke exclusion"
