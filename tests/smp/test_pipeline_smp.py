"""SMP polling of the XDP data plane: per-queue workers on their own
CPUs, verdict-identical to the serialized poll loop."""

import pytest

from repro.ebpf import BpfSubsystem, ProgType
from repro.kernel import Kernel
from repro.net import DataPlane, LoadGen
from repro.net import programs as xdp_programs


def build(engine="fast", queues=None):
    kernel = Kernel(nr_cpus=2)
    bpf = BpfSubsystem(kernel, engine=engine)
    plane = DataPlane(kernel, bpf, ringbuf_bytes=1 << 14)
    nic = plane.create_nic(1, "smp0", queue_depth=256)
    prog = bpf.load_program(xdp_programs.port_filter_prog(),
                            ProgType.XDP, "filter")
    plane.attach(prog, nic)
    return kernel, bpf, plane, nic


class TestSmpPoll:
    def test_smp_poll_processes_everything(self, leakcheck):
        kernel, bpf, plane, nic = build()
        leakcheck(kernel)
        gen = LoadGen(kernel, "uniform", seed=3)
        offered = gen.drive(nic, 300)  # no plane: packets accumulate
        done = plane.process_all_smp(seed=1)
        assert done == offered["accepted"]
        assert sum(plane.verdicts.values()) == done
        assert plane.last_smp.switches >= 0
        assert plane.last_smp.trace_signature()

    def test_smp_verdicts_match_serial(self, leakcheck):
        """Interleaving queue polls across CPUs must not change any
        verdict: per-packet results are queue-local."""
        def totals(smp_seed):
            kernel, bpf, plane, nic = build()
            leakcheck(kernel)
            gen = LoadGen(kernel, "bursty", seed=11)
            gen.drive(nic, 400)
            if smp_seed is None:
                plane.process_all()
            else:
                plane.process_all_smp(seed=smp_seed)
            return dict(plane.verdicts), plane.processed
        serial = totals(None)
        for seed in (0, 7):
            assert totals(seed) == serial

    def test_smp_poll_deterministic(self, leakcheck):
        def run(seed):
            kernel, bpf, plane, nic = build()
            leakcheck(kernel)
            gen = LoadGen(kernel, "uniform", seed=5)
            gen.drive(nic, 200)
            plane.process_all_smp(seed=seed)
            return plane.last_smp.trace_signature()
        assert run(4) == run(4)
