"""The race detector and schedule explorer: planted bugs must be
found, the race-free corpus must stay silent and nproc-invariant."""

import pytest

from repro.analysis.racehunt import (
    RaceDetector,
    ScheduleExplorer,
    replay,
)
from repro.faultinject.interleave import (
    PLANTED,
    RACE_FREE,
    check_race_free,
    hunt_planted,
    run_signature,
    scenario_unlocked_counter,
)


class TestDetectorUnit:
    """Feed the detector directly — no scheduler involved."""

    def make(self):
        det = RaceDetector()
        det.begin_task("a")
        det.begin_task("b")
        return det

    def test_conflicting_unordered_writes_race(self):
        det = self.make()
        det.record_access("a", 1, "obj", 0, 8, True, (), False)
        det.record_access("b", 1, "obj", 0, 8, True, (), False)
        assert len(det.races) == 1
        report = det.races[0]
        assert report.type_name == "obj"
        assert "write by a" in report.describe()

    def test_read_read_is_not_a_race(self):
        det = self.make()
        det.record_access("a", 1, "obj", 0, 8, False, (), False)
        det.record_access("b", 1, "obj", 0, 8, False, (), False)
        assert det.races == []

    def test_disjoint_offsets_do_not_conflict(self):
        det = self.make()
        det.record_access("a", 1, "obj", 0, 4, True, (), False)
        det.record_access("b", 1, "obj", 4, 4, True, (), False)
        assert det.races == []

    def test_partial_overlap_caught(self):
        det = self.make()
        det.record_access("a", 1, "obj", 0, 8, True, (), False)
        det.record_access("b", 1, "obj", 6, 4, True, (), False)
        assert len(det.races) == 1

    def test_common_lockset_suppresses(self):
        det = self.make()
        det.record_access("a", 1, "obj", 0, 8, True, ("L",), False)
        det.record_access("b", 1, "obj", 0, 8, True, ("L", "M"),
                          False)
        assert det.races == []

    def test_lock_release_acquire_is_happens_before(self):
        """FastTrack edge: a's release publishes its clock; b's
        acquire joins it, ordering b's access after a's."""
        det = self.make()
        det.on_acquire("a", "L")
        det.record_access("a", 1, "obj", 0, 8, True, ("L",), False)
        det.on_release("a", "L")
        det.on_acquire("b", "L")
        # b accesses WITHOUT holding L: lockset is empty, only the
        # inherited happens-before edge protects this
        det.on_release("b", "L")
        det.record_access("b", 1, "obj", 0, 8, True, (), False)
        assert det.races == []

    def test_rcu_exit_to_sync_is_happens_before(self):
        det = self.make()
        det.record_access("a", 1, "obj", 0, 8, False, (), False)
        det.on_rcu_exit("a")
        det.on_rcu_sync("b")
        det.record_access("b", 1, "obj", 0, 8, True, (), False)
        assert det.races == []

    def test_atomic_vs_atomic_exempt_but_mixed_reported(self):
        det = self.make()
        det.record_access("a", 1, "obj", 0, 8, True, (), True)
        det.record_access("b", 1, "obj", 0, 8, True, (), True)
        assert det.races == []
        det.record_access("b", 2, "cell", 0, 8, True, (), True)
        det.record_access("a", 2, "cell", 0, 8, True, (), False)
        assert len(det.races) == 1

    def test_duplicate_pairs_deduped(self):
        det = self.make()
        for __ in range(3):
            det.record_access("a", 1, "obj", 0, 8, True, (), False)
            det.record_access("b", 1, "obj", 0, 8, True, (), False)
        assert len(det.races) == 1


class TestPlantedBugs:
    def test_unlocked_counter_flagged_on_first_schedule(self):
        result = ScheduleExplorer(scenario_unlocked_counter,
                                  nr_cpus=2).explore(budget=1)
        races = result.by_kind("race")
        assert races
        assert "unlocked-writer" in races[0].description
        assert "counter.lock" in races[0].description

    def test_race_finding_seed_replays(self):
        result = ScheduleExplorer(scenario_unlocked_counter,
                                  nr_cpus=2, base_seed=5).explore(
                                      budget=4)
        finding = result.by_kind("race")[0]
        replayed = replay(scenario_unlocked_counter, finding.seed,
                          nr_cpus=2)
        assert replayed.trace_signature() == finding.trace_signature
        assert replayed.detector.races

    def test_hunt_planted_finds_both_bug_classes(self):
        """The acceptance gate: one lock-discipline bug and one RCU
        use-after-grace bug, each reproducibly found within a bounded
        seeded budget with a replayable seed."""
        report = hunt_planted(budget=16, base_seed=0)
        assert set(report) == set(PLANTED)
        assert report["unlocked_counter"]["expected"] == "race"
        assert report["rcu_use_after_grace"]["expected"] == "oops"
        for entry in report.values():
            assert isinstance(entry["replay_seed"], int)

    def test_races_counted_in_telemetry(self):
        from repro.kernel import Kernel
        from repro.kernel.smp import SmpScheduler
        from repro.analysis.racehunt import RaceDetector
        kernel = Kernel(nr_cpus=2)
        detector = RaceDetector()
        smp = SmpScheduler(kernel, seed=0, detector=detector)
        scenario_unlocked_counter(smp)
        smp.run()
        assert detector.races
        # explorer mirrors confirmed races into the counter family
        explorer = ScheduleExplorer(scenario_unlocked_counter,
                                    nr_cpus=2)
        explorer.explore(budget=1)


class TestNprocInvariance:
    """Satellite: race-free corpus is bit-identical across nproc."""

    @pytest.mark.parametrize("name", sorted(RACE_FREE))
    def test_signature_invariant_across_nproc(self, name):
        scenario = RACE_FREE[name]
        for seed in (0, 3):
            signatures = set()
            for nproc in (1, 2, 4):
                invariant, __, races = run_signature(scenario, nproc,
                                                     seed)
                assert races == 0, \
                    f"{name}: false positive at nproc={nproc}"
                signatures.add(invariant)
            assert len(signatures) == 1, \
                f"{name}: outcome depends on CPU placement (seed {seed})"

    @pytest.mark.parametrize("name", sorted(RACE_FREE))
    def test_same_seed_identical_trace(self, name):
        scenario = RACE_FREE[name]
        first = run_signature(scenario, 2, seed=1)
        second = run_signature(scenario, 2, seed=1)
        assert first == second

    def test_check_race_free_harness_passes(self):
        report = check_race_free(budget=2, base_seed=0)
        assert set(report) == set(RACE_FREE)

    def test_planted_bug_breaks_invariance_check(self):
        """Sanity: the differential harness is not vacuous — a racy
        scenario fails it (detector findings)."""
        with pytest.raises(AssertionError, match="false positive"):
            check_race_free(
                budget=1, base_seed=0,
                scenarios={"planted": scenario_unlocked_counter})
