"""Deterministic SMP scheduler: determinism, scripting, migration."""

import pytest

from repro.errors import KernelDeadlock
from repro.kernel import Kernel
from repro.kernel.smp import (
    RoundRobin,
    ScriptedInterleaving,
    SeededInterleaving,
    SmpScheduler,
)


def yielder(smp, events, name, steps=3):
    """A task body that yields ``steps`` times, logging each step."""
    def body():
        for step in range(steps):
            events.append(f"{name}:{step}")
            smp.yield_point("helper", f"{name}:{step}")
        return name
    return body


def run_two(seed, nr_cpus=2, schedule=None):
    """Two yielding tasks on two CPUs; returns (events, scheduler)."""
    kernel = Kernel(nr_cpus=nr_cpus)
    smp = SmpScheduler(kernel, schedule=schedule, seed=seed)
    events = []
    smp.spawn(yielder(smp, events, "a"), cpu=0, name="a")
    smp.spawn(yielder(smp, events, "b"), cpu=1 % nr_cpus, name="b")
    smp.run()
    return events, smp


class TestDeterminism:
    def test_same_seed_identical_trace_and_order(self):
        events1, smp1 = run_two(seed=7)
        events2, smp2 = run_two(seed=7)
        assert events1 == events2
        assert smp1.trace == smp2.trace
        assert smp1.trace_signature() == smp2.trace_signature()

    def test_seeds_explore_different_interleavings(self):
        signatures = {run_two(seed=s)[1].trace_signature()
                      for s in range(8)}
        assert len(signatures) > 1

    def test_results_in_spawn_order(self):
        kernel = Kernel(nr_cpus=2)
        smp = SmpScheduler(kernel, seed=3)
        smp.spawn(lambda: "first", cpu=0)
        smp.spawn(lambda: "second", cpu=1)
        assert smp.run() == ["first", "second"]

    def test_single_cpu_serializes_fifo(self):
        """With one CPU both tasks queue on it: strict FIFO, no
        interleaving regardless of seed."""
        for seed in range(4):
            events, smp = run_two(seed=seed, nr_cpus=1)
            assert events == ["a:0", "a:1", "a:2",
                              "b:0", "b:1", "b:2"]
            assert smp.switches == 1

    def test_empty_run_is_noop(self):
        smp = SmpScheduler(Kernel(nr_cpus=2))
        assert smp.run() == []


class TestScriptedInterleaving:
    def test_script_forces_exact_alternation(self):
        # decision 1 is the start pick; then each helper yield is one
        # decision.  Alternate CPUs strictly.
        script = ScriptedInterleaving([0, 1, 0, 1, 0, 1, 0])
        events, smp = run_two(seed=0, schedule=script)
        assert events == ["a:0", "b:0", "a:1", "b:1", "a:2", "b:2"]

    def test_script_replays_a_seeded_run(self):
        """Extracting the chosen-CPU column of a seeded trace and
        replaying it as a script reproduces the same interleaving."""
        events1, smp1 = run_two(seed=11)
        choices = [entry[5] for entry in smp1.trace]
        script = ScriptedInterleaving(choices)
        events2, smp2 = run_two(seed=99, schedule=script)
        assert events2 == events1

    def test_scripted_migration_moves_task(self):
        kernel = Kernel(nr_cpus=2)
        # decision 2 is the lone task's first yield: migrate it there
        schedule = ScriptedInterleaving([0, 1, 1, 1, 1],
                                        migrations={2: 1})
        smp = SmpScheduler(kernel, schedule=schedule)
        cpus_seen = []
        def body():
            for step in range(2):
                smp.yield_point("helper", str(step))
                cpus_seen.append(kernel.current_cpu.cpu_id)
        task = smp.spawn(body, cpu=0, name="mover")
        smp.run()
        assert task.migrations == 1
        assert task.cpu_id == 1
        assert cpus_seen == [1, 1]
        assert any(entry[1] == "migrate" for entry in smp.trace)

    def test_roundrobin_cycles(self):
        events, smp = run_two(seed=0, schedule=RoundRobin())
        assert smp.trace_signature() == \
            run_two(seed=5, schedule=RoundRobin())[1].trace_signature()


class TestSchedulerMechanics:
    def test_live_spawn_runs_to_completion(self):
        kernel = Kernel(nr_cpus=2)
        smp = SmpScheduler(kernel, seed=2)
        results = []
        def parent():
            smp.spawn(lambda: results.append("child"), cpu=1,
                      name="child")
            smp.yield_point("helper", "after-spawn")
            return "parent"
        smp.spawn(parent, cpu=0, name="parent")
        smp.run()
        assert results == ["child"]

    def test_send_ipi_targets_cpu(self):
        kernel = Kernel(nr_cpus=4)
        smp = SmpScheduler(kernel, seed=0)
        where = []
        def sender():
            smp.send_ipi(3, lambda: where.append(
                kernel.current_cpu.cpu_id), name="ipi-fn")
        smp.spawn(sender, cpu=0, name="sender")
        smp.run()
        assert where == [3]
        assert any(entry[1] == "ipi" for entry in smp.trace)

    def test_atomic_scope_suppresses_yields(self):
        kernel = Kernel(nr_cpus=2)
        smp = SmpScheduler(kernel, seed=0)
        def body():
            before = smp._decisions
            with smp.atomic_scope():
                smp.yield_point("helper", "inside")
                smp.yield_point("helper", "inside2")
            assert smp._decisions == before
        smp.spawn(body, cpu=0)
        smp.run()

    def test_wait_until_resumes_on_condition(self):
        kernel = Kernel(nr_cpus=2)
        smp = SmpScheduler(kernel, seed=4)
        box = {"ready": False}
        order = []
        def waiter():
            smp.wait_until(lambda: box["ready"], "box")
            order.append("woke")
        def setter():
            smp.yield_point("helper", "pre")
            box["ready"] = True
            order.append("set")
        smp.spawn(waiter, cpu=0, name="waiter")
        smp.spawn(setter, cpu=1, name="setter")
        smp.run()
        assert order == ["set", "woke"]

    def test_switch_and_telemetry_counters(self):
        events, smp = run_two(seed=7)
        assert smp.switches > 0
        family = smp.kernel.telemetry._smp_switches
        samples = dict(family.samples())
        assert samples[()].value == smp.switches

    def test_task_exception_reraised_after_run(self):
        kernel = Kernel(nr_cpus=2)
        smp = SmpScheduler(kernel, seed=0)
        def boom():
            raise ValueError("task bug")
        smp.spawn(boom, cpu=0)
        smp.spawn(lambda: None, cpu=1)
        with pytest.raises(ValueError, match="task bug"):
            smp.run()


class TestDeadlock:
    def test_unwakeable_wait_is_deadlock_through_panic_path(self):
        kernel = Kernel(nr_cpus=2)
        smp = SmpScheduler(kernel, seed=0)
        smp.spawn(lambda: smp.wait_until(lambda: False, "never"),
                  cpu=0, name="stuck")
        smp.spawn(lambda: None, cpu=1, name="quick")
        with pytest.raises(KernelDeadlock):
            smp.run()
        assert kernel.log.tainted
        oops = kernel.log.oopses[-1]
        assert oops.category == "deadlock"
        assert oops.source == "smp"
        assert "SMP deadlock" in oops.reason

    def test_deadlock_is_deterministic(self):
        def once():
            kernel = Kernel(nr_cpus=2)
            smp = SmpScheduler(kernel, seed=5)
            smp.spawn(lambda: smp.wait_until(lambda: False, "never"),
                      cpu=0)
            smp.spawn(lambda: smp.yield_point("helper", "x"), cpu=1)
            with pytest.raises(KernelDeadlock):
                smp.run()
            return smp.trace_signature()
        assert once() == once()
