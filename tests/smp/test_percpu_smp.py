"""Per-CPU maps under SMP: slot resolution follows the *executing*
CPU at yield-point granularity, identically on all three engines."""

import struct

import pytest

from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.helpers import ids as helper_ids
from repro.ebpf.isa import R0, R1, R2, R10
from repro.kernel import Kernel
from repro.kernel.smp import ScriptedInterleaving, SmpScheduler

ENGINES = ("interp", "fast", "compiled")


def key(i: int) -> bytes:
    return struct.pack("<I", i)


def val(v: int) -> bytes:
    return struct.pack("<Q", v)


def counter_prog(map_fd: int) -> list:
    """lookup percpu slot 0, increment its u64 — the classic per-CPU
    hot counter (same shape as the ebpf map tests use)."""
    return (Asm()
            .st_imm(4, R10, -4, 0)
            .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
            .ld_map_fd(R1, map_fd)
            .call(helper_ids.BPF_FUNC_map_lookup_elem)
            .jmp_imm("jne", R0, 0, "hit")
            .mov64_imm(R0, 0).exit_()
            .label("hit")
            .ldx(8, R1, R0, 0)
            .alu64_imm("add", R1, 1)
            .stx(8, R0, 0, R1)
            .mov64_imm(R0, 0)
            .exit_()
            .program())


class TestDirectMapOps:
    def test_update_resolves_executing_cpu(self):
        """Two tasks pinned to different CPUs update the same key:
        each lands on its own CPU's slice."""
        kernel = Kernel(nr_cpus=2)
        bpf = BpfSubsystem(kernel)
        pc = bpf.create_map("percpu_array", max_entries=1)
        smp = SmpScheduler(kernel, seed=3)
        def updater(amount):
            def body():
                pc.update(key(0), val(amount))
            return body
        smp.spawn(updater(10), cpu=0, name="u0")
        smp.spawn(updater(20), cpu=1, name="u1")
        smp.run()
        values = [int.from_bytes(raw, "little")
                  for raw in pc.read_values(0)]
        assert values == [10, 20]

    def test_explicit_migration_moves_slot_mid_task(self):
        """A task migrating between two updates writes two different
        slices — the slot is re-resolved at every operation."""
        kernel = Kernel(nr_cpus=2)
        bpf = BpfSubsystem(kernel)
        pc = bpf.create_map("percpu_array", max_entries=1)
        smp = SmpScheduler(kernel, seed=0)
        def body():
            addr = pc.lookup_addr(key(0))
            kernel.mem.write_u64(addr, 1 + kernel.mem.read_u64(addr))
            smp.migrate(1)
            addr = pc.lookup_addr(key(0))
            kernel.mem.write_u64(addr, 1 + kernel.mem.read_u64(addr))
        smp.spawn(body, cpu=0, name="mover")
        smp.run()
        values = [int.from_bytes(raw, "little")
                  for raw in pc.read_values(0)]
        assert values == [1, 1]
        assert pc.sum_u64(0) == 2

    def test_scheduled_migration_at_yield_point(self):
        """A migration forced by the *schedule* at the map-op yield
        point lands the update on the new CPU's slice: resolution
        happens after the yield, at the executing CPU."""
        kernel = Kernel(nr_cpus=2)
        bpf = BpfSubsystem(kernel)
        pc = bpf.create_map("percpu_array", max_entries=1)
        # decision 2 is the task's map.update yield: migrate there,
        # before the slot is resolved
        schedule = ScriptedInterleaving([0, 1, 1, 1],
                                        migrations={2: 1})
        smp = SmpScheduler(kernel, schedule=schedule)
        def body():
            pc.update(key(0), val(7))
        task = smp.spawn(body, cpu=0, name="u")
        smp.run()
        assert task.migrations == 1
        values = [int.from_bytes(raw, "little")
                  for raw in pc.read_values(0)]
        assert values == [0, 7]

    def test_percpu_hash_isolates_cpus(self):
        kernel = Kernel(nr_cpus=2)
        bpf = BpfSubsystem(kernel)
        ph = bpf.create_map("percpu_hash", max_entries=4)
        smp = SmpScheduler(kernel, seed=1)
        def updater(amount):
            def body():
                ph.update(key(9), val(amount))
            return body
        smp.spawn(updater(5), cpu=0, name="u0")
        smp.spawn(updater(6), cpu=1, name="u1")
        smp.run()
        assert ph.sum_u64(key(9)) == 11
        values = [int.from_bytes(raw, "little")
                  for raw in ph.read_values(key(9))]
        assert values == [5, 6]


class TestCrossEngine:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_program_counter_lands_on_executing_cpu(self, engine):
        """The same counter program, one invocation per CPU under the
        SMP scheduler, increments each CPU's own slice — on every
        execution tier."""
        kernel = Kernel(nr_cpus=2)
        bpf = BpfSubsystem(kernel, engine=engine)
        pc = bpf.create_map("percpu_array", max_entries=1)
        prog = bpf.load_program(counter_prog(pc.map_fd),
                                ProgType.KPROBE, f"pcnt-{engine}")
        smp = SmpScheduler(kernel, seed=2)
        smp.vm = bpf.vm
        def run_prog():
            return bpf.run_on_current_task(prog)
        smp.spawn(run_prog, cpu=0, name="cpu0-run")
        smp.spawn(run_prog, cpu=1, name="cpu1-run")
        smp.run()
        per_cpu = [int.from_bytes(raw, "little")
                   for raw in pc.read_values(0)]
        assert per_cpu == [1, 1], \
            f"{engine}: counts landed on the wrong slices"
        assert pc.sum_u64(0) == 2

    @pytest.mark.parametrize("engine", ENGINES)
    def test_engines_produce_identical_interleaving(self, engine):
        """Engine choice must not perturb the schedule: the decision
        trace of an SMP run is engine-invariant for the same seed."""
        def run_once(eng):
            kernel = Kernel(nr_cpus=2)
            bpf = BpfSubsystem(kernel, engine=eng)
            pc = bpf.create_map("percpu_array", max_entries=1)
            smp = SmpScheduler(kernel, seed=6)
            smp.vm = bpf.vm
            def updater(amount):
                def body():
                    pc.update(key(0), val(amount))
                return body
            smp.spawn(updater(1), cpu=0, name="a")
            smp.spawn(updater(2), cpu=1, name="b")
            smp.run()
            return smp.trace_signature(), pc.sum_u64(0)
        assert run_once(engine) == run_once("fast")
