"""Rollout planner: wave shapes, coverage, seeded determinism."""

import pytest

from repro.fleet import RolloutPlanner


def ids(n):
    """n synthetic node ids."""
    return [f"node-{i:03d}" for i in range(n)]


class TestPlanShape:
    def test_default_waves_cover_fleet_exactly_once(self):
        waves = RolloutPlanner().plan(ids(200), seed=1)
        seen = [n for w in waves for n in w.node_ids]
        assert sorted(seen) == ids(200)
        assert len(seen) == len(set(seen))

    def test_default_fractions_give_canonical_sizes(self):
        waves = RolloutPlanner().plan(ids(200), seed=1)
        assert [len(w.node_ids) for w in waves] == [2, 18, 80, 100]
        assert [w.fraction for w in waves] == [0.01, 0.10, 0.50, 1.0]

    def test_small_fleet_still_gets_a_canary_wave(self):
        waves = RolloutPlanner().plan(ids(8), seed=0)
        assert len(waves[0].node_ids) == 1  # every wave >= 1 node
        assert sum(len(w.node_ids) for w in waves) == 8

    def test_single_node_fleet_is_one_wave(self):
        waves = RolloutPlanner().plan(ids(1), seed=0)
        assert len(waves) == 1
        assert waves[0].node_ids == ("node-000",)

    def test_empty_fleet_refused(self):
        with pytest.raises(ValueError, match="zero nodes"):
            RolloutPlanner().plan([], seed=0)


class TestValidation:
    def test_fractions_must_end_at_one(self):
        with pytest.raises(ValueError, match="end at 1.0"):
            RolloutPlanner(fractions=(0.01, 0.5))

    def test_fractions_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            RolloutPlanner(fractions=(0.5, 0.1, 1.0))


class TestDeterminism:
    def test_same_seed_same_plan(self):
        a = RolloutPlanner().plan(ids(100), seed=42)
        b = RolloutPlanner().plan(ids(100), seed=42)
        assert [w.node_ids for w in a] == [w.node_ids for w in b]

    def test_different_seed_different_assignment(self):
        a = RolloutPlanner().plan(ids(100), seed=42)
        b = RolloutPlanner().plan(ids(100), seed=43)
        assert [w.node_ids for w in a] != [w.node_ids for w in b]

    def test_input_order_is_irrelevant(self):
        """The plan is a function of the node *set*, not the order
        the port happened to list it in."""
        a = RolloutPlanner().plan(ids(50), seed=7)
        b = RolloutPlanner().plan(list(reversed(ids(50))), seed=7)
        assert [w.node_ids for w in a] == [w.node_ids for w in b]
