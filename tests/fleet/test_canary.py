"""Canary evaluator: census math and the pass/fail threshold."""

import pytest

from repro.fleet import CanaryEvaluator, CanaryPolicy


def states(healthy=0, degraded=0, quarantined=0, dead=0):
    """Build a node->state mapping with the given counts."""
    mapping = {}
    for state, count in (("healthy", healthy), ("degraded", degraded),
                         ("quarantined", quarantined), ("dead", dead)):
        for i in range(count):
            mapping[f"{state}-{i}"] = state
    return mapping


class TestVerdict:
    def test_all_healthy_passes(self):
        verdict = CanaryEvaluator().evaluate(1, states(healthy=20))
        assert verdict.passed
        assert verdict.unhealthy == 0
        assert dict(verdict.census)["healthy"] == 20

    def test_unhealthy_over_threshold_fails(self):
        verdict = CanaryEvaluator().evaluate(
            1, states(healthy=18, quarantined=2))  # 10% > 5%
        assert not verdict.passed
        assert verdict.unhealthy == 2
        assert verdict.unhealthy_fraction == pytest.approx(0.1)

    def test_threshold_is_inclusive(self):
        policy = CanaryPolicy(max_unhealthy_fraction=0.10)
        verdict = CanaryEvaluator(policy).evaluate(
            1, states(healthy=18, degraded=2))  # exactly 10%
        assert verdict.passed

    def test_every_unhealthy_state_counts(self):
        verdict = CanaryEvaluator().evaluate(
            1, {"a": "degraded", "b": "quarantined", "c": "dead",
                "d": "deploy-failed"})
        assert verdict.unhealthy == 4
        assert not verdict.passed

    def test_census_has_fixed_shape(self):
        """Zero-count states are present: the export's census rows
        all have the same columns."""
        verdict = CanaryEvaluator().evaluate(1, states(healthy=3))
        assert [s for s, _ in verdict.census] == [
            "healthy", "degraded", "quarantined", "deploy-failed",
            "unreachable", "dead"]

    def test_unknown_state_is_loud(self):
        with pytest.raises(ValueError, match="unknown health state"):
            CanaryEvaluator().evaluate(1, {"n": "confused"})

    def test_empty_wave_passes_vacuously(self):
        verdict = CanaryEvaluator().evaluate(1, {})
        assert verdict.passed
        assert verdict.unhealthy_fraction == 0.0
