"""The fault-modeled control channel: retries, backoff, dedup,
partitions, agent crashes, timed-out-but-applied requests."""

import pytest

from repro.faultinject.plane import (
    ETIMEDOUT,
    FaultAction,
    FaultPlane,
    NthHit,
    Probability,
    Scripted,
)
from repro.fleet.adapters.sim import build_scenario
from repro.fleet.transport import (
    FleetTransport,
    RetryPolicy,
    RpcRequest,
)

SEED = 7
SIZE = 6


@pytest.fixture
def scenario(leakcheck):
    built = build_scenario(size=SIZE, seed=SEED)
    for node in built.fleet.nodes():
        leakcheck(node.kernel)
    return built


def call(transport, method, node_id, *args, rid="req-1"):
    return transport.call(RpcRequest(
        request_id=rid, method=method, node_id=node_id, args=args))


class TestTransparentChannel:
    def test_clean_channel_is_one_attempt(self, scenario):
        transport = scenario.transport
        outcome = call(transport, "census", "node-000")
        assert outcome.ok
        assert outcome.value == "healthy"
        assert outcome.attempts == 1
        assert transport.stats.retries == 0

    def test_each_call_costs_wire_latency(self, scenario):
        transport = scenario.transport
        before = transport.clock.now_ns
        call(transport, "census", "node-000")
        assert transport.clock.now_ns \
            == before + transport.policy.send_latency_ns

    def test_deploy_travels_and_applies(self, scenario):
        outcome = call(scenario.transport, "deploy", "node-001",
                       scenario.good)
        assert outcome.ok and outcome.value.ok
        assert scenario.fleet.current_release("node-001") \
            == scenario.good.release_id


class TestRetryAndBackoff:
    def test_dropped_sends_are_retried(self, scenario):
        transport = scenario.transport
        transport.plane.arm("fleet.rpc.send.node-000",
                            Scripted([True, True]),
                            FaultAction.err(ETIMEDOUT))
        outcome = call(transport, "census", "node-000")
        assert outcome.ok
        assert outcome.attempts == 3
        assert transport.stats.retries == 2
        assert transport.stats.send_drops == 2

    def test_exhausted_budget_is_unreachable_not_raise(self, scenario):
        transport = scenario.transport
        transport.plane.arm("fleet.rpc.send.node-000",
                            Probability(1.0),
                            FaultAction.err(ETIMEDOUT))
        outcome = call(transport, "census", "node-000")
        assert not outcome.ok
        assert outcome.error == "unreachable"
        assert outcome.attempts == transport.policy.max_attempts
        assert transport.stats.unreachable == 1

    def test_backoff_grows_and_is_capped(self):
        policy = RetryPolicy(jitter_ns=0)
        from random import Random
        rng = Random(0)
        spans = [policy.backoff_ns(a, rng) for a in (1, 2, 3, 4, 5, 9)]
        assert spans[0] == policy.base_backoff_ns
        assert spans[1] == 2 * policy.base_backoff_ns
        assert spans[-1] == policy.max_backoff_ns
        assert spans == sorted(spans)

    def test_backoff_jitter_is_seeded(self):
        policy = RetryPolicy()
        from random import Random
        a = [policy.backoff_ns(1, Random("s")) for _ in range(3)]
        b = [policy.backoff_ns(1, Random("s")) for _ in range(3)]
        assert a == b

    def test_retries_burn_virtual_time(self, scenario):
        transport = scenario.transport
        transport.plane.arm("fleet.rpc.send.node-000",
                            Scripted([True]),
                            FaultAction.err(ETIMEDOUT))
        before = transport.clock.now_ns
        call(transport, "census", "node-000")
        spent = transport.clock.now_ns - before
        # one full timeout + one backoff + two send latencies
        assert spent >= (transport.policy.rpc_timeout_ns
                         + transport.policy.base_backoff_ns
                         + 2 * transport.policy.send_latency_ns)


class TestIdempotency:
    def test_lost_reply_retry_does_not_double_apply(self, scenario):
        """The sharp case: the node applied the deploy, the reply
        died.  The retry must be absorbed by the reply cache."""
        transport = scenario.transport
        transport.plane.arm("fleet.rpc.reply.node-002",
                            Scripted([True]),
                            FaultAction.err(ETIMEDOUT))
        outcome = call(transport, "deploy", "node-002", scenario.good)
        assert outcome.ok and outcome.value.ok
        assert outcome.attempts == 2
        assert transport.stats.applied["deploy"] == 1
        assert transport.stats.dedup_hits == 1
        # the node saw exactly one deploy: previous is the baseline
        node = scenario.fleet._node("node-002")
        assert node.previous.release_id == scenario.baseline.release_id

    def test_duplicated_request_applies_once(self, scenario):
        transport = scenario.transport
        transport.plane.arm("fleet.rpc.send.node-002",
                            Scripted([True]), FaultAction.dup())
        outcome = call(transport, "deploy", "node-002", scenario.good)
        assert outcome.ok and outcome.value.ok
        assert transport.stats.duplicates == 1
        assert transport.stats.applied["deploy"] == 1
        assert transport.stats.dedup_hits == 1

    def test_distinct_request_ids_apply_separately(self, scenario):
        transport = scenario.transport
        call(transport, "soak", "node-000", 1, rid="a")
        call(transport, "soak", "node-000", 1, rid="b")
        assert transport.stats.applied["soak"] == 2
        assert transport.stats.dedup_hits == 0


class TestTimedOutButApplied:
    def test_late_request_lands_but_attempt_fails(self, scenario):
        """A delay at/past the deadline: the node applies the request,
        the client has already given up — then the retry is deduped."""
        transport = scenario.transport
        policy = transport.policy
        transport.plane.arm("fleet.rpc.send.node-003",
                            Scripted([True]),
                            FaultAction.delay(policy.rpc_timeout_ns))
        outcome = call(transport, "deploy", "node-003", scenario.good)
        assert outcome.ok and outcome.value.ok
        assert outcome.attempts == 2
        assert transport.stats.applied["deploy"] == 1
        assert transport.stats.dedup_hits == 1

    def test_short_delay_is_just_slow(self, scenario):
        transport = scenario.transport
        transport.plane.arm("fleet.rpc.send.node-003",
                            Scripted([True]), FaultAction.delay(10))
        outcome = call(transport, "census", "node-003")
        assert outcome.ok
        assert outcome.attempts == 1


class TestPartitionsAndCrashes:
    def test_partition_cuts_both_directions(self, scenario):
        transport = scenario.transport
        transport.plane.arm("fleet.partition.node-004",
                            Probability(1.0),
                            FaultAction.err(ETIMEDOUT))
        outcome = call(transport, "census", "node-004")
        assert not outcome.ok and outcome.error == "unreachable"
        assert transport.stats.partitioned \
            >= transport.policy.max_attempts
        # other nodes are unaffected
        assert call(transport, "census", "node-000", rid="r2").ok

    def test_partition_heals_when_schedule_stops(self, scenario):
        transport = scenario.transport
        transport.plane.arm("fleet.partition.node-004",
                            Scripted([True, True]),
                            FaultAction.err(ETIMEDOUT))
        outcome = call(transport, "census", "node-004")
        assert outcome.ok
        assert outcome.attempts == 3

    def test_backoff_rides_over_the_reboot_window(self, scenario):
        """The in-flight request dies with the agent, but timeout +
        backoff accumulate past the reboot window and a later retry
        of the *same* logical RPC lands."""
        transport = scenario.transport
        transport.plane.arm("fleet.node.crash.node-005",
                            NthHit(1), FaultAction.panic())
        outcome = call(transport, "census", "node-005")
        assert outcome.ok
        assert outcome.attempts == 3
        assert transport.stats.node_crashes == 1
        assert transport.stats.timeouts == 2

    def test_tight_budget_finds_the_agent_down(self, scenario):
        """With fewer attempts than the reboot window needs, the node
        is unreachable — and reachable again after the window."""
        transport = FleetTransport(
            scenario.fleet, policy=RetryPolicy(max_attempts=2),
            seed=SEED)
        transport.plane.enable(SEED)
        transport.plane.arm("fleet.node.crash.node-005",
                            NthHit(1), FaultAction.panic())
        outcome = call(transport, "census", "node-005")
        assert not outcome.ok and outcome.error == "unreachable"
        transport.clock.advance(transport.policy.crash_reboot_ns)
        assert call(transport, "census", "node-005", rid="r2").ok


class TestStats:
    def test_stats_export_is_stable(self, scenario):
        transport = scenario.transport
        call(transport, "census", "node-000")
        body = transport.stats.as_dict()
        assert body["rpcs"] == 1
        assert body["attempts"] == 1
        assert body["applied"] == {"census": 1}
