"""Crash-resumable rollouts: kill the orchestrator at journal-append
boundaries, resume from the write-ahead journal, and require the
finished report to be bit-identical to an uninterrupted run."""

import pytest

from repro.faultinject.plane import (
    ETIMEDOUT,
    FaultAction,
    NthHit,
    Probability,
)
from repro.fleet.adapters.sim import build_scenario
from repro.fleet.journal import (
    FileJournal,
    MemoryJournal,
    OrchestratorCrash,
)
from repro.fleet.services.orchestrator import RolloutOrchestrator

SIZE = 20
SEED = 11


def arm_channel_chaos(plane):
    """A representative lossy channel (seeded, deterministic)."""
    plane.arm("fleet.rpc.send.*", Probability(0.15),
              FaultAction.err(ETIMEDOUT))
    plane.arm("fleet.rpc.reply.*", Probability(0.10),
              FaultAction.err(ETIMEDOUT))


@pytest.fixture
def scenario(leakcheck):
    built = build_scenario(size=SIZE, seed=SEED)
    for node in built.fleet.nodes():
        leakcheck(node.kernel)
    return built


def reference_signature(release: str, chaos: bool = False) -> str:
    """The uninterrupted run's signature on a fresh fleet."""
    built = build_scenario(size=SIZE, seed=SEED)
    if chaos:
        arm_channel_chaos(built.transport.plane)
    target = getattr(built, release)
    return built.orchestrator.rollout(
        target.release_id, seed=SEED).signature()


class TestCrashMidWave:
    def test_resumed_rollout_is_bit_identical(self, scenario):
        """Killed mid-wave, resumed: same signature as straight
        through — the acceptance criterion."""
        arm_channel_chaos(scenario.transport.plane)
        scenario.transport.plane.arm("fleet.orch.crash", NthHit(40),
                                     FaultAction.panic())
        journal = MemoryJournal()
        with pytest.raises(OrchestratorCrash):
            scenario.orchestrator.rollout(
                scenario.good.release_id, seed=SEED, journal=journal)
        assert not journal.complete()
        report = scenario.orchestrator.resume(journal)
        assert report.outcome == "completed"
        assert journal.complete()
        assert report.signature() \
            == reference_signature("good", chaos=True)

    def test_crash_during_bad_release_rollback(self, scenario):
        """Dying mid-rollback must not strand the withdrawn release:
        the resumed run finishes the rollback identically."""
        scenario.transport.plane.arm("fleet.orch.crash", NthHit(10),
                                     FaultAction.panic())
        journal = MemoryJournal()
        with pytest.raises(OrchestratorCrash):
            scenario.orchestrator.rollout(
                scenario.bad.release_id, seed=SEED, journal=journal)
        report = scenario.orchestrator.resume(journal)
        assert report.outcome == "rolled-back"
        assert report.signature() == reference_signature("bad")
        bad = scenario.bad.release_id
        assert all(scenario.fleet.current_release(n) != bad
                   for n in scenario.fleet.node_ids())

    def test_repeated_crashes_still_converge(self, scenario):
        """A recurring crash schedule: every resume dies again after
        a few appends, yet the rollout lands bit-identically."""
        arm_channel_chaos(scenario.transport.plane)
        scenario.transport.plane.arm(
            "fleet.orch.crash", NthHit(25, every=True),
            FaultAction.panic())
        journal = MemoryJournal()
        report = None
        crashes = 0
        while report is None:
            try:
                if crashes == 0:
                    report = scenario.orchestrator.rollout(
                        scenario.good.release_id, seed=SEED,
                        journal=journal)
                else:
                    report = scenario.orchestrator.resume(journal)
            except OrchestratorCrash:
                crashes += 1
                assert crashes < 100
        assert crashes >= 2
        assert report.signature() \
            == reference_signature("good", chaos=True)


class TestResumeSemantics:
    def test_resume_replays_without_fleet_traffic(self, scenario):
        """Resuming a *complete* journal is a pure replay: the report
        is rebuilt, the transport is never touched."""
        journal = MemoryJournal()
        original = scenario.orchestrator.rollout(
            scenario.good.release_id, seed=SEED, journal=journal)
        rpcs_before = scenario.transport.stats.rpcs
        clock_before = scenario.transport.clock.now_ns
        replayed = scenario.orchestrator.resume(journal)
        assert replayed.signature() == original.signature()
        assert replayed.summary() == original.summary()
        assert scenario.transport.stats.rpcs == rpcs_before
        assert scenario.transport.clock.now_ns == clock_before

    def test_resume_needs_a_header(self, scenario):
        with pytest.raises(ValueError, match="empty journal"):
            scenario.orchestrator.resume(MemoryJournal())

    def test_resume_counts_in_telemetry(self, scenario):
        scenario.transport.plane.arm("fleet.orch.crash", NthHit(10),
                                     FaultAction.panic())
        journal = MemoryJournal()
        with pytest.raises(OrchestratorCrash):
            scenario.orchestrator.rollout(
                scenario.good.release_id, seed=SEED, journal=journal)
        scenario.orchestrator.resume(journal)
        from repro.telemetry.export import parse_prometheus
        series = parse_prometheus(scenario.telemetry.to_prometheus())
        assert series["repro_fleet_rollout_resumes_total"] == 1

    def test_replayed_waves_do_not_double_count_telemetry(
            self, scenario):
        """The replayed prefix must not re-record waves or rollouts
        into the shared aggregator."""
        scenario.transport.plane.arm("fleet.orch.crash", NthHit(30),
                                     FaultAction.panic())
        journal = MemoryJournal()
        with pytest.raises(OrchestratorCrash):
            scenario.orchestrator.rollout(
                scenario.good.release_id, seed=SEED, journal=journal)
        report = scenario.orchestrator.resume(journal)
        assert len(scenario.telemetry.waves) == len(report.verdicts)
        assert len(scenario.telemetry.rollouts) == 1


class TestFileJournalResume:
    def test_fresh_orchestrator_resumes_from_disk(self, scenario,
                                                  tmp_path):
        """The strongest restart model this harness can express: the
        successor orchestrator is a new object whose only link to the
        dead one is the journal file and the fleet it already acted
        on."""
        path = str(tmp_path / "rollout.jsonl")
        arm_channel_chaos(scenario.transport.plane)
        scenario.transport.plane.arm("fleet.orch.crash", NthHit(55),
                                     FaultAction.panic())
        with pytest.raises(OrchestratorCrash):
            scenario.orchestrator.rollout(
                scenario.good.release_id, seed=SEED,
                journal=FileJournal(path))
        successor = RolloutOrchestrator(
            scenario.fleet, scenario.registry,
            telemetry=scenario.telemetry,
            transport=scenario.transport)
        report = successor.resume(FileJournal(path))
        assert report.outcome == "completed"
        assert report.signature() \
            == reference_signature("good", chaos=True)
        assert FileJournal(path).complete()
