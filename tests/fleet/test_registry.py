"""Release registry: content hashing, signing, tamper rejection."""

import dataclasses

import pytest

from repro.core.signing import SigningKey
from repro.ebpf.progcache import insns_digest
from repro.ebpf.progs import ProgType
from repro.fleet import ReleaseRegistry
from repro.net.programs import pass_all_prog, port_filter_prog


@pytest.fixture
def registry():
    """A fresh registry with the deterministic toolchain key."""
    return ReleaseRegistry()


class TestPublish:
    def test_publish_hashes_and_signs(self, registry):
        release = registry.publish("fw", "1.0.0", pass_all_prog(),
                                   ProgType.XDP)
        assert release.release_id == "fw@1.0.0"
        assert release.content_hash == insns_digest(pass_all_prog())
        assert release.key_id == registry.key.key_id
        assert registry.verify(release)

    def test_publish_is_deterministic(self):
        a = ReleaseRegistry().publish("fw", "1.0.0", pass_all_prog(),
                                      ProgType.XDP)
        b = ReleaseRegistry().publish("fw", "1.0.0", pass_all_prog(),
                                      ProgType.XDP)
        assert a.signature == b.signature
        assert a.content_hash == b.content_hash

    def test_republish_same_content_is_idempotent(self, registry):
        a = registry.publish("fw", "1.0.0", pass_all_prog(),
                             ProgType.XDP)
        b = registry.publish("fw", "1.0.0", pass_all_prog(),
                             ProgType.XDP)
        assert a is b
        assert len(registry.releases()) == 1

    def test_republish_different_content_refused(self, registry):
        registry.publish("fw", "1.0.0", pass_all_prog(), ProgType.XDP)
        with pytest.raises(ValueError, match="already published"):
            registry.publish("fw", "1.0.0", port_filter_prog(),
                             ProgType.XDP)

    def test_unknown_release_is_loud(self, registry):
        with pytest.raises(KeyError, match="unknown release"):
            registry.get("fw@9.9.9")


class TestVerify:
    def test_tampered_bytecode_fails_verification(self, registry):
        release = registry.publish("fw", "1.0.0", pass_all_prog(),
                                   ProgType.XDP)
        forged = dataclasses.replace(
            release, insns=tuple(port_filter_prog()))
        assert not registry.verify(forged)

    def test_version_swap_fails_verification(self, registry):
        """A valid signature lifted onto another version is refused:
        the signed image binds name@version, not just bytes."""
        v1 = registry.publish("fw", "1.0.0", pass_all_prog(),
                              ProgType.XDP)
        forged = dataclasses.replace(v1, version="2.0.0")
        assert not registry.verify(forged)

    def test_foreign_key_fails_verification(self, registry):
        release = registry.publish("fw", "1.0.0", pass_all_prog(),
                                   ProgType.XDP)
        other = ReleaseRegistry(
            key=SigningKey.generate("rogue-toolchain"))
        assert not other.verify(release)
