"""End-to-end fleet rollouts: convergence, canary rollback,
bit-identical determinism, telemetry export."""

import json

import pytest

from repro.fleet.adapters.sim import build_scenario
from repro.recovery import HealthState
from repro.telemetry.export import parse_prometheus

FLEET = 40
SEED = 7


@pytest.fixture
def scenario(leakcheck):
    """A wired 40-node scenario; every kernel leak-checked."""
    built = build_scenario(size=FLEET, seed=SEED)
    for node in built.fleet.nodes():
        leakcheck(node.kernel)
    return built


class TestGoodRelease:
    def test_good_release_converges_to_whole_fleet(self, scenario):
        report = scenario.orchestrator.rollout(
            scenario.good.release_id, seed=SEED)
        assert report.outcome == "completed"
        assert report.converged_nodes == FLEET
        assert report.final_census == {"healthy": FLEET}
        assert all(v.passed for v in report.verdicts)

    def test_waves_upgrade_incrementally(self, scenario):
        report = scenario.orchestrator.rollout(
            scenario.good.release_id, seed=SEED)
        sizes = [v.total for v in report.verdicts]
        assert sum(sizes) == FLEET
        assert sizes[0] < sizes[-1]  # canary wave is the smallest

    def test_halt_after_leaves_fleet_split(self, scenario):
        report = scenario.orchestrator.rollout(
            scenario.good.release_id, seed=SEED, halt_after=2)
        assert report.outcome == "halted"
        assert 0 < report.converged_nodes < FLEET


class TestBadRelease:
    def test_bad_release_halts_at_canary_wave(self, scenario):
        report = scenario.orchestrator.rollout(
            scenario.bad.release_id, seed=SEED)
        assert report.outcome == "rolled-back"
        assert len(report.verdicts) == 1  # never left wave 1
        assert not report.verdicts[0].passed

    def test_rollback_restores_every_node(self, scenario):
        scenario.orchestrator.rollout(scenario.good.release_id,
                                      seed=SEED)
        report = scenario.orchestrator.rollout(
            scenario.bad.release_id, seed=SEED)
        assert report.converged_nodes == 0
        assert report.final_census == {"healthy": FLEET}
        fleet = scenario.fleet
        assert all(fleet.current_release(n)
                   == scenario.good.release_id
                   for n in fleet.node_ids())

    def test_rolled_back_node_is_healthy_in_supervisor_terms(
            self, scenario):
        """The satellite fix end to end: after rollback, the reused
        program tag is HEALTHY — no inherited open breaker."""
        report = scenario.orchestrator.rollout(
            scenario.bad.release_id, seed=SEED)
        kinds = [e.kind for e in report.entries]
        assert "rollback" in kinds
        for node in scenario.fleet.nodes():
            record = node.kernel.recovery.health("bpf:xdp-filter")
            assert record.state is HealthState.HEALTHY
            assert not record.trial
            assert not record.fault_log

    def test_tampered_release_rejected_before_any_deploy(
            self, scenario):
        import dataclasses
        forged = dataclasses.replace(
            scenario.bad, version="3.0.0")
        scenario.registry._releases[forged.release_id] = forged
        report = scenario.orchestrator.rollout(
            forged.release_id, seed=SEED)
        assert report.outcome == "rejected"
        assert not report.verdicts


class TestDeterminism:
    def _run(self, seed):
        built = build_scenario(size=FLEET, seed=seed)
        good = built.orchestrator.rollout(built.good.release_id,
                                          seed=seed)
        bad = built.orchestrator.rollout(built.bad.release_id,
                                         seed=seed)
        return built, good, bad

    def test_same_seed_bit_identical(self):
        _, good_a, bad_a = self._run(3)
        _, good_b, bad_b = self._run(3)
        assert good_a.signature() == good_b.signature()
        assert bad_a.signature() == bad_b.signature()
        assert [e.render() for e in bad_a.entries] \
            == [e.render() for e in bad_b.entries]

    def test_same_seed_identical_telemetry_export(self):
        built_a, _, _ = self._run(3)
        built_b, _, _ = self._run(3)
        assert built_a.telemetry.to_json() \
            == built_b.telemetry.to_json()
        assert built_a.telemetry.to_prometheus() \
            == built_b.telemetry.to_prometheus()

    def test_different_seed_different_log(self):
        _, good_a, _ = self._run(3)
        _, good_b, _ = self._run(4)
        assert good_a.signature() != good_b.signature()


class TestTelemetryExport:
    def test_wave_census_lands_in_both_exports(self, scenario):
        scenario.orchestrator.rollout(scenario.good.release_id,
                                      seed=SEED)
        scenario.orchestrator.rollout(scenario.bad.release_id,
                                      seed=SEED)
        snapshot = json.loads(scenario.telemetry.to_json())
        assert len(snapshot["waves"]) == 5  # 4 good + 1 bad
        assert snapshot["waves"][-1]["census"]["quarantined"] > 0
        outcomes = [r["outcome"] for r in snapshot["rollouts"]]
        assert outcomes == ["completed", "rolled-back"]

        series = parse_prometheus(scenario.telemetry.to_prometheus())
        assert series[
            'repro_fleet_rollouts_total{outcome="completed"}'] == 1
        assert series[
            'repro_fleet_rollouts_total{outcome="rolled-back"}'] == 1
        assert series["repro_fleet_rollbacks_total"] >= 1
        assert series["repro_fleet_nodes"] == FLEET

    def test_event_stream_feeds_the_aggregator(self, scenario):
        scenario.orchestrator.rollout(scenario.bad.release_id,
                                      seed=SEED)
        events = scenario.telemetry.event_counts()
        assert events.get("oops", 0) > 0
        assert events.get("health", 0) > 0
        assert events.get("load", 0) > 0
