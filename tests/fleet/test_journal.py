"""The rollout write-ahead journal: record vocabulary, durability,
reload from disk."""

import json

import pytest

from repro.fleet.journal import FileJournal, MemoryJournal


class TestRecordVocabulary:
    def test_header_entry_op_round_trip(self):
        journal = MemoryJournal()
        journal.append_header("rel@1.0.0", 7, None, rollout=3)
        journal.append_entry(0, "plan", 0, [["fleet", 10]])
        journal.append_op("r003:00001:deploy:n0",
                          {"ok": True, "error": "", "attempts": 1},
                          {"applied": True})
        header = journal.header()
        assert header["release"] == "rel@1.0.0"
        assert header["seed"] == 7
        assert header["rollout"] == 3
        entries = journal.entries()
        assert len(entries) == 1
        assert entries[0]["entry_kind"] == "plan"
        ops = journal.ops()
        assert ops["r003:00001:deploy:n0"]["outcome"]["ok"] is True

    def test_completeness_is_the_done_entry(self):
        journal = MemoryJournal()
        assert not journal.complete()
        journal.append_header("rel", 1, None)
        journal.append_entry(0, "plan", 0, [])
        assert not journal.complete()
        journal.append_entry(1, "done", 0, [])
        assert journal.complete()

    def test_empty_journal_has_no_header(self):
        journal = MemoryJournal()
        assert journal.header() is None
        assert "empty" in journal.describe()

    def test_describe_reports_progress(self):
        journal = MemoryJournal()
        journal.append_header("rel@2.0.0", 9, None)
        journal.append_entry(0, "plan", 0, [])
        assert "in-progress" in journal.describe()
        journal.append_entry(1, "done", 0, [])
        assert "complete" in journal.describe()


class TestFileJournal:
    def test_appends_are_durable_jsonl(self, tmp_path):
        path = str(tmp_path / "rollout.jsonl")
        journal = FileJournal(path)
        journal.append_header("rel", 7, 2)
        journal.append_entry(0, "plan", 0, [["seed", 7]])
        lines = [json.loads(line) for line in
                 open(path, encoding="utf-8")]
        assert [r["kind"] for r in lines] == ["header", "entry"]

    def test_reload_from_disk_sees_every_record(self, tmp_path):
        path = str(tmp_path / "rollout.jsonl")
        first = FileJournal(path)
        first.append_header("rel", 7, None)
        first.append_op("k", {"ok": False, "error": "unreachable",
                              "attempts": 4}, None)
        # a fresh object (a restarted process) reloads the history
        second = FileJournal(path)
        assert second.header()["release"] == "rel"
        assert second.ops()["k"]["outcome"]["attempts"] == 4
        # and continues appending after the existing records
        second.append_entry(0, "done", 0, [])
        assert FileJournal(path).complete()

    def test_fresh_path_starts_empty(self, tmp_path):
        journal = FileJournal(str(tmp_path / "new.jsonl"))
        assert journal.records() == []
