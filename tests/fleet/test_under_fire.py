"""Fleet under fire, end to end: rollouts over a misbehaving channel
must stay idempotent, converge after partitions heal, quarantine what
they cannot fix, and judge waves they cannot see."""

import pytest

from repro.faultinject.chaos import FLEET_SCHEDULES
from repro.faultinject.plane import (
    ETIMEDOUT,
    FaultAction,
    Probability,
    Scripted,
)
from repro.fleet.adapters.sim import build_scenario
from repro.fleet.services.canary import CanaryEvaluator, CanaryPolicy
from repro.fleet.services.orchestrator import RolloutOrchestrator

SIZE = 20
SEED = 11
#: the single wave-1 node for (SIZE, SEED) — pinned by the planner
WAVE1_NODE = "node-004"


@pytest.fixture
def scenario(leakcheck):
    built = build_scenario(size=SIZE, seed=SEED)
    for node in built.fleet.nodes():
        leakcheck(node.kernel)
    return built


class TestDuplicateRpcIdempotency:
    def test_duplicated_deploys_never_double_apply(self, scenario):
        """Every request is delivered twice; every node must apply
        its deploy exactly once — previous/current chains intact."""
        scenario.transport.plane.arm(
            "fleet.rpc.send.*", Probability(1.0), FaultAction.dup())
        report = scenario.orchestrator.rollout(
            scenario.good.release_id, seed=SEED)
        assert report.outcome == "completed"
        assert report.converged_nodes == SIZE
        stats = scenario.transport.stats
        assert stats.duplicates > 0
        assert stats.dedup_hits >= stats.duplicates
        assert stats.applied["deploy"] == SIZE
        for node in scenario.fleet.nodes():
            assert node.current.release_id \
                == scenario.good.release_id
            assert node.previous.release_id \
                == scenario.baseline.release_id

    def test_dup_storm_signature_is_deterministic(self):
        def run():
            built = build_scenario(size=SIZE, seed=SEED)
            FLEET_SCHEDULES["rpc-dups"](built.transport.plane)
            return built.orchestrator.rollout(
                built.good.release_id, seed=SEED).signature()
        assert run() == run()


class TestPartitionHealingMidRollback:
    def arm_partition_after_deploy(self, plane):
        """Let the wave-1 node's deploy/soak/census through (6
        partition-site hits), then cut the link long enough to defeat
        rollback attempt 1 and heal during the sweeps."""
        plane.arm(f"fleet.partition.{WAVE1_NODE}",
                  Scripted([False] * 6 + [True] * 10),
                  FaultAction.err(ETIMEDOUT))

    def test_node_converges_to_prior_release(self, scenario):
        self.arm_partition_after_deploy(scenario.transport.plane)
        report = scenario.orchestrator.rollout(
            scenario.bad.release_id, seed=SEED)
        assert report.outcome == "rolled-back"
        # the partition healed inside the sweep budget: nothing left
        # unreachable, nothing stuck, the node runs its prior release
        assert report.unreachable_nodes == []
        assert report.stuck_nodes == []
        assert scenario.fleet.current_release(WAVE1_NODE) \
            == scenario.baseline.release_id
        assert scenario.fleet.census(WAVE1_NODE) == "healthy"
        sweeps = [e for e in report.entries
                  if e.kind == "rollback-sweep"]
        assert sweeps, "rollback never needed a convergence sweep"

    def test_healing_rollback_is_pinned_by_signature(self):
        def run():
            built = build_scenario(size=SIZE, seed=SEED)
            self.arm_partition_after_deploy(built.transport.plane)
            return built.orchestrator.rollout(
                built.bad.release_id, seed=SEED).signature()
        assert run() == run()


class TestStuckNodesAreQuarantined:
    def sabotage_rollback(self, scenario, victim):
        """Model a node that takes the deploy but cannot roll back
        (its rollback image is gone)."""
        original = scenario.fleet.rollback
        def broken(node_id):
            return None if node_id == victim else original(node_id)
        scenario.fleet.rollback = broken

    def test_stuck_node_is_parked_not_forgotten(self, scenario):
        self.sabotage_rollback(scenario, WAVE1_NODE)
        report = scenario.orchestrator.rollout(
            scenario.bad.release_id, seed=SEED)
        assert report.outcome == "rolled-back"
        assert report.stuck_nodes == [WAVE1_NODE]
        assert report.summary()["stuck_nodes"] == [WAVE1_NODE]
        # parked: the agent reports quarantined and the supervisor
        # holds the release's breaker open
        assert scenario.fleet.census(WAVE1_NODE) == "quarantined"
        node = scenario.fleet._node(WAVE1_NODE)
        assert node.operator_quarantined
        kinds = [e.kind for e in report.entries]
        assert "rollback-failed" in kinds
        assert "quarantine" in kinds

    def test_quarantine_cleared_by_the_next_deploy(self, scenario):
        """Operator intervention: a later successful deploy lifts the
        park."""
        self.sabotage_rollback(scenario, WAVE1_NODE)
        scenario.orchestrator.rollout(scenario.bad.release_id,
                                      seed=SEED)
        node = scenario.fleet._node(WAVE1_NODE)
        result = node.deploy(scenario.good)
        assert result.ok
        assert not node.operator_quarantined
        assert node.census() == "healthy"


class TestDeployFailuresCountAgainstTheWave:
    def test_failed_deploy_is_charged_to_the_canary(self, scenario):
        """The orchestrator's accounting, not the node's self-report:
        even if the node's census looks healthy (it still runs its
        old release), a failed deploy counts against the wave."""
        original = scenario.fleet.census
        def rosy(node_id):
            # a node agent that never admits a problem
            state = original(node_id)
            return "healthy" if state == "deploy-failed" else state
        scenario.fleet.census = rosy
        # node-side sabotage: the wave-1 kernel refuses the load
        victim = scenario.fleet._node(WAVE1_NODE)
        victim.kernel.faults.arm("load.verify", Probability(1.0),
                                 FaultAction.err(22))
        report = scenario.orchestrator.rollout(
            scenario.good.release_id, seed=SEED)
        assert report.outcome == "rolled-back"
        verdict = report.verdicts[0]
        assert not verdict.passed
        assert verdict.unhealthy == 1
        assert dict(verdict.census)["deploy-failed"] == 1
        kinds = [e.kind for e in report.entries]
        assert "deploy-failed" in kinds


class TestUnreachableBudget:
    def test_unseen_wave_cannot_pass(self, scenario):
        """Cut every link: the wave fails on the unreachable budget
        even though zero nodes are unhealthy."""
        scenario.transport.plane.arm(
            "fleet.partition.*", Probability(1.0),
            FaultAction.err(ETIMEDOUT))
        report = scenario.orchestrator.rollout(
            scenario.good.release_id, seed=SEED)
        assert report.outcome == "rolled-back"
        verdict = report.verdicts[0]
        assert not verdict.passed
        assert verdict.unhealthy == 0
        assert verdict.unreachable == verdict.total
        assert report.rpc_unreachable > 0

    def test_budget_is_separate_from_health(self):
        """Unreachable nodes do not count as unhealthy: each budget
        trips independently."""
        policy = CanaryPolicy(max_unhealthy_fraction=0.5,
                              max_unreachable_fraction=0.10)
        verdict = CanaryEvaluator(policy).evaluate(
            1, {"a": "unreachable", "b": "healthy", "c": "healthy",
                "d": "healthy"})
        assert verdict.unhealthy == 0
        assert verdict.unreachable == 1
        assert not verdict.passed  # 25% unreachable > 10% budget

    def test_within_budget_unreachable_wave_passes(self):
        policy = CanaryPolicy(max_unreachable_fraction=0.25)
        verdict = CanaryEvaluator(policy).evaluate(
            1, {"a": "unreachable", "b": "healthy", "c": "healthy",
                "d": "healthy"})
        assert verdict.passed


class TestChannelChaosSchedules:
    @pytest.mark.parametrize("schedule", sorted(FLEET_SCHEDULES))
    def test_bad_release_never_completes(self, schedule, leakcheck):
        """Whatever the channel does, the planted bad release must
        not reach the whole fleet."""
        built = build_scenario(size=10, seed=SEED)
        for node in built.fleet.nodes():
            leakcheck(node.kernel)
        FLEET_SCHEDULES[schedule](built.transport.plane)
        report = built.orchestrator.rollout(
            built.bad.release_id, seed=SEED)
        assert report.outcome == "rolled-back"
        bad = built.bad.release_id
        accounted = set(report.stuck_nodes) \
            | set(report.unreachable_nodes)
        for node_id in built.fleet.node_ids():
            if built.fleet.current_release(node_id) == bad:
                assert node_id in accounted
