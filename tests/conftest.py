"""Repo-wide fixtures: kernel isolation (leak) checking.

The fault-injection work factored the framework's teardown contract
into :mod:`repro.faultinject.invariants`; these fixtures apply that
same contract to ordinary tests, so a test that leaks a reference,
leaves RCU held, or forgets a pool reset fails loudly instead of
silently polluting a kernel that is about to be garbage-collected
anyway.

Tests that *deliberately* leave a kernel unbalanced (attack replays,
teardown-order tests) opt out with ``@pytest.mark.dirty_kernel``.
"""

import pytest

from repro.faultinject.invariants import (
    collect_violations,
    panic_path_consistent,
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "dirty_kernel: test intentionally leaves the kernel "
        "unbalanced; skip the teardown isolation check")


def assert_kernel_isolated(kernel):
    """Fail the calling test if the kernel's transient extension
    state is unbalanced or it died outside the official panic path."""
    violations = collect_violations(kernel)
    if not panic_path_consistent(kernel):
        violations.append(
            f"taint/oops mismatch (tainted={kernel.log.tainted}, "
            f"oopses={len(kernel.log.oopses)})")
    assert not violations, \
        "kernel isolation violated:\n" + "\n".join(violations)


@pytest.fixture
def leakcheck(request):
    """Collect kernels to invariant-check when the test ends.

    Usage::

        def test_something(leakcheck):
            kernel = Kernel()
            leakcheck(kernel)
            ...  # kernel checked at teardown
    """
    kernels = []
    yield kernels.append
    if request.node.get_closest_marker("dirty_kernel"):
        return
    for kernel in kernels:
        assert_kernel_isolated(kernel)
