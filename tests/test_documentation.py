"""Documentation meta-tests: the library's doc obligations hold.

Deliverable discipline as tests: every module, public class and
public function in ``repro`` carries a docstring, and the prose
artifacts (README, DESIGN, EXPERIMENTS, LANGUAGE) stay consistent
with the code they describe.
"""

import ast
import importlib
import inspect
import os
import pkgutil

import pytest

import repro

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")


def _walk_modules():
    for module_info in pkgutil.walk_packages(
            [SRC_ROOT], prefix="repro."):
        yield module_info.name


ALL_MODULES = sorted(_walk_modules())


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_defs_have_docstrings(module_name):
    """Every public class/function defined at module top level (and
    every public method) must carry a docstring."""
    module = importlib.import_module(module_name)
    path = module.__file__
    tree = ast.parse(open(path, encoding="utf-8").read())
    missing = []

    def check_def(node, owner=""):
        if node.name.startswith("_"):
            return
        if not ast.get_docstring(node):
            missing.append(f"{owner}{node.name}")

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            check_def(node)
        elif isinstance(node, ast.ClassDef):
            check_def(node)
            for child in node.body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    # dataclass/test-style simple accessors are still
                    # required to document themselves
                    check_def(child, owner=f"{node.name}.")
    assert not missing, \
        f"{module_name}: missing docstrings on {missing}"


class TestProseConsistency:
    def read(self, name):
        with open(os.path.join(REPO_ROOT, name), encoding="utf-8") as f:
            return f.read()

    def test_design_lists_every_experiment_bench(self):
        design = self.read("DESIGN.md")
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        for bench in sorted(os.listdir(bench_dir)):
            if bench.startswith("test_bench_fig") or \
                    bench.startswith("test_bench_table"):
                assert bench in design, \
                    f"DESIGN.md does not reference {bench}"

    def test_experiments_md_covers_all_figures_and_tables(self):
        text = self.read("EXPERIMENTS.md")
        for artifact in ("Figure 2", "Figure 3", "Figure 4",
                         "Table 1", "Table 2", "Figures 1 & 5"):
            assert artifact in text

    def test_readme_examples_exist(self):
        readme = self.read("README.md")
        examples_dir = os.path.join(REPO_ROOT, "examples")
        for line in readme.splitlines():
            if line.startswith("| `") and ".py" in line:
                script = line.split("`")[1]
                assert os.path.exists(
                    os.path.join(examples_dir, script)), script

    def test_language_reference_matches_kcrate(self):
        from repro.core.kcrate.api import build_api_table
        reference = self.read("docs/LANGUAGE.md")
        table = build_api_table()
        for fn_name in ("map_lookup", "sk_lookup_tcp", "spin_lock",
                        "task_storage_get", "sys_map_update",
                        "vec_new"):
            assert fn_name in table.functions
            assert fn_name in reference

    def test_version_consistent(self):
        pyproject = self.read("pyproject.toml")
        assert f'version = "{repro.__version__}"' in pyproject
