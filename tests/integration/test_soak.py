"""Soak tests: long mixed workloads must not leak or degrade.

A kernel instance hosting both frameworks is driven through hundreds
of interleaved invocations; afterwards, kernel memory attributable to
per-invocation machinery must be flat, every refcount balanced, every
lock free, RCU quiescent, and the memory pool reset.
"""

import struct

import pytest

from repro.core import SafeExtensionFramework
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R4, R5, R10
from repro.kernel import Kernel

ROUNDS = 150


@pytest.fixture(scope="module")
def world():
    kernel = Kernel()
    kernel.create_socket(src_ip=0x0A000001, src_port=443)
    bpf = BpfSubsystem(kernel)
    framework = SafeExtensionFramework(kernel)
    counter = bpf.create_map("array", key_size=4, value_size=8,
                             max_entries=2)

    ebpf_prog = bpf.load_program(
        (Asm()
         .st_imm(4, R10, -4, 0)
         .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
         .ld_map_fd(R1, counter.map_fd)
         .call(ids.BPF_FUNC_map_lookup_elem)
         .jmp_imm("jne", R0, 0, "hit")
         .mov64_imm(R0, 2).exit_()
         .label("hit")
         .ldx(8, R1, R0, 0)
         .alu64_imm("add", R1, 1)
         .stx(8, R0, 0, R1)
         .mov64_imm(R0, 2)
         .exit_()
         .program()), ProgType.XDP, "soak_count")

    sl_prog = framework.install("""
    fn prog(ctx: XdpCtx) -> i64 {
        match sk_lookup_tcp(167772161, 443) {
            Some(s) => {
                map_update(0, 1, s.src_port());
            },
            None => { },
        }
        match map_lookup(0, 1) {
            Some(v) => { return (v & 3) as i64; },
            None => { },
        }
        return 2;
    }
    """, "soak_sl", maps=[counter])
    return kernel, bpf, framework, ebpf_prog, sl_prog, counter


class TestSoak:
    def test_interleaved_rounds_stay_clean(self, world):
        kernel, bpf, framework, ebpf_prog, sl_prog, counter = world
        # warm up so steady-state allocations exist
        bpf.run_on_packet(ebpf_prog, b"warm")
        framework.run_on_packet(sl_prog, b"warm")

        live_before = kernel.mem.live_bytes
        for round_no in range(ROUNDS):
            kernel.set_current_cpu(round_no % len(kernel.cpus))
            verdict = bpf.run_on_packet(ebpf_prog,
                                        b"x" * (round_no % 32 + 1))
            assert verdict == 2
            result = framework.run_on_packet(sl_prog, b"y")
            assert not result.panicked and not result.terminated
        grown = kernel.mem.live_bytes - live_before
        # each round creates one skb per framework (header + payload
        # stay alive as network state); nothing else may accumulate
        skb_bytes = sum(
            a.size for a in kernel.mem.live_allocations()
            if a.type_name in ("sk_buff", "skb_data"))
        assert grown <= skb_bytes + 1024

    def test_everything_balanced_after_soak(self, world):
        kernel, bpf, framework, __, __sl, __c = world
        assert kernel.healthy
        assert not kernel.rcu.read_lock_held
        assert kernel.rcu.stall_reports == []
        kernel.refs.assert_no_leaks("safelang:soak_sl")
        kernel.refs.assert_no_leaks("bpf:soak_count")
        for lock_owner in ("safelang:soak_sl", "bpf:soak_count"):
            kernel.locks.assert_none_held(lock_owner)
        assert framework.vm.pool.used == 0

    def test_counter_reflects_all_rounds(self, world):
        kernel, bpf, framework, ebpf_prog, __, counter = world
        count = struct.unpack("<Q", counter.read_value(0))[0]
        assert count >= ROUNDS  # every eBPF round incremented

    def test_virtual_time_monotone_through_soak(self, world):
        kernel = world[0]
        before = kernel.clock.now_ns
        world[1].run_on_packet(world[3], b"z")
        assert kernel.clock.now_ns > before


class TestRepeatedLoadUnloadChurn:
    def test_many_loads_accounted(self):
        """Loading many programs/extensions must not corrupt shared
        state (ids unique, log coherent)."""
        kernel = Kernel()
        bpf = BpfSubsystem(kernel)
        framework = SafeExtensionFramework(kernel)
        prog_ids = set()
        for index in range(40):
            prog = bpf.load_program(
                Asm().mov64_imm(R0, index % 3).exit_().program(),
                ProgType.KPROBE, f"churn{index}")
            prog_ids.add(prog.prog_id)
            loaded = framework.install(
                f"fn prog(ctx: XdpCtx) -> i64 {{ return {index}; }}",
                f"churn{index}")
            assert framework.run_on_packet(loaded, b"p").value == index
        assert len(prog_ids) == 40
        assert len(kernel.log.grep("bpf: loaded prog")) == 40
        assert len(kernel.log.grep("safelang: loaded extension")) == 40
