"""Cross-layer integration tests."""

import struct
import subprocess
import sys
import os

import pytest

from repro.core import SafeExtensionFramework
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R10
from repro.kernel import Kernel

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")


class TestBothFrameworksAgree:
    """The same policy, both frameworks, same kernel: identical
    observable behaviour."""

    def test_packet_counter_parity(self):
        kernel = Kernel()
        bpf = BpfSubsystem(kernel)
        ebpf_map = bpf.create_map("array", key_size=4, value_size=8,
                                  max_entries=1)
        sl_map = bpf.create_map("array", key_size=4, value_size=8,
                                max_entries=1)

        ebpf_prog = bpf.load_program(
            (Asm()
             .st_imm(4, R10, -4, 0)
             .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
             .ld_map_fd(R1, ebpf_map.map_fd)
             .call(ids.BPF_FUNC_map_lookup_elem)
             .jmp_imm("jne", R0, 0, "hit")
             .mov64_imm(R0, 2).exit_()
             .label("hit")
             .ldx(8, R1, R0, 0)
             .alu64_imm("add", R1, 1)
             .stx(8, R0, 0, R1)
             .mov64_imm(R0, 2)
             .exit_()
             .program()), ProgType.XDP, "count")

        framework = SafeExtensionFramework(kernel)
        sl_prog = framework.install("""
        fn prog(ctx: XdpCtx) -> i64 {
            match map_lookup(0, 0) {
                Some(v) => { map_update(0, 0, v + 1); },
                None => { },
            }
            return 2;
        }
        """, "count", maps=[sl_map])

        for payload in (b"a", b"bb", b"ccc"):
            assert bpf.run_on_packet(ebpf_prog, payload) == 2
            assert framework.run_on_packet(sl_prog, payload).value == 2

        ebpf_count = struct.unpack("<Q", ebpf_map.read_value(0))[0]
        sl_count = struct.unpack("<Q", sl_map.read_value(0))[0]
        assert ebpf_count == sl_count == 3

    def test_shared_kernel_shared_maps(self):
        """A SafeLang extension and an eBPF program can share a map:
        the data plane is common kernel infrastructure."""
        kernel = Kernel()
        bpf = BpfSubsystem(kernel)
        shared = bpf.create_map("array", key_size=4, value_size=8,
                                max_entries=1)
        framework = SafeExtensionFramework(kernel)
        writer = framework.install(
            "fn prog(ctx: XdpCtx) -> i64 { map_update(0, 0, 555); "
            "return 0; }", "writer", maps=[shared])
        framework.run_on_packet(writer, b"x")

        reader = bpf.load_program(
            (Asm()
             .st_imm(4, R10, -4, 0)
             .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
             .ld_map_fd(R1, shared.map_fd)
             .call(ids.BPF_FUNC_map_lookup_elem)
             .jmp_imm("jne", R0, 0, "hit")
             .mov64_imm(R0, 0).exit_()
             .label("hit")
             .ldx(8, R0, R0, 0)
             .exit_()
             .program()), ProgType.KPROBE, "reader")
        assert bpf.run_on_current_task(reader) == 555


class TestKernelSurvivalMatrix:
    def test_many_safelang_runs_leak_nothing(self):
        kernel = Kernel()
        kernel.create_socket(src_ip=0x0A000001, src_port=80)
        framework = SafeExtensionFramework(kernel)
        loaded = framework.install("""
        fn prog(ctx: XdpCtx) -> i64 {
            match sk_lookup_tcp(167772161, 80) {
                Some(s) => { return s.state() as i64; },
                None => { return -1; },
            }
            return 0;
        }
        """, "looper")
        for __ in range(50):
            framework.run_on_packet(loaded, b"x")
        kernel.refs.assert_no_leaks("safelang:looper")
        assert kernel.healthy

    def test_mixed_workload_one_kernel(self):
        """Healthy coexistence: tracing + networking + storage on one
        kernel instance, interleaved."""
        kernel = Kernel()
        bpf = BpfSubsystem(kernel)
        framework = SafeExtensionFramework(kernel)
        hist = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=8)
        storage = bpf.create_map("task_storage", value_size=8)
        tracer = framework.install("""
        fn prog(ctx: XdpCtx) -> i64 {
            let t = current_task();
            task_storage_set(&t, 1, ktime_ns());
            map_update(0, 0, 1);
            return 0;
        }
        """, "tracer", maps=[hist, storage])
        filt = bpf.load_program(
            Asm().mov64_imm(R0, 2).exit_().program(),
            ProgType.XDP, "filter")
        for __ in range(10):
            framework.run_on_packet(tracer, b"t")
            bpf.run_on_packet(filt, b"f")
        assert kernel.healthy
        assert not kernel.rcu.read_lock_held

    def test_crash_then_taint_is_observable(self):
        from repro.attacks import build_corpus, run_case
        kernel = Kernel()
        case = next(c for c in build_corpus()
                    if c.case_id == "ebpf-sys-bpf-crash")
        run_case(case, kernel=kernel)
        # after the oops, the kernel's taint is queryable by tooling
        assert kernel.log.tainted
        assert "BUG:" in kernel.log.dmesg()


@pytest.mark.parametrize("example", [
    "quickstart.py", "packet_filter.py", "tracing_profiler.py",
    "syscall_security.py", "kernel_cache.py",
])
def test_examples_run_clean(example):
    """Every example script must execute successfully."""
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, example)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]


def test_attack_demo_example_runs():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "attack_demo.py")],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "KERNEL" in result.stdout or "oops" in result.stdout
