"""Verifier fuzzing self-checks (the [41] methodology)."""

import random

import pytest

from repro.analysis.fuzz import fuzz_campaign, random_program
from repro.ebpf.isa import Insn


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = random_program(random.Random(7))
        b = random_program(random.Random(7))
        assert a == b

    def test_programs_end_with_exit(self):
        rng = random.Random(3)
        for __ in range(50):
            program = random_program(rng)
            assert program[-1].opcode == 0x95  # exit
            assert all(isinstance(insn, Insn) for insn in program)

    def test_programs_decodable(self):
        rng = random.Random(11)
        for __ in range(50):
            for insn in random_program(rng):
                assert Insn.decode(insn.encode()) == insn


class TestCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return fuzz_campaign(iterations=400, seed=1337)

    def test_verifier_never_crashes(self, report):
        assert report.verifier_crashes == []

    def test_accepted_programs_never_compromise_patched_kernel(
            self, report):
        assert report.soundness_violations == []

    def test_generator_achieves_useful_acceptance(self, report):
        """If everything is rejected the campaign tests nothing."""
        assert report.accepted >= report.total * 0.1

    def test_generator_also_exercises_rejection(self, report):
        assert report.rejected >= report.total * 0.1

    def test_accounting_consistent(self, report):
        assert report.accepted + report.rejected \
            + len(report.verifier_crashes) == report.total
        assert report.ran_clean + report.ran_recoverable \
            + len(report.soundness_violations) >= report.accepted \
            - len(report.soundness_violations)

    def test_different_seed_also_clean(self):
        report = fuzz_campaign(iterations=150, seed=2024)
        assert report.clean
