"""bpftool-style CLI tests."""

import pytest

from repro.tools.bpftool import main


@pytest.fixture
def prog_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text("""
        r0 = 40
        r1 = 2
        r0 += r1
        exit
    """)
    return str(path)


@pytest.fixture
def bad_prog_file(tmp_path):
    path = tmp_path / "bad.s"
    path.write_text("""
        r0 = r5
        exit
    """)
    return str(path)


class TestProgCommands:
    def test_verify_ok(self, prog_file, capsys):
        assert main(["prog", "verify", prog_file]) == 0
        out = capsys.readouterr().out
        assert "verification OK" in out
        assert "4 insns" in out

    def test_verify_with_log(self, prog_file, capsys):
        assert main(["prog", "verify", prog_file, "--log"]) == 0
        out = capsys.readouterr().out
        assert "verifier log" in out
        assert "r0 = 40" in out
        assert "R0=" in out        # register-state trace

    def test_verify_rejection(self, bad_prog_file, capsys):
        assert main(["prog", "verify", bad_prog_file]) == 1
        assert "VERIFICATION FAILED" in capsys.readouterr().out

    def test_run(self, prog_file, capsys):
        assert main(["prog", "run", prog_file]) == 0
        out = capsys.readouterr().out
        assert "return value: 42" in out
        assert "kernel healthy: True" in out

    def test_run_xdp_with_payload(self, tmp_path, capsys):
        path = tmp_path / "xdp.s"
        path.write_text("r0 = 2\nexit\n")
        assert main(["prog", "run", str(path), "--type", "xdp",
                     "--payload", "hi"]) == 0
        assert "return value: 2" in capsys.readouterr().out

    def test_run_with_map(self, tmp_path, capsys):
        path = tmp_path / "mapprog.s"
        path.write_text("""
            *(u32 *)(r10 -4) = 0
            r2 = r10
            r2 += -4
            r1 = map_fd[3]
            call helper#1
            if r0 != 0 goto hit
            r0 = 0
            exit
        hit:
            r0 = *(u64 *)(r0 +0)
            exit
        """)
        assert main(["prog", "run", str(path),
                     "--map", "array:4:8:4"]) == 0
        out = capsys.readouterr().out
        assert "created array map fd=3" in out
        assert "return value: 0" in out

    def test_crash_reported(self, tmp_path, capsys):
        path = tmp_path / "crash.s"
        # the CVE-2022-2785 shape in text assembly
        path.write_text("""
            *(u32 *)(r10 -32) = 3
            *(u32 *)(r10 -28) = 0
            *(u64 *)(r10 -24) = 0
            *(u64 *)(r10 -16) = 0
            *(u64 *)(r10 -8) = 0
            r1 = 2
            r2 = r10
            r2 += -32
            r3 = 32
            call helper#166
            r0 = 0
            exit
        """)
        code = main(["prog", "run", str(path),
                     "--map", "hash:4:4:4"])
        out = capsys.readouterr().out
        assert code == 2
        assert "KERNEL COMPROMISED" in out

    def test_crash_gone_when_patched(self, tmp_path, capsys):
        path = tmp_path / "crash.s"
        path.write_text("""
            *(u32 *)(r10 -32) = 3
            *(u32 *)(r10 -28) = 0
            *(u64 *)(r10 -24) = 0
            *(u64 *)(r10 -16) = 0
            *(u64 *)(r10 -8) = 0
            r1 = 2
            r2 = r10
            r2 += -32
            r3 = 32
            call helper#166
            exit
        """)
        assert main(["prog", "run", str(path),
                     "--map", "hash:4:4:4", "--patched"]) == 0
        assert "kernel healthy: True" in capsys.readouterr().out

    def test_dump(self, prog_file, capsys):
        assert main(["prog", "dump", prog_file]) == 0
        out = capsys.readouterr().out
        assert "r0 += r1" in out


class TestRegistryCommands:
    def test_helper_list_all(self, capsys):
        assert main(["helper", "list"]) == 0
        out = capsys.readouterr().out
        assert "(249 helpers)" in out
        assert "bpf_sys_bpf" in out

    def test_helper_list_retired(self, capsys):
        assert main(["helper", "list", "--class", "retire"]) == 0
        out = capsys.readouterr().out
        assert "(16 helpers)" in out
        assert "bpf_loop" in out

    def test_helper_list_implemented(self, capsys):
        assert main(["helper", "list", "--implemented"]) == 0
        assert "(36 helpers)" in capsys.readouterr().out

    def test_bugs_list(self, capsys):
        assert main(["bugs", "list"]) == 0
        out = capsys.readouterr().out
        assert "sys_bpf_null_union" in out
        assert "Null-pointer dereference" in out


class TestStatsCommands:
    def test_prog_stats_counts_runs(self, prog_file, capsys):
        assert main(["prog", "stats", prog_file,
                     "--repeat", "5"]) == 0
        out = capsys.readouterr().out
        row = next(line for line in out.splitlines()
                   if "ebpf" in line)
        fields = row.split()
        assert fields[1] == "ebpf"
        assert fields[2] == "5"          # run_cnt
        assert "stats_enabled=1" in out

    def test_prog_stats_verification_failure(self, bad_prog_file,
                                             capsys):
        assert main(["prog", "stats", bad_prog_file]) == 1
        assert "VERIFICATION FAILED" in capsys.readouterr().out

    def test_stats_dump_json(self, prog_file, capsys):
        import json
        assert main(["stats", "dump", prog_file,
                     "--repeat", "2"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats_enabled"] is True
        assert doc["progs"][0]["run_cnt"] == 2
        assert doc["progs"][0]["framework"] == "ebpf"

    def test_stats_dump_prometheus(self, prog_file, capsys):
        from repro.telemetry import parse_prometheus
        assert main(["stats", "dump", prog_file, "--repeat", "3",
                     "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_prog_runs_total counter" in out
        parsed = parse_prometheus(out)
        key = ('repro_prog_runs_total{framework="ebpf",'
               f'prog="{prog_file}"}}')
        assert parsed[key] == 3

    def test_trace_log_jsonl(self, prog_file, capsys):
        from repro.telemetry import parse_jsonl
        assert main(["trace", "log", prog_file,
                     "--repeat", "2"]) == 0
        events = parse_jsonl(capsys.readouterr().out)
        kinds = [e.kind for e in events]
        assert kinds.count("load") == 1
        assert kinds.count("run") == 2

    def test_trace_log_kind_filter(self, prog_file, capsys):
        from repro.telemetry import parse_jsonl
        assert main(["trace", "log", prog_file, "--repeat", "3",
                     "--kind", "run", "--limit", "2"]) == 0
        events = parse_jsonl(capsys.readouterr().out)
        assert [e.kind for e in events] == ["run", "run"]


@pytest.fixture
def xdp_filter_file(tmp_path):
    """The canonical port filter in text assembly."""
    path = tmp_path / "filter.s"
    path.write_text("""
        r2 = *(u64 *)(r1 +8)
        r3 = *(u64 *)(r1 +16)
        r4 = r2
        r4 += 3
        if r4 > r3 goto drop
        r5 = *(u16 *)(r2 +0)
        if r5 == 23 goto drop
        r0 = 2
        exit
    drop:
        r0 = 1
        exit
    """)
    return str(path)


class TestNetCommands:
    def test_net_profiles(self, capsys):
        assert main(["net", "profiles"]) == 0
        out = capsys.readouterr().out
        for profile in ("uniform", "bursty", "adversarial",
                        "heavy_hitter"):
            assert profile in out
        assert "(4 profiles" in out

    def test_net_run_uniform(self, xdp_filter_file, capsys):
        assert main(["net", "run", xdp_filter_file,
                     "--count", "500", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "uniform x500 -> bpftool0" in out
        assert "engine=compiled" in out
        assert "drop=" in out and "pass=" in out
        assert "latency p50=" in out
        assert "signature" in out

    def test_net_run_adversarial_counts_rx_drops(
            self, xdp_filter_file, capsys):
        assert main(["net", "run", xdp_filter_file,
                     "--profile", "adversarial", "--count", "400",
                     "--engine", "interp"]) == 0
        out = capsys.readouterr().out
        assert "engine=interp" in out
        assert "oversize=" in out    # 512-byte frames exceed the MTU

    def test_net_run_seed_determinism(self, xdp_filter_file, capsys):
        assert main(["net", "run", xdp_filter_file,
                     "--count", "300", "--seed", "9"]) == 0
        first = capsys.readouterr().out
        assert main(["net", "run", xdp_filter_file,
                     "--count", "300", "--seed", "9"]) == 0
        assert capsys.readouterr().out == first

    def test_net_run_verification_failure(self, bad_prog_file,
                                          capsys):
        assert main(["net", "run", bad_prog_file]) == 1
        assert "VERIFICATION FAILED" in capsys.readouterr().out


@pytest.fixture
def helper_prog_file(tmp_path):
    """Calls a helper (an injection site), then returns 0."""
    path = tmp_path / "victim.s"
    path.write_text("""
        call helper#5
        r0 = 0
        exit
    """)
    return str(path)


class TestRecoveryCommands:
    def test_prog_health_clean_run(self, prog_file, capsys):
        assert main(["prog", "health", prog_file]) == 0
        out = capsys.readouterr().out
        assert "healthy" in out
        assert "kernel alive: yes" in out

    def test_prog_health_quarantines_under_faults(
            self, helper_prog_file, capsys):
        assert main(["prog", "health", helper_prog_file,
                     "--arm", "helper.*=prob:1.0=panic",
                     "--repeat", "5", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        # every oops was contained: the kernel survives
        assert "oopses contained, taint clear" in out

    def test_prog_quarantine(self, prog_file, capsys):
        assert main(["prog", "quarantine", prog_file]) == 0
        out = capsys.readouterr().out
        assert f"quarantined bpf:{prog_file}" in out
        assert "0xfffffffffffffff5" in out       # -EAGAIN refusal
        assert "refused while the breaker is open" in out

    def test_recover_status_audit_trail(self, helper_prog_file,
                                        capsys):
        assert main(["recover", "status", helper_prog_file,
                     "--arm", "helper.*=prob:1.0=panic",
                     "--repeat", "4", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "containment audit trail" in out
        assert "contain" in out
        assert "quarantine" in out
        assert "audit_signature=" in out
        assert "kernel alive: yes" in out

    def test_recover_status_without_faults(self, prog_file, capsys):
        assert main(["recover", "status", prog_file]) == 0
        out = capsys.readouterr().out
        assert "containments=0" in out
        assert "escalations=0" in out

    def test_bad_arm_spec_rejected(self, prog_file, capsys):
        assert main(["prog", "health", prog_file,
                     "--arm", "nonsense"]) == 2
