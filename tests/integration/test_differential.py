"""Differential property tests.

Two oracles:

1. **eBPF**: random straight-line ALU/stack programs are verified and
   executed; the result must match an independent Python model of the
   ISA semantics, and the kernel must stay healthy (verified
   straight-line code can't crash — that's the baseline the paper's
   escape hatches then violate).
2. **SafeLang**: random checked-arithmetic expressions; the VM either
   produces exactly the Python-model value or panics exactly when the
   model says the value leaves the type's range.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SafeExtensionFramework
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.isa import R0, R10
from repro.kernel import Kernel

U64 = (1 << 64) - 1

# (op name, model function) — ALU64 semantics on u64
_OPS = {
    "add": lambda a, b: (a + b) & U64,
    "sub": lambda a, b: (a - b) & U64,
    "mul": lambda a, b: (a * b) & U64,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "div": lambda a, b: a // b if b else 0,
    "mod": lambda a, b: a % b if b else a,
}

_imm = st.integers(-(1 << 31), (1 << 31) - 1)


@st.composite
def straight_line_ops(draw):
    """A short random sequence of (op, imm) steps."""
    count = draw(st.integers(1, 12))
    ops = []
    for __ in range(count):
        name = draw(st.sampled_from(sorted(_OPS)))
        imm = draw(_imm)
        ops.append((name, imm))
    return ops


def model_eval(start: int, ops) -> int:
    value = start & U64
    for name, imm in ops:
        operand = imm & U64  # sign-extended to 64 bits
        value = _OPS[name](value, operand)
    return value


class TestEbpfDifferential:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 1 << 30), straight_line_ops())
    def test_alu_matches_model(self, start, ops):
        kernel = Kernel()
        bpf = BpfSubsystem(kernel)
        asm = Asm().mov64_imm(R0, 0)
        asm.ld_imm64(R0, start)
        skipped = False
        for name, imm in ops:
            if name in ("div", "mod") and imm == 0:
                skipped = True   # verifier rejects imm-0 divisors
                continue
            asm.alu64_imm(name, R0, imm)
        asm.exit_()
        effective = [(n, i) for n, i in ops
                     if not (n in ("div", "mod") and i == 0)]
        prog = bpf.load_program(asm.program(), ProgType.KPROBE,
                                "diff")
        result = bpf.run_on_current_task(prog)
        assert result == model_eval(start, effective)
        assert kernel.healthy

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, U64), st.integers(-64, -1))
    def test_stack_roundtrip_any_value(self, value, slot8):
        offset = slot8 * 8
        kernel = Kernel()
        bpf = BpfSubsystem(kernel)
        asm = (Asm()
               .ld_imm64(R0, value)
               .stx(8, R10, offset, R0)
               .mov64_imm(R0, 0)
               .ldx(8, R0, R10, offset)
               .exit_())
        prog = bpf.load_program(asm.program(), ProgType.KPROBE,
                                "stackrt")
        assert bpf.run_on_current_task(prog) == value & U64

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, U64), st.integers(0, U64),
           st.sampled_from(["jeq", "jne", "jgt", "jge", "jlt", "jle",
                            "jsgt", "jsge", "jslt", "jsle"]))
    def test_branch_semantics_match_model(self, a, b, op):
        def s64(x):
            return x - (1 << 64) if x >> 63 else x
        model = {
            "jeq": a == b, "jne": a != b, "jgt": a > b, "jge": a >= b,
            "jlt": a < b, "jle": a <= b,
            "jsgt": s64(a) > s64(b), "jsge": s64(a) >= s64(b),
            "jslt": s64(a) < s64(b), "jsle": s64(a) <= s64(b),
        }[op]
        kernel = Kernel()
        bpf = BpfSubsystem(kernel)
        from repro.ebpf.isa import R2, R3
        asm = (Asm()
               .ld_imm64(R2, a)
               .ld_imm64(R3, b)
               .jmp_reg(op, R2, R3, "taken")
               .mov64_imm(R0, 0)
               .exit_()
               .label("taken")
               .mov64_imm(R0, 1)
               .exit_())
        prog = bpf.load_program(asm.program(), ProgType.KPROBE, "br")
        assert bpf.run_on_current_task(prog) == int(model)


# SafeLang checked arithmetic: expression trees over u64
@st.composite
def checked_expr(draw, depth=0):
    """Returns (source_fragment, model) where model is the value or
    the string "panic"."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(0, 10**6))
        return str(value), value
    op = draw(st.sampled_from(["+", "-", "*", "/", "%"]))
    left_src, left = draw(checked_expr(depth + 1))
    right_src, right = draw(checked_expr(depth + 1))
    src = f"({left_src} {op} {right_src})"
    if left == "panic" or right == "panic":
        return src, "panic"
    if op == "/":
        model = left // right if right != 0 else "panic"
    elif op == "%":
        model = left % right if right != 0 else "panic"
    elif op == "+":
        model = left + right
    elif op == "-":
        model = left - right
    else:
        model = left * right
    if model != "panic" and not 0 <= model <= U64:
        model = "panic"
    return src, model


class TestSafeLangDifferential:
    @settings(max_examples=50, deadline=None)
    @given(checked_expr())
    def test_checked_arithmetic_matches_model(self, case):
        source_fragment, model = case
        kernel = Kernel()
        framework = SafeExtensionFramework(kernel)
        source = (f"fn prog(ctx: XdpCtx) -> i64 {{ "
                  f"let x: u64 = {source_fragment}; "
                  f"return (x & 2147483647) as i64; }}")
        loaded = framework.install(source, "diff")
        result = framework.run_on_packet(loaded, b"x")
        if model == "panic":
            assert result.panicked, source_fragment
        else:
            assert not result.panicked, result.reason
            assert result.value == model & 2147483647
        assert kernel.healthy
