"""Attachment-point tests: both frameworks chained on one hook."""

import pytest

from repro.core import SafeExtensionFramework
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.isa import R0, R1, R2, R3, R6
from repro.kernel import Kernel
from repro.kernel.hooks import XDP_DROP, XDP_PASS


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def bpf(kernel):
    return BpfSubsystem(kernel)


@pytest.fixture
def fw(kernel):
    return SafeExtensionFramework(kernel)


def drop_if_first_byte(bpf, byte, name):
    """An XDP program dropping packets starting with ``byte``."""
    program = (Asm()
               .ldx(8, R2, R1, 8)
               .ldx(8, R3, R1, 16)
               .mov64_reg(R6, R2).alu64_imm("add", R6, 1)
               .jmp_reg("jgt", R6, R3, "pass")
               .ldx(1, R6, R2, 0)
               .jmp_imm("jeq", R6, byte, "drop")
               .label("pass")
               .mov64_imm(R0, 2)
               .exit_()
               .label("drop")
               .mov64_imm(R0, 1)
               .exit_()
               .program())
    return bpf.load_program(program, ProgType.XDP, name)


class TestHookManager:
    def test_attach_and_chain_order(self, kernel):
        kernel.hooks.attach("xdp", "b", lambda s: XDP_PASS,
                            priority=2)
        kernel.hooks.attach("xdp", "a", lambda s: XDP_PASS,
                            priority=1)
        assert [a.name for a in kernel.hooks.chain("xdp")] == \
            ["a", "b"]

    def test_detach(self, kernel):
        kernel.hooks.attach("xdp", "x", lambda s: XDP_PASS)
        assert kernel.hooks.detach("xdp", "x")
        assert not kernel.hooks.detach("xdp", "x")
        assert kernel.hooks.chain("xdp") == []

    def test_drop_short_circuits(self, kernel):
        seen = []

        def spy(name, verdict):
            def run(skb):
                seen.append(name)
                return verdict
            return run
        kernel.hooks.attach("xdp", "first", spy("first", XDP_DROP))
        kernel.hooks.attach("xdp", "second", spy("second", XDP_PASS))
        verdict, saw = kernel.hooks.deliver_packet(b"x")
        assert verdict == XDP_DROP
        assert saw == ["first"] and seen == ["first"]

    def test_pass_traverses_whole_chain(self, kernel):
        kernel.hooks.attach("xdp", "a", lambda s: XDP_PASS)
        kernel.hooks.attach("xdp", "b", lambda s: XDP_PASS)
        verdict, saw = kernel.hooks.deliver_packet(b"x")
        assert verdict == XDP_PASS and saw == ["a", "b"]

    def test_dispatch_counter(self, kernel):
        kernel.hooks.deliver_packet(b"x")
        kernel.hooks.deliver_packet(b"y")
        assert kernel.hooks.dispatched["xdp"] == 2

    def test_attachment_logged(self, kernel):
        kernel.hooks.attach("xdp", "logged", lambda s: XDP_PASS)
        assert kernel.log.grep("attached logged to xdp")


class TestMixedFrameworkChain:
    def test_ebpf_and_safelang_share_the_xdp_hook(self, kernel, bpf,
                                                  fw):
        """The migration story: an eBPF firewall in front, a SafeLang
        policy behind it, one packet path."""
        front = drop_if_first_byte(bpf, ord("A"), "front")
        bpf.attach_xdp(front, priority=0)

        behind = fw.install("""
        fn prog(ctx: XdpCtx) -> i64 {
            match ctx.load_u8(0) {
                Some(b) => { if b == 66 { return 1; } },   // 'B'
                None => { },
            }
            return 2;
        }
        """, "behind")
        fw.attach_xdp(behind, priority=1)

        assert kernel.hooks.deliver_packet(b"Attack")[0] == XDP_DROP
        assert kernel.hooks.deliver_packet(b"Bad")[0] == XDP_DROP
        assert kernel.hooks.deliver_packet(b"Clean")[0] == XDP_PASS

        # the eBPF program dropped 'A' before SafeLang ever saw it
        verdict, saw = kernel.hooks.deliver_packet(b"Attack2")
        assert saw == ["bpf:front"]
        verdict, saw = kernel.hooks.deliver_packet(b"Benign")
        assert saw == ["bpf:front", "safelang:behind"]

    def test_trace_hook_runs_everyone(self, kernel, bpf, fw):
        prog = bpf.load_program(
            Asm().mov64_imm(R0, 7).exit_().program(),
            ProgType.KPROBE, "t7")
        bpf.attach_trace(prog)
        ext = fw.install(
            "fn prog(ctx: XdpCtx) -> i64 { return 9; }", "t9")
        fw.attach_trace(ext)
        results = kernel.hooks.fire_trace()
        assert ("bpf:t7", 7) in results
        assert ("safelang:t9", 9) in results

    def test_kernel_survives_mixed_chain_soak(self, kernel, bpf, fw):
        bpf.attach_xdp(drop_if_first_byte(bpf, ord("X"), "x"), 0)
        ext = fw.install(
            "fn prog(ctx: XdpCtx) -> i64 { return 2; }", "passer")
        fw.attach_xdp(ext, 1)
        for index in range(50):
            payload = bytes([index % 256]) + b"payload"
            kernel.hooks.deliver_packet(payload)
        assert kernel.healthy
        assert not kernel.rcu.read_lock_held
