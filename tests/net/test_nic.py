"""The simulated NIC: frames, steering, queues, ingress failpoints."""

import pytest

from repro.errors import KernelOops
from repro.faultinject.plane import FaultAction, NthHit, Probability
from repro.kernel import Kernel
from repro.net.nic import RxQueue, SimulatedNic, XdpFrame


def make_packet(port, src, body=b"x" * 8):
    import struct
    return struct.pack("<HB", port, src) + body


class TestXdpFrame:
    def test_fill_writes_ctx_and_data(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        frame = XdpFrame(kernel, mtu=64)
        frame.fill(b"hello", rx_ns=123)
        ctx = kernel.mem.read(frame.ctx_addr, 32)
        assert int.from_bytes(ctx[0:4], "little") == 5
        data = int.from_bytes(ctx[8:16], "little")
        data_end = int.from_bytes(ctx[16:24], "little")
        assert data == frame.data_alloc.base
        assert data_end - data == 5
        assert frame.payload() == b"hello"
        assert frame.rx_ns == 123
        frame.free()

    def test_reuse_never_allocates(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        frame = XdpFrame(kernel, mtu=64)
        allocs_before = len(kernel.mem.live_allocations())
        for i in range(50):
            frame.fill(bytes([i]) * (i % 60 + 1), rx_ns=i)
        assert len(kernel.mem.live_allocations()) == allocs_before
        assert frame.payload() == bytes([49]) * 50
        frame.free()


class TestSteering:
    def test_same_source_same_queue(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        nic = SimulatedNic(kernel, 1, nqueues=4)
        for __ in range(12):
            assert nic.receive(make_packet(80, 5))
        populated = [q for q in nic.queues if len(q)]
        assert len(populated) == 1
        assert populated[0].cpu_id == 5 % 4
        nic.shutdown()

    def test_per_source_order_preserved(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        nic = SimulatedNic(kernel, 1, nqueues=2)
        for i in range(6):
            nic.receive(make_packet(80, 3, bytes([i])))
        queue = nic.queues[3 % 2]
        bodies = [payload[3] for payload, __ in queue.pending]
        assert bodies == sorted(bodies)
        nic.shutdown()

    def test_short_packet_lands_on_queue_zero(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        nic = SimulatedNic(kernel, 1, nqueues=4)
        assert nic.receive(b"\x01")
        assert len(nic.queues[0]) == 1
        nic.shutdown()


class TestDrops:
    def test_oversize_dropped_and_counted(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        nic = SimulatedNic(kernel, 1, mtu=16)
        assert not nic.receive(b"y" * 17)
        assert nic.rx_drops == {"oversize": 1}
        assert nic.rx_packets == 0
        nic.shutdown()

    def test_queue_overflow_dropped_and_counted(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        nic = SimulatedNic(kernel, 1, nqueues=1, queue_depth=3)
        results = [nic.receive(make_packet(80, 0)) for __ in range(5)]
        assert results == [True] * 3 + [False] * 2
        assert nic.rx_drops["queue_overflow"] == 2
        assert nic.queues[0].overflows == 2
        nic.shutdown()

    def test_nic_rx_failpoint_drops(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        nic = SimulatedNic(kernel, 1)
        kernel.faults.enable(7)
        kernel.faults.arm("net.nic.rx", NthHit(2),
                          FaultAction.err(12))
        assert nic.receive(make_packet(80, 0))
        assert not nic.receive(make_packet(80, 0))
        assert nic.rx_drops == {"nic_drop": 1}
        nic.shutdown()

    def test_queue_enqueue_failpoint_counts_overflow(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        nic = SimulatedNic(kernel, 1, nqueues=1)
        kernel.faults.enable(7)
        kernel.faults.arm("net.queue.enqueue", Probability(1.0),
                          FaultAction.err(28))
        assert not nic.receive(make_packet(80, 0))
        assert nic.rx_drops == {"queue_overflow": 1}
        nic.shutdown()

    @pytest.mark.dirty_kernel
    def test_rx_panic_goes_through_official_path(self):
        kernel = Kernel()
        nic = SimulatedNic(kernel, 1)
        kernel.faults.enable(7)
        kernel.faults.arm("net.nic.rx", Probability(1.0),
                          FaultAction.panic())
        with pytest.raises(KernelOops):
            nic.receive(make_packet(80, 0))
        assert kernel.log.oopses
        nic.shutdown()


class TestCounters:
    def test_rx_tx_accounting(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        nic = SimulatedNic(kernel, 1)
        nic.receive(make_packet(80, 0))
        nic.capture_tx = []
        nic.transmit(b"abcd")
        assert nic.rx_packets == 1
        assert nic.tx_packets == 1
        assert nic.tx_bytes == 4
        assert nic.capture_tx == [b"abcd"]
        assert nic.pending() == 1
        nic.shutdown()

    def test_telemetry_sees_rx_drops(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        nic = SimulatedNic(kernel, 1, mtu=4, name="tel0")
        nic.receive(b"toolong")
        family = kernel.telemetry.registry.get(
            "repro_net_rx_drops_total")
        assert family.labels("tel0", "oversize").value == 1
        nic.shutdown()


class TestValidation:
    def test_bad_ifindex_rejected(self):
        with pytest.raises(ValueError):
            SimulatedNic(Kernel(), 0)

    def test_bad_queue_count_rejected(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            SimulatedNic(kernel, 1, nqueues=len(kernel.cpus) + 1)

    def test_rxqueue_len(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        queue = RxQueue(kernel, 0, depth=4, mtu=32)
        assert len(queue) == 0
        queue.enqueue(b"p", 0)
        assert len(queue) == 1
        queue.frame.free()
