"""Data-plane tests: NIC, pipeline, load generator, differential."""
