"""The seeded load generator: determinism, profiles, clock motion."""

import pytest

from repro.kernel import Kernel
from repro.net import LoadGen, PROFILES, SimulatedNic
from repro.net.loadgen import BLOCKED_PORT, HEADER


def materialize(profile, seed, count=300):
    kernel = Kernel()
    gen = LoadGen(kernel, profile, seed=seed)
    packets = list(gen.packets(count))
    return packets, kernel.clock.now_ns


class TestDeterminism:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_same_seed_same_stream(self, profile):
        first, clock_a = materialize(profile, seed=7)
        second, clock_b = materialize(profile, seed=7)
        assert first == second
        assert clock_a == clock_b

    def test_different_seed_different_stream(self):
        first, __ = materialize("uniform", seed=1)
        second, __ = materialize("uniform", seed=2)
        assert first != second

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            LoadGen(Kernel(), "tsunami")


class TestClock:
    def test_packets_advance_virtual_clock(self):
        kernel = Kernel()
        gen = LoadGen(kernel, "uniform", seed=0)
        before = kernel.clock.now_ns
        list(gen.packets(10))
        assert kernel.clock.now_ns > before

    def test_bursty_has_wider_gap_spread_than_uniform(self):
        __, uniform_clock = materialize("bursty", seed=3)
        # bursts compress intra-burst gaps but idle periods dominate:
        # total elapsed time far exceeds the uniform stream's
        __, steady_clock = materialize("uniform", seed=3)
        assert uniform_clock > steady_clock


class TestProfiles:
    def test_uniform_is_wellformed(self):
        packets, __ = materialize("uniform", seed=5)
        assert all(len(p) >= HEADER.size for p in packets)
        ports = {HEADER.unpack_from(p)[0] for p in packets}
        assert BLOCKED_PORT in ports
        assert len(ports) > 1

    def test_adversarial_emits_malformed_and_oversize(self):
        packets, __ = materialize("adversarial", seed=5, count=600)
        truncated = [p for p in packets if len(p) < HEADER.size]
        oversize = [p for p in packets if len(p) > 256]
        assert truncated
        assert oversize

    def test_heavy_hitter_skews_to_one_source(self):
        packets, __ = materialize("heavy_hitter", seed=5, count=500)
        sources = [HEADER.unpack_from(p)[1] for p in packets]
        top = max(set(sources), key=sources.count)
        assert top == 3
        assert sources.count(top) / len(sources) > 0.6


class TestDrive:
    def test_drive_reports_offered_accepted_processed(self, leakcheck):
        kernel = Kernel()
        leakcheck(kernel)
        nic = SimulatedNic(kernel, 1, queue_depth=8)
        gen = LoadGen(kernel, "uniform", seed=0)
        stats = gen.drive(nic, 200)
        assert stats["offered"] == 200
        # no plane given: nothing polls the queues, so they overflow
        assert stats["accepted"] < stats["offered"]
        assert stats["processed"] == 0
        assert stats["accepted"] == \
            stats["offered"] - sum(nic.rx_drops.values())
        nic.shutdown()
