"""Cross-engine data-plane parity.

The same seeded traffic through interp / fast / compiled must yield
identical verdict counts, identical virtual-clock totals, and
byte-identical ringbuf contents.  Program execution is the only thing
that advances the clock per packet, and the engines are pinned to
advance it identically — so the whole plane (latency histograms
included) must agree bit-for-bit, which the signature checks.
"""

import pytest

from repro.ebpf import BpfSubsystem, ProgType
from repro.kernel import Kernel
from repro.net import DataPlane, LoadGen
from repro.net import programs as xdp_programs

ENGINES = ("interp", "fast", "compiled")


def run_plane(engine, profile, seed, count=1500):
    """One seeded run: returns (summary, drained payloads, signature)."""
    kernel = Kernel()
    bpf = BpfSubsystem(kernel, engine=engine)
    plane = DataPlane(kernel, bpf, ringbuf_bytes=1 << 16)
    nic = plane.create_nic(1, "diff0", queue_depth=256)
    prog = bpf.load_program(xdp_programs.port_filter_prog(),
                            ProgType.XDP, "filter")
    plane.attach(prog, nic)
    gen = LoadGen(kernel, profile, seed=seed)
    gen.drive(nic, count, plane=plane, poll_every=64)
    plane.process_all()
    summary = plane.summary()
    signature = plane.signature()
    drained = plane.drain()
    plane.shutdown()
    return summary, drained, signature


@pytest.mark.parametrize("profile", ("uniform", "adversarial"))
def test_engines_agree_end_to_end(profile):
    """Verdicts, clock, ringbuf bytes and full signature all match."""
    results = {engine: run_plane(engine, profile, seed=11)
               for engine in ENGINES}
    baseline = results["interp"]
    for engine in ("fast", "compiled"):
        summary, drained, signature = results[engine]
        assert summary["verdicts"] == baseline[0]["verdicts"], engine
        assert summary["clock_ns"] == baseline[0]["clock_ns"], engine
        assert drained == baseline[1], engine
        assert signature == baseline[2], engine


def test_redirect_parity_across_engines():
    """The devmap/redirect path agrees across engines too."""
    signatures = set()
    tx_counts = set()
    for engine in ENGINES:
        kernel = Kernel()
        bpf = BpfSubsystem(kernel, engine=engine)
        plane = DataPlane(kernel, bpf, ringbuf_bytes=1 << 14)
        nic = plane.create_nic(1, "left0", queue_depth=256)
        sink = plane.create_nic(2, "right0")
        devmap = bpf.create_map("devmap", max_entries=4)
        devmap.set_target(3, sink.ifindex)
        prog = bpf.load_program(
            xdp_programs.redirect_by_source_prog(devmap.map_fd),
            ProgType.XDP, "redirect")
        plane.attach(prog, nic)
        gen = LoadGen(kernel, "heavy_hitter", seed=29)
        gen.drive(nic, 800, plane=plane, poll_every=64)
        plane.process_all()
        signatures.add(plane.signature())
        tx_counts.add(sink.tx_packets)
        assert plane.verdicts["redirect"] > 0
        plane.shutdown()
    assert len(signatures) == 1
    assert len(tx_counts) == 1


def test_repeat_run_bit_identical():
    """Same engine, same seed, twice: identical signature."""
    first = run_plane("compiled", "bursty", seed=4, count=900)
    second = run_plane("compiled", "bursty", seed=4, count=900)
    assert first[2] == second[2]
