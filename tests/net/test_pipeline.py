"""The batched XDP pipeline: attachment, verdict routing, delivery."""

import pytest

from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.isa import R0
from repro.errors import BpfRuntimeError
from repro.faultinject.plane import FaultAction, Probability
from repro.kernel import Kernel
from repro.net import DataPlane, XDP_DROP, XDP_PASS
from repro.net import programs as xdp_programs
from repro.net.loadgen import HEADER


def make_packet(port, src, body=b"payload!"):
    return HEADER.pack(port, src) + body


@pytest.fixture
def stack(leakcheck):
    """A kernel + subsystem + plane + one NIC, compiled tier."""
    kernel = Kernel()
    leakcheck(kernel)
    bpf = BpfSubsystem(kernel, engine="compiled")
    plane = DataPlane(kernel, bpf, ringbuf_bytes=1 << 14)
    nic = plane.create_nic(1, "test0")
    return kernel, bpf, plane, nic


class TestAttachment:
    def test_non_xdp_program_rejected(self, stack):
        kernel, bpf, plane, nic = stack
        prog = bpf.load_program(
            Asm().mov64_imm(R0, 0).exit_().program(),
            ProgType.KPROBE, "tracer")
        with pytest.raises(BpfRuntimeError, match="not xdp"):
            plane.attach(prog, nic)

    def test_attach_registers_on_hook_chain(self, stack):
        kernel, bpf, plane, nic = stack
        prog = bpf.load_program(xdp_programs.pass_all_prog(),
                                ProgType.XDP, "passer")
        hook = plane.attach(prog, nic)
        names = [a.name for a in kernel.hooks.chain("xdp")]
        assert hook.hook_name in names
        hook.detach()
        assert hook.hook_name not in \
            [a.name for a in kernel.hooks.chain("xdp")]
        assert nic.ifindex not in plane.hooks

    def test_attach_via_subsystem(self, stack):
        kernel, bpf, plane, nic = stack
        prog = bpf.load_program(xdp_programs.pass_all_prog(),
                                ProgType.XDP, "passer")
        hook = bpf.attach_nic(prog, plane, nic)
        assert plane.hooks[nic.ifindex] is hook

    def test_poll_without_attachment_raises(self, stack):
        kernel, bpf, plane, nic = stack
        with pytest.raises(BpfRuntimeError, match="no program"):
            plane.poll(nic)


class TestVerdicts:
    def test_drop_and_pass_routed(self, stack):
        kernel, bpf, plane, nic = stack
        prog = bpf.load_program(xdp_programs.port_filter_prog(),
                                ProgType.XDP, "filter")
        plane.attach(prog, nic)
        for __ in range(3):
            nic.receive(make_packet(23, 0))
        for __ in range(5):
            nic.receive(make_packet(80, 0))
        assert plane.process_all() == 8
        assert plane.verdicts["drop"] == 3
        assert plane.verdicts["pass"] == 5
        delivered = plane.drain()
        assert len(delivered) == 5
        assert all(p == make_packet(80, 0) for p in delivered)

    def test_tx_bounces_rewritten_packet(self, stack):
        kernel, bpf, plane, nic = stack
        nic.capture_tx = []
        prog = bpf.load_program(xdp_programs.rewriter_prog(),
                                ProgType.XDP, "rewriter")
        plane.attach(prog, nic)
        nic.receive(make_packet(80, 0x0A))
        plane.process_all()
        assert plane.verdicts["tx"] == 1
        assert nic.tx_packets == 1
        # source byte rewritten in kernel memory, visible at egress
        assert nic.capture_tx[0][2] == 0x0A ^ 0xFF

    def test_redirect_reaches_target_nic(self, stack):
        kernel, bpf, plane, nic = stack
        sink = plane.create_nic(2, "sink0")
        sink.capture_tx = []
        devmap = bpf.create_map("devmap", max_entries=4)
        devmap.set_target(1, sink.ifindex)
        prog = bpf.load_program(
            xdp_programs.redirect_by_source_prog(devmap.map_fd),
            ProgType.XDP, "redirect")
        plane.attach(prog, nic)
        nic.receive(make_packet(80, 1))     # slot 1 -> sink
        nic.receive(make_packet(80, 2))     # slot 2 empty -> drop
        plane.process_all()
        assert plane.verdicts["redirect"] == 1
        assert plane.verdicts["drop"] == 1
        assert sink.tx_packets == 1
        assert sink.capture_tx == [make_packet(80, 1)]

    def test_vanished_target_counts_redirect_gone(self, stack):
        kernel, bpf, plane, nic = stack
        devmap = bpf.create_map("devmap", max_entries=4)
        devmap.set_target(1, 99)            # never registered
        prog = bpf.load_program(
            xdp_programs.redirect_by_source_prog(devmap.map_fd),
            ProgType.XDP, "redirect")
        plane.attach(prog, nic)
        nic.receive(make_packet(80, 1))
        plane.process_all()
        assert plane.verdicts["redirect"] == 1
        assert nic.rx_drops["redirect_gone"] == 1

    def test_redirect_failpoint_severs_target(self, stack):
        kernel, bpf, plane, nic = stack
        sink = plane.create_nic(2, "sink0")
        devmap = bpf.create_map("devmap", max_entries=4)
        devmap.set_target(1, sink.ifindex)
        prog = bpf.load_program(
            xdp_programs.redirect_by_source_prog(devmap.map_fd),
            ProgType.XDP, "redirect")
        plane.attach(prog, nic)
        kernel.faults.enable(3)
        kernel.faults.arm("net.redirect", Probability(1.0),
                          FaultAction.err(2))
        nic.receive(make_packet(80, 1))
        plane.process_all()
        assert sink.tx_packets == 0
        assert nic.rx_drops["redirect_gone"] == 1


class TestDelivery:
    def test_pass_lands_on_polling_cpus_ring(self, stack):
        kernel, bpf, plane, nic = stack
        prog = bpf.load_program(xdp_programs.pass_all_prog(),
                                ProgType.XDP, "passer")
        plane.attach(prog, nic)
        src = 3
        nic.receive(make_packet(80, src))
        plane.process_all()
        cpu = src % len(nic.queues)
        assert plane.drain(cpu) == [make_packet(80, src)]
        assert plane.drain() == []

    def test_full_ring_counts_exact_drops(self, stack):
        kernel, bpf, plane, nic = stack
        prog = bpf.load_program(xdp_programs.pass_all_prog(),
                                ProgType.XDP, "passer")
        plane.attach(prog, nic)
        # all to one source -> one CPU's ring; make it tiny
        cpu = 0 % len(nic.queues)
        plane.ringbufs[cpu].capacity_bytes = 3 * 11
        for __ in range(10):
            nic.receive(make_packet(80, 0))
        plane.process_all()
        assert plane.verdicts["pass"] == 10
        assert plane.delivery_drops == 7
        assert len(plane.drain()) == 3

    def test_latency_histogram_observes_each_packet(self, stack):
        kernel, bpf, plane, nic = stack
        prog = bpf.load_program(xdp_programs.port_filter_prog(),
                                ProgType.XDP, "filter")
        plane.attach(prog, nic)
        for i in range(4):
            nic.receive(make_packet(80, i))
            kernel.clock.advance(500)
        plane.process_all()
        hist = kernel.telemetry.net_latency_histogram("test0")
        assert hist.count == 4
        assert hist.total > 0
        assert hist.quantile(0.99) >= hist.quantile(0.5)


class TestSupervisedMode:
    def test_processing_survives_recovery_enabled(self, stack):
        kernel, bpf, plane, nic = stack
        kernel.enable_recovery()
        prog = bpf.load_program(xdp_programs.port_filter_prog(),
                                ProgType.XDP, "filter")
        plane.attach(prog, nic)
        for __ in range(6):
            nic.receive(make_packet(23, 0))
        for __ in range(6):
            nic.receive(make_packet(443, 1))
        assert plane.process_all() == 12
        assert plane.verdicts == {
            "aborted": 0, "drop": 6, "pass": 6, "tx": 0,
            "redirect": 0}


class TestSummary:
    def test_summary_shape_and_signature_stability(self, stack):
        kernel, bpf, plane, nic = stack
        prog = bpf.load_program(xdp_programs.port_filter_prog(),
                                ProgType.XDP, "filter")
        plane.attach(prog, nic)
        nic.receive(make_packet(23, 0))
        nic.receive(make_packet(80, 1))
        plane.process_all()
        summary = plane.summary()
        assert summary["processed"] == 2
        assert summary["verdicts"]["drop"] == 1
        assert summary["nics"]["test0"]["rx_packets"] == 2
        # signature is a pure function of plane state
        assert plane.signature() == plane.signature()
        before = plane.signature()
        nic.receive(make_packet(80, 1))
        plane.process_all()
        assert plane.signature() != before

    def test_shutdown_detaches_and_frees(self, stack):
        kernel, bpf, plane, nic = stack
        prog = bpf.load_program(xdp_programs.pass_all_prog(),
                                ProgType.XDP, "passer")
        plane.attach(prog, nic)
        plane.shutdown()
        assert not plane.hooks
        assert not kernel.hooks.chain("xdp")

    def test_duplicate_ifindex_rejected(self, stack):
        kernel, bpf, plane, nic = stack
        with pytest.raises(BpfRuntimeError, match="already"):
            plane.create_nic(1, "dup0")
