"""Data-plane packet-rate benchmarks (``make bench-net``).

Pushes seeded load-generator traffic through the batched XDP pipeline
on every execution tier and writes per-tier packets/sec plus virtual
tail latencies to ``BENCH_dataplane.json`` at the repo root.

Methodology: packets are pre-staged onto the NIC's RX queues in
chunks (generation and enqueue are untimed — they are identical work
on every tier) and only :meth:`DataPlane.process_all` is inside the
timer, so the measured number is the pipeline's processing rate: the
batch_runner critical section, the per-packet frame fill, the program,
and verdict routing.  Every tier runs the **same** leg **twice**
(2x175k packets per tier — 1.05M offered in a full run): equal
counts matter because the simulated address space indexes every
allocation it has ever seen (UAF detection), so per-packet cost
rises with run length and a longer leg would be penalized; the
repeat both checks seeded bit-identity per tier and lets the pps
gates use the best of the two runs, which squeezes out scheduler
noise that a single multi-second leg is exposed to.

Gates:

* the compiled tier is strictly the fastest (best-of-two pps);
* for every tier, the two seeded runs produce bit-identical plane
  signatures (verdicts, clock, ring contents, latency histograms);
* the fast/interp and compiled/interp pps ratios may not drop more
  than 20% below ``benchmarks/dataplane_baseline.json`` — absolute
  pps varies with the machine, the ratios do not.

``REPRO_BENCH_SMOKE=1`` (CI) shrinks every leg to 2x4k packets and
skips the >= 1M floor and the baseline-ratio gate — the structural
gates (ordering, determinism) still run.

Not collected by the tier-1 suite; run via ``make bench-net`` or
``PYTHONPATH=src python -m pytest benchmarks/test_bench_dataplane.py``.
"""

import gc
import json
import os
import time
from pathlib import Path

import pytest

from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.kernel import Kernel
from repro.net import DataPlane, LoadGen
from repro.net.programs import port_filter_prog

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_dataplane.json"
BASELINE_PATH = Path(__file__).resolve().parent / \
    "dataplane_baseline.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CHUNK = 2048
SEED = 1
#: per-run leg size; every tier runs the same leg twice
LEG = 175_000 if not SMOKE else 4_000
COUNTS = {"interp": LEG, "fast": LEG, "compiled": LEG}


def measure_tier(engine, count):
    """Drive ``count`` seeded packets through one tier; returns pps,
    verdicts, virtual-latency percentiles and the plane signature."""
    # collect the previous leg's kernel (hundreds of thousands of
    # tracked allocations) so its gen-2 sweeps don't land inside this
    # leg's timed sections
    gc.collect()
    kernel = Kernel()
    bpf = BpfSubsystem(kernel, engine=engine)
    plane = DataPlane(kernel, bpf)
    nic = plane.create_nic(1, "bench0", queue_depth=CHUNK)
    prog = bpf.load_program(port_filter_prog(), ProgType.XDP,
                            "bench_filter")
    plane.attach(prog, nic)
    gen = LoadGen(kernel, "uniform", seed=SEED)

    busy = 0.0
    processed = 0
    staged = []
    for payload in gen.packets(count):
        staged.append(payload)
        if len(staged) == CHUNK:
            for packet in staged:
                nic.receive(packet)
            staged.clear()
            start = time.perf_counter()
            processed += plane.process_all()
            busy += time.perf_counter() - start
            plane.drain()
    for packet in staged:
        nic.receive(packet)
    start = time.perf_counter()
    processed += plane.process_all()
    busy += time.perf_counter() - start

    hist = kernel.telemetry.net_latency_histogram(nic.name)
    signature = plane.signature()
    result = {
        "engine": engine,
        "offered": count,
        "processed": processed,
        "pps": processed / busy,
        "seconds": busy,
        "verdicts": {name: value
                     for name, value in sorted(plane.verdicts.items())
                     if value},
        "latency_ns": {"p50": hist.quantile(0.5),
                       "p99": hist.quantile(0.99),
                       "p999": hist.quantile(0.999),
                       "mean": hist.mean},
        "signature": signature,
    }
    plane.shutdown()
    return result


@pytest.fixture(scope="module")
def results():
    """Run every tier twice, persist the JSON."""
    res = {"smoke": SMOKE}
    for engine, count in COUNTS.items():
        runs = [measure_tier(engine, count) for __ in range(2)]
        res[engine] = {
            "runs": runs,
            "pps": max(run["pps"] for run in runs),
            "offered": sum(run["offered"] for run in runs),
            "latency_ns": runs[0]["latency_ns"],
            "signatures_identical":
                runs[0]["signature"] == runs[1]["signature"],
        }
    res["total_offered"] = sum(res[e]["offered"] for e in COUNTS)
    res["fast_over_interp"] = (res["fast"]["pps"]
                               / res["interp"]["pps"])
    res["compiled_over_interp"] = (res["compiled"]["pps"]
                                   / res["interp"]["pps"])
    RESULTS_PATH.write_text(json.dumps(res, indent=2) + "\n")
    return res


class TestDataPlaneBench:
    def test_full_run_offers_a_million_packets(self, results):
        """The acceptance floor: a full (non-smoke) bench pushes at
        least 1M packets through the plane across its legs."""
        if SMOKE:
            pytest.skip("smoke mode: reduced packet counts")
        assert results["total_offered"] >= 1_000_000

    def test_every_packet_reached_a_verdict(self, results):
        for engine in ("interp", "fast", "compiled"):
            for run in results[engine]["runs"]:
                assert run["processed"] == run["offered"]

    def test_compiled_is_strictly_fastest(self, results):
        """The whole point of the compiled tier on the hot path."""
        compiled = results["compiled"]["pps"]
        assert compiled > results["fast"]["pps"]
        assert compiled > results["interp"]["pps"]

    def test_seeded_repeat_is_bit_identical(self, results):
        """Same seed, same count, same tier: the full plane signature
        (verdicts, clock, rings, histograms) must not move a bit."""
        for engine in ("interp", "fast", "compiled"):
            assert results[engine]["signatures_identical"], engine

    def test_latency_percentiles_reported_and_ordered(self, results):
        for engine in ("interp", "fast", "compiled"):
            latency = results[engine]["latency_ns"]
            assert 0 < latency["p50"] <= latency["p99"] \
                <= latency["p999"]

    def test_no_regression_vs_baseline(self, results):
        """Refuse >20% regression of either pps ratio against the
        committed baseline."""
        if SMOKE:
            pytest.skip("smoke mode: ratios too noisy at 8k packets")
        baseline = json.loads(BASELINE_PATH.read_text())
        for key in ("fast_over_interp", "compiled_over_interp"):
            floor = 0.8 * baseline[key]
            assert results[key] >= floor, (
                f"{key} {results[key]:.2f}x regressed below "
                f"{floor:.2f}x (80% of baseline "
                f"{baseline[key]:.2f}x)")

    def test_results_file_written(self, results):
        written = json.loads(RESULTS_PATH.read_text())
        assert written["compiled"]["pps"] == results["compiled"]["pps"]
        assert written["total_offered"] == results["total_offered"]
