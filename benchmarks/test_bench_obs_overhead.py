"""Observability overhead benchmark (``make bench``).

Measures what the telemetry subsystem costs on the dispatch hot path,
in both of its states:

* **stats off** (the default, ``kernel.bpf_stats_enabled=0``): the
  fast-path engine pays a single attribute test per invocation.  The
  regression gate holds this path to within 5% of the committed
  baseline ratio — landing telemetry must not tax users who never
  turn it on.
* **stats on**: per-run accounting (run_cnt, run_time_ns, insns,
  trace event) is amortised over the whole program run, so even the
  enabled path must stay within a loose factor of the disabled one.

As with the throughput bench, gates compare *ratios* measured on the
same host in the same run (stats-off fast / stats-off slow), never
absolute insns/sec, so they are machine-independent.  Results land in
``BENCH_obs_overhead.json`` at the repo root.
"""

import json
import time
from pathlib import Path

import pytest

from repro.ebpf.asm import Asm
from repro.ebpf.isa import R0, R2
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.kernel import Kernel

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_obs_overhead.json"
BASELINE_PATH = Path(__file__).resolve().parent / \
    "obs_overhead_baseline.json"

MIN_SECONDS = 0.4
LOOP_ITERS = 2048


def alu_loop_prog():
    """Same pure-dispatch countdown shape as the throughput bench."""
    return (Asm()
            .mov64_imm(R0, 0)
            .mov64_imm(R2, LOOP_ITERS)
            .label("loop")
            .alu64_imm("add", R0, 3)
            .alu64_imm("xor", R0, 7)
            .alu64_imm("sub", R2, 1)
            .jmp_imm("jsgt", R2, 0, "loop")
            .exit_()
            .program())


def measure(fast, stats_enabled):
    """Insns/sec for one engine with telemetry on or off."""
    kernel = Kernel()
    if stats_enabled:
        kernel.telemetry.enable()
    bpf = BpfSubsystem(kernel, fast_path=fast)
    prog = bpf.load_program(alu_loop_prog(), ProgType.KPROBE, "bench")
    bpf.run_on_current_task(prog)       # warm-up
    executed_before = bpf.vm.insns_executed
    runs = 0
    start = time.perf_counter()
    while True:
        bpf.run_on_current_task(prog)
        runs += 1
        elapsed = time.perf_counter() - start
        if elapsed >= MIN_SECONDS and runs >= 3:
            break
    insns = bpf.vm.insns_executed - executed_before
    return {"insns_per_sec": insns / elapsed,
            "runs": runs,
            "seconds": elapsed,
            "run_cnt_recorded":
                kernel.telemetry.prog("ebpf", "bench").run_cnt}


@pytest.fixture(scope="module")
def results():
    """Measure all four corners once, persist the JSON."""
    fast_off = measure(fast=True, stats_enabled=False)
    fast_on = measure(fast=True, stats_enabled=True)
    slow_off = measure(fast=False, stats_enabled=False)
    res = {
        "fast_stats_off": fast_off,
        "fast_stats_on": fast_on,
        "slow_stats_off": slow_off,
        # the gated ratio: fast/slow with telemetry idle, comparable
        # with the committed baseline across hosts
        "stats_off_dispatch_speedup":
            fast_off["insns_per_sec"] / slow_off["insns_per_sec"],
        # what enabling stats costs on the fast path, as a fraction
        "stats_on_overhead":
            1 - fast_on["insns_per_sec"] / fast_off["insns_per_sec"],
    }
    RESULTS_PATH.write_text(json.dumps(res, indent=2) + "\n")
    return res


class TestObservabilityOverhead:
    def test_stats_off_records_nothing(self, results):
        """Sanity: with the toggle off no run stats accumulate; with
        it on every benchmark run is visible."""
        assert results["fast_stats_off"]["run_cnt_recorded"] == 0
        assert results["fast_stats_on"]["run_cnt_recorded"] == \
            results["fast_stats_on"]["runs"] + 1   # incl. warm-up

    def test_stats_off_no_regression_vs_baseline(self, results):
        """The <5% gate: telemetry idle must not erode the fast-path
        dispatch advantage below 95% of the committed baseline."""
        baseline = json.loads(BASELINE_PATH.read_text())
        floor = 0.95 * baseline["stats_off_dispatch_speedup"]
        speedup = results["stats_off_dispatch_speedup"]
        assert speedup >= floor, (
            f"stats-off dispatch speedup {speedup:.2f}x regressed "
            f"below {floor:.2f}x (95% of baseline "
            f"{baseline['stats_off_dispatch_speedup']:.2f}x)")

    def test_stats_on_overhead_bounded(self, results):
        """Enabling stats costs one accounting record per run,
        amortised over thousands of insns — it must never halve
        throughput."""
        assert results["stats_on_overhead"] < 0.5, (
            f"stats-on overhead "
            f"{results['stats_on_overhead']:.1%} is runaway")

    def test_results_file_written(self, results):
        written = json.loads(RESULTS_PATH.read_text())
        assert written["stats_off_dispatch_speedup"] == \
            results["stats_off_dispatch_speedup"]
