"""Figure 3 bench: per-helper call-graph measurement (249 BFS runs
over the ~20k-function synthetic kernel)."""

import pytest

from repro.ebpf.helpers.registry import build_default_registry
from repro.experiments import fig3_helper_complexity
from repro.kernel.funcdb import build_default_funcdb


@pytest.fixture(scope="module", autouse=True)
def warm_funcdb():
    """Build the synthetic kernel once, outside the timed region."""
    build_default_funcdb()
    build_default_registry()


def test_bench_fig3(benchmark):
    result = benchmark(fig3_helper_complexity.run)
    assert result.complexity.total == 249
    assert result.max_nodes == 4845
    assert result.pid_tgid_nodes == 0
    assert abs(result.frac_30_plus - 0.522) < 0.02
    assert abs(result.frac_500_plus - 0.345) < 0.02
    print()
    print(fig3_helper_complexity.render(result))


def test_bench_fig3_single_bfs_sys_bpf(benchmark):
    """The heaviest single traversal: bpf_sys_bpf's 4845-node closure."""
    from repro.analysis.callgraph import reachable_count
    db = build_default_funcdb()
    registry = build_default_registry()
    fn_ids = registry.attach_to_funcdb(db)
    count = benchmark(reachable_count, db, fn_ids["bpf_sys_bpf"])
    assert count == 4845
