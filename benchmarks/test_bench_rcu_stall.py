"""§2.2 termination bench: RCU stalls, linearity, the watchdog
contrast, and the watchdog-granularity ablation."""

from conftest import run_once

from repro.experiments import exp_rcu_stall


def test_bench_rcu_stall_experiment(benchmark):
    result = run_once(benchmark, lambda: exp_rcu_stall.run(
        sample_limit=32))
    assert result.max_fit_error < 0.15
    assert result.long_run_seconds >= 800
    assert 20 <= result.first_stall_after_s <= 22
    assert any(years >= 1e6 for __, years in result.projections)
    assert result.safelang_terminated
    assert result.safelang_stalls == 0
    print()
    print(exp_rcu_stall.render(result))


def test_bench_single_stall_run(benchmark):
    """Host cost of one depth-2 nested bpf_loop execution (weeks of
    virtual time via fast-forward)."""
    from repro.attacks import Outcome, build_corpus, run_case
    case = next(c for c in build_corpus()
                if c.case_id == "ebpf-rcu-stall")

    def run():
        return run_case(case)

    outcome = run_once(benchmark, run)
    assert outcome == Outcome.KERNEL_COMPROMISED


def test_bench_ablation_watchdog_budget(benchmark):
    """Ablation: watchdog budget controls how long a runaway SafeLang
    extension occupies the CPU before safe termination — runtime is
    proportional to the budget, never unbounded."""
    from repro.core import SafeExtensionFramework
    from repro.kernel import Kernel

    source = """
    fn prog(ctx: XdpCtx) -> i64 {
        let mut i: u64 = 0;
        while true { i = i + 1; if i == 0 { break; } }
        return 0;
    }
    """

    def measure(budget_ns):
        kernel = Kernel()
        framework = SafeExtensionFramework(
            kernel, watchdog_budget_ns=budget_ns)
        loaded = framework.install(source, "spin")
        start = kernel.clock.now_ns
        result = framework.run_on_packet(loaded, b"x")
        assert result.terminated
        return kernel.clock.now_ns - start

    def sweep():
        return [measure(budget) for budget in
                (10_000, 100_000, 1_000_000)]

    runtimes = run_once(benchmark, sweep)
    # each 10x budget buys ~10x runtime before the kill
    assert runtimes[0] < runtimes[1] < runtimes[2]
    assert 5 <= runtimes[1] / runtimes[0] <= 20
    assert 5 <= runtimes[2] / runtimes[1] <= 20
