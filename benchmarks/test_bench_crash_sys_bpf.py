"""§2.2 crash bench: verified program -> kernel oops, three ways."""

from conftest import run_once

from repro.attacks import Outcome
from repro.experiments import exp_crash_sys_bpf


def test_bench_crash_experiment(benchmark):
    result = run_once(benchmark, exp_crash_sys_bpf.run)
    assert result.reproduces_paper
    print()
    print(exp_crash_sys_bpf.render(result))


def test_bench_crash_attack_latency(benchmark):
    """Load-to-oops latency of the CVE-2022-2785 attack."""
    from repro.attacks import build_corpus, run_case
    case = next(c for c in build_corpus()
                if c.case_id == "ebpf-sys-bpf-crash")

    outcome = benchmark(run_case, case)
    assert outcome == Outcome.KERNEL_COMPROMISED


def test_bench_safe_wrapper_latency(benchmark):
    """Per-call cost of the sanitizing sys_bpf wrapper (the price of
    wrapping, paid in trusted code)."""
    from repro.core import SafeExtensionFramework
    from repro.ebpf.loader import BpfSubsystem
    from repro.kernel import Kernel

    kernel = Kernel()
    framework = SafeExtensionFramework(kernel)
    bpf = BpfSubsystem(kernel)
    hmap = bpf.create_map("hash", key_size=4, value_size=8,
                          max_entries=64)
    loaded = framework.install(
        "fn prog(ctx: XdpCtx) -> i64 { "
        "return sys_map_update(0, 1, 2); }",
        "wrapped", maps=[hmap])

    result = benchmark(framework.run_on_packet, loaded, b"x")
    assert result.value == 0
    assert kernel.healthy
