"""§4 bench: protection-key containment plus per-write overhead."""

from conftest import run_once

from repro.experiments import exp_mpk_protection


def test_bench_mpk_experiment(benchmark):
    result = run_once(benchmark, exp_mpk_protection.run)
    assert result.corrupted_without_keys
    assert result.fault_with_keys and result.pool_intact_with_keys
    print()
    print(exp_mpk_protection.render(result))


def test_bench_keyed_write(benchmark):
    """Raw cost of one key-checked kernel write."""
    from repro.core.runtime.mpk import MemoryProtectionKeys
    from repro.kernel import Kernel
    kernel = Kernel()
    MemoryProtectionKeys(kernel.mem)
    alloc = kernel.mem.kmalloc(64)

    benchmark(kernel.mem.write_u64, alloc.base, 7)
