"""Table 1 bench: the bug population plus the executable cross-check
(every modeled bug fired on a buggy kernel, silent when patched)."""

from conftest import run_once

from repro.experiments import table1_bug_stats


def test_bench_table1(benchmark):
    result = run_once(benchmark, table1_bug_stats.run)
    assert result.matches_paper
    assert result.all_demos_correct
    assert len(result.demo_outcomes) == 9
    print()
    print(table1_bug_stats.render(result))


def test_bench_table1_single_bug_demo(benchmark):
    """Cost of one end-to-end bug reproduction (CVE-2022-2785)."""
    from repro.ebpf.bugs import BugConfig
    from repro.experiments.bug_demos import fire_sys_bpf_null_union
    bugs = BugConfig()
    fired = benchmark(fire_sys_bpf_null_union, bugs)
    assert fired
