"""Figure 4 bench: helper-count growth series from the registry."""

from repro.experiments import fig4_helper_growth


def test_bench_fig4(benchmark):
    result = benchmark(fig4_helper_growth.run)
    assert result.count_at_518 == 249
    assert 35 <= result.mean_growth_per_two_years <= 75
    print()
    print(fig4_helper_growth.render(result))
