"""Interpreter throughput benchmarks (``make bench``).

Measures the predecoded fast path and the compiled tier against the
decode-per-step reference interpreter, plus cold-vs-cached program
load rates, and writes the results to ``BENCH_throughput.json`` at
the repo root.

The regression gate compares the *speedup ratios* (fast / slow and
compiled / slow on the same host, same run) against the committed
baseline in ``benchmarks/throughput_baseline.json`` — absolute
insns/sec varies with the machine, the ratios do not.  A drop of more
than 20% below a baseline ratio fails the run; the compiled tier
additionally carries an absolute floor of 8x (targeting 10x, the
ISSUE's acceptance bar).

Not collected by the tier-1 suite (pytest ``testpaths`` points at
``tests/``); run explicitly via ``make bench`` or
``PYTHONPATH=src python -m pytest benchmarks -q``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.ebpf.asm import Asm
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R10
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.kernel import Kernel

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_throughput.json"
BASELINE_PATH = Path(__file__).resolve().parent / \
    "throughput_baseline.json"

MIN_SECONDS = 0.4       # per measurement, enough to drown out noise
LOOP_ITERS = 2048


def alu_loop_prog():
    """ALU-heavy countdown loop: pure dispatch, no memory traffic."""
    return (Asm()
            .mov64_imm(R0, 0)
            .mov64_imm(R2, LOOP_ITERS)
            .label("loop")
            .alu64_imm("add", R0, 3)
            .alu64_imm("xor", R0, 7)
            .alu64_imm("sub", R2, 1)
            .jmp_imm("jsgt", R2, 0, "loop")
            .exit_()
            .program())


def mixed_loop_prog():
    """Loop mixing ALU, stack loads/stores and an atomic per round."""
    return (Asm()
            .st_imm(8, R10, -8, 0)
            .mov64_imm(R2, LOOP_ITERS)
            .label("loop")
            .mov64_imm(R3, 5)
            .atomic_op("add", 8, R10, -8, R3)
            .ldx(8, R0, R10, -8)
            .stx(8, R10, -16, R0)
            .alu64_imm("sub", R2, 1)
            .jmp_imm("jsgt", R2, 0, "loop")
            .ldx(8, R0, R10, -16)
            .exit_()
            .program())


def measure_insns_per_sec(build_prog, engine):
    """Insns/sec for one engine, loading once and running repeatedly."""
    kernel = Kernel()
    bpf = BpfSubsystem(kernel, engine=engine)
    prog = bpf.load_program(build_prog(), ProgType.KPROBE, "bench")
    bpf.run_on_current_task(prog)       # warm-up
    executed_before = bpf.vm.insns_executed
    runs = 0
    start = time.perf_counter()
    while True:
        bpf.run_on_current_task(prog)
        runs += 1
        elapsed = time.perf_counter() - start
        if elapsed >= MIN_SECONDS and runs >= 3:
            break
    insns = bpf.vm.insns_executed - executed_before
    return {"insns_per_sec": insns / elapsed,
            "insns_executed": insns,
            "runs": runs,
            "seconds": elapsed}


def distinct_prog(seed):
    """A small, unique-per-seed program so every cold load misses."""
    asm = Asm().mov64_imm(R0, 0)
    for i in range(8):
        asm.alu64_imm("add", R0, seed * 31 + i)
    return asm.exit_().program()


def measure_load_rates(n_progs=40):
    """Loads/sec with a cold cache vs replaying the same loads."""
    kernel = Kernel()
    bpf = BpfSubsystem(kernel)
    programs = [distinct_prog(i) for i in range(n_progs)]

    start = time.perf_counter()
    for i, program in enumerate(programs):
        bpf.load_program(program, ProgType.KPROBE, f"cold{i}")
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for i, program in enumerate(programs):
        bpf.load_program(program, ProgType.KPROBE, f"warm{i}")
    warm_seconds = time.perf_counter() - start

    return {"programs": n_progs,
            "cold_loads_per_sec": n_progs / cold_seconds,
            "cached_loads_per_sec": n_progs / warm_seconds,
            "load_speedup": cold_seconds / warm_seconds,
            "cache_hits": bpf.load_cache.hits,
            "cache_misses": bpf.load_cache.misses,
            "cache_hit_rate": bpf.load_cache.hit_rate}


@pytest.fixture(scope="module")
def results():
    """Run every benchmark once, persist BENCH_throughput.json."""
    res = {}
    for section, build in (("dispatch", alu_loop_prog),
                           ("mixed", mixed_loop_prog)):
        slow = measure_insns_per_sec(build, "interp")
        fast = measure_insns_per_sec(build, "fast")
        compiled = measure_insns_per_sec(build, "compiled")
        res[section] = {
            "slow": slow,
            "fast": fast,
            "compiled": compiled,
            "speedup": (fast["insns_per_sec"]
                        / slow["insns_per_sec"]),
            "compiled_speedup": (compiled["insns_per_sec"]
                                 / slow["insns_per_sec"]),
        }
    res["load_cache"] = measure_load_rates()
    RESULTS_PATH.write_text(json.dumps(res, indent=2) + "\n")
    return res


class TestThroughput:
    def test_fast_path_dispatch_speedup(self, results):
        """The predecoded engine must be >= 2x the reference on the
        pure-dispatch microbenchmark (the ISSUE's acceptance floor)."""
        assert results["dispatch"]["speedup"] >= 2.0, (
            f"fast path only {results['dispatch']['speedup']:.2f}x")

    def test_compiled_dispatch_speedup(self, results):
        """The compiled tier must clear 8x over the reference on the
        pure-dispatch microbenchmark (the ISSUE targets 10x)."""
        speedup = results["dispatch"]["compiled_speedup"]
        assert speedup >= 8.0, f"compiled tier only {speedup:.2f}x"

    def test_compiled_beats_fast_path(self, results):
        """Removing slot-tuple dispatch must actually pay: the
        compiled tier may never lose to the engine it lowers."""
        assert results["dispatch"]["compiled_speedup"] > \
            results["dispatch"]["speedup"]

    def test_mixed_workload_not_slower(self, results):
        """Memory-heavy code flushes the batch accounting often; it
        must still never be slower than the reference engine."""
        assert results["mixed"]["speedup"] >= 1.0
        assert results["mixed"]["compiled_speedup"] >= 1.0

    def test_no_regression_vs_baseline(self, results):
        """Refuse >20% regression of either speedup ratio against the
        committed baseline."""
        baseline = json.loads(BASELINE_PATH.read_text())
        for key, measured in (
                ("dispatch_speedup", results["dispatch"]["speedup"]),
                ("compiled_dispatch_speedup",
                 results["dispatch"]["compiled_speedup"])):
            floor = 0.8 * baseline[key]
            assert measured >= floor, (
                f"{key} {measured:.2f}x regressed below "
                f"{floor:.2f}x (80% of baseline "
                f"{baseline[key]:.2f}x)")

    def test_cached_loads_faster_and_hit_rate_reported(self, results):
        cache = results["load_cache"]
        assert cache["cached_loads_per_sec"] > cache["cold_loads_per_sec"]
        assert cache["cache_hit_rate"] == pytest.approx(0.5)

    def test_results_file_written(self, results):
        written = json.loads(RESULTS_PATH.read_text())
        assert written["dispatch"]["speedup"] == \
            results["dispatch"]["speedup"]
