"""§3.2 bench: the retire/simplify/wrap survey plus the executed
replacements."""

from conftest import run_once

from repro.experiments import exp_helper_retirement


def test_bench_retirement_experiment(benchmark):
    result = run_once(benchmark, exp_helper_retirement.run)
    assert result.survey.count("retire") == 16
    assert result.replacements_work
    print()
    print(exp_helper_retirement.render(result))


def test_bench_strtol_vs_parse(benchmark):
    """Replacement cost check: the in-language parse on a realistic
    input (no kernel crossing at all)."""
    from repro.core import SafeExtensionFramework
    from repro.kernel import Kernel
    kernel = Kernel()
    framework = SafeExtensionFramework(kernel)
    loaded = framework.install("""
    fn prog(ctx: XdpCtx) -> i64 {
        let s = "123456789";
        match s.parse_i64() {
            Some(v) => { return v; },
            None => { return -1; },
        }
        return 0;
    }
    """, "parse")

    result = benchmark(framework.run_on_packet, loaded, b"x")
    assert result.value == 123456789
