"""Figures 1 & 5 bench: trace both architecture pipelines."""

from conftest import run_once

from repro.experiments import fig1_fig5_pipelines


def test_bench_architecture_pipelines(benchmark):
    result = run_once(benchmark, fig1_fig5_pipelines.run)
    assert result.verifier_steps > 0
    assert result.signature_checked
    print()
    print(fig1_fig5_pipelines.render(result))
