"""§2.1 expressiveness bench: the false-positive corpus."""

from conftest import run_once

from repro.experiments import exp_expressiveness


def test_bench_expressiveness(benchmark):
    result = run_once(benchmark, exp_expressiveness.run)
    assert result.all_rejected_yet_correct
    print()
    print(exp_expressiveness.render(result))
