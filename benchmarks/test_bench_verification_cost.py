"""§2.1 cost bench: verifier scaling (with the pruning ablation) vs
signature-validation scaling."""

import pytest

from conftest import run_once

from repro.ebpf import BpfSubsystem, ProgType
from repro.ebpf.verifier.limits import VerifierLimits
from repro.experiments import exp_verification_cost
from repro.kernel import Kernel


def test_bench_verification_cost_experiment(benchmark):
    result = run_once(benchmark, exp_verification_cost.run)
    assert result.size_cap_rejected_at is not None
    assert any(rejected for __, __, rejected in
               result.unpruned_series)
    print()
    print(exp_verification_cost.render(result))


@pytest.mark.parametrize("size", [64, 512, 4000])
def test_bench_verify_straight_line(benchmark, size):
    """Verifier wall time vs program size (linear regime)."""
    kernel = Kernel()
    bpf = BpfSubsystem(kernel)
    program = exp_verification_cost.straight_line_program(size)

    counter = iter(range(10**9))

    def verify():
        return bpf.load_program(program, ProgType.KPROBE,
                                f"flat{size}-{next(counter)}")

    prog = benchmark(verify)
    assert prog.verifier_stats.insns_processed >= size - 2


@pytest.mark.parametrize("branches,prune", [(12, True), (12, False)])
def test_bench_verify_diamonds(benchmark, branches, prune):
    """The pruning ablation as timed rows."""
    kernel = Kernel()
    bpf = BpfSubsystem(kernel)
    program = exp_verification_cost.diamond_program(branches)
    limits = VerifierLimits(complexity_limit=500_000)
    counter = iter(range(10**9))

    def verify():
        return bpf.load_program(
            program, ProgType.KPROBE,
            f"d{branches}-{prune}-{next(counter)}",
            prune_states=prune, limits=limits)

    prog = benchmark(verify)
    if prune:
        assert prog.verifier_stats.insns_processed < 2000


def test_bench_signature_validation(benchmark):
    """The proposed framework's whole load-time check."""
    from repro.core import SafeExtensionFramework
    kernel = Kernel()
    framework = SafeExtensionFramework(kernel)
    ext = framework.compile(
        """
        fn prog(ctx: XdpCtx) -> i64 {
            let mut acc: u64 = 0;
            for i in 0..64 { acc = acc + i; }
            return acc as i64;
        }
        """, "bench")

    loaded = benchmark(framework.load, ext)
    assert loaded.program.function("prog") is not None
