"""Fuzzing-throughput bench: programs/second through the full
load-verify-run pipeline (the [41] methodology as a harness)."""

from conftest import run_once


def test_bench_fuzz_campaign(benchmark):
    from repro.analysis.fuzz import fuzz_campaign

    report = run_once(benchmark,
                      lambda: fuzz_campaign(iterations=500, seed=99))
    assert report.clean
    assert report.accepted > 0
    print()
    print(f"fuzz: {report.total} programs, {report.accepted} accepted "
          f"({report.accepted / report.total:.0%}), "
          f"{report.rejected} rejected, 0 verifier crashes, "
          f"0 soundness violations")
