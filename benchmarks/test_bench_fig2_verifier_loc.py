"""Figure 2 bench: verifier LoC growth series + self-measurement."""

from repro.experiments import fig2_verifier_loc


def test_bench_fig2(benchmark):
    result = benchmark(fig2_verifier_loc.run)
    assert result.monotone
    assert 5.0 <= result.growth_factor <= 9.0
    assert 11_000 <= result.final_loc <= 13_000
    print()
    print(fig2_verifier_loc.render(result))


def test_bench_fig2_own_verifier_loc_counting(benchmark):
    """Timing of the LoC counter over this repo's verifier package."""
    from repro.analysis.loc import verifier_loc_breakdown
    breakdown = benchmark(verifier_loc_breakdown)
    assert breakdown["analyzer.py"] > 500
