"""Benchmark-suite configuration.

Each bench module regenerates one of the paper's tables/figures,
asserts its shape checks, and prints the rendered artifact once (under
``-s``) so a run of ``pytest benchmarks/ --benchmark-only -s``
reproduces the paper's entire evaluation section.
"""

import pytest


def run_once(benchmark, func):
    """Benchmark a heavyweight experiment a single round."""
    return benchmark.pedantic(func, rounds=1, iterations=1,
                              warmup_rounds=0)
