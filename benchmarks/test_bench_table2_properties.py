"""Table 2 bench: the full attack matrix, plus the cleanup-strategy
ablation DESIGN.md calls out (trusted destructor list vs nothing)."""

from conftest import run_once

from repro.attacks import Outcome
from repro.experiments import table2_enforcement


def test_bench_table2_matrix(benchmark):
    result = run_once(benchmark, table2_enforcement.run)
    assert result.all_expected
    assert len(result.compromises("ebpf")) >= 5
    assert result.compromises("safelang") == []
    print()
    print(table2_enforcement.render(result))


def test_bench_ablation_cleanup_strategy(benchmark):
    """Ablation: terminate an extension holding N resources and count
    what the trusted cleanup list releases; without it (naive
    termination) everything leaks.  This is why §3.1 records
    destructors on the fly instead of unwinding."""
    from repro.core.kcrate.resources import KernelResource
    from repro.core.runtime.cleanup import CleanupList

    def with_cleanup_list():
        released = []
        cleanup = CleanupList()
        for index in range(64):
            cleanup.register(KernelResource(
                "socket", f"s{index}",
                lambda i=index: released.append(i)))
        ran = cleanup.terminate()
        return ran, len(released)

    ran, released = benchmark(with_cleanup_list)
    assert ran == released == 64

    # the naive alternative: resources acquired, termination without a
    # record -> zero destructors run (all 64 leak)
    naive_released = []
    for index in range(64):
        KernelResource("socket", f"s{index}",
                       lambda i=index: naive_released.append(i))
    # (termination happens here; nothing holds the destructors)
    assert naive_released == []


def test_bench_single_safelang_rejection(benchmark):
    """Time of one toolchain rejection (the static half of Table 2)."""
    from repro.core.toolchain import TrustedToolchain
    from repro.errors import UnsafeCodeError
    toolchain = TrustedToolchain()

    def reject():
        try:
            toolchain.compile(
                "fn prog(ctx: XdpCtx) -> i64 { unsafe { } "
                "return 0; }", "bad")
        except UnsafeCodeError:
            return True
        return False

    assert benchmark(reject)
