"""Runtime-overhead bench (supporting §3's feasibility claim):
per-invocation cost of both frameworks on the same workload, and the
marginal cost of each runtime protection mechanism."""

import pytest

from repro.core import SafeExtensionFramework
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R10
from repro.kernel import Kernel


@pytest.fixture(scope="module")
def setup():
    kernel = Kernel()
    bpf = BpfSubsystem(kernel)
    framework = SafeExtensionFramework(kernel)
    amap = bpf.create_map("array", key_size=4, value_size=8,
                          max_entries=4)
    ebpf_prog = bpf.load_program(
        (Asm()
         .st_imm(4, R10, -4, 0)
         .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
         .ld_map_fd(R1, amap.map_fd)
         .call(ids.BPF_FUNC_map_lookup_elem)
         .jmp_imm("jne", R0, 0, "hit")
         .mov64_imm(R0, 2).exit_()
         .label("hit")
         .ldx(8, R1, R0, 0)
         .alu64_imm("add", R1, 1)
         .stx(8, R0, 0, R1)
         .mov64_imm(R0, 2)
         .exit_()
         .program()), ProgType.XDP, "counter")
    sl_prog = framework.install("""
    fn prog(ctx: XdpCtx) -> i64 {
        match map_lookup(0, 0) {
            Some(v) => { map_update(0, 0, v + 1); },
            None => { },
        }
        return 2;
    }
    """, "counter", maps=[amap])
    return kernel, bpf, framework, ebpf_prog, sl_prog


def test_bench_ebpf_per_packet(benchmark, setup):
    kernel, bpf, __, ebpf_prog, __sl = setup
    skb = kernel.create_skb(b"x" * 64)

    verdict = benchmark(bpf.vm.run, ebpf_prog, skb.address)
    assert verdict == 2


def test_bench_safelang_per_packet(benchmark, setup):
    kernel, __, framework, __e, sl_prog = setup
    from repro.core.kcrate.resources import KernelResource
    skb = kernel.create_skb(b"x" * 64)
    ctx = KernelResource("xdp_ctx", "skb", lambda: None, payload=skb)

    result = benchmark(framework.run, sl_prog, ctx)
    assert result.value == 2


def test_bench_watchdog_arm_disarm(benchmark):
    """Marginal cost of arming the watchdog per invocation."""
    from repro.core.runtime.watchdog import Watchdog
    from repro.kernel.ktime import VirtualClock
    clock = VirtualClock()
    dog = Watchdog(clock, budget_ns=1_000_000)

    def cycle():
        dog.arm()
        dog.disarm()

    benchmark(cycle)


def test_bench_cleanup_register_release(benchmark):
    """Marginal cost of the on-the-fly resource recording."""
    from repro.core.kcrate.resources import KernelResource
    from repro.core.runtime.cleanup import CleanupList
    cleanup = CleanupList(capacity=1024)

    def cycle():
        res = KernelResource("socket", "s", lambda: None)
        cleanup.register(res)
        res.release()

    benchmark(cycle)


def test_bench_verifier_vs_signature_load_path(benchmark, setup):
    """Head-to-head: full eBPF load (verify + JIT) vs full SafeLang
    kernel-side load (signature + decode + fixup) for comparable
    programs."""
    kernel, bpf, framework, __, __sl = setup
    program = (Asm()
               .st_imm(4, R10, -4, 0)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .mov64_imm(R0, 2)
               .exit_()
               .program())
    ext = framework.compile("""
    fn prog(ctx: XdpCtx) -> i64 { return 2; }
    """, "loadbench")
    counter = iter(range(10**9))

    def both():
        bpf.load_program(program, ProgType.XDP,
                         f"lb{next(counter)}")
        framework.load(ext)

    benchmark(both)
