"""Reproduction of "Kernel extension verification is untenable"
(Jia et al., HotOS '23).

Three top-level entry points cover most uses:

* :class:`repro.kernel.Kernel` — boot a simulated kernel;
* :class:`repro.ebpf.BpfSubsystem` — the incumbent: load (verify) and
  run eBPF bytecode against that kernel;
* :class:`repro.core.SafeExtensionFramework` — the paper's proposal:
  compile, sign, load and run SafeLang extensions on the same kernel.

``python -m repro.experiments.run_all`` regenerates every table and
figure in the paper; see DESIGN.md for the full map and EXPERIMENTS.md
for paper-vs-measured results.
"""

from repro.kernel import Kernel
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.core import SafeExtensionFramework

__version__ = "1.0.0"

__all__ = [
    "Kernel",
    "Asm",
    "BpfSubsystem",
    "ProgType",
    "SafeExtensionFramework",
    "__version__",
]
