"""Deterministic seeded traffic generation on the virtual clock.

A :class:`LoadGen` turns a ``(profile, seed)`` pair into an exactly
reproducible packet stream: same profile, same seed, same packets with
the same virtual inter-arrival gaps, every run, on every engine tier.
That determinism is what lets the differential suite demand identical
verdict counts across interp/fast/compiled and the bench demand
bit-identical signatures across repeats.

Packets follow the repo's canonical format — ``<HB`` little-endian
dst_port, src_id, then payload — which is also what the steering byte
in :mod:`repro.net.nic` and every canned program in
:mod:`repro.net.programs` assume.

Profiles (``PROFILES``):

* ``uniform`` — fixed inter-arrival gap, sources and ports uniform.
* ``bursty`` — back-to-back bursts separated by long idle gaps.
* ``adversarial`` — malformed traffic: truncated headers, oversize
  frames, junk bytes, a bias toward the blocked port.  Programs must
  bounds-check their way through it.
* ``heavy_hitter`` — one elephant source sends ~70% of the packets,
  the mice share the rest.
"""

from __future__ import annotations

import struct
from random import Random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.kernel.kernel import Kernel
from repro.net.nic import SimulatedNic

#: the named traffic profiles
PROFILES = ("uniform", "bursty", "adversarial", "heavy_hitter")

#: canonical header: dst_port (u16 le) + src_id (u8)
HEADER = struct.Struct("<HB")

#: the firewall examples' well-known ports
PORTS = (53, 80, 123, 443, 8080)
BLOCKED_PORT = 23

#: virtual inter-arrival gap at line rate (ns)
LINE_GAP_NS = 120


class LoadGen:
    """A seeded packet source driving one NIC on the virtual clock."""

    def __init__(self, kernel: Kernel, profile: str = "uniform", *,
                 seed: int = 0, nsources: int = 8,
                 payload_bytes: int = 29,
                 gap_ns: int = LINE_GAP_NS) -> None:
        if profile not in PROFILES:
            raise ValueError(f"unknown profile {profile!r}; "
                             f"expected one of {PROFILES}")
        self.kernel = kernel
        self.profile = profile
        self.seed = seed
        self.nsources = nsources
        self.gap_ns = gap_ns
        self._rng = Random(seed)
        #: a small pool of payload bodies, reused round-robin so a
        #: million-packet run does not build a million byte strings
        self._bodies: List[bytes] = [
            bytes(self._rng.randrange(256)
                  for __ in range(payload_bytes))
            for __ in range(32)]
        #: packets emitted so far
        self.generated = 0
        #: remaining packets in the current burst (bursty profile)
        self._burst_left = 0

    # -- per-profile emission ----------------------------------------------------

    def _packet_uniform(self, rng: Random) -> Tuple[bytes, int]:
        port = rng.choice(PORTS) if rng.random() >= 0.125 \
            else BLOCKED_PORT
        src = rng.randrange(self.nsources)
        body = self._bodies[self.generated % len(self._bodies)]
        return HEADER.pack(port, src) + body, self.gap_ns

    def _packet_bursty(self, rng: Random) -> Tuple[bytes, int]:
        if self._burst_left <= 0:
            self._burst_left = rng.randrange(8, 65)
            gap = self.gap_ns * rng.randrange(50, 400)
        else:
            gap = self.gap_ns // 4 or 1
        self._burst_left -= 1
        packet, __ = self._packet_uniform(rng)
        return packet, gap

    def _packet_adversarial(self, rng: Random) -> Tuple[bytes, int]:
        shape = rng.random()
        if shape < 0.15:
            # truncated: shorter than the 3-byte header
            packet = bytes(rng.randrange(256)
                           for __ in range(rng.randrange(3)))
        elif shape < 0.25:
            # oversize: the NIC must refuse it at the MTU
            packet = HEADER.pack(BLOCKED_PORT,
                                 rng.randrange(self.nsources)) \
                + bytes(512)
        elif shape < 0.55:
            # well-formed but aimed at the blocked port
            src = rng.randrange(self.nsources)
            body = self._bodies[self.generated % len(self._bodies)]
            packet = HEADER.pack(BLOCKED_PORT, src) + body
        else:
            packet, __ = self._packet_uniform(rng)
        return packet, self.gap_ns

    def _packet_heavy_hitter(self, rng: Random) -> Tuple[bytes, int]:
        if rng.random() < 0.7:
            src = 3 % self.nsources     # the elephant
        else:
            src = rng.randrange(self.nsources)
        port = rng.choice(PORTS) if rng.random() >= 0.125 \
            else BLOCKED_PORT
        body = self._bodies[self.generated % len(self._bodies)]
        return HEADER.pack(port, src) + body, self.gap_ns

    def packets(self, count: int) -> Iterator[bytes]:
        """Yield ``count`` packets, advancing the virtual clock by
        each packet's inter-arrival gap before yielding it."""
        emit = getattr(self, f"_packet_{self.profile}")
        clock = self.kernel.clock
        for __ in range(count):
            packet, gap = emit(self._rng)
            clock.advance(gap)
            self.generated += 1
            yield packet

    # -- driving a NIC -----------------------------------------------------------

    def drive(self, nic: SimulatedNic, count: int, *,
              plane: Optional[object] = None,
              poll_every: int = 64,
              batch_size: int = 64) -> Dict[str, int]:
        """Offer ``count`` packets to ``nic``, interleaving NAPI polls
        every ``poll_every`` arrivals when a plane is given (otherwise
        packets just accumulate in the RX rings).  Returns offered /
        accepted / processed counts."""
        accepted = 0
        processed = 0
        since_poll = 0
        for packet in self.packets(count):
            if nic.receive(packet):
                accepted += 1
            since_poll += 1
            if plane is not None and since_poll >= poll_every:
                processed += plane.poll(nic, batch_size)
                since_poll = 0
        if plane is not None:
            processed += plane.process_all(batch_size)
        return {"offered": count, "accepted": accepted,
                "processed": processed}
