"""Canned XDP programs for the data plane.

Every builder returns verifier-clean bytecode (explicit packet bounds
checks, branch-refined return values) against the canonical packet
format — ``dst_port (u16 le), src_id (u8), payload`` — so the example,
the differential tests, the chaos schedules and the bench all exercise
the same programs instead of growing private copies.
"""

from __future__ import annotations

from typing import List

from repro.ebpf.asm import Asm
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R4, R5, R6, R10, Insn

XDP_ABORTED = 0
XDP_DROP = 1
XDP_PASS = 2
XDP_TX = 3
XDP_REDIRECT = 4

#: the firewall examples' blocked port (telnet)
BLOCKED_PORT = 23


def pass_all_prog() -> List[Insn]:
    """Unconditional ``XDP_PASS`` — the floor any bench compares
    against (pure pipeline overhead, zero policy)."""
    return Asm().mov64_imm(R0, XDP_PASS).exit_().program()


def port_filter_prog(blocked_port: int = BLOCKED_PORT) -> List[Insn]:
    """Drop packets to ``blocked_port``; unparseable (truncated)
    packets are dropped too, which is what makes the adversarial
    profile visible in the verdict counters."""
    return (Asm()
            .ldx(8, R2, R1, 8)            # data
            .ldx(8, R3, R1, 16)           # data_end
            .mov64_reg(R4, R2).alu64_imm("add", R4, 3)
            .jmp_reg("jgt", R4, R3, "drop")
            .ldx(2, R5, R2, 0)            # dst_port
            .jmp_imm("jeq", R5, blocked_port, "drop")
            .mov64_imm(R0, XDP_PASS)
            .exit_()
            .label("drop")
            .mov64_imm(R0, XDP_DROP)
            .exit_()
            .program())


def firewall_prog(stats_fd: int,
                  blocked_port: int = BLOCKED_PORT) -> List[Insn]:
    """The examples' full policy: drop the blocked port, rate-limit
    source 3 (every 4th packet dropped) via a counter in the array map
    ``stats_fd`` slot 2.  Truncated packets pass, preserving the
    original example's semantics."""
    return (Asm()
            # bounds-check 3 bytes of header before touching them
            .ldx(8, R2, R1, 8)            # data
            .ldx(8, R3, R1, 16)           # data_end
            .mov64_reg(R4, R2).alu64_imm("add", R4, 3)
            .jmp_reg("jgt", R4, R3, "pass")
            .ldx(2, R5, R2, 0)            # dst_port
            .jmp_imm("jeq", R5, blocked_port, "drop")
            # rate limit src 3: count its packets, drop every 4th
            .ldx(1, R6, R2, 2)            # src_id
            .jmp_imm("jne", R6, 3, "pass")
            .st_imm(4, R10, -4, 2)        # stats slot 2: src-3 counter
            .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
            .ld_map_fd(R1, stats_fd)
            .call(ids.BPF_FUNC_map_lookup_elem)
            .jmp_imm("jeq", R0, 0, "pass")
            .ldx(8, R1, R0, 0)
            .alu64_imm("add", R1, 1)
            .stx(8, R0, 0, R1)
            .alu64_imm("and", R1, 3)
            .jmp_imm("jeq", R1, 0, "drop")
            .label("pass")
            .mov64_imm(R0, XDP_PASS)
            .exit_()
            .label("drop")
            .mov64_imm(R0, XDP_DROP)
            .exit_()
            .program())


def redirect_by_source_prog(devmap_fd: int,
                            slot_mask: int = 3) -> List[Insn]:
    """Spray packets across redirect targets by source id:
    ``slot = src_id & slot_mask``, then ``bpf_redirect_map``.  The
    helper's return value is branch-refined (``jeq r0, 4``) so the
    verifier can prove the exit value sits inside XDP's [0, 4] range;
    anything but a successful redirect becomes ``XDP_DROP``."""
    return (Asm()
            .ldx(8, R2, R1, 8)            # data
            .ldx(8, R3, R1, 16)           # data_end
            .mov64_reg(R4, R2).alu64_imm("add", R4, 3)
            .jmp_reg("jgt", R4, R3, "drop")
            .ldx(1, R2, R2, 2)            # src_id -> slot key
            .alu64_imm("and", R2, slot_mask)
            .ld_map_fd(R1, devmap_fd)
            .mov64_imm(R3, 0)             # flags
            .call(ids.BPF_FUNC_redirect_map)
            .jmp_imm("jeq", R0, XDP_REDIRECT, "out")
            .label("drop")
            .mov64_imm(R0, XDP_DROP)
            .label("out")
            .exit_()
            .program())


def rewriter_prog() -> List[Insn]:
    """An XDP reflector: flip the source byte and bounce the packet
    back out the receiving NIC (``XDP_TX``) — exercises stores through
    the packet pointer on the hot path."""
    return (Asm()
            .ldx(8, R2, R1, 8)            # data
            .ldx(8, R3, R1, 16)           # data_end
            .mov64_reg(R4, R2).alu64_imm("add", R4, 3)
            .jmp_reg("jgt", R4, R3, "drop")
            .ldx(1, R5, R2, 2)            # src_id
            .alu64_imm("xor", R5, 0xFF)
            .stx(1, R2, 2, R5)            # rewrite in place
            .mov64_imm(R0, XDP_TX)
            .exit_()
            .label("drop")
            .mov64_imm(R0, XDP_DROP)
            .exit_()
            .program())
