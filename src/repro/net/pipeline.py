"""The batched XDP pipeline: poll RX queues, run the program, route
verdicts.

The :class:`DataPlane` is the driver side of the simulated network
stack.  A poll visits each per-CPU RX queue of each NIC, pins the
kernel to that queue's CPU, and burns through a burst of packets
inside one :meth:`~repro.ebpf.interpreter.BpfVm.batch_runner` critical
section — RCU read lock, preempt-off and engine binding are paid once
per burst, so the per-packet cost on the compiled tier is the frame
fill, the generated frame function, and the verdict routing.  That is
the NAPI shape: interrupts arrive as :meth:`SimulatedNic.receive`,
polls do the work.

Verdict semantics (Linux's, scaled to the model):

* ``XDP_DROP`` / ``XDP_ABORTED`` — packet gone; both are counted per
  NIC per verdict, aborted separately because it means "program
  misbehaved", not "policy said no".
* ``XDP_PASS`` — the packet's (possibly rewritten) bytes are
  delivered to userspace through the polling CPU's ring buffer; a
  full ring counts exact per-record drops
  (:meth:`~repro.ebpf.maps.RingBufMap.output_batch`).
* ``XDP_TX`` — bounced back out the receiving NIC.
* ``XDP_REDIRECT`` — the target ifindex stashed by
  ``bpf_redirect_map`` is resolved against the plane's device table
  *after* the program returns (``xdp_do_redirect`` style); a missing
  device — or an armed ``net.redirect`` failpoint — counts a
  ``redirect_gone`` drop.

Clock accounting: program execution advances the virtual clock
identically on every engine (the differential suites pin this), and
the pipeline itself adds none, so per-packet latency — verdict time
minus the packet's NIC-receive timestamp — is engine-invariant, and
so are the histograms built from it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ebpf.loader import BpfSubsystem, LoadedProgram
from repro.ebpf.maps import RingBufMap
from repro.errors import BpfRuntimeError
from repro.kernel.kernel import Kernel
from repro.net.nic import RxQueue, SimulatedNic

XDP_ABORTED = 0
XDP_DROP = 1
XDP_PASS = 2
XDP_TX = 3
XDP_REDIRECT = 4

VERDICT_NAMES = {
    XDP_ABORTED: "aborted",
    XDP_DROP: "drop",
    XDP_PASS: "pass",
    XDP_TX: "tx",
    XDP_REDIRECT: "redirect",
}

#: default per-poll burst per queue (NAPI_POLL_WEIGHT)
DEFAULT_BATCH = 64


class XdpHook:
    """One XDP program attached to one NIC through the data plane.

    Created via :meth:`BpfSubsystem.attach_nic` (or the plane's
    :meth:`DataPlane.attach` convenience); also registers on the
    kernel's generic ``xdp`` hook chain so ``bpftool`` listings and
    quarantine's detach-everywhere see data-plane attachments like any
    other."""

    def __init__(self, subsystem: BpfSubsystem, plane: "DataPlane",
                 prog: LoadedProgram, nic: SimulatedNic) -> None:
        if prog.prog_type.value != "xdp":
            raise BpfRuntimeError(
                f"program ({prog.name}) is {prog.prog_type.value}, "
                f"not xdp: cannot attach to {nic.name}")
        if nic.ifindex not in plane.nics:
            plane.register_nic(nic)
        self.subsystem = subsystem
        self.plane = plane
        self.prog = prog
        self.nic = nic
        self.hook_name = f"bpf:{prog.name}@{nic.name}"
        subsystem.kernel.hooks.attach(
            "xdp", self.hook_name,
            lambda skb: subsystem.run(prog, skb.address))
        plane.hooks[nic.ifindex] = self

    def detach(self) -> None:
        """Remove the attachment from the plane and the hook chain."""
        self.subsystem.kernel.hooks.detach("xdp", self.hook_name)
        if self.plane.hooks.get(self.nic.ifindex) is self:
            del self.plane.hooks[self.nic.ifindex]


class DataPlane:
    """Device table, per-CPU delivery rings, and the polling loop."""

    def __init__(self, kernel: Kernel, subsystem: BpfSubsystem, *,
                 ringbuf_bytes: int = 1 << 16) -> None:
        self.kernel = kernel
        self.subsystem = subsystem
        #: ifindex -> device (the redirect resolution table)
        self.nics: Dict[int, SimulatedNic] = {}
        #: ifindex -> live attachment
        self.hooks: Dict[int, XdpHook] = {}
        #: one PASS-delivery ring per CPU, so per-CPU RX queues never
        #: contend for ring space with each other
        self.ringbufs: List[RingBufMap] = [
            subsystem.create_map("ringbuf", max_entries=ringbuf_bytes)
            for __ in kernel.cpus]
        #: packets that reached a verdict since creation
        self.processed = 0
        #: verdict name -> count, across all NICs (plain ints: the
        #: per-batch tallies land here and in telemetry together)
        self.verdicts: Dict[str, int] = {
            name: 0 for name in VERDICT_NAMES.values()}
        #: PASS records refused by full delivery rings
        self.delivery_drops = 0

    # -- devices and attachment ------------------------------------------------

    def register_nic(self, nic: SimulatedNic) -> SimulatedNic:
        """Add a device to the redirect-resolution table."""
        if nic.ifindex in self.nics:
            raise BpfRuntimeError(
                f"ifindex {nic.ifindex} already registered "
                f"({self.nics[nic.ifindex].name})")
        self.nics[nic.ifindex] = nic
        return nic

    def create_nic(self, ifindex: int, name: Optional[str] = None,
                   **kwargs: object) -> SimulatedNic:
        """Create and register a NIC in one step."""
        return self.register_nic(
            SimulatedNic(self.kernel, ifindex, name, **kwargs))

    def attach(self, prog: LoadedProgram,
               nic: SimulatedNic) -> XdpHook:
        """Attach ``prog`` to ``nic`` (delegates to the subsystem)."""
        return self.subsystem.attach_nic(prog, self, nic)

    # -- the poll loop -----------------------------------------------------------

    def process_all(self, batch_size: int = DEFAULT_BATCH) -> int:
        """Poll every attached NIC until its RX rings are empty;
        returns how many packets reached a verdict."""
        done = 0
        progressed = True
        while progressed:
            progressed = False
            for ifindex in sorted(self.hooks):
                hook = self.hooks[ifindex]
                for queue in hook.nic.queues:
                    while queue.pending:
                        done += self._poll_queue(hook, queue,
                                                 batch_size)
                        progressed = True
        return done

    def process_all_smp(self, seed: int = 0,
                        batch_size: int = DEFAULT_BATCH) -> int:
        """Concurrent poll under the deterministic SMP scheduler.

        Where :meth:`process_all` serializes queues round-robin, this
        spawns one logical task per (NIC, RX queue) pinned to the
        queue's CPU, so queues genuinely race: bursts on different
        CPUs interleave at every yield point (helper calls, shared-map
        ops, ring-buffer produce) under the seeded schedule.  The VM's
        per-program activation state is context-switched per task.
        Same seed, same trace — the scheduler is left on
        :attr:`last_smp` so callers can pin ``trace_signature()``.
        Returns how many packets reached a verdict."""
        from repro.kernel.smp import SmpScheduler

        smp = SmpScheduler(self.kernel, seed=seed)
        smp.vm = self.subsystem.vm
        for ifindex in sorted(self.hooks):
            hook = self.hooks[ifindex]
            for queue in hook.nic.queues:
                def worker(hook: XdpHook = hook,
                           queue: RxQueue = queue) -> int:
                    done = 0
                    while queue.pending:
                        done += self._poll_queue(hook, queue,
                                                 batch_size)
                    return done
                smp.spawn(worker, cpu=queue.cpu_id,
                          name=f"poll:{hook.nic.name}q{queue.cpu_id}")
        #: the completed scheduler of the most recent SMP poll
        self.last_smp = smp
        if not smp.tasks:
            return 0
        results = smp.run()
        return sum(r for r in results if isinstance(r, int))

    def poll(self, nic: SimulatedNic,
             batch_size: int = DEFAULT_BATCH) -> int:
        """One NAPI pass: up to ``batch_size`` packets from each of
        ``nic``'s RX queues; returns packets processed."""
        hook = self.hooks.get(nic.ifindex)
        if hook is None:
            raise BpfRuntimeError(f"no program attached to {nic.name}")
        return sum(self._poll_queue(hook, queue, batch_size)
                   for queue in nic.queues)

    def _poll_queue(self, hook: XdpHook, queue: RxQueue,
                    batch_size: int) -> int:
        """Process one burst from one RX queue on its CPU."""
        pending = queue.pending
        if not pending:
            return 0
        kernel = self.kernel
        nic = hook.nic
        kernel.set_current_cpu(queue.cpu_id)
        vm = self.subsystem.vm
        telemetry = kernel.telemetry
        latency_hist = telemetry.net_latency_histogram(nic.name)
        clock = kernel.clock
        frame = queue.frame
        ctx_addr = frame.ctx_addr
        tallies = dict.fromkeys(VERDICT_NAMES, 0)
        passed: List[bytes] = []
        redirected: List[Tuple[bytes, Optional[int]]] = []
        txed: List[bytes] = []
        supervisor = kernel.recovery
        supervised = supervisor is not None and supervisor.active

        def route(verdict: int) -> None:
            if verdict == XDP_PASS:
                passed.append(frame.payload())
            elif verdict == XDP_TX:
                txed.append(frame.payload())
            elif verdict == XDP_REDIRECT:
                redirected.append((frame.payload(),
                                   vm.take_redirect()))
            elif vm.pending_redirect is not None:
                # stashed a target but returned another verdict:
                # stale state must not leak into the next packet
                vm.pending_redirect = None
            tallies[verdict if verdict in VERDICT_NAMES
                    else XDP_ABORTED] += 1
            latency_hist.observe(clock.now_ns - frame.rx_ns)

        n = 0
        if supervised:
            # chaos --recover path: per-packet supervised dispatch so
            # injected panics are contained and breakers trip; slower,
            # but correctness is the product here, not throughput
            while pending and n < batch_size:
                payload, rx_ns = pending.popleft()
                frame.fill(payload, rx_ns)
                route(self.subsystem.run(hook.prog, ctx_addr))
                n += 1
        else:
            with vm.batch_runner(hook.prog) as run_one:
                while pending and n < batch_size:
                    payload, rx_ns = pending.popleft()
                    frame.fill(payload, rx_ns)
                    route(run_one(ctx_addr))
                    n += 1

        # flush the burst's byproducts outside the critical section
        if passed:
            ring = self.ringbufs[queue.cpu_id]
            __, refused = ring.output_batch(passed)
            self.delivery_drops += refused
        for payload in txed:
            nic.transmit(payload)
        faults = kernel.faults
        for payload, target in redirected:
            if faults.armed:
                action = faults.check("net.redirect")
                if action is not None and action.kind != "delay":
                    target = None
            device = self.nics.get(target) if target is not None \
                else None
            if device is None:
                nic.rx_drops["redirect_gone"] = \
                    nic.rx_drops.get("redirect_gone", 0) + 1
                telemetry.record_net_rx_drop(nic.name,
                                             "redirect_gone")
            else:
                device.transmit(payload)
        for verdict, count in tallies.items():
            if count:
                name = VERDICT_NAMES[verdict]
                self.verdicts[name] += count
                telemetry.net_verdict_counter(nic.name, name).inc(count)
        self.processed += n
        return n

    # -- userspace side ----------------------------------------------------------

    def drain(self, cpu_id: Optional[int] = None) -> List[bytes]:
        """Consume delivered PASS packets — one CPU's ring, or every
        ring in CPU order."""
        rings = self.ringbufs if cpu_id is None \
            else [self.ringbufs[cpu_id]]
        out: List[bytes] = []
        for ring in rings:
            out.extend(ring.drain())
        return out

    def summary(self) -> Dict[str, object]:
        """JSON-ready roll-up: verdicts, per-NIC counters, delivery
        and drop accounting, clock position."""
        return {
            "processed": self.processed,
            "verdicts": dict(self.verdicts),
            "delivery_drops": self.delivery_drops,
            "clock_ns": self.kernel.clock.now_ns,
            "nics": {
                nic.name: {
                    "ifindex": nic.ifindex,
                    "rx_packets": nic.rx_packets,
                    "rx_drops": dict(sorted(nic.rx_drops.items())),
                    "tx_packets": nic.tx_packets,
                    "tx_bytes": nic.tx_bytes,
                    "pending": nic.pending(),
                }
                for __, nic in sorted(self.nics.items())},
        }

    def signature(self) -> str:
        """SHA-256 over the summary, the latency histograms and every
        ring's undrained contents — two seeded runs that diverge
        anywhere in the data plane produce different signatures."""
        import hashlib
        import json

        hasher = hashlib.sha256()
        hasher.update(json.dumps(self.summary(),
                                 sort_keys=True).encode())
        family = self.kernel.telemetry.registry.get(
            "repro_net_latency_ns")
        if family is not None:
            for labels, hist in family.samples():
                hasher.update(repr((labels,
                                    hist.bucket_counts,
                                    hist.count,
                                    hist.total)).encode())
        for cpu_id, ring in enumerate(self.ringbufs):
            hasher.update(cpu_id.to_bytes(4, "little"))
            for record in ring._records:
                hasher.update(len(record).to_bytes(4, "little"))
                hasher.update(record)
        return hasher.hexdigest()

    def shutdown(self) -> None:
        """Detach every hook and free NIC frames (plane teardown);
        rings are destroyed with the subsystem's maps."""
        for hook in list(self.hooks.values()):
            hook.detach()
        for nic in self.nics.values():
            nic.shutdown()
