"""The simulated network data plane.

An XDP-style packet path for the reproduction: a
:class:`~repro.net.nic.SimulatedNic` steers packets into per-CPU RX
queues, the :class:`~repro.net.pipeline.DataPlane` polls those queues
NAPI-style and runs the attached XDP program over each batch on the
VM's batched hot path, honoring DROP/PASS/TX/REDIRECT verdicts, and
the :class:`~repro.net.loadgen.LoadGen` produces deterministic seeded
traffic on the virtual clock.  This is the ROADMAP's "high-traffic
data plane": the workload class (per "The eBPF Runtime in the Linux
Kernel") that makes verifier friction worth measuring.
"""

from repro.net.loadgen import LoadGen, PROFILES
from repro.net.nic import RxQueue, SimulatedNic, XdpFrame
from repro.net.pipeline import (
    DataPlane,
    VERDICT_NAMES,
    XDP_ABORTED,
    XDP_DROP,
    XDP_PASS,
    XDP_REDIRECT,
    XDP_TX,
    XdpHook,
)

__all__ = [
    "DataPlane", "LoadGen", "PROFILES", "RxQueue", "SimulatedNic",
    "VERDICT_NAMES", "XDP_ABORTED", "XDP_DROP", "XDP_PASS",
    "XDP_REDIRECT", "XDP_TX", "XdpFrame", "XdpHook",
]
