"""The simulated NIC: packet ingress, steering, per-CPU RX queues.

Frames live in real simulated kernel memory so XDP programs read and
write packet bytes through checked loads/stores, but — unlike
:meth:`~repro.kernel.kernel.Kernel.create_skb`, which kmallocs per
packet — every RX queue owns one preallocated, endlessly reused
:class:`XdpFrame`.  The address space never forgets an allocation
(that is what makes use-after-free detectable), so per-packet kmalloc
would grow the allocation index without bound and turn a million-packet
bench run into a bisect stress test.  Reuse is also what real drivers
do (page pools); the simulation just agrees with them.

Failpoints: ``net.nic.rx`` fires on every packet at the wire
(errno = the NIC silently eats it), ``net.queue.enqueue`` at RX-ring
admission (errno = counted as a queue overflow).
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import KernelOops
from repro.kernel.kernel import Kernel

#: default link MTU: generous for the repo's tiny header+payload format
DEFAULT_MTU = 256

#: byte index used for RX steering (the canonical packet format puts
#: the source id at offset 2: ``<HB`` = dst_port, src_id)
DEFAULT_STEER_OFFSET = 2

#: XDP context layout (matches ``SkBuff.LAYOUT`` / ``_XDP_FIELDS``):
#: len(4) protocol(4) data(8) data_end(8) mark(4) + 4 pad
_CTX_PACK = struct.Struct("<IIQQI4x")
_CTX_SIZE = 32


class XdpFrame:
    """One reusable packet frame: a 32-byte XDP context plus an
    MTU-sized data area, both in simulated kernel memory.

    :meth:`fill` rewrites the data bytes and the whole context in two
    checked writes, so a frame serves every packet its queue ever
    processes without allocating."""

    __slots__ = ("kernel", "ctx_alloc", "data_alloc", "mtu", "rx_ns")

    def __init__(self, kernel: Kernel, mtu: int = DEFAULT_MTU) -> None:
        self.kernel = kernel
        self.mtu = mtu
        self.ctx_alloc = kernel.mem.kmalloc(
            _CTX_SIZE, type_name="xdp_ctx", owner="net")
        self.data_alloc = kernel.mem.kmalloc(
            mtu, type_name="xdp_frame", owner="net")
        #: virtual receive timestamp of the packet currently loaded
        self.rx_ns = 0

    @property
    def ctx_addr(self) -> int:
        """Kernel address of the XDP context (what the program gets)."""
        return self.ctx_alloc.base

    def fill(self, payload: bytes, rx_ns: int,
             protocol: int = 0x0800) -> None:
        """Load one packet into the frame (payload must fit the MTU)."""
        data = self.data_alloc.base
        self.kernel.mem.write(data, payload)
        self.kernel.mem.write(self.ctx_alloc.base, _CTX_PACK.pack(
            len(payload), protocol, data, data + len(payload), 0))
        self.rx_ns = rx_ns

    def payload(self) -> bytes:
        """The frame's current packet bytes, read back from kernel
        memory — reflecting any rewrites the program made."""
        length = int.from_bytes(
            self.kernel.mem.read(self.ctx_alloc.base, 4), "little")
        return self.kernel.mem.read(self.data_alloc.base, length)

    def free(self) -> None:
        """Release the frame's backing allocations (NIC teardown)."""
        if not self.ctx_alloc.freed:
            self.kernel.mem.kfree(self.ctx_alloc)
        if not self.data_alloc.freed:
            self.kernel.mem.kfree(self.data_alloc)


class RxQueue:
    """One per-CPU RX ring: a bounded queue of raw payloads awaiting a
    poll, plus the queue's reusable :class:`XdpFrame`."""

    def __init__(self, kernel: Kernel, cpu_id: int, depth: int,
                 mtu: int) -> None:
        self.kernel = kernel
        self.cpu_id = cpu_id
        self.depth = depth
        #: (payload, rx_ns) pairs; Python-side until the poll fills
        #: the frame, mirroring how a real ring holds DMA descriptors
        self.pending: Deque[Tuple[bytes, int]] = deque()
        self.frame = XdpFrame(kernel, mtu)
        #: packets admitted to this ring since creation
        self.enqueued = 0
        #: packets refused (ring full or injected overflow)
        self.overflows = 0

    def enqueue(self, payload: bytes, rx_ns: int) -> bool:
        """Admit one packet; False means it was dropped as overflow."""
        faults = self.kernel.faults
        if faults.armed:
            action = faults.check("net.queue.enqueue")
            if action is not None and action.kind != "delay":
                if action.kind == "panic":
                    self.kernel.log.record_oops(
                        self.kernel.clock.now_ns,
                        f"injected panic at RX queue cpu{self.cpu_id}",
                        category="fault-injection", source="net-rx")
                    raise KernelOops(
                        f"injected panic at RX queue cpu{self.cpu_id}",
                        source="net-rx")
                self.overflows += 1
                return False
        if len(self.pending) >= self.depth:
            self.overflows += 1
            return False
        self.pending.append((payload, rx_ns))
        self.enqueued += 1
        return True

    def __len__(self) -> int:
        return len(self.pending)


class SimulatedNic:
    """A software NIC: ingress steering into per-CPU RX queues plus a
    TX side with counters and optional capture.

    Steering hashes the byte at ``steer_offset`` (the source id in the
    repo's canonical packet format) across the queues — RSS-style, so
    packets from one source always land on one queue and per-source
    ordering is preserved end to end.  Packets shorter than the steer
    offset land on queue 0."""

    def __init__(self, kernel: Kernel, ifindex: int,
                 name: Optional[str] = None, *,
                 nqueues: Optional[int] = None,
                 queue_depth: int = 512, mtu: int = DEFAULT_MTU,
                 steer_offset: int = DEFAULT_STEER_OFFSET) -> None:
        if ifindex <= 0:
            raise ValueError(f"ifindex must be positive: {ifindex}")
        self.kernel = kernel
        self.ifindex = ifindex
        self.name = name or f"veth{ifindex}"
        self.mtu = mtu
        self.steer_offset = steer_offset
        nqueues = nqueues or len(kernel.cpus)
        if not 0 < nqueues <= len(kernel.cpus):
            raise ValueError(
                f"nqueues {nqueues} outside 1..{len(kernel.cpus)}")
        self.queues: List[RxQueue] = [
            RxQueue(kernel, cpu, queue_depth, mtu)
            for cpu in range(nqueues)]
        #: ingress/egress counters (drop *reasons* feed telemetry too)
        self.rx_packets = 0
        self.rx_drops: Dict[str, int] = {}
        self.tx_packets = 0
        self.tx_bytes = 0
        #: when set (a list), every transmitted payload is appended —
        #: tests use it to assert TX/REDIRECT delivery byte-for-byte
        self.capture_tx: Optional[List[bytes]] = None

    def _drop(self, reason: str) -> None:
        self.rx_drops[reason] = self.rx_drops.get(reason, 0) + 1
        self.kernel.telemetry.record_net_rx_drop(self.name, reason)

    def receive(self, payload: bytes) -> bool:
        """One packet off the wire; False when it was dropped before
        any program could see it (NIC drop, oversize, ring overflow)."""
        faults = self.kernel.faults
        if faults.armed:
            action = faults.check("net.nic.rx")
            if action is not None and action.kind != "delay":
                if action.kind == "panic":
                    self.kernel.log.record_oops(
                        self.kernel.clock.now_ns,
                        f"injected panic at NIC {self.name} ingress",
                        category="fault-injection", source="net-rx")
                    raise KernelOops(
                        f"injected panic at NIC {self.name} ingress",
                        source="net-rx")
                self._drop("nic_drop")
                return False
        if len(payload) > self.mtu:
            self._drop("oversize")
            return False
        queue_id = (payload[self.steer_offset] % len(self.queues)
                    if len(payload) > self.steer_offset else 0)
        if not self.queues[queue_id].enqueue(
                payload, self.kernel.clock.now_ns):
            self._drop("queue_overflow")
            return False
        self.rx_packets += 1
        return True

    def transmit(self, payload: bytes) -> None:
        """Egress one packet (a TX verdict, or a redirect landing
        here): counted, optionally captured, then gone."""
        self.tx_packets += 1
        self.tx_bytes += len(payload)
        if self.capture_tx is not None:
            self.capture_tx.append(payload)

    def pending(self) -> int:
        """Packets sitting in RX rings awaiting a poll."""
        return sum(len(q) for q in self.queues)

    def shutdown(self) -> None:
        """Free every queue's frame (device teardown)."""
        for queue in self.queues:
            queue.frame.free()
