"""Attack programs and their fates under both frameworks.

Each :class:`AttackCase` targets one Table 2 safety property in one
framework.  :func:`run_case` executes it against a fresh kernel and
classifies what actually happened:

* ``REJECTED_STATIC`` — the verifier / the trusted toolchain refused
  to load it,
* ``CONTAINED`` — it ran, misbehaved, and the runtime terminated it
  safely (kernel healthy, no leaks),
* ``KERNEL_COMPROMISED`` — it ran and the kernel oopsed, stalled, or
  leaked a resource,
* ``HARMLESS`` — it ran to completion without violating anything.

The corpus encodes the paper's core claim: for eBPF, several attacks
are *verified and still compromise the kernel* (through helpers, or
through verifier/JIT bugs); for the proposed framework every listed
attack is either rejected by the toolchain or contained at run time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.bugs import BugConfig
from repro.ebpf.helpers import ids
from repro.ebpf.isa import (
    R0, R1, R2, R3, R4, R5, R6, R7, R8, R10,
)
from repro.errors import (
    BpfRuntimeError,
    KernelDeadlock,
    KernelSafetyViolation,
    MemoryFault,
    ResourceLeak,
    SafeLangError,
    VerifierError,
)
from repro.kernel.kernel import Kernel


class Outcome(enum.Enum):
    """What happened when the attack was loaded and run."""

    REJECTED_STATIC = "rejected-static"
    CONTAINED = "contained-runtime"
    KERNEL_COMPROMISED = "kernel-compromised"
    HARMLESS = "harmless"


@dataclass
class AttackCase:
    """One attack in one framework."""

    case_id: str
    safety_property: str        # Table 2 row
    framework: str              # "ebpf" | "safelang"
    description: str
    #: runs the attack; returns the observed Outcome
    run: Callable[[Kernel], Outcome] = None
    #: Table 2 column: which mechanism is (supposed to be) responsible
    enforcement: str = ""
    #: the expected outcome on a buggy-era kernel
    expected: Outcome = Outcome.REJECTED_STATIC
    notes: str = ""


# ---------------------------------------------------------------------------
# shared runners
# ---------------------------------------------------------------------------

def _ebpf_outcome(kernel: Kernel, loader_fn, runner_fn,
                  bugs: Optional[BugConfig] = None) -> Outcome:
    """Load + run an eBPF attack, classifying the result."""
    from repro.errors import KernelOops

    bpf = BpfSubsystem(kernel, bugs=bugs)
    try:
        prog = loader_fn(bpf)
    except VerifierError:
        return Outcome.REJECTED_STATIC
    except KernelOops:
        # the verifier itself crashed the kernel ([54] class)
        return Outcome.KERNEL_COMPROMISED
    try:
        runner_fn(bpf, prog)
    except (MemoryFault, KernelDeadlock):
        return Outcome.KERNEL_COMPROMISED
    except ResourceLeak:
        return Outcome.KERNEL_COMPROMISED
    except BpfRuntimeError:
        return Outcome.HARMLESS
    if not kernel.healthy or kernel.rcu.stall_reports:
        return Outcome.KERNEL_COMPROMISED
    leaks = kernel.refs.outstanding_for("kernel-sk-lookup-lost")
    if leaks:
        return Outcome.KERNEL_COMPROMISED
    return Outcome.HARMLESS


def _safelang_outcome(kernel: Kernel, source: str, name: str,
                      setup=None) -> Outcome:
    """Compile + load + run a SafeLang attack."""
    from repro.core import SafeExtensionFramework

    framework = SafeExtensionFramework(kernel)
    maps = setup(kernel) if setup else []
    try:
        loaded = framework.install(source, name, maps=maps)
    except SafeLangError:
        return Outcome.REJECTED_STATIC
    result = framework.run_on_packet(loaded, b"attack-payload")
    if not kernel.healthy or kernel.rcu.stall_reports:
        return Outcome.KERNEL_COMPROMISED
    if kernel.refs.outstanding_for(f"safelang:{name}"):
        return Outcome.KERNEL_COMPROMISED
    if result.terminated or result.panicked:
        return Outcome.CONTAINED
    return Outcome.HARMLESS


# ---------------------------------------------------------------------------
# eBPF attacks
# ---------------------------------------------------------------------------

def ebpf_wild_pointer(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """Dereference a fabricated kernel address directly."""
    def load(bpf: BpfSubsystem):
        asm = (Asm()
               .ld_imm64(R1, 0xFFFF_8880_DEAD_0000)
               .ldx(8, R0, R1, 0)
               .exit_())
        return bpf.load_program(asm.program(), ProgType.KPROBE, "wild")
    return _ebpf_outcome(kernel, load,
                         lambda bpf, p: bpf.run_on_current_task(p),
                         bugs=bugs)


def ebpf_probe_read_anywhere(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """Read any kernel object through the bpf_probe_read escape hatch.

    Passes verification; the 'no arbitrary memory access' guarantee
    ends at the helper boundary (§2.2)."""
    secret_task = kernel.create_task(comm="secret")

    def load(bpf: BpfSubsystem):
        asm = (Asm()
               .mov64_reg(R1, R10).alu64_imm("add", R1, -8)
               .mov64_imm(R2, 8)
               .ld_imm64(R3, secret_task.address)
               .call(ids.BPF_FUNC_probe_read)
               .mov64_imm(R0, 0)
               .exit_())
        return bpf.load_program(asm.program(), ProgType.KPROBE,
                                "probe_anywhere")

    def run(bpf: BpfSubsystem, prog) -> None:
        bpf.run_on_current_task(prog)
        # the verified program read task_struct memory it doesn't own;
        # classify as a (read) compromise of the isolation property
        raise MemoryFault("bpf_probe_read exfiltrated task_struct "
                          "contents", address=secret_task.address,
                          source="bpf:probe_anywhere")
    return _ebpf_outcome(kernel, load, run, bugs=bugs)


def ebpf_sys_bpf_crash(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """The §2.2 crash: NULL pointer inside the bpf_sys_bpf attr union
    (CVE-2022-2785)."""
    def load(bpf: BpfSubsystem):
        hmap = bpf.create_map("hash", key_size=4, value_size=4,
                              max_entries=4)
        asm = (Asm()
               .st_imm(4, R10, -32, hmap.map_fd)
               .st_imm(4, R10, -28, 0)
               .st_imm(8, R10, -24, 0)    # key pointer = NULL
               .st_imm(8, R10, -16, 0)
               .st_imm(8, R10, -8, 0)
               .mov64_imm(R1, 2)          # BPF_MAP_UPDATE_ELEM
               .mov64_reg(R2, R10).alu64_imm("add", R2, -32)
               .mov64_imm(R3, 32)
               .call(ids.BPF_FUNC_sys_bpf)
               .mov64_imm(R0, 0)
               .exit_())
        return bpf.load_program(asm.program(), ProgType.KPROBE,
                                "cve-2022-2785")
    return _ebpf_outcome(kernel, load,
                         lambda bpf, p: bpf.run_on_current_task(p),
                         bugs=bugs)


def ebpf_task_storage_null(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """NULL task pointer into bpf_task_storage_get [42]."""
    def load(bpf: BpfSubsystem):
        ts_map = bpf.create_map("task_storage", value_size=8)
        asm = (Asm()
               .ld_map_fd(R1, ts_map.map_fd)
               .mov64_imm(R2, 0)          # task = NULL
               .mov64_imm(R3, 0)
               .mov64_imm(R4, 1)          # BPF_..._F_CREATE
               .call(ids.BPF_FUNC_task_storage_get)
               .mov64_imm(R0, 0)
               .exit_())
        return bpf.load_program(asm.program(), ProgType.KPROBE,
                                "storage_null")
    return _ebpf_outcome(kernel, load,
                         lambda bpf, p: bpf.run_on_current_task(p),
                         bugs=bugs)


def ebpf_jump_into_ld_imm64(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """Branch into the second slot of an ld_imm64 (hidden insn)."""
    def load(bpf: BpfSubsystem):
        asm = (Asm()
               .jmp_imm("jeq", R1, 0, 1)   # into the pair below
               .ld_imm64(R0, 0x9500000000000000)  # 2nd half = exit
               .mov64_imm(R0, 0)
               .exit_())
        return bpf.load_program(asm.program(), ProgType.KPROBE,
                                "hidden_insn")
    return _ebpf_outcome(kernel, load,
                         lambda bpf, p: bpf.run_on_current_task(p),
                         bugs=bugs)


def ebpf_jit_hijack(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """CVE-2021-29154 shape: a conditional branch right after a DIV is
    miscompiled one instruction long, skipping the clamp the verifier
    saw on the taken path.  Verified; compromises the kernel when the
    JIT bug is present."""
    def load(bpf: BpfSubsystem):
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=1)
        # attacker preloads a huge "index" into the map from userspace
        amap.update((0).to_bytes(4, "little"),
                    (0x100000).to_bytes(8, "little"))
        asm = (Asm()
               # r6 = &map[0]
               .st_imm(4, R10, -4, 0)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .ld_map_fd(R1, amap.map_fd)
               .call(ids.BPF_FUNC_map_lookup_elem)
               .jmp_imm("jne", R0, 0, "have")
               .mov64_imm(R0, 0)
               .exit_()
               .label("have")
               .mov64_reg(R6, R0)
               .ldx(8, R3, R6, 0)          # attacker-controlled index
               .mov64_reg(R4, R3)
               .alu64_imm("div", R4, 1)    # the miscompile gadget
               # verifier: large index -> jump to the clamp; JIT emits
               # this branch one insn long, landing past the clamp
               .jmp_imm("jgt", R3, 7, "clamp")
               .ja("use")
               .label("clamp")
               .mov64_imm(R3, 0)
               .label("use")
               # r5 = r6 + r3: verified with r3 <= 7 or r3 == 0
               .mov64_reg(R5, R6)
               .alu64_reg("add", R5, R3)
               .st_imm(1, R5, 0, 0x41)
               .mov64_imm(R0, 0)
               .exit_())
        return bpf.load_program(asm.program(), ProgType.KPROBE,
                                "jit_hijack")
    return _ebpf_outcome(kernel, load,
                         lambda bpf, p: bpf.run_on_current_task(p),
                         bugs=bugs)


def ebpf_ptr_arith_or_null(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """CVE-2022-23222 shape: arithmetic on a not-yet-null-checked map
    value, then the null branch is taken at run time, so the 'pointer'
    is NULL+delta — an arbitrary kernel address."""
    def load(bpf: BpfSubsystem):
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=1)
        hmap = bpf.create_map("hash", key_size=4, value_size=8,
                              max_entries=4)
        asm = (Asm()
               # r6 = valid array value pointer (the write base)
               .st_imm(4, R10, -4, 0)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .ld_map_fd(R1, amap.map_fd)
               .call(ids.BPF_FUNC_map_lookup_elem)
               .jmp_imm("jne", R0, 0, "base_ok")
               .mov64_imm(R0, 0).exit_()
               .label("base_ok")
               .mov64_reg(R6, R0)
               # r0 = hash lookup of a missing key -> NULL at run time
               .st_imm(4, R10, -4, 7)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .ld_map_fd(R1, hmap.map_fd)
               .call(ids.BPF_FUNC_map_lookup_elem)
               # the bug: arithmetic on the unchecked pointer copy is
               # not sanitized; r7 shares r0's or-null identity
               .mov64_reg(R7, R0)
               .alu64_imm("add", R7, 0x100000)
               .jmp_imm("jne", R0, 0, "nonnull")
               # null branch: the verifier now believes r7 == 0, but at
               # run time r7 holds NULL + 0x100000
               .mov64_reg(R8, R6)
               .alu64_reg("add", R8, R7)   # "base + 0": actually +1MiB
               .st_imm(8, R8, 0, 0x41414141)  # arbitrary kernel write
               .label("nonnull")
               .mov64_imm(R0, 0)
               .exit_())
        return bpf.load_program(asm.program(), ProgType.KPROBE,
                                "cve-2022-23222")
    return _ebpf_outcome(kernel, load,
                         lambda bpf, p: bpf.run_on_current_task(p),
                         bugs=bugs)


def ebpf_verifier_uaf(kernel: Kernel,
                      bugs: Optional[BugConfig] = None) -> Outcome:
    """[54]: merely *loading* a program with two inlinable bpf_loop
    calls triggers a use-after-free inside the verifier — the checker
    is itself kernel attack surface."""
    def load(bpf: BpfSubsystem):
        asm = Asm()
        for round_no in range(2):
            (asm.mov64_imm(R1, 4)
                .ld_func(R2, "cb")
                .mov64_imm(R3, 0)
                .mov64_imm(R4, 0)
                .call(ids.BPF_FUNC_loop))
        asm.mov64_imm(R0, 0).exit_()
        asm.label("cb").mov64_imm(R0, 0).exit_()
        return bpf.load_program(asm.program(), ProgType.KPROBE,
                                "double_inline")
    return _ebpf_outcome(kernel, load,
                         lambda bpf, p: bpf.run_on_current_task(p),
                         bugs=bugs)


def ebpf_type_confusion(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """Use a scalar from a map value as a pointer."""
    def load(bpf: BpfSubsystem):
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=1)
        asm = (Asm()
               .st_imm(4, R10, -4, 0)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .ld_map_fd(R1, amap.map_fd)
               .call(ids.BPF_FUNC_map_lookup_elem)
               .jmp_imm("jne", R0, 0, "have")
               .mov64_imm(R0, 0).exit_()
               .label("have")
               .ldx(8, R1, R0, 0)   # scalar from map
               .ldx(8, R0, R1, 0)   # deref it as a pointer
               .exit_())
        return bpf.load_program(asm.program(), ProgType.KPROBE,
                                "type_confusion")
    return _ebpf_outcome(kernel, load,
                         lambda bpf, p: bpf.run_on_current_task(p),
                         bugs=bugs)


def ebpf_kptr_leak(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """Store the current task_struct address into a user-readable map
    via bpf_get_current_task — KASLR defeat, allowed by design."""
    def load(bpf: BpfSubsystem):
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=1)
        asm = (Asm()
               .call(ids.BPF_FUNC_get_current_task)
               .mov64_reg(R6, R0)
               .st_imm(4, R10, -4, 0)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .ld_map_fd(R1, amap.map_fd)
               .call(ids.BPF_FUNC_map_lookup_elem)
               .jmp_imm("jne", R0, 0, "have")
               .mov64_imm(R0, 0).exit_()
               .label("have")
               .stx(8, R0, 0, R6)   # kernel address -> map
               .mov64_imm(R0, 0)
               .exit_())
        return bpf.load_program(asm.program(), ProgType.KPROBE,
                                "kptr_leak")

    def run(bpf: BpfSubsystem, prog) -> None:
        bpf.run_on_current_task(prog)
        amap = bpf.all_maps()[0]
        leaked = int.from_bytes(amap.read_value(0), "little")
        if leaked == kernel.current_task.address:
            raise MemoryFault("kernel address leaked to user-readable "
                              "map", address=leaked,
                              source="bpf:kptr_leak")
    return _ebpf_outcome(kernel, load, run, bugs=bugs)


def ebpf_refcount_correct_but_leaks(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """A *well-behaved* program (lookup + release, verifier-approved)
    still leaks a request-sock reference via the [35] helper bug."""
    listener = kernel.create_socket(src_ip=0x0A000001, src_port=80)
    listener.write_field("state", 12)  # TCP_NEW_SYN_RECV
    listener.pending_reqsk = kernel.create_request_sock("pending80")

    def load(bpf: BpfSubsystem):
        asm = (Asm()
               # tuple on stack: daddr=10.0.0.1, dport=80
               .st_imm(4, R10, -12, 0)
               .st_imm(4, R10, -8, 0x0A000001)
               .st_imm(2, R10, -4, 0)
               .st_imm(2, R10, -2, 80)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -12)
               .mov64_imm(R3, 12)
               .mov64_imm(R4, 0)
               .mov64_imm(R5, 0)
               .call(ids.BPF_FUNC_sk_lookup_tcp)
               .jmp_imm("jne", R0, 0, "found")
               .mov64_imm(R0, 0).exit_()
               .label("found")
               .mov64_reg(R1, R0)
               .call(ids.BPF_FUNC_sk_release)   # dutiful release
               .mov64_imm(R0, 0)
               .exit_())
        return bpf.load_program(asm.program(), ProgType.XDP,
                                "dutiful_lookup")

    def run(bpf: BpfSubsystem, prog) -> None:
        bpf.run_on_packet(prog, b"payload")
    return _ebpf_outcome(kernel, load, run, bugs=bugs)


def ebpf_missing_release(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """Acquire a socket and exit without releasing: verifier rejects."""
    kernel.create_socket(src_ip=0x0A000001, src_port=80)

    def load(bpf: BpfSubsystem):
        asm = (Asm()
               .st_imm(4, R10, -12, 0)
               .st_imm(4, R10, -8, 0x0A000001)
               .st_imm(2, R10, -4, 0)
               .st_imm(2, R10, -2, 80)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -12)
               .mov64_imm(R3, 12)
               .mov64_imm(R4, 0)
               .mov64_imm(R5, 0)
               .call(ids.BPF_FUNC_sk_lookup_tcp)
               .mov64_imm(R0, 0)
               .exit_())
        return bpf.load_program(asm.program(), ProgType.XDP,
                                "leaky_lookup")
    return _ebpf_outcome(kernel, load,
                         lambda bpf, p: bpf.run_on_packet(p, b"x"),
                         bugs=bugs)


def ebpf_infinite_loop(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """A plain backward jump: the classic rejected non-terminator."""
    def load(bpf: BpfSubsystem):
        asm = Asm().label("top").ja("top").exit_()
        return bpf.load_program(asm.program(), ProgType.KPROBE, "spin")
    return _ebpf_outcome(kernel, load,
                         lambda bpf, p: bpf.run_on_current_task(p),
                         bugs=bugs)


def ebpf_rcu_stall(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """The §2.2 termination attack: nested bpf_loop, verified,
    runs for (controllably) unbounded virtual time under the RCU read
    lock — stalls observed, kernel cannot stop it."""
    def load(bpf: BpfSubsystem):
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=16)
        asm = (Asm()
               .mov64_imm(R1, 1 << 23)
               .ld_func(R2, "outer")
               .mov64_imm(R3, 0)
               .mov64_imm(R4, 0)
               .call(ids.BPF_FUNC_loop)
               .mov64_imm(R0, 0)
               .exit_()
               .label("outer")
               .mov64_imm(R1, 1 << 23)
               .ld_func(R2, "inner")
               .mov64_imm(R3, 0)
               .mov64_imm(R4, 0)
               .call(ids.BPF_FUNC_loop)
               .mov64_imm(R0, 0)
               .exit_()
               .label("inner")
               .st_imm(4, R10, -4, 3)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .ld_map_fd(R1, amap.map_fd)
               .call(ids.BPF_FUNC_map_lookup_elem)
               .jmp_imm("jeq", R0, 0, "skip")
               .st_imm(8, R0, 0, 1)
               .label("skip")
               .mov64_imm(R0, 0)
               .exit_())
        return bpf.load_program(asm.program(), ProgType.KPROBE,
                                "rcu_stall")
    return _ebpf_outcome(kernel, load,
                         lambda bpf, p: bpf.run_on_current_task(p),
                         bugs=bugs)


def ebpf_stack_oob(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """Write below the 512-byte stack frame."""
    def load(bpf: BpfSubsystem):
        asm = (Asm()
               .st_imm(8, R10, -520, 0x41)
               .mov64_imm(R0, 0)
               .exit_())
        return bpf.load_program(asm.program(), ProgType.KPROBE,
                                "stack_oob")
    return _ebpf_outcome(kernel, load,
                         lambda bpf, p: bpf.run_on_current_task(p),
                         bugs=bugs)


def ebpf_deep_recursion(kernel: Kernel, bugs: Optional[BugConfig] = None) -> Outcome:
    """BPF-to-BPF self-recursion: frame limit rejects it."""
    def load(bpf: BpfSubsystem):
        asm = (Asm()
               .label("f")
               .call_subprog("f")
               .mov64_imm(R0, 0)
               .exit_())
        return bpf.load_program(asm.program(), ProgType.KPROBE,
                                "recursion")
    return _ebpf_outcome(kernel, load,
                         lambda bpf, p: bpf.run_on_current_task(p),
                         bugs=bugs)


# ---------------------------------------------------------------------------
# SafeLang attacks
# ---------------------------------------------------------------------------

SAFELANG_WILD_POINTER = """
fn prog(ctx: XdpCtx) -> i64 {
    let addr: u64 = 0xffff8880dead0000;
    let value = *addr;          // no such operation on integers
    return value as i64;
}
"""

SAFELANG_UNSAFE_BLOCK = """
fn prog(ctx: XdpCtx) -> i64 {
    unsafe {
    }
    return 0;
}
"""

SAFELANG_TYPE_CONFUSION = """
fn prog(ctx: XdpCtx) -> i64 {
    let x: u64 = true;          // bool is not u64
    return x as i64;
}
"""

SAFELANG_USE_AFTER_MOVE = """
fn prog(ctx: XdpCtx) -> i64 {
    match sk_lookup_tcp(167772161, 80) {
        Some(s) => {
            drop(s);
            return s.src_port() as i64;   // use after drop
        },
        None => { return 0; },
    }
    return 0;
}
"""

SAFELANG_INFINITE_LOOP = """
fn prog(ctx: XdpCtx) -> i64 {
    let mut i: u64 = 0;
    while true {
        i = i + 1;
        if i == 0 { break; }    // never
    }
    return 0;
}
"""

SAFELANG_LOOP_WITH_RESOURCES = """
fn prog(ctx: XdpCtx) -> i64 {
    let mut i: u64 = 0;
    while true {
        match sk_lookup_tcp(167772161, 80) {
            Some(s) => { i = i + s.state(); },
            None => { i = i + 1; },
        }
    }
    return i as i64;
}
"""

SAFELANG_POOL_EXHAUSTION = """
fn prog(ctx: XdpCtx) -> i64 {
    // grab pool-backed vectors forever: allocation is bounded by the
    // pre-allocated per-CPU pool, and the loop by the watchdog
    let mut got: u64 = 0;
    while true {
        let v = vec_new();
        if v.push(1) { got = got + 1; }
    }
    return got as i64;
}
"""

SAFELANG_DEEP_RECURSION = """
fn dive(depth: u64) -> u64 {
    return dive(depth + 1);
}
fn prog(ctx: XdpCtx) -> i64 {
    return dive(0) as i64;
}
"""

SAFELANG_OVERFLOW = """
fn prog(ctx: XdpCtx) -> i64 {
    let max: u64 = 18446744073709551615;
    let wrapped = max + 1;
    return wrapped as i64;
}
"""

SAFELANG_CALL_UNKNOWN = """
fn prog(ctx: XdpCtx) -> i64 {
    jump_to_kernel_code(0xffff888000000000);
    return 0;
}
"""


def _sl(source: str, name: str, needs_socket: bool = False):
    def run(kernel: Kernel,
            bugs: Optional[BugConfig] = None) -> Outcome:
        if needs_socket:
            sock = kernel.create_socket(src_ip=0x0A000001, src_port=80)
            sock.write_field("state", 12)
            sock.pending_reqsk = kernel.create_request_sock("pending")
        return _safelang_outcome(kernel, source, name)
    return run


# ---------------------------------------------------------------------------
# the corpus
# ---------------------------------------------------------------------------

def build_corpus() -> List[AttackCase]:
    """All attack cases, both frameworks, Table 2 ordering."""
    prop_mem = "No arbitrary memory access"
    prop_cf = "No arbitrary control-flow transfer"
    prop_type = "Type safety"
    prop_res = "Safe resource management"
    prop_term = "Termination"
    prop_stack = "Stack protection"
    return [
        # -- memory ---------------------------------------------------------
        AttackCase("ebpf-wild-ptr", prop_mem, "ebpf",
                   "dereference a fabricated kernel address",
                   ebpf_wild_pointer, "verifier",
                   Outcome.REJECTED_STATIC),
        AttackCase("ebpf-probe-read", prop_mem, "ebpf",
                   "read arbitrary kernel memory via bpf_probe_read",
                   ebpf_probe_read_anywhere, "verifier (bypassed by "
                   "helper)", Outcome.KERNEL_COMPROMISED,
                   notes="verified program; helper is the escape hatch"),
        AttackCase("ebpf-sys-bpf-crash", prop_mem, "ebpf",
                   "NULL pointer inside bpf_sys_bpf union attr "
                   "(CVE-2022-2785)",
                   ebpf_sys_bpf_crash, "verifier (bypassed by helper)",
                   Outcome.KERNEL_COMPROMISED),
        AttackCase("ebpf-storage-null", prop_mem, "ebpf",
                   "NULL task into bpf_task_storage_get [42]",
                   ebpf_task_storage_null,
                   "verifier (bypassed by helper)",
                   Outcome.KERNEL_COMPROMISED),
        AttackCase("ebpf-ptr-arith", prop_mem, "ebpf",
                   "pointer arithmetic before null check "
                   "(CVE-2022-23222)",
                   ebpf_ptr_arith_or_null, "verifier (buggy)",
                   Outcome.KERNEL_COMPROMISED),
        AttackCase("ebpf-verifier-uaf", prop_mem, "ebpf",
                   "use-after-free inside the verifier's own "
                   "loop-inlining code, triggered at LOAD time [54]",
                   ebpf_verifier_uaf, "verifier (itself the victim)",
                   Outcome.KERNEL_COMPROMISED,
                   notes="the checker is kernel attack surface too"),
        AttackCase("sl-wild-ptr", prop_mem, "safelang",
                   "dereference an integer as a pointer",
                   _sl(SAFELANG_WILD_POINTER, "wild"),
                   "language safety", Outcome.REJECTED_STATIC),
        AttackCase("sl-unsafe", prop_mem, "safelang",
                   "smuggle an unsafe block into the extension",
                   _sl(SAFELANG_UNSAFE_BLOCK, "unsafe"),
                   "language safety", Outcome.REJECTED_STATIC),
        # -- control flow -----------------------------------------------------
        AttackCase("ebpf-hidden-insn", prop_cf, "ebpf",
                   "jump into the second half of ld_imm64",
                   ebpf_jump_into_ld_imm64, "verifier",
                   Outcome.REJECTED_STATIC),
        AttackCase("ebpf-jit-hijack", prop_cf, "ebpf",
                   "JIT branch miscompile skips a verified check "
                   "(CVE-2021-29154)",
                   ebpf_jit_hijack, "verifier (bypassed by JIT)",
                   Outcome.KERNEL_COMPROMISED),
        AttackCase("sl-call-unknown", prop_cf, "safelang",
                   "call a function outside the fixed symbol table",
                   _sl(SAFELANG_CALL_UNKNOWN, "unknown_call"),
                   "language safety", Outcome.REJECTED_STATIC),
        # -- type safety ---------------------------------------------------------
        AttackCase("ebpf-type-confusion", prop_type, "ebpf",
                   "treat a map-value scalar as a pointer",
                   ebpf_type_confusion, "verifier",
                   Outcome.REJECTED_STATIC),
        AttackCase("ebpf-kptr-leak", prop_type, "ebpf",
                   "leak a task_struct address through "
                   "bpf_get_current_task (scalar-typed kernel ptr)",
                   ebpf_kptr_leak, "verifier (blind: helper returns a "
                   "scalar)", Outcome.KERNEL_COMPROMISED),
        AttackCase("sl-type-confusion", prop_type, "safelang",
                   "assign a bool where u64 is expected",
                   _sl(SAFELANG_TYPE_CONFUSION, "confused"),
                   "language safety", Outcome.REJECTED_STATIC),
        # -- resources -------------------------------------------------------------
        AttackCase("ebpf-missing-release", prop_res, "ebpf",
                   "acquire a socket reference and exit",
                   ebpf_missing_release, "verifier",
                   Outcome.REJECTED_STATIC),
        AttackCase("ebpf-reqsk-leak", prop_res, "ebpf",
                   "well-behaved lookup/release still leaks a "
                   "request_sock ref [35]",
                   ebpf_refcount_correct_but_leaks,
                   "verifier (bypassed by helper)",
                   Outcome.KERNEL_COMPROMISED),
        AttackCase("sl-use-after-move", prop_res, "safelang",
                   "use a socket handle after dropping it",
                   _sl(SAFELANG_USE_AFTER_MOVE, "uam",
                       needs_socket=True),
                   "language safety (ownership)",
                   Outcome.REJECTED_STATIC),
        AttackCase("sl-pool-exhaustion", prop_res, "safelang",
                   "allocate pool-backed memory forever",
                   _sl(SAFELANG_POOL_EXHAUSTION, "pool_hog"),
                   "runtime protection (bounded pool + watchdog)",
                   Outcome.CONTAINED,
                   notes="allocation failure is a value, not a crash; "
                         "the loop dies at the watchdog"),
        AttackCase("sl-loop-resources", prop_res, "safelang",
                   "acquire sockets forever in an infinite loop",
                   _sl(SAFELANG_LOOP_WITH_RESOURCES, "loop_res",
                       needs_socket=True),
                   "runtime protection (watchdog + cleanup)",
                   Outcome.CONTAINED),
        # -- termination --------------------------------------------------------------
        AttackCase("ebpf-infinite-loop", prop_term, "ebpf",
                   "plain infinite loop",
                   ebpf_infinite_loop, "verifier",
                   Outcome.REJECTED_STATIC),
        AttackCase("ebpf-rcu-stall", prop_term, "ebpf",
                   "nested bpf_loop runs (practically) forever under "
                   "the RCU read lock (§2.2)",
                   ebpf_rcu_stall, "verifier (bypassed by helper)",
                   Outcome.KERNEL_COMPROMISED),
        AttackCase("sl-infinite-loop", prop_term, "safelang",
                   "plain infinite loop",
                   _sl(SAFELANG_INFINITE_LOOP, "spin"),
                   "runtime protection (watchdog)",
                   Outcome.CONTAINED),
        AttackCase("sl-overflow", prop_term, "safelang",
                   "u64 overflow panics (contained), never wraps into "
                   "a bad state",
                   _sl(SAFELANG_OVERFLOW, "overflow"),
                   "language safety + runtime containment",
                   Outcome.CONTAINED),
        # -- stack ------------------------------------------------------------------------
        AttackCase("ebpf-stack-oob", prop_stack, "ebpf",
                   "write below the 512-byte stack frame",
                   ebpf_stack_oob, "verifier",
                   Outcome.REJECTED_STATIC),
        AttackCase("ebpf-recursion", prop_stack, "ebpf",
                   "unbounded BPF-to-BPF recursion",
                   ebpf_deep_recursion, "verifier",
                   Outcome.REJECTED_STATIC),
        AttackCase("sl-recursion", prop_stack, "safelang",
                   "unbounded recursion",
                   _sl(SAFELANG_DEEP_RECURSION, "dive"),
                   "runtime protection (stack guard)",
                   Outcome.CONTAINED),
    ]


def run_case(case: AttackCase,
             kernel: Optional[Kernel] = None,
             bugs: Optional[BugConfig] = None) -> Outcome:
    """Execute one case on a fresh kernel (buggy-era bugs by
    default; pass BugConfig.all_patched() for a fixed kernel)."""
    kernel = kernel or Kernel()
    return case.run(kernel, bugs)
