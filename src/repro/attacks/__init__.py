"""Executable attack corpus.

Every safety property in the paper's Table 2 gets attack programs for
both frameworks; running the corpus produces the enforcement matrix
(who catches what, and how).  The §2.2 attacks (kernel crash through
``bpf_sys_bpf``, RCU stall through nested ``bpf_loop``) live here as
corpus entries too, so the experiments and the test suite share one
source of truth for them.
"""

from repro.attacks.corpus import (
    AttackCase,
    Outcome,
    build_corpus,
    run_case,
)

__all__ = ["AttackCase", "Outcome", "build_corpus", "run_case"]
