"""§2.1 cost experiment: verification is expensive; signatures are not.

"Since the verifier needs to evaluate all possible execution paths, it
has to limit the eBPF program size and complexity to complete the
verification in time."

Measured here:

1. **verification work vs program size** — straight-line programs:
   processed instructions grow linearly with size, and programs over
   the size cap are rejected;
2. **verification work vs branching** — diamond chains: with state
   pruning the cost stays polynomial, without pruning it explodes
   exponentially until the complexity cap rejects the program (the
   DESIGN.md pruning ablation);
3. **signature validation vs size** — the proposed framework's load
   cost is a flat hash over the image: the asymptotic contrast that
   motivates decoupling (§3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.signing import SigningKey
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.isa import R0, R1
from repro.ebpf.verifier.limits import VerifierLimits
from repro.errors import VerifierError, VerifierLimitExceeded
from repro.experiments import report
from repro.kernel.kernel import Kernel


def straight_line_program(size: int) -> list:
    """``size``-ish instructions of flat ALU work."""
    asm = Asm().mov64_imm(R0, 0)
    for index in range(size - 3):
        asm.alu64_imm("add", R0, index & 0xFF)
    asm.alu64_imm("and", R0, 0)
    asm.exit_()
    return asm.program()


def diamond_program(branches: int) -> list:
    """A chain of ``branches`` independent if/else diamonds, each
    touching a different register pattern so states differ."""
    asm = Asm().mov64_imm(R0, 0)
    for index in range(branches):
        asm.jmp_imm("jeq", R1, index + 1, f"odd{index}")
        asm.alu64_imm("add", R0, 1)
        asm.ja(f"join{index}")
        asm.label(f"odd{index}")
        asm.alu64_imm("add", R0, 2)
        asm.label(f"join{index}")
    asm.alu64_imm("and", R0, 0)
    asm.exit_()
    return asm.program()


@dataclass
class CostResult:
    """All four measurement series."""

    #: (program size, insns processed, wall seconds)
    size_series: List[Tuple[int, int, float]]
    #: size at which the max_insns cap rejects
    size_cap_rejected_at: Optional[int]
    #: (branch count, insns processed with pruning)
    pruned_series: List[Tuple[int, int]]
    #: (branch count, insns processed without pruning, rejected?)
    unpruned_series: List[Tuple[int, int, bool]]
    #: (image size bytes, signature check wall seconds)
    signature_series: List[Tuple[int, float]]


def run() -> CostResult:
    """Run all measurements."""
    kernel = Kernel()
    bpf = BpfSubsystem(kernel)

    size_series = []
    for size in (64, 256, 1024, 4000):
        program = straight_line_program(size)
        start = time.perf_counter()
        prog = bpf.load_program(program, ProgType.KPROBE,
                                f"flat{size}")
        wall = time.perf_counter() - start
        size_series.append(
            (len(program), prog.verifier_stats.insns_processed, wall))

    size_cap_rejected_at: Optional[int] = None
    try:
        bpf.load_program(straight_line_program(5000), ProgType.KPROBE,
                         "too_big")
    except VerifierLimitExceeded:
        size_cap_rejected_at = 5000

    pruned_series = []
    unpruned_series = []
    small_limits = VerifierLimits(complexity_limit=200_000)
    for branches in (4, 8, 12, 16):
        program = diamond_program(branches)
        prog = bpf.load_program(program, ProgType.KPROBE,
                                f"diamond{branches}",
                                limits=small_limits)
        pruned_series.append(
            (branches, prog.verifier_stats.insns_processed))
        try:
            prog = bpf.load_program(program, ProgType.KPROBE,
                                    f"diamond{branches}x",
                                    prune_states=False,
                                    limits=small_limits)
            unpruned_series.append(
                (branches, prog.verifier_stats.insns_processed, False))
        except VerifierLimitExceeded:
            unpruned_series.append(
                (branches, small_limits.complexity_limit, True))

    key = SigningKey.generate("bench")
    signature_series = []
    for size_kib in (1, 16, 256, 1024):
        image = bytes(size_kib * 1024)
        signature = key.sign(image)
        start = time.perf_counter()
        for __ in range(20):
            key.verify(image, signature)
        wall = (time.perf_counter() - start) / 20
        signature_series.append((size_kib * 1024, wall))

    return CostResult(
        size_series=size_series,
        size_cap_rejected_at=size_cap_rejected_at,
        pruned_series=pruned_series,
        unpruned_series=unpruned_series,
        signature_series=signature_series,
    )


def render(result: CostResult) -> str:
    """The experiment artifact."""
    parts = [report.render_table(
        ["program insns", "verifier steps", "wall (ms)"],
        [(n, steps, f"{w * 1e3:.2f}")
         for n, steps, w in result.size_series],
        title="§2.1 cost: verification work vs program size")]
    parts.append(
        f"size cap: a {result.size_cap_rejected_at}-insn program is "
        "rejected (max_insns=4096)"
        if result.size_cap_rejected_at else
        "size cap: NOT OBSERVED")
    parts.append("")
    rows = []
    unpruned_by_branch = {b: (steps, rejected)
                          for b, steps, rejected in
                          result.unpruned_series}
    for branches, pruned_steps in result.pruned_series:
        steps, rejected = unpruned_by_branch[branches]
        rows.append((branches, pruned_steps,
                     f"{steps}{' (REJECTED: too complex)' if rejected else ''}"))
    parts.append(report.render_table(
        ["branch diamonds", "steps (pruning on)",
         "steps (pruning off)"], rows,
        title="Path explosion: the state-pruning ablation"))
    parts.append("")
    parts.append(report.render_table(
        ["image bytes", "signature check (us)"],
        [(size, f"{w * 1e6:.1f}") for size, w in
         result.signature_series],
        title="The contrast: signature validation cost "
              "(proposed framework load path)"))
    parts.append("")
    parts.append("Shape checks:")
    linear = result.size_series[-1][1] / result.size_series[0][1]
    size_ratio = result.size_series[-1][0] / result.size_series[0][0]
    parts.append(report.check(
        "verifier work scales ~linearly on straight-line code "
        f"({linear:.0f}x steps for {size_ratio:.0f}x size)",
        0.5 * size_ratio <= linear <= 2.0 * size_ratio))
    parts.append(report.check(
        "programs beyond the size cap are rejected",
        result.size_cap_rejected_at is not None))
    explosion = any(rejected for __, __, rejected in
                    result.unpruned_series)
    parts.append(report.check(
        "without pruning, branching explodes past the complexity cap "
        "(rejection observed)", explosion))
    last_pruned = result.pruned_series[-1][1]
    parts.append(report.check(
        "with pruning, the same programs verify cheaply "
        f"({last_pruned} steps at 16 diamonds)",
        last_pruned < 10_000))
    sig_ratio = (result.signature_series[-1][1]
                 / max(result.signature_series[0][1], 1e-9))
    byte_ratio = (result.signature_series[-1][0]
                  / result.signature_series[0][0])
    parts.append(report.check(
        f"signature check is a flat hash: {sig_ratio:.0f}x time for "
        f"{byte_ratio:.0f}x bytes (linear in size, no path term)",
        sig_ratio <= 4 * byte_ratio))
    return "\n".join(parts)


if __name__ == "__main__":
    print(render(run()))
