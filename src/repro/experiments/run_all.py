"""Regenerate every table and figure: ``python -m repro.experiments.run_all``."""

from __future__ import annotations

import sys

from repro.experiments import (
    exp_crash_sys_bpf,
    exp_expressiveness,
    fig1_fig5_pipelines,
    exp_helper_retirement,
    exp_mpk_protection,
    exp_rcu_stall,
    exp_verification_cost,
    fig2_verifier_loc,
    fig3_helper_complexity,
    fig4_helper_growth,
    table1_bug_stats,
    table2_enforcement,
)

EXPERIMENTS = [
    ("Figures 1 & 5", fig1_fig5_pipelines),
    ("Figure 2", fig2_verifier_loc),
    ("Figure 3", fig3_helper_complexity),
    ("Figure 4", fig4_helper_growth),
    ("Table 1", table1_bug_stats),
    ("Table 2", table2_enforcement),
    ("§2.2 crash", exp_crash_sys_bpf),
    ("§2.2 RCU stall", exp_rcu_stall),
    ("§2.1 verification cost", exp_verification_cost),
    ("§2.1 expressiveness (false positives)", exp_expressiveness),
    ("§3.2 helper retirement", exp_helper_retirement),
    ("§4 protection from unsafe code", exp_mpk_protection),
]


def main() -> int:
    """Run everything; returns 0 when every shape check passes."""
    failures = 0
    for label, module in EXPERIMENTS:
        print()
        print("#" * 72)
        print(f"# {label}  ({module.__name__})")
        print("#" * 72)
        text = module.render(module.run())
        print(text)
        failures += text.count("[FAIL]")
    print()
    if failures:
        print(f"{failures} shape check(s) FAILED")
    else:
        print("all shape checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
