"""Experiment drivers: one module per paper table/figure.

Each module exposes ``run()`` returning a structured result and
``render(result)`` producing the text table/series the paper reports.
The benchmarks in ``benchmarks/`` call these, as do the examples;
``python -m repro.experiments.run_all`` regenerates everything.

Index (see DESIGN.md §4 for the full mapping):

* :mod:`fig2_verifier_loc` — verifier LoC growth,
* :mod:`fig3_helper_complexity` — helper call-graph sizes,
* :mod:`fig4_helper_growth` — helper count growth,
* :mod:`table1_bug_stats` — bug statistics + executable cross-check,
* :mod:`table2_enforcement` — property/enforcement matrix,
* :mod:`exp_crash_sys_bpf` — the §2.2 kernel-crash experiment,
* :mod:`exp_rcu_stall` — the §2.2 termination experiment,
* :mod:`exp_verification_cost` — §2.1 verification expense,
* :mod:`exp_helper_retirement` — the §3.2 survey.
"""
