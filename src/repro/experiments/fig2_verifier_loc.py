"""Figure 2: lines of code of the eBPF verifier over time.

Regenerates the series (verifier LoC per kernel version, 2014-2022)
and checks the paper's shape claims: monotone growth, roughly 7x over
the period, ~12k LoC by v6.1.  As a cross-check, measures this repo's
*own* verifier and reports its per-module breakdown — the same
phenomenon (feature checks dominating a small core) at model scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.history import (
    SeriesPoint,
    VERIFIER_FEATURES,
    verifier_loc_series,
)
from repro.analysis.loc import verifier_loc_breakdown
from repro.experiments import report


@dataclass
class Fig2Result:
    """Everything Figure 2 shows, plus the cross-check."""

    series: List[SeriesPoint]
    growth_factor: float
    final_loc: int
    own_verifier_breakdown: Dict[str, int]
    own_verifier_total: int
    features_by_version: Dict[str, List[str]]

    @property
    def monotone(self) -> bool:
        """True when the LoC series never decreases."""
        values = [p.value for p in self.series]
        return all(a <= b for a, b in zip(values, values[1:]))


def run() -> Fig2Result:
    """Regenerate Figure 2."""
    series = verifier_loc_series()
    breakdown = verifier_loc_breakdown()
    return Fig2Result(
        series=series,
        growth_factor=series[-1].value / series[0].value,
        final_loc=series[-1].value,
        own_verifier_breakdown=breakdown,
        own_verifier_total=sum(breakdown.values()),
        features_by_version=VERIFIER_FEATURES,
    )


def render(result: Fig2Result) -> str:
    """The Figure 2 artifact."""
    parts = [report.render_series(
        [(f"{p.version} ({p.year})", p.value) for p in result.series],
        title="Figure 2: LoC of the eBPF verifier by kernel version",
        x_label="kernel version", y_label="verifier LoC")]
    parts.append("")
    parts.append(report.render_table(
        ["module", "code LoC"],
        sorted(result.own_verifier_breakdown.items()),
        title="Cross-check: this reproduction's verifier, by module"))
    parts.append("")
    parts.append("Shape checks:")
    parts.append(report.check(
        "LoC growth is monotone across versions", result.monotone))
    parts.append(report.check(
        f"~7x growth 2014->2022 (measured {result.growth_factor:.1f}x)",
        5.0 <= result.growth_factor <= 9.0))
    parts.append(report.check(
        f"~12k LoC by v6.1 (measured {result.final_loc})",
        11_000 <= result.final_loc <= 13_000))
    return "\n".join(parts)


if __name__ == "__main__":
    print(render(run()))
