"""Per-bug executable demonstrations.

For every modeled Table 1 bug flag, ``fire(bugs)`` runs a minimal
trigger on a fresh kernel with the given :class:`BugConfig` and
reports whether the bug manifested.  The Table 1 experiment runs each
demo twice — buggy era and patched — and requires *fires* then
*doesn't fire*.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.attacks import Outcome, build_corpus, run_case
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.bugs import BugConfig
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R4, R6, R10
from repro.ebpf.maps import ArrayMap
from repro.errors import KernelOops, MemoryFault, VerifierError
from repro.kernel.kernel import Kernel


def _corpus_fires(case_id: str, bugs: BugConfig) -> bool:
    """True when the corpus attack compromises the kernel."""
    case = next(c for c in build_corpus() if c.case_id == case_id)
    return run_case(case, bugs=bugs) == Outcome.KERNEL_COMPROMISED


def fire_sys_bpf_null_union(bugs: BugConfig) -> bool:
    """CVE-2022-2785: NULL key pointer inside bpf_sys_bpf attr."""
    return _corpus_fires("ebpf-sys-bpf-crash", bugs)


def fire_task_storage_null_deref(bugs: BugConfig) -> bool:
    """[42]: NULL task into bpf_task_storage_get."""
    return _corpus_fires("ebpf-storage-null", bugs)


def fire_verifier_ptr_arith_unchecked(bugs: BugConfig) -> bool:
    """CVE-2022-23222: unchecked or-null pointer arithmetic."""
    return _corpus_fires("ebpf-ptr-arith", bugs)


def fire_jit_branch_miscompile(bugs: BugConfig) -> bool:
    """CVE-2021-29154: branch displacement miscompilation."""
    return _corpus_fires("ebpf-jit-hijack", bugs)


def fire_sk_lookup_reqsk_leak(bugs: BugConfig) -> bool:
    """[35]: request-sock reference leaked by a correct program."""
    return _corpus_fires("ebpf-reqsk-leak", bugs)


def fire_task_stack_missing_ref(bugs: BugConfig) -> bool:
    """[34]: bpf_get_task_stack races task-stack teardown.

    The racing exit is simulated by freeing the target task's kernel
    stack before the (verified) program walks it."""
    kernel = Kernel()
    victim = kernel.create_task(comm="exiting")
    kernel.mem.kfree(victim.kernel_stack)   # the concurrent exit
    bpf = BpfSubsystem(kernel, bugs=bugs)
    asm = (Asm()
           .ld_imm64(R1, victim.address)
           .mov64_reg(R2, R10).alu64_imm("add", R2, -64)
           .st_imm(8, R10, -64, 0)   # init the buffer head
           .mov64_imm(R3, 64)
           .mov64_imm(R4, 0)
           .call(ids.BPF_FUNC_get_task_stack)
           .mov64_imm(R0, 0)
           .exit_())
    prog = bpf.load_program(asm.program(), ProgType.KPROBE,
                            "stack_walk")
    try:
        bpf.run_on_current_task(prog)
    except MemoryFault:
        return True
    return not kernel.healthy


def fire_array_map_32bit_overflow(bugs: BugConfig) -> bool:
    """[36]: element offset computed modulo 2**32.

    The real trigger needs a multi-GiB map (index * value_size >=
    2**32), which the simulator cannot back with real storage; the
    demo therefore exercises the live offset computation directly and
    reports whether a wrapped (aliasing) offset was produced."""
    kernel = Kernel()
    bpf = BpfSubsystem(kernel, bugs=bugs)
    amap = bpf.create_map("array", key_size=4, value_size=64,
                          max_entries=4)
    assert isinstance(amap, ArrayMap)
    huge_index = 1 << 26            # 2**26 * 64 == 2**32: wraps to 0
    offset = amap.element_offset(huge_index)
    return offset != huge_index * amap.value_size


def fire_verifier_ptr_leak(bugs: BugConfig) -> bool:
    """[13]-class: the verifier fails to reject a pointer store into
    a user-readable map."""
    kernel = Kernel()
    bpf = BpfSubsystem(kernel, bugs=bugs)
    amap = bpf.create_map("array", key_size=4, value_size=8,
                          max_entries=1)
    asm = (Asm()
           .st_imm(4, R10, -4, 0)
           .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
           .ld_map_fd(R1, amap.map_fd)
           .call(ids.BPF_FUNC_map_lookup_elem)
           .jmp_imm("jne", R0, 0, "have")
           .mov64_imm(R0, 0).exit_()
           .label("have")
           .mov64_reg(R6, R0)
           .stx(8, R6, 0, R6)     # store the map-value POINTER itself
           .mov64_imm(R0, 0)
           .exit_())
    try:
        prog = bpf.load_program(asm.program(), ProgType.KPROBE,
                                "ptr_store")
    except VerifierError:
        return False               # patched: store rejected
    bpf.run_on_current_task(prog)
    leaked = int.from_bytes(amap.read_value(0), "little")
    return leaked >= 0xFFFF_0000_0000_0000  # kernel address in the map


def fire_verifier_loop_inline_uaf(bugs: BugConfig) -> bool:
    """[54]: the verifier's own loop-inlining path is the victim."""
    kernel = Kernel()
    bpf = BpfSubsystem(kernel, bugs=bugs)

    def loop_call(asm: Asm, label: str) -> Asm:
        return (asm
                .mov64_imm(R1, 4)
                .ld_func(R2, label)
                .mov64_imm(R3, 0)
                .mov64_imm(R4, 0)
                .call(ids.BPF_FUNC_loop))

    asm = Asm()
    loop_call(asm, "cb")
    loop_call(asm, "cb")
    asm.mov64_imm(R0, 0).exit_()
    asm.label("cb").mov64_imm(R0, 0).exit_()
    try:
        bpf.load_program(asm.program(), ProgType.KPROBE,
                         "double_inline")
    except KernelOops:
        return True                 # the verifier crashed the kernel
    return False


#: flag name -> demo
DEMOS: Dict[str, Callable[[BugConfig], bool]] = {
    "sys_bpf_null_union": fire_sys_bpf_null_union,
    "sk_lookup_reqsk_leak": fire_sk_lookup_reqsk_leak,
    "task_stack_missing_ref": fire_task_stack_missing_ref,
    "array_map_32bit_overflow": fire_array_map_32bit_overflow,
    "task_storage_null_deref": fire_task_storage_null_deref,
    "verifier_ptr_arith_unchecked": fire_verifier_ptr_arith_unchecked,
    "verifier_ptr_leak": fire_verifier_ptr_leak,
    "verifier_loop_inline_uaf": fire_verifier_loop_inline_uaf,
    "jit_branch_miscompile": fire_jit_branch_miscompile,
}


def demo_for(flag: str) -> Optional[Callable[[BugConfig], bool]]:
    """The demo for a BugConfig flag, if modeled."""
    return DEMOS.get(flag)
