"""§3.2 experiment: safety without escape hatches.

Classifies the helper population (retire / simplify / wrap / keep) and
*executes* the replacements the paper names:

* ``bpf_strtol`` -> ``str.parse_i64()`` in SafeLang,
* ``bpf_strncmp`` -> a pure SafeLang function,
* ``bpf_loop`` -> a native loop (no helper call at all),
* the RAII/wrapped cases are covered by the bug-demo cross-checks
  (``exp_crash_sys_bpf``, Table 1) — referenced here by evidence
  string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.helper_survey import SurveyReport, run_survey
from repro.core import SafeExtensionFramework
from repro.experiments import report
from repro.kernel.kernel import Kernel

_STRTOL_REPLACEMENT = """
fn prog(ctx: XdpCtx) -> i64 {
    let text = "  -1234xyz";
    match text.parse_i64() {
        Some(v) => { return v; },
        None => { },
    }
    // strict parse fails on trailing garbage; parse the clean prefix
    let clean = "-1234";
    match clean.parse_i64() {
        Some(v) => { return v; },
        None => { return 0; },
    }
    return 0;
}
"""

_STRNCMP_REPLACEMENT = """
fn strncmp(a: str, b: str, n: u64) -> i64 {
    for i in 0..n {
        let x = byte_or_zero(a, i);
        let y = byte_or_zero(b, i);
        if x < y { return 0 - 1; }
        if x > y { return 1; }
        if x == 0 { return 0; }
    }
    return 0;
}

fn byte_or_zero(s: str, i: u64) -> u64 {
    match s.byte_at(i) {
        Some(b) => { return b; },
        None => { return 0; },
    }
    return 0;
}

fn prog(ctx: XdpCtx) -> i64 {
    if strncmp("kprobe", "kprobe", 6) != 0 { return 1; }
    if strncmp("kprobe", "kprobf", 6) >= 0 { return 2; }
    if strncmp("kprobf", "kprobe", 6) <= 0 { return 3; }
    if strncmp("abc", "abd", 2) != 0 { return 4; }
    return 0;
}
"""

_LOOP_REPLACEMENT = """
fn prog(ctx: XdpCtx) -> i64 {
    let mut acc: u64 = 0;
    for i in 0..1000 {
        acc = acc + (i as u64);
    }
    if acc == 499500 { return 0; }
    return 1;
}
"""


@dataclass
class RetirementResult:
    """Survey counts plus replacement execution results."""

    survey: SurveyReport
    strtol_value: int
    strncmp_value: int
    loop_value: int

    @property
    def replacements_work(self) -> bool:
        """All three language replacements produced correct output."""
        return (self.strtol_value == -1234
                and self.strncmp_value == 0
                and self.loop_value == 0)


def run() -> RetirementResult:
    """Classify the population and run the replacements."""
    survey = run_survey()
    kernel = Kernel()
    framework = SafeExtensionFramework(kernel)

    strtol = framework.install(_STRTOL_REPLACEMENT, "strtol_repl")
    strtol_value = framework.run_on_packet(strtol, b"x").value

    strncmp = framework.install(_STRNCMP_REPLACEMENT, "strncmp_repl")
    strncmp_value = framework.run_on_packet(strncmp, b"x").value

    loop = framework.install(_LOOP_REPLACEMENT, "loop_repl")
    loop_value = framework.run_on_packet(loop, b"x").value

    return RetirementResult(
        survey=survey,
        strtol_value=strtol_value,
        strncmp_value=strncmp_value,
        loop_value=loop_value,
    )


def render(result: RetirementResult) -> str:
    """The §3.2 artifact."""
    survey = result.survey
    parts = [report.render_table(
        ["classification", "# helpers"],
        sorted(survey.by_class().items()),
        title="§3.2 survey: fate of the 249 helpers under the "
              "proposed framework")]
    parts.append("")
    parts.append("Retired helpers (replaced by language features):")
    for name in survey.retired_names:
        parts.append(f"  - {name}")
    parts.append("")
    named = [(row.name, row.classification, row.evidence)
             for row in survey.rows if row.evidence]
    parts.append(report.render_table(
        ["helper", "class", "replacement evidence"], named,
        title="Paper-named helpers and their replacements"))
    parts.append("")
    parts.append("Shape checks:")
    parts.append(report.check(
        f"16 helpers retired (per [33]): {survey.count('retire')}",
        survey.count("retire") == 16))
    parts.append(report.check(
        f"strtol replacement returns -1234 ({result.strtol_value})",
        result.strtol_value == -1234))
    parts.append(report.check(
        f"strncmp replacement passes its vector ({result.strncmp_value})",
        result.strncmp_value == 0))
    parts.append(report.check(
        f"bpf_loop replaced by a native loop ({result.loop_value})",
        result.loop_value == 0))
    return "\n".join(parts)


if __name__ == "__main__":
    print(render(run()))
