"""Figure 3: call-graph complexity of each eBPF helper.

Runs the static call-graph measurement over the synthetic kernel for
all 249 helpers and checks the paper's numbers: minimum 0
(``bpf_get_current_pid_tgid``), maximum 4845 (``bpf_sys_bpf``), 52.2%
of helpers reaching 30+ kernel functions, 34.5% reaching 500+.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.callgraph import (
    ComplexityReport,
    log_histogram,
    measure_helper_complexity,
)
from repro.ebpf.helpers.registry import build_default_registry
from repro.experiments import report
from repro.kernel.funcdb import build_default_funcdb


@dataclass
class Fig3Result:
    """The measured population plus headline stats."""

    complexity: ComplexityReport
    histogram: List[Tuple[str, int]]
    frac_30_plus: float
    frac_500_plus: float
    max_name: str
    max_nodes: int
    pid_tgid_nodes: int


def run() -> Fig3Result:
    """Regenerate Figure 3 (measurement, not dataset lookup)."""
    db = build_default_funcdb()
    registry = build_default_registry()
    complexity = measure_helper_complexity(db, registry)
    by_name = {h.name: h.callgraph_nodes for h in complexity.helpers}
    return Fig3Result(
        complexity=complexity,
        histogram=log_histogram(complexity),
        frac_30_plus=complexity.fraction_at_least(30),
        frac_500_plus=complexity.fraction_at_least(500),
        max_name=complexity.max_helper.name,
        max_nodes=complexity.max_helper.callgraph_nodes,
        pid_tgid_nodes=by_name.get("bpf_get_current_pid_tgid", -1),
    )


def render(result: Fig3Result) -> str:
    """The Figure 3 artifact."""
    parts = [report.render_table(
        ["call-graph nodes", "# helpers"], result.histogram,
        title="Figure 3: call-graph size distribution over "
              f"{result.complexity.total} helpers")]
    parts.append("")
    parts.append(report.render_table(
        ["percentile", "call-graph nodes"],
        [(f"p{int(q * 100)}", result.complexity.percentile(q))
         for q in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0)],
        title="Distribution summary"))
    parts.append("")
    parts.append("Shape checks (paper: 249 helpers, min 0, max 4845, "
                 "52.2% >=30, 34.5% >=500):")
    parts.append(report.check(
        f"249 helpers measured ({result.complexity.total})",
        result.complexity.total == 249))
    parts.append(report.check(
        "bpf_get_current_pid_tgid calls 0 kernel functions "
        f"({result.pid_tgid_nodes})", result.pid_tgid_nodes == 0))
    parts.append(report.check(
        f"maximum is bpf_sys_bpf ({result.max_name}, "
        f"{result.max_nodes} nodes)",
        result.max_name == "bpf_sys_bpf"
        and 4500 <= result.max_nodes <= 5200))
    parts.append(report.check(
        f"~52.2% of helpers reach 30+ functions "
        f"({result.frac_30_plus:.1%})",
        0.47 <= result.frac_30_plus <= 0.58))
    parts.append(report.check(
        f"~34.5% of helpers reach 500+ functions "
        f"({result.frac_500_plus:.1%})",
        0.30 <= result.frac_500_plus <= 0.40))
    return "\n".join(parts)


if __name__ == "__main__":
    print(render(run()))
