"""§2.2 termination experiment: RCU stalls via nested ``bpf_loop``.

The paper: "Our crafted eBPF code uses nested calls to the bpf_loop
helper ... It gives us linear control over total runtime; while we
have run it continuously for 800 seconds (more than enough to observe
RCU stalls), we calculate that with more nested loops and eBPF tail
calls, we can craft a program that will run for millions of years."

This experiment reproduces all three parts:

1. **linearity** — sweep ``nr_loops`` and fit runtime = a * nr_loops,
2. **the 800-second run** — a nesting configuration that exceeds 800
   virtual seconds while holding the RCU read lock; stall warnings
   observed, and the kernel has no mechanism to stop it,
3. **the extrapolation** — using the measured per-iteration cost,
   compute the projected runtime of deeper nestings (reaching
   "millions of years" at depth 4-5),

and then the contrast: the same unbounded loop in the proposed
framework is killed by the watchdog within its budget, with trusted
cleanup and zero RCU stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core import SafeExtensionFramework
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R4, R10
from repro.experiments import report
from repro.kernel.kernel import Kernel
from repro.kernel.ktime import NSEC_PER_SEC

SECONDS_PER_YEAR = 365.25 * 24 * 3600

_SAFE_SPIN = """
fn prog(ctx: XdpCtx) -> i64 {
    let mut acc: u64 = 0;
    let mut i: u64 = 0;
    while true {
        i = i + 1;
        match map_lookup(0, 3) {
            Some(v) => { acc = acc + v; },
            None => { acc = acc + 1; },
        }
        map_update(0, 3, acc);
        if i == 0 { break; }    // never taken
    }
    return acc as i64;
}
"""


def _stall_program(nr_loops: int, depth: int, map_fd: int) -> list:
    """Nested bpf_loop program: ``depth`` levels of ``nr_loops`` each,
    innermost body doing map reads/writes (the paper's workload)."""
    asm = Asm()

    def emit_level(level: int) -> None:
        asm.mov64_imm(R1, nr_loops)
        asm.ld_func(R2, f"level{level + 1}"
                    if level + 1 < depth else "body")
        asm.mov64_imm(R3, 0)
        asm.mov64_imm(R4, 0)
        asm.call(ids.BPF_FUNC_loop)
        asm.mov64_imm(R0, 0)
        asm.exit_()

    emit_level(0)
    for level in range(1, depth):
        asm.label(f"level{level}")
        emit_level(level)
    asm.label("body")
    asm.st_imm(4, R10, -4, 3)
    asm.mov64_reg(R2, R10).alu64_imm("add", R2, -4)
    asm.ld_map_fd(R1, map_fd)
    asm.call(ids.BPF_FUNC_map_lookup_elem)
    asm.jmp_imm("jeq", R0, 0, "skip")
    asm.st_imm(8, R0, 0, 1)
    asm.label("skip")
    asm.mov64_imm(R0, 0)
    asm.exit_()
    return asm.program()


@dataclass
class StallResult:
    """Everything the experiment measures."""

    #: (nr_loops, virtual runtime ns) for the linearity sweep
    sweep: List[Tuple[int, int]]
    #: least-squares slope: ns per iteration
    ns_per_iteration: float
    #: linearity quality (max relative deviation from the fit)
    max_fit_error: float
    #: the long run
    long_run_seconds: float
    long_run_stalls: int
    first_stall_after_s: float
    #: projected runtimes per nesting depth (depth -> years)
    projections: List[Tuple[int, float]]
    #: the SafeLang contrast
    safelang_terminated: bool
    safelang_runtime_ns: int
    safelang_stalls: int
    safelang_kernel_healthy: bool


def run(sample_limit: int = 64) -> StallResult:
    """Run the full experiment (fast-forwarded virtual time)."""
    # 1. linearity sweep: single-level loop, varying nr_loops
    sweep: List[Tuple[int, int]] = []
    for nr_loops in (1 << 10, 1 << 13, 1 << 16, 1 << 19, 1 << 22):
        kernel = Kernel()
        bpf = BpfSubsystem(kernel)
        bpf.vm.loop_sample_limit = sample_limit
        amap = bpf.create_map("array", key_size=4, value_size=8,
                              max_entries=16)
        prog = bpf.load_program(
            _stall_program(nr_loops, depth=1, map_fd=amap.map_fd),
            ProgType.KPROBE, f"stall-{nr_loops}")
        start = kernel.clock.now_ns
        bpf.run_on_current_task(prog)
        sweep.append((nr_loops, kernel.clock.now_ns - start))

    # least-squares through the origin: runtime = slope * nr_loops
    num = sum(n * t for n, t in sweep)
    den = sum(n * n for n, t in sweep)
    slope = num / den
    max_err = max(abs(t - slope * n) / (slope * n) for n, t in sweep)

    # 2. the >=800s run: two nested levels of 2^23
    kernel = Kernel()
    bpf = BpfSubsystem(kernel)
    bpf.vm.loop_sample_limit = sample_limit
    amap = bpf.create_map("array", key_size=4, value_size=8,
                          max_entries=16)
    prog = bpf.load_program(
        _stall_program(1 << 23, depth=2, map_fd=amap.map_fd),
        ProgType.KPROBE, "stall-800s")
    bpf.run_on_current_task(prog)
    long_run_s = kernel.clock.now_seconds
    stalls = kernel.rcu.stall_reports
    first_stall_s = stalls[0].duration_ns / NSEC_PER_SEC if stalls \
        else float("inf")

    # 3. extrapolation by nesting depth (BPF_MAX_LOOPS per level)
    projections = []
    for depth in range(1, 6):
        iterations = float(1 << (23 * depth))
        years = iterations * slope / 1e9 / SECONDS_PER_YEAR
        projections.append((depth, years))

    # 4. the SafeLang contrast
    sl_kernel = Kernel()
    framework = SafeExtensionFramework(sl_kernel,
                                       watchdog_budget_ns=1_000_000)
    sl_bpf = BpfSubsystem(sl_kernel)
    sl_map = sl_bpf.create_map("array", key_size=4, value_size=8,
                               max_entries=16)
    loaded = framework.install(_SAFE_SPIN, "spin", maps=[sl_map])
    start = sl_kernel.clock.now_ns
    sl_result = framework.run_on_packet(loaded, b"pkt")
    sl_runtime = sl_kernel.clock.now_ns - start

    return StallResult(
        sweep=sweep,
        ns_per_iteration=slope,
        max_fit_error=max_err,
        long_run_seconds=long_run_s,
        long_run_stalls=len(stalls),
        first_stall_after_s=first_stall_s,
        projections=projections,
        safelang_terminated=sl_result.terminated,
        safelang_runtime_ns=sl_runtime,
        safelang_stalls=len(sl_kernel.rcu.stall_reports),
        safelang_kernel_healthy=sl_kernel.healthy,
    )


def render(result: StallResult) -> str:
    """The experiment artifact."""
    parts = [report.render_table(
        ["nr_loops", "virtual runtime (ms)"],
        [(n, f"{t / 1e6:.3f}") for n, t in result.sweep],
        title="§2.2 termination experiment: runtime vs nr_loops "
              "(single bpf_loop)")]
    parts.append(f"fit: {result.ns_per_iteration:.1f} ns/iteration, "
                 f"max deviation {result.max_fit_error:.1%}")
    parts.append("")
    parts.append(report.render_table(
        ["nesting depth", "projected runtime (years)"],
        [(d, f"{y:.3g}") for d, y in result.projections],
        title="Extrapolation (BPF_MAX_LOOPS iterations per level)"))
    parts.append("")
    parts.append(report.render_table(
        ["condition", "RCU read-lock hold", "stall warnings",
         "terminated by"],
        [("eBPF nested bpf_loop (depth 2)",
          f"{result.long_run_seconds:,.0f} s",
          result.long_run_stalls, "nothing — runs to completion"),
         ("SafeLang while(true) + watchdog",
          f"{result.safelang_runtime_ns / 1e6:.3f} ms",
          result.safelang_stalls,
          "watchdog (trusted cleanup ran)")],
        title="The contrast"))
    parts.append("")
    parts.append("Shape checks:")
    parts.append(report.check(
        f"runtime is linear in nr_loops (max fit error "
        f"{result.max_fit_error:.1%})", result.max_fit_error < 0.15))
    parts.append(report.check(
        f"ran continuously for 800+ seconds under rcu_read_lock "
        f"({result.long_run_seconds:,.0f} s)",
        result.long_run_seconds >= 800))
    parts.append(report.check(
        f"RCU stall warnings observed (first after "
        f"{result.first_stall_after_s:.0f} s)",
        result.long_run_stalls > 0
        and 20 <= result.first_stall_after_s <= 22))
    millions = any(y >= 1e6 for __, y in result.projections)
    parts.append(report.check(
        "deeper nesting projects to millions of years", millions))
    parts.append(report.check(
        "SafeLang loop terminated by the watchdog, kernel healthy, "
        "no stalls",
        result.safelang_terminated and result.safelang_kernel_healthy
        and result.safelang_stalls == 0))
    return "\n".join(parts)


if __name__ == "__main__":
    print(render(run()))
