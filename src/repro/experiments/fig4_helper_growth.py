"""Figure 4: the number of helper functions by kernel version/year.

Regenerates the growth curve from the registry's per-version
introduction tags and checks the paper's claim that "roughly 50 helper
functions are added every two years".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.history import (
    SeriesPoint,
    growth_per_two_years,
    helper_count_series,
)
from repro.experiments import report


@dataclass
class Fig4Result:
    """The Figure 4 series plus growth-rate statistics."""

    series: List[SeriesPoint]
    growth_rates: List[float]

    @property
    def mean_growth_per_two_years(self) -> float:
        """The paper's headline rate (~50 per two years)."""
        if not self.growth_rates:
            return 0.0
        return sum(self.growth_rates) / len(self.growth_rates)

    @property
    def count_at_518(self) -> int:
        """Helper count at v5.18 (paper: 249)."""
        for point in self.series:
            if point.version == "v5.18":
                return point.value
        return -1


def run() -> Fig4Result:
    """Regenerate Figure 4 from the helper registry."""
    series = helper_count_series()
    return Fig4Result(series=series,
                      growth_rates=growth_per_two_years(series))


def render(result: Fig4Result) -> str:
    """The Figure 4 artifact."""
    parts = [report.render_series(
        [(f"{p.version} ({p.year})", p.value) for p in result.series],
        title="Figure 4: number of eBPF helpers by kernel version",
        x_label="kernel version", y_label="# helpers")]
    parts.append("")
    mean = result.mean_growth_per_two_years
    parts.append("Shape checks:")
    parts.append(report.check(
        f"249 helpers at v5.18 ({result.count_at_518})",
        result.count_at_518 == 249))
    parts.append(report.check(
        f"roughly 50 helpers added per two years (mean "
        f"{mean:.0f}/2yr)", 35 <= mean <= 75))
    parts.append(report.check(
        "growth is monotone",
        all(a.value <= b.value for a, b in zip(result.series,
                                               result.series[1:]))))
    return "\n".join(parts)


if __name__ == "__main__":
    print(render(run()))
