"""§2.1 expressiveness experiment: the verifier rejects correct code.

"The verifier frequently reports false positives that unnecessarily
force developers to heavily massage correct eBPF code to pass the
verifier [19, 39, 50] ... developers need to find ways to break their
program into small pieces ... The result is reduced programmability
and increased performance overhead [29]."

Measured here:

1. **false positives** — three *correct* programs (each paired with a
   runtime demonstration of its correctness) that the verifier
   rejects: a data-dependent loop bound, a provably-in-bounds access
   the bounds tracking can't see through, and safe repetitive work
   exceeding the size cap.  Each runs fine as a SafeLang extension on
   the same kernel.
2. **the massage tax** — for each false positive, the verifier-
   friendly rewrite (the "massage") and what it costs: more
   instructions, a hard cap on behaviour, or both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core import SafeExtensionFramework
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R6, R10
from repro.errors import SafeLangError, VerifierError
from repro.experiments import report
from repro.kernel import Kernel


@dataclass
class FalsePositive:
    """One correct-but-rejected program."""

    name: str
    why_correct: str
    rejection: str
    massage: str
    massage_cost: str
    #: the same logic ran fine under the proposed framework
    safelang_value: Optional[int] = None
    safelang_expected: Optional[int] = None

    @property
    def safelang_ok(self) -> bool:
        """The same logic ran correctly under the proposal."""
        return self.safelang_value == self.safelang_expected


@dataclass
class ExpressivenessResult:
    """All observed false positives."""

    cases: List[FalsePositive]

    @property
    def all_rejected_yet_correct(self) -> bool:
        """Every case is a demonstrated verifier false positive."""
        return all(case.rejection and case.safelang_ok
                   for case in self.cases)


def _data_dependent_loop(kernel: Kernel) -> FalsePositive:
    """A loop whose bound comes from a map value.  The operator only
    ever writes bounds <= 8, so the program is correct — but the
    verifier sees an unknown 64-bit scalar and must assume the worst."""
    bpf = BpfSubsystem(kernel)
    amap = bpf.create_map("array", key_size=4, value_size=8,
                          max_entries=1)
    amap.update((0).to_bytes(4, "little"), (5).to_bytes(8, "little"))
    program = (Asm()
               .st_imm(4, R10, -4, 0)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .ld_map_fd(R1, amap.map_fd)
               .call(ids.BPF_FUNC_map_lookup_elem)
               .jmp_imm("jne", R0, 0, "have")
               .mov64_imm(R0, 0).exit_()
               .label("have")
               .ldx(8, R6, R0, 0)          # bound from the map
               .mov64_imm(R0, 0)
               .label("top")
               .jmp_imm("jeq", R6, 0, "done")
               .alu64_imm("add", R0, 1)
               .alu64_imm("sub", R6, 1)
               .ja("top")
               .label("done")
               .exit_()
               .program())
    rejection = ""
    try:
        bpf.load_program(program, ProgType.KPROBE, "dd_loop")
    except VerifierError as error:
        rejection = str(error)

    framework = SafeExtensionFramework(kernel)
    loaded = framework.install("""
    fn prog(ctx: XdpCtx) -> i64 {
        let mut bound: u64 = 0;
        match map_lookup(0, 0) {
            Some(v) => { bound = v; },
            None => { },
        }
        let mut acc: u64 = 0;
        while bound > 0 {
            acc = acc + 1;
            bound = bound - 1;
        }
        return acc as i64;
    }
    """, "dd_loop", maps=[amap])
    value = framework.run_on_packet(loaded, b"x").value

    return FalsePositive(
        name="data-dependent loop bound",
        why_correct="the map's writer guarantees bounds <= 8; the "
                    "program terminates after at most 8 iterations",
        rejection=rejection,
        massage="clamp the bound with `if r6 > 8` or unroll to a "
                "compile-time constant",
        massage_cost="extra instructions per loop + a hard behaviour "
                     "cap baked into the binary",
        safelang_value=value,
        safelang_expected=5,
    )


def _opaque_bounds(kernel: Kernel) -> FalsePositive:
    """An access that is in bounds because (x * 8) % 16 is always
    0 or 8 — arithmetic the tnum/range tracking cannot fully see
    through after a multiplication and a modulo by a register."""
    bpf = BpfSubsystem(kernel)
    amap = bpf.create_map("array", key_size=4, value_size=16,
                          max_entries=1)
    program = (Asm()
               .st_imm(4, R10, -4, 0)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .ld_map_fd(R1, amap.map_fd)
               .call(ids.BPF_FUNC_map_lookup_elem)
               .jmp_imm("jne", R0, 0, "have")
               .mov64_imm(R0, 0).exit_()
               .label("have")
               .ldx(8, R3, R0, 0)
               .alu64_imm("mul", R3, 8)      # x * 8: multiple of 8
               .mov64_imm(R6, 16)
               .alu64_reg("mod", R3, R6)     # mod by a REGISTER: the
                                             # tracker gives up
               .alu64_reg("add", R0, R3)     # offset is 0 or 8
               .st_imm(8, R0, 0, 1)          # 8 + 8 <= 16: correct
               .mov64_imm(R0, 0)
               .exit_()
               .program())
    rejection = ""
    try:
        bpf.load_program(program, ProgType.KPROBE, "opaque")
    except VerifierError as error:
        rejection = str(error)

    framework = SafeExtensionFramework(kernel)
    loaded = framework.install("""
    fn prog(ctx: XdpCtx) -> i64 {
        let mut x: u64 = 0;
        match map_lookup(0, 0) {
            Some(v) => { x = v; },
            None => { },
        }
        let off = (x * 8) % 16;       // 0 or 8, checked arithmetic
        map_update(0, 0, off);
        return off as i64;
    }
    """, "opaque", maps=[amap])
    value = framework.run_on_packet(loaded, b"x").value

    return FalsePositive(
        name="provably-aligned offset via mul+mod",
        why_correct="(x * 8) % 16 is always 0 or 8, so off + 8 <= 16",
        rejection=rejection,
        massage="replace `% r6` with `& 15`, then AND with 8 — "
                "rewrite arithmetic until the abstract domain can "
                "follow it",
        massage_cost="the developer must know which exact operator "
                     "sequences the verifier's domains track",
        safelang_value=value,
        safelang_expected=0,
    )


def _size_cap(kernel: Kernel) -> FalsePositive:
    """Trivially safe repetitive work that exceeds the 4096-insn cap —
    the 'break your program into small pieces' forcing function [20]."""
    bpf = BpfSubsystem(kernel)
    asm = Asm().mov64_imm(R0, 0)
    for index in range(5000):
        asm.alu64_imm("add", R0, 1)
    asm.alu64_imm("and", R0, 0)
    asm.exit_()
    rejection = ""
    try:
        bpf.load_program(asm.program(), ProgType.KPROBE, "big")
    except VerifierError as error:
        rejection = str(error)

    framework = SafeExtensionFramework(kernel)
    loaded = framework.install("""
    fn prog(ctx: XdpCtx) -> i64 {
        let mut acc: u64 = 0;
        for i in 0..5000 {
            acc = acc + 1;
        }
        if acc == 5000 { return 0; }
        return 1;
    }
    """, "big")
    value = framework.run_on_packet(loaded, b"x").value

    return FalsePositive(
        name="safe work beyond the size cap",
        why_correct="5000 independent additions; nothing to verify "
                    "beyond repetition",
        rejection=rejection,
        massage="split into multiple programs chained with "
                "bpf_tail_call [20]",
        massage_cost="tail-call plumbing, shared state through maps, "
                     "33-call runtime ceiling — 'reduced "
                     "programmability and increased performance "
                     "overhead' [29]",
        safelang_value=value,
        safelang_expected=0,
    )


def run() -> ExpressivenessResult:
    """Collect the three false positives."""
    return ExpressivenessResult(cases=[
        _data_dependent_loop(Kernel()),
        _opaque_bounds(Kernel()),
        _size_cap(Kernel()),
    ])


def render(result: ExpressivenessResult) -> str:
    """The §2.1 expressiveness artifact."""
    rows = []
    for case in result.cases:
        rows.append((case.name,
                     case.rejection[:58] + "..."
                     if len(case.rejection) > 58 else case.rejection,
                     f"ran, returned {case.safelang_value}"))
    parts = [report.render_table(
        ["correct program", "verifier says", "proposed framework"],
        rows,
        title="§2.1: false positives — correct code the verifier "
              "rejects")]
    parts.append("")
    parts.append(report.render_table(
        ["case", "the massage", "what it costs"],
        [(c.name, c.massage, c.massage_cost) for c in result.cases],
        title="The massage tax"))
    parts.append("")
    parts.append("Shape checks:")
    for case in result.cases:
        parts.append(report.check(
            f"{case.name}: rejected by the verifier yet correct "
            "(SafeLang ran it)",
            bool(case.rejection) and case.safelang_ok))
    return "\n".join(parts)


if __name__ == "__main__":
    print(render(run()))
