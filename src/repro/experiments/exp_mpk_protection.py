"""§4 experiment: protection from unsafe code.

The paper's open question: "the threat of an errant write from unsafe
code into code or data belonging to the safe extension is unavoidable
... Lightweight hardware-supported memory protection [27, 30, 33]
seem a promising technique."

This experiment implements the scenario both ways:

1. **without keys** — a stray unsafe-kernel write lands in the
   extension's memory pool and silently corrupts it (the extension's
   next read observes attacker data);
2. **with keys** — the same write faults at the domain boundary; the
   pool is intact and the extension's reads are unaffected;
3. **overhead** — per-write cost of the key check, supporting the
   "lightweight" claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.runtime.mempool import MemoryPool
from repro.core.runtime.mpk import (
    MemoryProtectionKeys,
    PKEY_EXTENSION,
    protect_extension_memory,
)
from repro.errors import ProtectionKeyFault
from repro.experiments import report
from repro.kernel import Kernel


@dataclass
class MpkResult:
    """Outcomes of the three measurements."""

    corrupted_without_keys: bool
    observed_value_without_keys: int
    fault_with_keys: bool
    pool_intact_with_keys: bool
    write_ns_without_keys: float
    write_ns_with_keys: float

    @property
    def overhead_factor(self) -> float:
        """Keyed-write cost relative to a plain write."""
        if self.write_ns_without_keys <= 0:
            return 0.0
        return self.write_ns_with_keys / self.write_ns_without_keys


def _stray_write(kernel: Kernel, pool: MemoryPool) -> None:
    """The errant unsafe-kernel write into extension memory."""
    kernel.mem.write_u64(pool.region.base + 64, 0x4141414141414141,
                         source="bpf_sys_bpf")


def run() -> MpkResult:
    """Run both conditions plus the overhead measurement."""
    # condition 1: no protection keys
    kernel = Kernel()
    pool = MemoryPool(kernel, kernel.current_cpu, size=1024)
    _stray_write(kernel, pool)
    observed = kernel.mem.read_u64(pool.region.base + 64)
    corrupted = observed == 0x4141414141414141

    # condition 2: keys armed
    kernel2 = Kernel()
    mpk = MemoryProtectionKeys(kernel2.mem)
    pool2 = MemoryPool(kernel2, kernel2.current_cpu, size=1024)
    protect_extension_memory(mpk, pool2.region)
    fault = False
    try:
        _stray_write(kernel2, pool2)
    except ProtectionKeyFault:
        fault = True
    intact = kernel2.mem.read_u64(pool2.region.base + 64) == 0

    # condition 3: per-write overhead of the key check
    def measure(target_kernel: Kernel, base: int) -> float:
        rounds = 3000
        start = time.perf_counter()
        for index in range(rounds):
            target_kernel.mem.write_u64(base, index, source="kernel")
        return (time.perf_counter() - start) / rounds * 1e9

    plain_kernel = Kernel()
    plain_alloc = plain_kernel.mem.kmalloc(64)
    plain_ns = measure(plain_kernel, plain_alloc.base)

    keyed_kernel = Kernel()
    MemoryProtectionKeys(keyed_kernel.mem)
    keyed_alloc = keyed_kernel.mem.kmalloc(64)
    keyed_ns = measure(keyed_kernel, keyed_alloc.base)

    return MpkResult(
        corrupted_without_keys=corrupted,
        observed_value_without_keys=observed,
        fault_with_keys=fault,
        pool_intact_with_keys=intact,
        write_ns_without_keys=plain_ns,
        write_ns_with_keys=keyed_ns,
    )


def render(result: MpkResult) -> str:
    """The §4 artifact."""
    parts = [report.render_table(
        ["condition", "stray unsafe write into extension memory"],
        [("no protection keys",
          f"SILENT CORRUPTION (extension reads "
          f"{result.observed_value_without_keys:#x})"),
         ("protection keys armed",
          f"pkey fault raised={result.fault_with_keys}, pool "
          f"intact={result.pool_intact_with_keys}")],
        title="§4: protection from unsafe code "
              "(MPK/PKS-style domains)")]
    parts.append("")
    parts.append(
        f"key-check overhead: {result.write_ns_without_keys:.0f} ns "
        f"-> {result.write_ns_with_keys:.0f} ns per write "
        f"({result.overhead_factor:.2f}x, host time; constant per "
        "access, no analysis)")
    parts.append("")
    parts.append("Shape checks:")
    parts.append(report.check(
        "without keys the stray write silently corrupts",
        result.corrupted_without_keys))
    parts.append(report.check(
        "with keys the write faults and the pool is intact",
        result.fault_with_keys and result.pool_intact_with_keys))
    parts.append(report.check(
        f"the check is lightweight (<5x per-write overhead, measured "
        f"{result.overhead_factor:.2f}x)",
        result.overhead_factor < 5.0))
    return "\n".join(parts)


if __name__ == "__main__":
    print(render(run()))
