"""Table 1: bug statistics in eBPF helper functions and the verifier.

Renders the 2021-2022 bug population by category and component
(40 total: 18 helper, 22 verifier) and then *executes* every bug this
reproduction models: each must fire on a buggy-era kernel and stay
silent on a patched one — the executable cross-check that the counted
bugs are real behaviours, not just labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.bugs import (
    TABLE1_EXPECTED,
    BugRecord,
    executable_bugs,
    full_bug_table,
    table1_counts,
    totals,
)
from repro.ebpf.bugs import BugConfig
from repro.experiments import report
from repro.experiments.bug_demos import demo_for


@dataclass
class Table1Result:
    """Counts plus the executable cross-check outcomes."""

    counts: Dict[str, Tuple[int, int, int]]
    totals: Tuple[int, int, int]
    #: flag -> (fired on buggy kernel, fired on patched kernel)
    demo_outcomes: Dict[str, Tuple[bool, bool]]

    @property
    def matches_paper(self) -> bool:
        """Counts equal Table 1 exactly."""
        return self.counts == TABLE1_EXPECTED \
            and self.totals == (40, 18, 22)

    @property
    def all_demos_correct(self) -> bool:
        """Every modeled bug fires iff its flag is set."""
        return all(buggy and not patched
                   for buggy, patched in self.demo_outcomes.values())


def run() -> Table1Result:
    """Regenerate Table 1 and run the executable cross-check."""
    buggy, patched = BugConfig(), BugConfig.all_patched()
    outcomes: Dict[str, Tuple[bool, bool]] = {}
    for bug in executable_bugs():
        demo = demo_for(bug.repro_flag)
        if demo is None:
            continue
        outcomes[bug.repro_flag] = (demo(buggy), demo(patched))
    return Table1Result(counts=table1_counts(), totals=totals(),
                        demo_outcomes=outcomes)


def render(result: Table1Result) -> str:
    """The Table 1 artifact."""
    rows = [(category, *result.counts.get(category, (0, 0, 0)))
            for category in TABLE1_EXPECTED]
    rows.append(("Total", *result.totals))
    parts = [report.render_table(
        ["Vulnerabilities/Bugs", "Total", "Helper", "Verifier"], rows,
        title="Table 1: bug statistics in eBPF helpers and verifier "
              "(2021-2022)")]
    parts.append("")
    parts.append(report.render_table(
        ["modeled bug (BugConfig flag)", "fires (buggy)",
         "fires (patched)"],
        [(flag, buggy, patched)
         for flag, (buggy, patched) in
         sorted(result.demo_outcomes.items())],
        title="Executable cross-check"))
    parts.append("")
    parts.append("Shape checks:")
    parts.append(report.check(
        "counts match the paper exactly (40 = 18 helper + 22 verifier)",
        result.matches_paper))
    parts.append(report.check(
        f"every modeled bug fires iff present "
        f"({len(result.demo_outcomes)} modeled)",
        result.all_demos_correct))
    return "\n".join(parts)


if __name__ == "__main__":
    print(render(run()))
