"""Table 2: safety properties and their enforcement mechanisms.

The paper's Table 2 maps each safety property to the mechanism that
enforces it in the proposed framework (language safety for memory /
control flow / types, runtime protection for resources / termination /
stack).  This experiment *derives* that table by running the attack
corpus: for each property it reports how each framework handled each
attack, and checks the paper's headline asymmetry — eBPF has verified
attacks that still compromise the kernel; the proposed framework
rejects statically or contains at run time, with zero compromises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.attacks import AttackCase, Outcome, build_corpus, run_case
from repro.experiments import report

#: the paper's Table 2 rows, in order
PAPER_TABLE2: List[Tuple[str, str]] = [
    ("No arbitrary memory access", "Language safety"),
    ("No arbitrary control-flow transfer", "Language safety"),
    ("Type safety", "Language safety"),
    ("Safe resource management", "Runtime protection"),
    ("Termination", "Runtime protection"),
    ("Stack protection", "Runtime protection"),
]


@dataclass
class CaseResult:
    """One attack's outcome."""

    case: AttackCase
    outcome: Outcome


@dataclass
class Table2Result:
    """The full enforcement matrix."""

    results: List[CaseResult]

    def for_framework(self, framework: str) -> List[CaseResult]:
        """Results restricted to one framework."""
        return [r for r in self.results
                if r.case.framework == framework]

    def compromises(self, framework: str) -> List[CaseResult]:
        """Cases that ended in a kernel compromise."""
        return [r for r in self.for_framework(framework)
                if r.outcome == Outcome.KERNEL_COMPROMISED]

    @property
    def all_expected(self) -> bool:
        """Every case matched its documented outcome."""
        return all(r.outcome == r.case.expected for r in self.results)

    def safelang_enforcement(self) -> Dict[str, str]:
        """Property -> mechanism class observed for SafeLang (the
        derived Table 2)."""
        derived: Dict[str, str] = {}
        for result in self.for_framework("safelang"):
            prop = result.case.safety_property
            if result.outcome == Outcome.REJECTED_STATIC:
                mech = "Language safety"
            elif result.outcome == Outcome.CONTAINED:
                mech = "Runtime protection"
            else:
                mech = "(unenforced!)"
            # a property enforced by both records the weaker/runtime
            # mechanism only if no static rejection was seen
            if prop not in derived or mech == "Language safety" \
                    and derived[prop] == "Runtime protection" \
                    and all(r.outcome != Outcome.CONTAINED
                            for r in self.for_framework("safelang")
                            if r.case.safety_property == prop):
                derived.setdefault(prop, mech)
            derived.setdefault(prop, mech)
        return derived


def run() -> Table2Result:
    """Run the whole corpus on buggy-era kernels."""
    results = [CaseResult(case, run_case(case))
               for case in build_corpus()]
    return Table2Result(results=results)


def render(result: Table2Result) -> str:
    """The Table 2 artifact."""
    parts = [report.render_table(
        ["Safety property", "Enforcement (paper)"], PAPER_TABLE2,
        title="Table 2: safety properties and enforcement mechanisms")]
    parts.append("")
    parts.append(report.render_table(
        ["case", "property", "framework", "enforcement", "outcome"],
        [(r.case.case_id, r.case.safety_property, r.case.framework,
          r.case.enforcement, r.outcome.value)
         for r in result.results],
        title="Attack matrix (buggy-era kernel)"))
    parts.append("")
    ebpf_bad = result.compromises("ebpf")
    sl_bad = result.compromises("safelang")
    parts.append("Shape checks:")
    parts.append(report.check(
        f"every case matches its expected outcome "
        f"({len(result.results)} cases)", result.all_expected))
    parts.append(report.check(
        f"eBPF: verified attacks still compromise the kernel "
        f"({len(ebpf_bad)} compromises)", len(ebpf_bad) >= 5))
    parts.append(report.check(
        "proposed framework: zero kernel compromises "
        f"({len(sl_bad)})", len(sl_bad) == 0))
    static = [r for r in result.for_framework("safelang")
              if r.outcome == Outcome.REJECTED_STATIC]
    contained = [r for r in result.for_framework("safelang")
                 if r.outcome == Outcome.CONTAINED]
    parts.append(report.check(
        "proposed framework uses BOTH mechanisms: "
        f"{len(static)} static rejections, {len(contained)} runtime "
        "containments", bool(static) and bool(contained)))
    return "\n".join(parts)


if __name__ == "__main__":
    print(render(run()))
