"""Plain-text rendering for experiment results.

Experiments print the same rows/series the paper's figures encode, as
aligned ASCII tables — the artifact a reader diffs against the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_series(points: Sequence[tuple], title: str = "",
                  x_label: str = "x", y_label: str = "y",
                  width: int = 50) -> str:
    """Render an (x, y) series with a proportional bar per point —
    the text stand-in for a line chart."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    if not points:
        return "\n".join(lines + ["(empty series)"])
    max_y = max(y for __, y in points) or 1
    label_width = max(len(str(x)) for x, __ in points)
    for x, y in points:
        bar = "#" * max(1, int(width * y / max_y))
        lines.append(f"{str(x).rjust(label_width)} | "
                     f"{str(y).rjust(len(str(max_y)))} {bar}")
    lines.append(f"({x_label} vs {y_label})")
    return "\n".join(lines)


def check(label: str, condition: bool) -> str:
    """One pass/fail line for shape assertions."""
    marker = "PASS" if condition else "FAIL"
    return f"  [{marker}] {label}"
