"""§2.2 safety experiment: a verified program crashes the kernel.

"Through a helper function, we wrote eBPF programs that crash the
kernel ... we achieved a kernel crash by dereferencing the NULL
pointer inside the union" (CVE-2022-2785).

Three conditions:

1. buggy-era eBPF kernel — the program *passes verification* and
   crashes the kernel (NULL dereference, oops, kernel tainted);
2. patched eBPF kernel — same program, helper returns -EFAULT;
3. proposed framework — the equivalent workload goes through the
   sanitized ``sys_map_update`` wrapper; a NULL pointer is
   unrepresentable, the kernel stays healthy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.attacks import Outcome, build_corpus, run_case
from repro.core import SafeExtensionFramework
from repro.ebpf import BpfSubsystem
from repro.ebpf.bugs import BugConfig
from repro.experiments import report
from repro.kernel.kernel import Kernel

_SAFE_EQUIVALENT = """
fn prog(ctx: XdpCtx) -> i64 {
    // the same logical operation the attack aimed at: a nested
    // map update through the (wrapped) bpf syscall surface
    let rc = sys_map_update(0, 1, 4242);
    return rc;
}
"""


@dataclass
class CrashResult:
    """Outcomes of the three conditions."""

    buggy_outcome: Outcome
    buggy_oops_category: str
    patched_outcome: Outcome
    safelang_value: int
    safelang_kernel_healthy: bool

    @property
    def reproduces_paper(self) -> bool:
        """All three conditions behave as the paper describes."""
        return (self.buggy_outcome == Outcome.KERNEL_COMPROMISED
                and self.buggy_oops_category == "null-deref"
                and self.patched_outcome != Outcome.KERNEL_COMPROMISED
                and self.safelang_kernel_healthy
                and self.safelang_value == 0)


def run() -> CrashResult:
    """Run all three conditions."""
    case = next(c for c in build_corpus()
                if c.case_id == "ebpf-sys-bpf-crash")

    buggy_kernel = Kernel()
    buggy_outcome = run_case(case, kernel=buggy_kernel)
    oops = buggy_kernel.log.last_oops()

    patched_outcome = run_case(case, kernel=Kernel(),
                               bugs=BugConfig.all_patched())

    sl_kernel = Kernel()
    framework = SafeExtensionFramework(sl_kernel)
    bpf = BpfSubsystem(sl_kernel)
    hmap = bpf.create_map("hash", key_size=4, value_size=8,
                          max_entries=4)
    loaded = framework.install(_SAFE_EQUIVALENT, "safe_sys_update",
                               maps=[hmap])
    result = framework.run_on_packet(loaded, b"pkt")

    return CrashResult(
        buggy_outcome=buggy_outcome,
        buggy_oops_category=oops.category if oops else "(none)",
        patched_outcome=patched_outcome,
        safelang_value=result.value,
        safelang_kernel_healthy=sl_kernel.healthy,
    )


def render(result: CrashResult) -> str:
    """The experiment artifact."""
    parts = [report.render_table(
        ["condition", "outcome"],
        [("eBPF, buggy era (CVE-2022-2785 present)",
          f"{result.buggy_outcome.value} "
          f"(oops: {result.buggy_oops_category})"),
         ("eBPF, patched", result.patched_outcome.value),
         ("proposed framework (wrapped sys_bpf)",
          f"rc={result.safelang_value}, kernel healthy="
          f"{result.safelang_kernel_healthy}")],
        title="§2.2 safety experiment: NULL-in-union through "
              "bpf_sys_bpf")]
    parts.append("")
    parts.append("Shape checks:")
    parts.append(report.check(
        "verified eBPF program crashes the buggy-era kernel "
        "(NULL dereference)",
        result.buggy_outcome == Outcome.KERNEL_COMPROMISED
        and result.buggy_oops_category == "null-deref"))
    parts.append(report.check(
        "patch stops the crash (helper validates the union)",
        result.patched_outcome != Outcome.KERNEL_COMPROMISED))
    parts.append(report.check(
        "the wrapped interface makes the attack unrepresentable",
        result.safelang_kernel_healthy and result.safelang_value == 0))
    return "\n".join(parts)


if __name__ == "__main__":
    print(render(run()))
