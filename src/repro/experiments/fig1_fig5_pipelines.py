"""Figures 1 and 5: the two architectures, traced live.

Figure 1 (eBPF): safe program -> bytecode -> **verifier** (loading) ->
JIT -> runtime, where verified code calls out into *unsafe helper
functions / kernel code*.

Figure 5 (proposal): safe source -> **trusted toolchain** (check +
sign, userspace) -> signature validation + load-time fixup (loading)
-> runtime with *lightweight mechanisms* and *reduced* unsafe helpers
behind interface libs.

These are architecture diagrams, so "reproducing" them means running
one identical workload through both pipelines and recording what each
stage actually did — which component performed the safety analysis,
what the kernel did at load time, and how many times execution crossed
from checked code into unsafe territory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core import SafeExtensionFramework
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R10
from repro.experiments import report
from repro.kernel import Kernel

#: the shared workload: count packets in map slot 0, pass them
_EBPF_WORKLOAD = None   # built in run() against the created map

_SAFE_WORKLOAD = """
fn prog(ctx: XdpCtx) -> i64 {
    match map_lookup(0, 0) {
        Some(v) => { map_update(0, 0, v + 1); },
        None => { },
    }
    return 2;
}
"""

PACKETS = 10


@dataclass
class Stage:
    """One pipeline stage observation."""

    where: str      # "userspace" | "kernel: loading" | "kernel: runtime"
    what: str
    evidence: str


@dataclass
class PipelinesResult:
    """Both traced pipelines."""

    fig1: List[Stage]
    fig5: List[Stage]
    ebpf_helper_crossings: int
    safelang_kcrate_crossings: int
    verifier_steps: int
    signature_checked: bool


def run() -> PipelinesResult:
    """Trace both architectures on the same workload."""
    kernel = Kernel()

    # ---- Figure 1: eBPF --------------------------------------------------
    bpf = BpfSubsystem(kernel)
    amap = bpf.create_map("array", key_size=4, value_size=8,
                          max_entries=1)
    program = (Asm()
               .st_imm(4, R10, -4, 0)
               .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
               .ld_map_fd(R1, amap.map_fd)
               .call(ids.BPF_FUNC_map_lookup_elem)
               .jmp_imm("jne", R0, 0, "hit")
               .mov64_imm(R0, 2).exit_()
               .label("hit")
               .ldx(8, R1, R0, 0)
               .alu64_imm("add", R1, 1)
               .stx(8, R0, 0, R1)
               .mov64_imm(R0, 2)
               .exit_()
               .program())
    prog = bpf.load_program(program, ProgType.XDP, "fig1")
    crossings_before = bpf.vm.helper_calls
    for __ in range(PACKETS):
        bpf.run_on_packet(prog, b"packet")
    helper_crossings = bpf.vm.helper_calls - crossings_before

    fig1 = [
        Stage("userspace", "compile to restricted bytecode",
              f"{len(program)} insns emitted"),
        Stage("kernel: loading", "VERIFIER symbolically executes all "
              "paths",
              f"{prog.verifier_stats.insns_processed} insns "
              f"processed, {prog.verifier_stats.states_explored} "
              "states stored — analysis lives in the kernel"),
        Stage("kernel: loading", "JIT compile",
              f"{len(prog.jit.insns)} native insns"),
        Stage("kernel: runtime", "execute; helpers are the escape "
              "hatch",
              f"{helper_crossings} crossings into unverified kernel "
              f"C over {PACKETS} packets"),
    ]

    # ---- Figure 5: the proposal -------------------------------------------
    framework = SafeExtensionFramework(kernel)
    sl_map = bpf.create_map("array", key_size=4, value_size=8,
                            max_entries=1)
    ext = framework.compile(_SAFE_WORKLOAD, "fig5")
    loaded = framework.load(ext, maps=[sl_map])
    kcrate_crossings = 0
    for __ in range(PACKETS):
        result = framework.run_on_packet(loaded, b"packet")
        kcrate_crossings += result.kcrate_calls

    fig5 = [
        Stage("userspace", "TRUSTED TOOLCHAIN checks (types, borrows, "
              "no unsafe) and signs",
              f"checked in {ext.compile_time_s * 1e3:.2f} ms; "
              f"signature {ext.signature[:16]}... by "
              f"{ext.key_id} — analysis decoupled from the kernel"),
        Stage("kernel: loading", "signature validation + load-time "
              "fixup only",
              f"{len(loaded.symbols)} kcrate symbols resolved in "
              f"{loaded.load_time_s * 1e3:.2f} ms; no safety "
              "analysis in the kernel"),
        Stage("kernel: runtime", "lightweight mechanisms armed",
              "watchdog + stack guard + cleanup list per invocation"),
        Stage("kernel: runtime", "reduced unsafe surface behind "
              "interface libs",
              f"{kcrate_crossings} crossings, all through the trusted "
              f"kcrate boundary, over {PACKETS} packets"),
    ]

    return PipelinesResult(
        fig1=fig1, fig5=fig5,
        ebpf_helper_crossings=helper_crossings,
        safelang_kcrate_crossings=kcrate_crossings,
        verifier_steps=prog.verifier_stats.insns_processed,
        signature_checked=True,
    )


def render(result: PipelinesResult) -> str:
    """The Figure 1 / Figure 5 artifact."""
    parts = [report.render_table(
        ["where", "stage", "observed"],
        [(s.where, s.what, s.evidence) for s in result.fig1],
        title="Figure 1: eBPF architecture, traced")]
    parts.append("")
    parts.append(report.render_table(
        ["where", "stage", "observed"],
        [(s.where, s.what, s.evidence) for s in result.fig5],
        title="Figure 5: safe kernel extensions without verification, "
              "traced"))
    parts.append("")
    parts.append("Shape checks:")
    parts.append(report.check(
        "eBPF: the safety analysis runs inside the kernel at load "
        f"time ({result.verifier_steps} verifier steps)",
        result.verifier_steps > 0))
    parts.append(report.check(
        "proposal: the kernel only validates a signature",
        result.signature_checked))
    parts.append(report.check(
        f"both runtimes cross into kernel services "
        f"(ebpf {result.ebpf_helper_crossings}, kcrate "
        f"{result.safelang_kcrate_crossings}) — the difference is "
        "what stands at the boundary",
        result.ebpf_helper_crossings > 0
        and result.safelang_kcrate_crossings > 0))
    return "\n".join(parts)


if __name__ == "__main__":
    print(render(run()))
