"""The eBPF bytecode VM.

Executes programs concretely against the simulated kernel.  The VM
enforces *nothing*: safety is whatever the verifier proved plus
whatever the helpers actually do — which is the paper's point.  Every
load/store goes through the kernel's checked memory, so an unverified
assumption (a buggy helper, a miscompiled branch, a fabricated
pointer) ends in a genuine kernel oops, not a Python traceback.

Programs run under ``rcu_read_lock`` with preemption disabled, exactly
like real eBPF — which is why a non-terminating program causes RCU
stalls (§2.2).  Long ``bpf_loop`` runs are *fast-forwarded*: after a
sampled prefix of concrete iterations, the remaining iterations charge
virtual time at the measured per-iteration cost.  This keeps the
paper's 800-second stall (and far longer) executable in milliseconds
of host time while preserving the linear runtime-vs-iterations law the
experiment measures.

Three execution engines share the semantics:

* ``interp`` (``_run_frame_slow``) decodes each ``Insn`` as it
  executes — the original reference path, kept as the
  differential-testing baseline.
* ``fast`` (``_run_frame_fast``) drives a :class:`~repro.ebpf.\
predecode.PredecodedProgram` dispatch table built at load time, and
  charges virtual time in *batches*: straight-line blocks accumulate a
  pending instruction count that is flushed to ``kernel.work()`` only
  at observation points — memory accesses, helper calls, subprogram
  calls, taken backward edges, and frame exit — so the clock reads
  identically to per-insn accounting everywhere it can be observed.
* ``compiled`` (:mod:`repro.ebpf.compile`) lowers the dispatch table
  to generated Python — one straight-line statement run per basic
  block, registers as locals — ``exec``-compiled once per program and
  cached content-addressed by the loader.  Helpers, memory, atomics
  and tail calls still route through this VM, so fault injection and
  telemetry see the same world.

``engine`` on :class:`BpfVm` (or per program via
``LoadedProgram.engine``) selects a tier explicitly;
``DEFAULT_ENGINE`` / ``DEFAULT_FAST_PATH`` pick for VMs that don't.
All engines must stay observationally identical (see
``tests/ebpf/test_fastpath_differential.py`` and
``tests/ebpf/test_malformed_differential.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence

from repro.ebpf import isa
from repro.ebpf.bugs import BugConfig
from repro.ebpf.compile import CompiledProgram, compile_program
from repro.ebpf.engine import ENGINE_NAMES, resolve_engine
from repro.ebpf.helpers.base import HelperCallContext
from repro.ebpf.isa import Insn, to_s64, to_u64
from repro.ebpf.predecode import (
    FUNC_PTR_BASE, K_ALU32_K, K_ALU32_X, K_ALU64_K, K_ALU64_X,
    K_ATOMIC, K_BAD, K_CALL_HELPER, K_CALL_SUB, K_EXIT, K_JA,
    K_JMP32_K, K_JMP32_X, K_JMP_K, K_JMP_X, K_LD_IMM64, K_LDX,
    K_MOV32_K, K_MOV32_X, K_MOV64_K, K_MOV64_X, K_ST, K_STX,
    MAP_PTR_BASE, A_ADD, A_AND, A_ARSH, A_DIV, A_LSH, A_MOD, A_MUL,
    A_NEG, A_OR, A_RSH, A_SUB, A_XOR, J_EQ, J_GE, J_GT, J_LE, J_LT,
    J_NE, J_SET, J_SGE, J_SGT, J_SLE, J_SLT, PredecodedProgram,
    predecode,
)
from repro.errors import BpfRuntimeError, KernelOops
from repro.kernel.kernel import Kernel

U64 = (1 << 64) - 1
U32 = (1 << 32) - 1

_H64 = 1 << 63
_F64 = 1 << 64
_H32 = 1 << 31
_F32 = 1 << 32

#: engine used by VMs that don't pick one explicitly; the slow
#: decode-per-step path stays available as the differential baseline
DEFAULT_FAST_PATH = True

#: the three execution tiers, slowest to fastest (re-exported from
#: :mod:`repro.ebpf.engine`, the single source of truth)
ENGINES = ENGINE_NAMES

#: explicit module-default engine; ``None`` defers to
#: ``DEFAULT_FAST_PATH`` (kept for compatibility with older tests
#: and tooling that flip the boolean)
DEFAULT_ENGINE: Optional[str] = None


def _cond_eval(cond: int, d: int, s: int, half: int, full: int) -> bool:
    """Evaluate one predecoded conditional-jump condition."""
    if cond == J_EQ:
        return d == s
    if cond == J_NE:
        return d != s
    if cond == J_GT:
        return d > s
    if cond == J_GE:
        return d >= s
    if cond == J_LT:
        return d < s
    if cond == J_LE:
        return d <= s
    if cond == J_SET:
        return bool(d & s)
    sd = d - full if d & half else d
    ss = s - full if s & half else s
    if cond == J_SGT:
        return sd > ss
    if cond == J_SGE:
        return sd >= ss
    if cond == J_SLT:
        return sd < ss
    return sd <= ss


def _cond_eval_imm(cond: int, d: int, s_u: int, s_s: int, half: int,
                   full: int) -> bool:
    """Immediate-form conditional: the slot carries both the unsigned
    and the predecoded signed view of the immediate, so only the
    register operand ever needs its sign re-derived."""
    if cond == J_EQ:
        return d == s_u
    if cond == J_NE:
        return d != s_u
    if cond == J_GT:
        return d > s_u
    if cond == J_GE:
        return d >= s_u
    if cond == J_LT:
        return d < s_u
    if cond == J_LE:
        return d <= s_u
    if cond == J_SET:
        return bool(d & s_u)
    sd = d - full if d & half else d
    if cond == J_SGT:
        return sd > s_s
    if cond == J_SGE:
        return sd >= s_s
    if cond == J_SLT:
        return sd < s_s
    return sd <= s_s


class TailCallRequest(Exception):
    """Raised by ``bpf_tail_call`` to unwind into the dispatch loop."""

    def __init__(self, prog: object) -> None:
        super().__init__("tail call")
        self.prog = prog


class BpfVm:
    """One execution engine bound to a kernel and the bpf subsystem."""

    def __init__(self, kernel: Kernel, subsystem: "object",
                 bugs: Optional[BugConfig] = None,
                 loop_sample_limit: int = 256,
                 fast_path: Optional[bool] = None,
                 engine: Optional[str] = None) -> None:
        self.kernel = kernel
        self.subsystem = subsystem
        self.bugs = bugs or BugConfig()
        #: concrete iterations executed before fast-forwarding a loop
        self.loop_sample_limit = loop_sample_limit
        if engine is None:
            if fast_path is not None:
                engine = "fast" if fast_path else "interp"
            elif DEFAULT_ENGINE is not None:
                engine = DEFAULT_ENGINE
            else:
                engine = "fast" if DEFAULT_FAST_PATH else "interp"
        #: default execution tier; a loaded program may override it
        #: via its own ``engine`` attribute
        self.engine = resolve_engine(engine)
        #: legacy boolean view of the engine (anything predecoded)
        self.fast_path = engine != "interp"
        #: fresh compilations performed by this VM (lazy path; the
        #: loader's compile cache normally attaches one at load)
        self.compiles = 0
        self.insns_executed = 0
        #: crossings from verified bytecode into unverified kernel C
        self.helper_calls = 0
        #: register file at the most recent top-frame EXIT (one list
        #: copy per invocation; the differential fuzzer compares it)
        self.last_exit_regs: Optional[List[int]] = None
        self._prandom_state = 0x2545F491
        self._current_prog: Optional[object] = None
        self._insns: List[Insn] = []
        self._decoded: Optional[PredecodedProgram] = None
        self._compiled: Optional[CompiledProgram] = None
        #: redirect target stashed by ``bpf_redirect_map`` for the
        #: data plane to consume after the current invocation returns
        #: XDP_REDIRECT (``None`` when no redirect is pending)
        self.pending_redirect: Optional[int] = None

    # -- SMP context switching ------------------------------------------------

    def save_smp_state(self) -> tuple:
        """Snapshot the per-program activation state.

        The VM is a shared singleton, but under a deterministic SMP
        run each logical task owns its own program binding: the
        scheduler saves this at every suspension and restores it when
        the task resumes, so interleaved tasks running *different*
        programs (or mid-tail-call chains) never see each other's
        dispatch tables or pending redirect."""
        return (self._current_prog, self._insns, self._decoded,
                self._compiled, self.pending_redirect)

    def restore_smp_state(self, state: Optional[tuple]) -> None:
        """Counterpart of :meth:`save_smp_state`; None (a task's first
        scheduling) resets to the unbound state."""
        if state is None:
            self._current_prog = None
            self._insns = []
            self._decoded = None
            self._compiled = None
            self.pending_redirect = None
        else:
            (self._current_prog, self._insns, self._decoded,
             self._compiled, self.pending_redirect) = state

    # -- identity used for refcount/lock/fault attribution -----------------

    @property
    def prog_tag(self) -> str:
        """Attribution tag of the running program."""
        if self._current_prog is None:
            return "bpf"
        return f"bpf:{self._current_prog.name}"

    # -- top-level dispatch ---------------------------------------------------

    def run(self, prog: object, ctx_addr: int) -> int:
        """Run a loaded program on a context address, with the real
        eBPF execution environment: RCU read lock held, preemption
        off, tail calls honoured up to the chain limit.

        While ``telemetry.stats_enabled`` is on (the
        ``kernel.bpf_stats_enabled`` model), each invocation is folded
        into the program's ``run_cnt`` / ``run_time_ns`` / insn
        accounting; when it is off this wrapper costs one attribute
        test and nothing per instruction."""
        telemetry = self.kernel.telemetry
        if not telemetry.stats_enabled:
            return self._run_locked(prog, ctx_addr)
        clock = self.kernel.clock
        start_ns = clock.now_ns
        start_insns = self.insns_executed
        start_helpers = self.helper_calls
        try:
            return self._run_locked(prog, ctx_addr)
        finally:
            telemetry.record_run(
                "ebpf", prog.name,
                run_time_ns=clock.now_ns - start_ns,
                insns=self.insns_executed - start_insns,
                helper_calls=self.helper_calls - start_helpers)

    def _run_locked(self, prog: object, ctx_addr: int) -> int:
        """The uninstrumented execution environment (see :meth:`run`)."""
        cpu = self.kernel.current_cpu
        rcu = self.kernel.rcu
        rcu.read_lock(holder=f"bpf:{prog.name}")
        cpu.preempt_disable()
        try:
            self._activate(prog)
            try:
                return self._run_frame(0, [0] * 11, ctx_addr, depth=0)
            except TailCallRequest as req:
                return self._finish_tail_calls(req, ctx_addr)
        finally:
            self._current_prog = None
            cpu.preempt_enable()
            rcu.read_unlock()

    def _activate(self, prog: object) -> None:
        """Bind the VM's frame-execution state to ``prog``: its
        runnable instructions plus the dispatch table / compiled frame
        function its effective engine needs."""
        self._current_prog = prog
        self._insns = prog.runnable_insns()
        engine = getattr(prog, "engine", None) or self.engine
        if engine == "interp":
            self._decoded = None
            self._compiled = None
        else:
            self._decoded = self._decoded_for(prog)
            self._compiled = self._compiled_for(prog) \
                if engine == "compiled" else None

    def _finish_tail_calls(self, req: TailCallRequest,
                           ctx_addr: int) -> int:
        """Service a tail-call chain, honouring the chain limit."""
        tail_calls = 0
        while True:
            tail_calls += 1
            if tail_calls > self.subsystem.limits.max_tail_calls:
                raise BpfRuntimeError(
                    "tail call chain exceeded "
                    f"{self.subsystem.limits.max_tail_calls}")
            self._activate(req.prog)
            try:
                return self._run_frame(0, [0] * 11, ctx_addr, depth=0)
            except TailCallRequest as next_req:
                req = next_req

    def take_redirect(self) -> Optional[int]:
        """Consume the redirect target stashed by the most recent
        ``bpf_redirect_map`` call (one-shot; ``None`` when the last
        invocation never asked for a redirect)."""
        target = self.pending_redirect
        if target is not None:
            self.pending_redirect = None
        return target

    @contextmanager
    def batch_runner(self, prog: object) -> Iterator[Callable[[int], int]]:
        """One RCU/preempt critical section around many invocations.

        The XDP data plane processes packets in NAPI-style bursts:
        the driver enters the execution environment once, then runs
        the attached program on every buffer of the batch, so the
        per-packet cost is one frame execution and nothing else.
        This context manager models exactly that — it takes the RCU
        read lock, disables preemption and resolves the program's
        engine state *once*, then yields a ``run_one(ctx_addr) ->
        verdict`` callable for the hot loop.  Tail calls are honoured
        per invocation (the chain limit applies per packet, as in
        :meth:`run`), per-run stats are recorded while
        ``telemetry.stats_enabled`` is on, and the critical section
        is released even when a fault unwinds the batch.
        """
        kernel = self.kernel
        cpu = kernel.current_cpu
        rcu = kernel.rcu
        rcu.read_lock(holder=f"bpf:{prog.name}")
        cpu.preempt_disable()
        self._activate(prog)
        telemetry = kernel.telemetry
        clock = kernel.clock

        def run_frame(ctx_addr: int) -> int:
            """One invocation inside the held critical section."""
            try:
                return self._run_frame(0, [0] * 11, ctx_addr, depth=0)
            except TailCallRequest as req:
                try:
                    return self._finish_tail_calls(req, ctx_addr)
                finally:
                    # the next packet starts at the root program
                    self._activate(prog)

        def run_one(ctx_addr: int) -> int:
            """One packet through the attached program (stats-aware)."""
            if not telemetry.stats_enabled:
                return run_frame(ctx_addr)
            start_ns = clock.now_ns
            start_insns = self.insns_executed
            start_helpers = self.helper_calls
            try:
                return run_frame(ctx_addr)
            finally:
                telemetry.record_run(
                    "ebpf", prog.name,
                    run_time_ns=clock.now_ns - start_ns,
                    insns=self.insns_executed - start_insns,
                    helper_calls=self.helper_calls - start_helpers)

        try:
            yield run_one
        finally:
            self._current_prog = None
            cpu.preempt_enable()
            rcu.read_unlock()

    def _decoded_for(self, prog: object) -> PredecodedProgram:
        """The program's dispatch table, predecoding lazily if the
        loader didn't attach one (e.g. hand-built test programs)."""
        decoded = getattr(prog, "predecoded", None)
        if decoded is not None and decoded.n_insns == len(self._insns):
            return decoded
        decoded = predecode(self._insns)
        try:
            prog.predecoded = decoded
        except (AttributeError, TypeError):
            pass  # frozen/slotted prog objects just predecode per run
        return decoded

    def _compiled_for(self, prog: object) -> CompiledProgram:
        """The program's compiled frame function, compiling lazily if
        the loader's compile cache didn't attach one."""
        compiled = getattr(prog, "compiled", None)
        if compiled is not None and \
                compiled.n_insns == len(self._insns):
            return compiled
        compiled = compile_program(self._decoded)
        self.compiles += 1
        try:
            prog.compiled = compiled
        except (AttributeError, TypeError):
            pass  # frozen/slotted prog objects just recompile per run
        return compiled

    # -- frame execution ---------------------------------------------------------

    def _run_frame(self, start_idx: int, caller_regs: Sequence[int],
                   ctx_addr: Optional[int], depth: int) -> int:
        """Execute from ``start_idx`` to EXIT in a fresh frame.

        The compiled tier handles every statically-known frame entry
        (block leaders: program start, subprogram and callback
        targets); a dynamic entry it didn't see at compile time — an
        arbitrary callback index fabricated at run time — falls back
        to the dispatch-table executor, which accepts any pc."""
        compiled = self._compiled
        if compiled is not None:
            block = compiled.entry_blocks.get(start_idx)
            if block is not None:
                return compiled.func(self, caller_regs, ctx_addr,
                                     depth, block)
        if self._decoded is not None:
            return self._run_frame_fast(start_idx, caller_regs,
                                        ctx_addr, depth)
        return self._run_frame_slow(start_idx, caller_regs, ctx_addr,
                                    depth)

    def _run_frame_fast(self, start_idx: int,
                        caller_regs: Sequence[int],
                        ctx_addr: Optional[int], depth: int) -> int:
        """Dispatch-table executor with batched clock accounting.

        ``pending`` counts instructions executed since the last flush;
        every point where the virtual clock or ``insns_executed`` is
        observable from outside the frame (memory, helpers, subprog
        calls, backward edges, exit, and any raised fault) flushes
        first, so totals agree with the decode-per-step path exactly.
        """
        if depth > 8:
            raise BpfRuntimeError("call depth exceeded at run time")
        kernel = self.kernel
        mem = kernel.mem
        mem_read = mem.read
        mem_write = mem.write
        work = kernel.work
        tag = self.prog_tag
        stack = mem.kmalloc(512, type_name="bpf_stack", owner=tag)
        regs = [0] * 11
        if ctx_addr is not None:
            regs[1] = ctx_addr & U64
        else:
            regs[1:6] = [v & U64 for v in caller_regs[1:6]]
        regs[10] = stack.base + 512
        slots = self._decoded.slots
        n = len(slots)
        idx = start_idx
        pending = 0
        try:
            while True:
                if not 0 <= idx < n:
                    raise BpfRuntimeError(f"pc out of range: {idx}")
                slot = slots[idx]
                kind = slot[0]
                pending += 1

                if kind == K_ALU64_K or kind == K_ALU64_X:
                    op = slot[1]
                    dr = slot[2]
                    s = regs[slot[3]] if kind == K_ALU64_X else slot[3]
                    d = regs[dr]
                    if op == A_ADD:
                        regs[dr] = (d + s) & U64
                    elif op == A_SUB:
                        regs[dr] = (d - s) & U64
                    elif op == A_AND:
                        regs[dr] = d & s
                    elif op == A_OR:
                        regs[dr] = d | s
                    elif op == A_XOR:
                        regs[dr] = d ^ s
                    elif op == A_MUL:
                        regs[dr] = (d * s) & U64
                    elif op == A_LSH:
                        regs[dr] = (d << (s & 63)) & U64
                    elif op == A_RSH:
                        regs[dr] = d >> (s & 63)
                    elif op == A_DIV:
                        regs[dr] = d // s if s else 0
                    elif op == A_MOD:
                        regs[dr] = d % s if s else d
                    elif op == A_ARSH:
                        sd = d - _F64 if d & _H64 else d
                        regs[dr] = (sd >> (s & 63)) & U64
                    elif op == A_NEG:
                        regs[dr] = (-d) & U64
                    else:
                        raise BpfRuntimeError(
                            f"unsupported ALU op {op:#x}")
                    idx += 1
                    continue

                if kind == K_MOV64_K:
                    regs[slot[1]] = slot[2]
                    idx += 1
                    continue
                if kind == K_MOV64_X:
                    regs[slot[1]] = regs[slot[2]]
                    idx += 1
                    continue

                if kind == K_JMP_K or kind == K_JMP_X:
                    d = regs[slot[2]]
                    if kind == K_JMP_X:
                        taken = _cond_eval(slot[1], d, regs[slot[3]],
                                           _H64, _F64)
                        target, backward = slot[4], slot[5]
                    else:
                        taken = _cond_eval_imm(slot[1], d, slot[3],
                                               slot[4], _H64, _F64)
                        target, backward = slot[5], slot[6]
                    if taken:
                        if backward:
                            self.insns_executed += pending
                            work(pending)
                            pending = 0
                        idx = target
                    else:
                        idx += 1
                    continue

                if kind == K_LDX:
                    self.insns_executed += pending
                    work(pending)
                    pending = 0
                    addr = (regs[slot[2]] + slot[3]) & U64
                    regs[slot[1]] = int.from_bytes(
                        mem_read(addr, slot[4], source=tag), "little")
                    idx += 1
                    continue
                if kind == K_STX:
                    self.insns_executed += pending
                    work(pending)
                    pending = 0
                    addr = (regs[slot[1]] + slot[3]) & U64
                    value = regs[slot[2]] & slot[5]
                    mem_write(addr, value.to_bytes(slot[4], "little"),
                              source=tag)
                    idx += 1
                    continue
                if kind == K_ST:
                    self.insns_executed += pending
                    work(pending)
                    pending = 0
                    addr = (regs[slot[1]] + slot[2]) & U64
                    mem_write(addr, slot[3], source=tag)
                    idx += 1
                    continue
                if kind == K_ATOMIC:
                    self.insns_executed += pending
                    work(pending)
                    pending = 0
                    addr = (regs[slot[1]] + slot[3]) & U64
                    self._atomic_rmw(regs, slot[5], addr, slot[4],
                                     slot[2], mem, tag)
                    idx += 1
                    continue

                if kind == K_ALU32_K or kind == K_ALU32_X:
                    op = slot[1]
                    dr = slot[2]
                    s = regs[slot[3]] & U32 if kind == K_ALU32_X \
                        else slot[3]
                    d = regs[dr] & U32
                    if op == A_ADD:
                        regs[dr] = (d + s) & U32
                    elif op == A_SUB:
                        regs[dr] = (d - s) & U32
                    elif op == A_AND:
                        regs[dr] = d & s
                    elif op == A_OR:
                        regs[dr] = d | s
                    elif op == A_XOR:
                        regs[dr] = d ^ s
                    elif op == A_MUL:
                        regs[dr] = (d * s) & U32
                    elif op == A_LSH:
                        regs[dr] = (d << (s & 31)) & U32
                    elif op == A_RSH:
                        regs[dr] = d >> (s & 31)
                    elif op == A_DIV:
                        regs[dr] = d // s if s else 0
                    elif op == A_MOD:
                        regs[dr] = d % s if s else d
                    elif op == A_ARSH:
                        sd = d - _F32 if d & _H32 else d
                        regs[dr] = (sd >> (s & 31)) & U32
                    elif op == A_NEG:
                        regs[dr] = (-d) & U32
                    else:
                        raise BpfRuntimeError(
                            f"unsupported ALU op {op:#x}")
                    idx += 1
                    continue
                if kind == K_MOV32_K:
                    regs[slot[1]] = slot[2]
                    idx += 1
                    continue
                if kind == K_MOV32_X:
                    regs[slot[1]] = regs[slot[2]] & U32
                    idx += 1
                    continue

                if kind == K_JMP32_K or kind == K_JMP32_X:
                    d = regs[slot[2]] & U32
                    if kind == K_JMP32_X:
                        taken = _cond_eval(slot[1], d,
                                           regs[slot[3]] & U32,
                                           _H32, _F32)
                        target, backward = slot[4], slot[5]
                    else:
                        taken = _cond_eval_imm(slot[1], d, slot[3],
                                               slot[4], _H32, _F32)
                        target, backward = slot[5], slot[6]
                    if taken:
                        if backward:
                            self.insns_executed += pending
                            work(pending)
                            pending = 0
                        idx = target
                    else:
                        idx += 1
                    continue

                if kind == K_LD_IMM64:
                    regs[slot[1]] = slot[2]
                    idx = slot[3]
                    continue
                if kind == K_JA:
                    if slot[2]:
                        self.insns_executed += pending
                        work(pending)
                        pending = 0
                    idx = slot[1]
                    continue
                if kind == K_CALL_HELPER:
                    self.insns_executed += pending
                    work(pending)
                    pending = 0
                    regs[0] = self._call_helper(slot[1], regs)
                    idx += 1
                    continue
                if kind == K_CALL_SUB:
                    self.insns_executed += pending
                    work(pending)
                    pending = 0
                    regs[0] = self._run_frame_fast(slot[1], regs,
                                                   None, depth + 1)
                    idx += 1
                    continue
                if kind == K_EXIT:
                    self.insns_executed += pending
                    work(pending)
                    pending = 0
                    if depth == 0:
                        self.last_exit_regs = list(regs)
                    return regs[0]
                # K_BAD and anything unexpected
                raise BpfRuntimeError(slot[1] if kind == K_BAD else
                                      f"undecodable slot at {idx}")
        finally:
            if pending:
                self.insns_executed += pending
                work(pending)
            if not stack.freed:
                mem.kfree(stack)

    def _run_frame_slow(self, start_idx: int,
                        caller_regs: Sequence[int],
                        ctx_addr: Optional[int], depth: int) -> int:
        """Decode-per-step executor (reference/differential baseline)."""
        if depth > 8:
            raise BpfRuntimeError("call depth exceeded at run time")
        mem = self.kernel.mem
        stack = mem.kmalloc(512, type_name="bpf_stack",
                            owner=self.prog_tag)
        regs = [0] * 11
        if ctx_addr is not None:
            regs[1] = to_u64(ctx_addr)
        else:
            regs[1:6] = [to_u64(v) for v in caller_regs[1:6]]
        regs[10] = stack.base + 512
        insns = self._insns
        idx = start_idx
        try:
            while True:
                if not 0 <= idx < len(insns):
                    raise BpfRuntimeError(f"pc out of range: {idx}")
                insn = insns[idx]
                self.insns_executed += 1
                self.kernel.work(1)
                cls = insn.insn_class

                if insn.is_ld_imm64:
                    regs[insn.dst] = self._ld_imm64_value(insn, insns,
                                                          idx)
                    idx += 2
                    continue
                if cls in (isa.BPF_ALU, isa.BPF_ALU64):
                    self._alu(regs, insn, cls == isa.BPF_ALU64)
                    idx += 1
                    continue
                if cls == isa.BPF_LDX:
                    size = isa.SIZE_BYTES[insn.opcode & isa.SIZE_MASK]
                    addr = to_u64(regs[insn.src] + insn.off)
                    raw = mem.read(addr, size, source=self.prog_tag)
                    regs[insn.dst] = int.from_bytes(raw, "little")
                    idx += 1
                    continue
                if cls in (isa.BPF_STX, isa.BPF_ST):
                    size = isa.SIZE_BYTES[insn.opcode & isa.SIZE_MASK]
                    addr = to_u64(regs[insn.dst] + insn.off)
                    if cls == isa.BPF_STX and \
                            (insn.opcode & isa.MODE_MASK) == \
                            isa.BPF_ATOMIC:
                        self._atomic_rmw(regs, insn.imm, addr, size,
                                         insn.src, mem, self.prog_tag)
                        idx += 1
                        continue
                    value = regs[insn.src] if cls == isa.BPF_STX \
                        else to_u64(insn.imm)
                    mem.write(addr,
                              (value & ((1 << (size * 8)) - 1)).to_bytes(
                                  size, "little"),
                              source=self.prog_tag)
                    idx += 1
                    continue
                if cls in (isa.BPF_JMP, isa.BPF_JMP32):
                    op = insn.opcode & isa.JMP_OP_MASK
                    if op == isa.BPF_EXIT:
                        if depth == 0:
                            self.last_exit_regs = list(regs)
                        return regs[0]
                    if op == isa.BPF_JA:
                        idx = idx + insn.off + 1
                        continue
                    if op == isa.BPF_CALL:
                        if insn.src == isa.BPF_PSEUDO_CALL:
                            target = idx + insn.imm + 1
                            regs[0] = self._run_frame_slow(
                                target, regs, None, depth + 1)
                        else:
                            regs[0] = self._call_helper(insn.imm, regs)
                        idx += 1
                        continue
                    if self._jump_taken(op, insn, regs):
                        idx = idx + insn.off + 1
                    else:
                        idx += 1
                    continue
                raise BpfRuntimeError(
                    f"unsupported opcode {insn.opcode:#04x} at {idx}")
        finally:
            if not stack.freed:
                mem.kfree(stack)

    # -- instruction semantics -----------------------------------------------------

    def _atomic_rmw(self, regs: List[int], imm: int, addr: int,
                    size: int, src: int, mem: object,
                    tag: str) -> None:
        """One ``BPF_ATOMIC`` read-modify-write, selected by ``imm``.

        Implements the Linux sub-op encoding: ADD/OR/AND/XOR
        (optionally ``| BPF_FETCH`` to load the old value into the
        source register), XCHG, and CMPXCHG (R0 is the comparand and
        receives the old value).  Unknown sub-ops raise *before*
        touching memory.

        Under a deterministic SMP run the whole RMW is one
        indivisible step: there is a yield point *before* it, then the
        constituent load and store are tagged atomic for the race
        detector and cannot be interleaved — atomic-vs-atomic
        accesses are not races, which is exactly what makes
        lock-free per-counter increments pass the race hunt.
        """
        smp = self.kernel.smp
        if smp is not None:
            smp.yield_point("atomic", tag)
            with smp.atomic_scope():
                self._atomic_rmw_body(regs, imm, addr, size, src, mem,
                                      tag)
            return
        self._atomic_rmw_body(regs, imm, addr, size, src, mem, tag)

    def _atomic_rmw_body(self, regs: List[int], imm: int, addr: int,
                         size: int, src: int, mem: object,
                         tag: str) -> None:
        width_mask = (1 << (size * 8)) - 1
        if imm == isa.BPF_CMPXCHG:
            old = int.from_bytes(mem.read(addr, size, source=tag),
                                 "little")
            if old == (regs[0] & width_mask):
                mem.write(addr,
                          (regs[src] & width_mask).to_bytes(size,
                                                            "little"),
                          source=tag)
            regs[0] = old
            return
        if imm == isa.BPF_XCHG:
            old = int.from_bytes(mem.read(addr, size, source=tag),
                                 "little")
            mem.write(addr,
                      (regs[src] & width_mask).to_bytes(size, "little"),
                      source=tag)
            regs[src] = old
            return
        op = imm & ~isa.BPF_FETCH
        if op not in (isa.BPF_ADD, isa.BPF_OR, isa.BPF_AND,
                      isa.BPF_XOR):
            raise BpfRuntimeError(f"unsupported atomic op {imm:#x}")
        old = int.from_bytes(mem.read(addr, size, source=tag),
                             "little")
        if op == isa.BPF_ADD:
            new = (old + regs[src]) & width_mask
        elif op == isa.BPF_OR:
            new = (old | regs[src]) & width_mask
        elif op == isa.BPF_AND:
            new = (old & regs[src]) & width_mask
        else:
            new = (old ^ regs[src]) & width_mask
        mem.write(addr, new.to_bytes(size, "little"), source=tag)
        if imm & isa.BPF_FETCH:
            regs[src] = old

    def _ld_imm64_value(self, insn: Insn, insns: List[Insn],
                        idx: int) -> int:
        if idx + 1 >= len(insns):
            # same outcome as the predecoded K_BAD slot: a truncated
            # ld_imm64 (any form) is a runtime decode error, never a
            # raw IndexError
            raise BpfRuntimeError(f"incomplete ld_imm64 at {idx}")
        if insn.src == isa.BPF_PSEUDO_MAP_FD:
            return MAP_PTR_BASE + insn.imm
        if insn.src == isa.BPF_PSEUDO_FUNC:
            return FUNC_PTR_BASE + (idx + insn.imm + 1)
        hi = insns[idx + 1].imm & 0xFFFFFFFF
        return (hi << 32) | (insn.imm & 0xFFFFFFFF)

    def _alu(self, regs: List[int], insn: Insn, is64: bool) -> None:
        op = insn.opcode & isa.ALU_OP_MASK
        if insn.opcode & isa.BPF_X:
            src = regs[insn.src]
        else:
            src = to_u64(insn.imm)  # sign-extended to 64 bits
        dst = regs[insn.dst]
        if not is64:
            dst &= U32
            src &= U32
        width_mask = U64 if is64 else U32

        if op == isa.BPF_MOV:
            result = src
        elif op == isa.BPF_ADD:
            result = dst + src
        elif op == isa.BPF_SUB:
            result = dst - src
        elif op == isa.BPF_MUL:
            result = dst * src
        elif op == isa.BPF_DIV:
            result = dst // src if src else 0
        elif op == isa.BPF_MOD:
            result = dst % src if src else dst
        elif op == isa.BPF_OR:
            result = dst | src
        elif op == isa.BPF_AND:
            result = dst & src
        elif op == isa.BPF_XOR:
            result = dst ^ src
        elif op == isa.BPF_LSH:
            result = dst << (src & (63 if is64 else 31))
        elif op == isa.BPF_RSH:
            result = dst >> (src & (63 if is64 else 31))
        elif op == isa.BPF_ARSH:
            bits = 64 if is64 else 32
            shift = src & (bits - 1)
            signed = to_s64(dst) if is64 else \
                (dst - (1 << 32) if dst & (1 << 31) else dst)
            result = signed >> shift
        elif op == isa.BPF_NEG:
            result = -dst
        else:
            raise BpfRuntimeError(f"unsupported ALU op {op:#x}")
        regs[insn.dst] = result & width_mask

    def _jump_taken(self, op: int, insn: Insn, regs: List[int]) -> bool:
        dst = regs[insn.dst]
        src = regs[insn.src] if insn.opcode & isa.BPF_X \
            else to_u64(insn.imm)
        if insn.insn_class == isa.BPF_JMP32:
            dst &= U32
            src &= U32
            sdst = dst - (1 << 32) if dst & (1 << 31) else dst
            ssrc = src - (1 << 32) if src & (1 << 31) else src
        else:
            sdst, ssrc = to_s64(dst), to_s64(src)
        table = {
            isa.BPF_JEQ: dst == src,
            isa.BPF_JNE: dst != src,
            isa.BPF_JGT: dst > src,
            isa.BPF_JGE: dst >= src,
            isa.BPF_JLT: dst < src,
            isa.BPF_JLE: dst <= src,
            isa.BPF_JSET: bool(dst & src),
            isa.BPF_JSGT: sdst > ssrc,
            isa.BPF_JSGE: sdst >= ssrc,
            isa.BPF_JSLT: sdst < ssrc,
            isa.BPF_JSLE: sdst <= ssrc,
        }
        if op not in table:
            raise BpfRuntimeError(f"unsupported jump op {op:#x}")
        return table[op]

    # -- helper plumbing -------------------------------------------------------------

    def _call_helper(self, helper_id: int, regs: List[int]) -> int:
        spec = self.subsystem.registry.get(helper_id)
        if spec is None or spec.impl is None:
            raise BpfRuntimeError(f"call to unknown helper {helper_id}")
        self.helper_calls += 1
        telemetry = self.kernel.telemetry
        if telemetry.stats_enabled and self._current_prog is not None:
            telemetry.record_helper("ebpf", self._current_prog.name,
                                    spec.name)
        # a helper call is far more work than one bytecode insn
        self.kernel.work(20 + spec.callgraph_size // 50)
        smp = self.kernel.smp
        if smp is not None:
            smp.yield_point("helper", spec.name)
        faults = self.kernel.faults
        if faults.armed:
            fault = faults.check(f"helper.{spec.name}")
            if fault is not None:
                if fault.kind == "errno":
                    return to_u64(-fault.errno)
                if fault.kind == "panic":
                    self.kernel.log.record_oops(
                        self.kernel.clock.now_ns,
                        f"injected panic in helper {spec.name}",
                        category="fault-injection",
                        source=self.prog_tag)
                    raise KernelOops(
                        f"injected panic in helper {spec.name}",
                        source=self.prog_tag)
                # delay: virtual time already charged; proceed
        ctx = HelperCallContext(self.kernel, self, regs[1:6],
                                self._current_prog)
        return to_u64(spec.impl(ctx))

    def resolve_map_ptr(self, value: int):
        """Map register value -> BpfMap (None if not a map pointer)."""
        if value < MAP_PTR_BASE or value > MAP_PTR_BASE + (1 << 20):
            return None
        return self.subsystem.map_by_fd(value - MAP_PTR_BASE)

    def find_map_by_value_addr(self, addr: int):
        """The map whose storage contains ``addr``, if any."""
        alloc = self.kernel.mem.find_allocation(addr)
        if alloc is None:
            return None
        for bpf_map in self.subsystem.all_maps():
            storage = getattr(bpf_map, "storage", None)
            if storage is not None and storage is alloc:
                return bpf_map
            per_cpu = getattr(bpf_map, "per_cpu_storage", None)
            if per_cpu is not None and alloc in per_cpu:
                return bpf_map
            entries = getattr(bpf_map, "_entries", None)
            if entries is not None and alloc in entries.values():
                return bpf_map
        return None

    def resolve_func_ptr(self, value: int) -> Optional[int]:
        """Callback register value -> instruction index."""
        if value < FUNC_PTR_BASE:
            return None
        target = value - FUNC_PTR_BASE
        if target >= len(self._insns):
            return None
        return target

    def request_tail_call(self, prog: object) -> None:
        """Unwind the current program and restart in ``prog``."""
        raise TailCallRequest(prog)

    def next_prandom(self) -> int:
        """Deterministic xorshift PRNG for bpf_get_prandom_u32."""
        x = self._prandom_state
        x ^= (x << 13) & U32
        x ^= x >> 17
        x ^= (x << 5) & U32
        self._prandom_state = x & U32
        return self._prandom_state

    def find_request_sock_for(self, sock: object):
        """The pending request sock linked to a listener, if any."""
        return getattr(sock, "pending_reqsk", None)

    # -- bpf_loop with fast-forward ----------------------------------------------------

    def execute_loop(self, callback_idx: int, nr_loops: int,
                     cb_ctx: int) -> int:
        """Run ``nr_loops`` callback iterations; after a sampled
        prefix, charge the remaining iterations' virtual time in bulk
        (see module docstring)."""
        if nr_loops == 0:
            return 0
        clock = self.kernel.clock
        start_ns = clock.now_ns
        start_insns = self.insns_executed
        executed = 0
        for index in range(min(nr_loops, self.loop_sample_limit)):
            ret = self._run_frame(callback_idx, [0, index, cb_ctx,
                                                 0, 0, 0], None, depth=1)
            executed += 1
            # kernel bpf_loop stops on any nonzero callback return,
            # not just 1
            if ret != 0:
                return executed
        remaining = nr_loops - executed
        if remaining > 0:
            per_iter_ns = max(
                (clock.now_ns - start_ns) // max(executed, 1), 1)
            per_iter_insns = max(
                (self.insns_executed - start_insns) // max(executed, 1),
                1)
            clock.advance(remaining * per_iter_ns)
            self.insns_executed += remaining * per_iter_insns
        return nr_loops
