"""The modeled eBPF subsystem — the framework the paper critiques.

Faithful-in-structure model of Linux eBPF:

* :mod:`repro.ebpf.isa` — the bytecode instruction set,
* :mod:`repro.ebpf.asm` — a program-builder assembler,
* :mod:`repro.ebpf.disasm` — a disassembler,
* :mod:`repro.ebpf.maps` — array / hash / ringbuf / task-storage maps,
* :mod:`repro.ebpf.helpers` — the helper-function registry, including
  the buggy helpers of the paper's Table 1,
* :mod:`repro.ebpf.verifier` — the in-kernel verifier: symbolic
  execution with tnums, range tracking, pointer types, reference and
  lock discipline, state pruning and complexity limits,
* :mod:`repro.ebpf.interpreter` — the bytecode VM,
* :mod:`repro.ebpf.jit` — the JIT lowering pass (with an injectable
  miscompilation bug),
* :mod:`repro.ebpf.loader` — the load path tying it all together.
"""

from repro.ebpf.isa import Insn
from repro.ebpf.asm import Asm
from repro.ebpf.engine import Engine, resolve_engine
from repro.ebpf.loader import BpfSubsystem, LoadedProgram
from repro.ebpf.progs import ProgType

__all__ = ["Insn", "Asm", "BpfSubsystem", "Engine", "LoadedProgram",
           "ProgType", "resolve_engine"]
