"""The eBPF instruction set.

Mirrors the Linux uapi encoding: 8-byte instructions with an 8-bit
opcode (3-bit class + size/operation bits), two 4-bit registers, a
16-bit signed offset and a 32-bit signed immediate.  64-bit immediate
loads (``LD_IMM64``) occupy two instruction slots, with the second
slot's ``imm`` holding the upper 32 bits — just like the real ISA, and
important for the verifier/JIT interplay (a branch into the second
slot of an ``LD_IMM64`` is the classic control-flow-hijack gadget).
"""

from __future__ import annotations

from dataclasses import dataclass

# -- instruction classes ------------------------------------------------------
BPF_LD = 0x00
BPF_LDX = 0x01
BPF_ST = 0x02
BPF_STX = 0x03
BPF_ALU = 0x04
BPF_JMP = 0x05
BPF_JMP32 = 0x06
BPF_ALU64 = 0x07

CLASS_MASK = 0x07

# -- size modifiers (LD/ST) ---------------------------------------------------
BPF_W = 0x00   # 4 bytes
BPF_H = 0x08   # 2 bytes
BPF_B = 0x10   # 1 byte
BPF_DW = 0x18  # 8 bytes

SIZE_MASK = 0x18
SIZE_BYTES = {BPF_W: 4, BPF_H: 2, BPF_B: 1, BPF_DW: 8}

# -- mode modifiers (LD/ST) ---------------------------------------------------
BPF_IMM = 0x00
BPF_ABS = 0x20
BPF_IND = 0x40
BPF_MEM = 0x60
BPF_ATOMIC = 0xC0

MODE_MASK = 0xE0

# -- source operand -----------------------------------------------------------
BPF_K = 0x00   # use imm
BPF_X = 0x08   # use src_reg

SRC_MASK = 0x08

# -- ALU operations -----------------------------------------------------------
BPF_ADD = 0x00
BPF_SUB = 0x10
BPF_MUL = 0x20
BPF_DIV = 0x30
BPF_OR = 0x40
BPF_AND = 0x50
BPF_LSH = 0x60
BPF_RSH = 0x70
BPF_NEG = 0x80
BPF_MOD = 0x90
BPF_XOR = 0xA0
BPF_MOV = 0xB0
BPF_ARSH = 0xC0
BPF_END = 0xD0

ALU_OP_MASK = 0xF0

ALU_OP_NAMES = {
    BPF_ADD: "add", BPF_SUB: "sub", BPF_MUL: "mul", BPF_DIV: "div",
    BPF_OR: "or", BPF_AND: "and", BPF_LSH: "lsh", BPF_RSH: "rsh",
    BPF_NEG: "neg", BPF_MOD: "mod", BPF_XOR: "xor", BPF_MOV: "mov",
    BPF_ARSH: "arsh", BPF_END: "end",
}

# -- atomic sub-operations (imm of a BPF_STX|BPF_ATOMIC insn) -----------------
#: modifier: also load the pre-op value back into the source register
BPF_FETCH = 0x01
#: atomic exchange (always fetches)
BPF_XCHG = 0xE0 | BPF_FETCH
#: atomic compare-and-exchange (R0 is the comparand and receives the
#: old value)
BPF_CMPXCHG = 0xF0 | BPF_FETCH

ATOMIC_OP_NAMES = {
    BPF_ADD: "add", BPF_OR: "or", BPF_AND: "and", BPF_XOR: "xor",
    BPF_XCHG: "xchg", BPF_CMPXCHG: "cmpxchg",
}

# -- JMP operations -----------------------------------------------------------
BPF_JA = 0x00
BPF_JEQ = 0x10
BPF_JGT = 0x20
BPF_JGE = 0x30
BPF_JSET = 0x40
BPF_JNE = 0x50
BPF_JSGT = 0x60
BPF_JSGE = 0x70
BPF_CALL = 0x80
BPF_EXIT = 0x90
BPF_JLT = 0xA0
BPF_JLE = 0xB0
BPF_JSLT = 0xC0
BPF_JSLE = 0xD0

JMP_OP_MASK = 0xF0

JMP_OP_NAMES = {
    BPF_JA: "ja", BPF_JEQ: "jeq", BPF_JGT: "jgt", BPF_JGE: "jge",
    BPF_JSET: "jset", BPF_JNE: "jne", BPF_JSGT: "jsgt", BPF_JSGE: "jsge",
    BPF_CALL: "call", BPF_EXIT: "exit", BPF_JLT: "jlt", BPF_JLE: "jle",
    BPF_JSLT: "jslt", BPF_JSLE: "jsle",
}

# -- registers ----------------------------------------------------------------
R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10 = range(11)
MAX_BPF_REG = 11
FP = R10  # read-only frame pointer

#: caller-saved argument registers for helper calls
ARG_REGS = (R1, R2, R3, R4, R5)
#: callee-saved registers
CALLEE_SAVED = (R6, R7, R8, R9)

#: pseudo src_reg marker: imm of LD_IMM64 is a map fd
BPF_PSEUDO_MAP_FD = 1
#: pseudo src_reg marker on BPF_CALL: imm is a relative subprog offset
BPF_PSEUDO_CALL = 1
#: pseudo src_reg marker: imm of LD_IMM64 is a relative subprog offset
BPF_PSEUDO_FUNC = 4

#: per-program stack size (bytes)
MAX_BPF_STACK = 512

U64_MAX = (1 << 64) - 1
U32_MAX = (1 << 32) - 1


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as a signed integer."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def to_u64(value: int) -> int:
    """Truncate to unsigned 64-bit."""
    return value & U64_MAX


def to_s64(value: int) -> int:
    """Truncate to signed 64-bit."""
    return sign_extend(value, 64)


def to_u32(value: int) -> int:
    """Truncate to unsigned 32-bit."""
    return value & U32_MAX


@dataclass(frozen=True)
class Insn:
    """One eBPF instruction."""

    opcode: int
    dst: int = 0
    src: int = 0
    off: int = 0
    imm: int = 0

    @property
    def insn_class(self) -> int:
        """The 3-bit instruction class."""
        return self.opcode & CLASS_MASK

    @property
    def is_jump(self) -> bool:
        """True for JMP/JMP32-class instructions."""
        return self.insn_class in (BPF_JMP, BPF_JMP32)

    @property
    def is_alu(self) -> bool:
        """True for ALU/ALU64-class instructions."""
        return self.insn_class in (BPF_ALU, BPF_ALU64)

    @property
    def is_ld_imm64(self) -> bool:
        """True for the first slot of a two-slot 64-bit immediate load."""
        return self.opcode == (BPF_LD | BPF_IMM | BPF_DW)

    def encode(self) -> bytes:
        """Encode to the 8-byte on-the-wire format."""
        if not 0 <= self.dst < 16 or not 0 <= self.src < 16:
            raise ValueError(f"register out of range in {self}")
        return (bytes([self.opcode & 0xFF, (self.src << 4) | self.dst])
                + (self.off & 0xFFFF).to_bytes(2, "little")
                + (self.imm & 0xFFFFFFFF).to_bytes(4, "little"))

    @classmethod
    def decode(cls, raw: bytes) -> "Insn":
        """Decode one instruction from 8 bytes."""
        if len(raw) != 8:
            raise ValueError(f"instruction must be 8 bytes, got {len(raw)}")
        opcode = raw[0]
        dst = raw[1] & 0x0F
        src = raw[1] >> 4
        off = sign_extend(int.from_bytes(raw[2:4], "little"), 16)
        imm = sign_extend(int.from_bytes(raw[4:8], "little"), 32)
        return cls(opcode, dst, src, off, imm)
