"""Program types and their context layouts.

Each eBPF program type attaches to a different hook and receives a
different context object.  The verifier needs the layout (which
offsets are readable/writable, which fields carry packet pointers);
the interpreter needs the concrete object behind the context pointer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class CtxFieldKind(enum.Enum):
    """What loading a context field yields in the verifier."""

    SCALAR = "scalar"
    PACKET = "packet"          # PTR_TO_PACKET
    PACKET_END = "packet_end"  # PTR_TO_PACKET_END


@dataclass(frozen=True)
class CtxField:
    """One field of a context layout."""

    name: str
    offset: int
    size: int
    kind: CtxFieldKind = CtxFieldKind.SCALAR
    writable: bool = False

    @property
    def end(self) -> int:
        """One past the field's last byte."""
        return self.offset + self.size


class ProgType(enum.Enum):
    """Supported program types."""

    SOCKET_FILTER = "socket_filter"
    XDP = "xdp"
    KPROBE = "kprobe"
    TRACEPOINT = "tracepoint"
    CGROUP_SKB = "cgroup_skb"
    PERF_EVENT = "perf_event"


# layouts match repro.kernel.objects.SkBuff so the interpreter can hand
# the object's real kernel address to the program as its context
_SKB_FIELDS = (
    CtxField("len", 0, 4),
    CtxField("protocol", 4, 4),
    CtxField("data", 8, 8, CtxFieldKind.PACKET),
    CtxField("data_end", 16, 8, CtxFieldKind.PACKET_END),
    CtxField("mark", 24, 4, writable=True),
)

# xdp_md model: same shape as skb for the simulation (data/data_end)
_XDP_FIELDS = _SKB_FIELDS

# pt_regs model: eight 8-byte registers, read-only scalars
_PT_REGS_FIELDS = tuple(
    CtxField(f"reg{i}", i * 8, 8) for i in range(8)
)


@dataclass(frozen=True)
class ProgTypeInfo:
    """Verifier-facing description of a program type."""

    prog_type: ProgType
    ctx_fields: Tuple[CtxField, ...]
    ctx_size: int
    #: inclusive allowed range for the program's return value, or None
    ret_range: Optional[Tuple[int, int]]

    def field_at(self, offset: int, size: int) -> Optional[CtxField]:
        """The field fully containing [offset, offset+size), if any."""
        for fld in self.ctx_fields:
            if fld.offset <= offset and offset + size <= fld.end:
                return fld
        return None


PROG_TYPE_INFO: Dict[ProgType, ProgTypeInfo] = {
    ProgType.SOCKET_FILTER: ProgTypeInfo(
        ProgType.SOCKET_FILTER, _SKB_FIELDS, 32, ret_range=(0, 0xFFFF)),
    ProgType.XDP: ProgTypeInfo(
        ProgType.XDP, _XDP_FIELDS, 32, ret_range=(0, 4)),
    ProgType.KPROBE: ProgTypeInfo(
        ProgType.KPROBE, _PT_REGS_FIELDS, 64, ret_range=None),
    ProgType.TRACEPOINT: ProgTypeInfo(
        ProgType.TRACEPOINT, _PT_REGS_FIELDS, 64, ret_range=None),
    # cgroup skb programs return a binary allow/deny verdict
    ProgType.CGROUP_SKB: ProgTypeInfo(
        ProgType.CGROUP_SKB, _SKB_FIELDS, 32, ret_range=(0, 1)),
    ProgType.PERF_EVENT: ProgTypeInfo(
        ProgType.PERF_EVENT, _PT_REGS_FIELDS, 64, ret_range=None),
}

# XDP verdicts
XDP_ABORTED = 0
XDP_DROP = 1
XDP_PASS = 2
XDP_TX = 3
XDP_REDIRECT = 4
