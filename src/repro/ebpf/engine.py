"""The execution-tier enum and its single resolver.

Engine selection grew organically across three surfaces — ``engine=``
on :class:`~repro.ebpf.interpreter.BpfVm` / :class:`~repro.ebpf.\
loader.BpfSubsystem`, per-program pinning via
:meth:`~repro.ebpf.loader.BpfSubsystem.set_engine`, and bpftool's
``--engine`` flag — each validating its own string against its own
copy of the tier list.  This module is the one place that knows what
an engine is: the :class:`Engine` enum enumerates the tiers (slowest
to fastest) and :func:`resolve_engine` is the one validator every
surface routes through.

The VM stores the canonical *string* value (``"interp"`` / ``"fast"``
/ ``"compiled"``) because that is what the rest of the codebase — the
differential suites, telemetry labels, the compile cache — compares
and prints; :class:`Engine` is the source of truth those strings come
from, and accepts either form on the way in.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple, Union


class Engine(enum.Enum):
    """The three execution tiers, slowest to fastest.

    ``INTERP`` decodes each instruction as it executes (the
    differential baseline), ``FAST`` drives the predecoded dispatch
    table, ``COMPILED`` runs the exec-generated Python lowering.  All
    three are observationally identical by contract.
    """

    INTERP = "interp"
    FAST = "fast"
    COMPILED = "compiled"

    def __str__(self) -> str:
        """Print as the canonical string value (log/CLI friendly)."""
        return self.value


#: canonical tier names, slowest to fastest — the one list the CLI
#: ``choices=`` and every error message derive from
ENGINE_NAMES: Tuple[str, ...] = tuple(e.value for e in Engine)

#: anything the resolver accepts: an :class:`Engine`, its string
#: value, or None (meaning "use the surrounding default")
EngineLike = Union["Engine", str, None]


def resolve_engine(value: EngineLike,
                   default: EngineLike = None) -> Optional[str]:
    """Validate an engine selection and return its canonical string.

    ``None`` falls back to ``default`` (itself resolved), so callers
    can thread an optional override through unchanged.  Anything that
    is not an :class:`Engine`, one of its string values, or None
    raises ``ValueError`` with the one shared message — the three
    historical validation sites all surface this text now.
    """
    if value is None:
        if default is None:
            return None
        value = default
    if isinstance(value, Engine):
        return value.value
    if isinstance(value, str) and value in ENGINE_NAMES:
        return value
    raise ValueError(f"unknown engine {value!r}; "
                     f"expected one of {ENGINE_NAMES}")
