"""Injectable bugs modeling the paper's Table 1 bug population.

Table 1 counts 40 security bugs fixed in 2021-2022, 18 in helpers and
22 in the verifier.  The subset the paper discusses concretely is
modeled here as *live code paths*, each guarded by a flag so
experiments can run the same workload on a "buggy era" kernel
(defaults, matching the studied period) and on a "patched" kernel.

Every flag cites the paper's reference for the bug it reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class BugConfig:
    """Which modeled bugs are present in this kernel instance."""

    #: CVE-2022-2785 [5], §2.2: ``bpf_sys_bpf`` dereferences a pointer
    #: field inside a union attr without checking it for NULL — the
    #: verifier "does not perform deep argument inspection".
    sys_bpf_null_union: bool = True

    #: [35]: ``sk_lookup`` helpers leak a reference on ``request_sock``
    #: results (``bpf_sk_release`` fails to drop it).
    sk_lookup_reqsk_leak: bool = True

    #: [34]: ``bpf_get_task_stack`` uses a task stack without taking a
    #: reference, racing with stack teardown (use-after-free).
    task_stack_missing_ref: bool = True

    #: [36]: array-map element offset computed in 32 bits; a large
    #: index times value_size wraps and lands out of bounds.
    array_map_32bit_overflow: bool = True

    #: [42]: ``bpf_task_storage_get`` misses the NULL check on the
    #: owner ``task_struct`` pointer.
    task_storage_null_deref: bool = True

    #: CVE-2022-23222-like [4]: the verifier fails to sanitize
    #: arithmetic on a pointer type, letting a "verified" program
    #: fabricate kernel pointers (arbitrary read/write, privesc).
    verifier_ptr_arith_unchecked: bool = True

    #: [13, 14, 32]-like: the verifier fails to mark a pointer-derived
    #: scalar as secret, leaking kernel addresses to user-readable maps.
    verifier_ptr_leak: bool = True

    #: [54]: use-after-free in the verifier's own loop-inlining code —
    #: the *verifier itself* is the vulnerable component.
    verifier_loop_inline_uaf: bool = True

    #: CVE-2021-29154 [1]: JIT branch-offset miscompilation lets a
    #: verified program hijack kernel control flow.
    jit_branch_miscompile: bool = True

    @classmethod
    def all_patched(cls) -> "BugConfig":
        """A kernel with every modeled bug fixed."""
        return cls(**{name: False for name in cls().as_dict()})

    def as_dict(self) -> Dict[str, bool]:
        """Flag name -> enabled."""
        return dict(self.__dict__)

    def enabled_count(self) -> int:
        """How many modeled bugs are live."""
        return sum(self.as_dict().values())
