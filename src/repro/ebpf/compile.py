"""The compiled execution tier: bytecode -> generated Python.

This is the reproduction's third engine, and the paper's argument in
miniature: all the work happens once, in a trusted load-time
toolchain, so the hot path carries no interpretive overhead at all.
Where the fast interpreter still fetches a slot tuple and walks a
dispatch chain for every instruction, this tier turns the predecoded
table into Python *source* — one straight-line run of statements per
basic block, registers bound as local variables — and ``exec``-compiles
it once.  CPython then does the dispatch at compile time instead of
run time.

The lowering mirrors ``_run_frame_fast`` statement for statement:

* programs are split into basic blocks at jump targets, fallthrough
  edges of conditional jumps, subprogram entry points, and callback
  (``BPF_PSEUDO_FUNC``) targets; a small integer block id drives a
  ``while``-loop dispatcher, so any block leader is a valid frame
  entry point (subprograms and ``bpf_loop`` callbacks reuse the same
  compiled function),
* registers live in locals ``r0``..``r10`` — no list indexing on the
  hot path,
* the virtual clock and ``insns_executed`` are flushed in batches at
  exactly the fast path's observation points (memory accesses, helper
  calls, subprogram calls, taken backward edges, frame exit, and the
  ``finally`` unwind), with straight-line instruction counts folded in
  as compile-time constants,
* immediates — including the predecoded signed views a conditional
  jump needs — are baked into the source as literals.

Safety stays exactly where it was: helpers, memory accesses, atomics
and tail calls all route back through :class:`~repro.ebpf.interpreter.\
BpfVm` and the kernel's checked memory, so fault injection, telemetry,
watchdog budgets and the recovery supervisor behave identically under
this tier.  Compilation is purely mechanical and proves nothing — an
unverified program compiles fine and still oopses the kernel at run
time; statically-bad slots (``K_BAD``, out-of-range targets) compile
to the same :class:`~repro.errors.BpfRuntimeError` raises the other
engines produce when execution actually reaches them.

Note the deliberate contrast with :mod:`repro.ebpf.jit`: that module
*models* a JIT as a second trusted component that can betray the
verifier (CVE-2021-29154's miscompiled branch); this module *is* a
real compiler whose output is kept honest by the differential
harness — every attack-corpus program, fuzz case and chaos schedule
must agree with both interpreters on result, accounting and failure
mode.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ebpf.predecode import (
    FUNC_PTR_BASE, K_ALU32_K, K_ALU32_X, K_ALU64_K, K_ALU64_X,
    K_ATOMIC, K_BAD, K_CALL_HELPER, K_CALL_SUB, K_EXIT, K_JA,
    K_JMP32_K, K_JMP32_X, K_JMP_K, K_JMP_X, K_LD_IMM64, K_LDX,
    K_MOV32_K, K_MOV32_X, K_MOV64_K, K_MOV64_X, K_ST, K_STX,
    A_ADD, A_AND, A_ARSH, A_DIV, A_LSH, A_MOD, A_MOV, A_MUL,
    A_NEG, A_OR, A_RSH, A_SUB, A_XOR, J_EQ, J_GE, J_GT, J_LE, J_LT,
    J_NE, J_SET, J_SGE, J_SGT, J_SLE, J_SLT, PredecodedProgram,
)
from repro.errors import BpfRuntimeError

U64 = (1 << 64) - 1
U32 = (1 << 32) - 1
_H64 = 1 << 63
_F64 = 1 << 64
_H32 = 1 << 31
_F32 = 1 << 32

_REG_LIST = "[r0, r1, r2, r3, r4, r5, r6, r7, r8, r9, r10]"

#: python comparison spelling per dense jump-condition id (J_SET is
#: handled separately: it is a mask test, not a comparison)
_CMP = {
    J_EQ: "==", J_NE: "!=", J_GT: ">", J_GE: ">=", J_LT: "<",
    J_LE: "<=", J_SGT: ">", J_SGE: ">=", J_SLT: "<", J_SLE: "<=",
}
_SIGNED = (J_SGT, J_SGE, J_SLT, J_SLE)


class CompiledProgram:
    """One program lowered to an ``exec``-compiled frame function.

    ``func(vm, caller_regs, ctx_addr, depth, block)`` executes one
    frame starting at the given block id; ``entry_blocks`` maps the
    instruction indices that are valid frame entry points (program
    start, subprogram targets, callback targets — every block leader)
    to their block ids.  ``source`` keeps the generated Python for
    inspection and tests.
    """

    __slots__ = ("func", "entry_blocks", "n_insns", "n_blocks",
                 "source")

    def __init__(self, func, entry_blocks: Dict[int, int],
                 n_insns: int, source: str) -> None:
        self.func = func
        self.entry_blocks = entry_blocks
        self.n_insns = n_insns
        self.n_blocks = len(set(entry_blocks.values()))
        self.source = source


def _leaders(slots: Tuple[tuple, ...]) -> List[int]:
    """Every basic-block leader, sorted.  Index 0 is always a leader
    (and the only one of an empty program, where it compiles to the
    same out-of-range raise the interpreters produce)."""
    n = len(slots)
    leaders = {0}
    for idx, slot in enumerate(slots):
        kind = slot[0]
        if kind == K_JA or kind == K_CALL_SUB:
            if 0 <= slot[1] < n:
                leaders.add(slot[1])
        elif kind == K_JMP_K or kind == K_JMP32_K:
            if 0 <= slot[5] < n:
                leaders.add(slot[5])
            if idx + 1 < n:
                leaders.add(idx + 1)
        elif kind == K_JMP_X or kind == K_JMP32_X:
            if 0 <= slot[4] < n:
                leaders.add(slot[4])
            if idx + 1 < n:
                leaders.add(idx + 1)
        elif kind == K_LD_IMM64 and slot[2] >= FUNC_PTR_BASE:
            # a materialised BPF_PSEUDO_FUNC constant: its target must
            # be enterable as a callback frame (bpf_loop et al.)
            target = slot[2] - FUNC_PTR_BASE
            if 0 <= target < n:
                leaders.add(target)
    return sorted(leaders)


def _alu64(slot: tuple, is_reg: bool) -> List[str]:
    """Statements for one 64-bit ALU slot (operands pre-resolved)."""
    op, d = slot[1], slot[2]
    s = f"r{slot[3]}" if is_reg else repr(slot[3])
    if op == A_ADD:
        return [f"r{d} = (r{d} + {s}) & U64"]
    if op == A_SUB:
        return [f"r{d} = (r{d} - {s}) & U64"]
    if op == A_AND:
        return [f"r{d} &= {s}"]
    if op == A_OR:
        return [f"r{d} |= {s}"]
    if op == A_XOR:
        return [f"r{d} ^= {s}"]
    if op == A_MUL:
        return [f"r{d} = (r{d} * {s}) & U64"]
    if op == A_LSH:
        shift = f"(r{slot[3]} & 63)" if is_reg else repr(slot[3] & 63)
        return [f"r{d} = (r{d} << {shift}) & U64"]
    if op == A_RSH:
        shift = f"(r{slot[3]} & 63)" if is_reg else repr(slot[3] & 63)
        return [f"r{d} >>= {shift}"]
    if op == A_DIV:
        if not is_reg:
            return [f"r{d} //= {s}"] if slot[3] else [f"r{d} = 0"]
        return [f"r{d} = r{d} // {s} if {s} else 0"]
    if op == A_MOD:
        if not is_reg:
            return [f"r{d} %= {s}"] if slot[3] else []
        return [f"r{d} = r{d} % {s} if {s} else r{d}"]
    if op == A_ARSH:
        shift = f"(r{slot[3]} & 63)" if is_reg else repr(slot[3] & 63)
        return [f"r{d} = ((r{d} - _F64 if r{d} & _H64 else r{d})"
                f" >> {shift}) & U64"]
    # A_NEG (the source operand is unused, like the fast path)
    return [f"r{d} = (-r{d}) & U64"]


def _alu32(slot: tuple, is_reg: bool) -> List[str]:
    """Statements for one 32-bit ALU slot (result zero-extends)."""
    op, d = slot[1], slot[2]
    s = f"(r{slot[3]} & U32)" if is_reg else repr(slot[3])
    if op == A_ADD:
        return [f"r{d} = ((r{d} & U32) + {s}) & U32"]
    if op == A_SUB:
        return [f"r{d} = ((r{d} & U32) - {s}) & U32"]
    if op == A_AND:
        return [f"r{d} = r{d} & U32 & {s}"]
    if op == A_OR:
        return [f"r{d} = (r{d} | {s}) & U32"]
    if op == A_XOR:
        return [f"r{d} = (r{d} ^ {s}) & U32"]
    if op == A_MUL:
        return [f"r{d} = ((r{d} & U32) * {s}) & U32"]
    if op == A_LSH:
        shift = f"(r{slot[3]} & 31)" if is_reg else repr(slot[3] & 31)
        return [f"r{d} = ((r{d} & U32) << {shift}) & U32"]
    if op == A_RSH:
        shift = f"(r{slot[3]} & 31)" if is_reg else repr(slot[3] & 31)
        return [f"r{d} = (r{d} & U32) >> {shift}"]
    if op == A_DIV:
        if not is_reg:
            return [f"r{d} = (r{d} & U32) // {s}"] if slot[3] \
                else [f"r{d} = 0"]
        return [f"_s = r{slot[3]} & U32",
                f"r{d} = (r{d} & U32) // _s if _s else 0"]
    if op == A_MOD:
        if not is_reg:
            # an x % 0 stays x — but still truncated to 32 bits
            return [f"r{d} = (r{d} & U32) % {s}"] if slot[3] \
                else [f"r{d} &= U32"]
        return [f"_s = r{slot[3]} & U32",
                f"r{d} = (r{d} & U32) % _s if _s else r{d} & U32"]
    if op == A_ARSH:
        shift = f"(r{slot[3]} & 31)" if is_reg else repr(slot[3] & 31)
        return [f"_d = r{d} & U32",
                f"r{d} = ((_d - _F32 if _d & _H32 else _d)"
                f" >> {shift}) & U32"]
    # A_NEG
    return [f"r{d} = (-(r{d} & U32)) & U32"]


def _cond_expr(slot: tuple, is_reg: bool, is32: bool,
               pre: List[str]) -> str:
    """The taken-branch condition of one predecoded jump slot.

    Register operands get their signed view derived inline (or via a
    temp emitted into ``pre`` for the 32-bit forms); immediate
    operands use the slot's precomputed unsigned/signed views as
    literals — the same contract ``_cond_eval_imm`` implements in the
    fast interpreter.
    """
    cond, d = slot[1], slot[2]
    if is32:
        d_u = f"(r{d} & U32)"
        half, full = "_H32", "_F32"
    else:
        d_u = f"r{d}"
        half, full = "_H64", "_F64"
    if is_reg:
        s_u = f"(r{slot[3]} & U32)" if is32 else f"r{slot[3]}"
        s_s = None
    else:
        s_u = repr(slot[3])
        s_s = repr(slot[4])
    if cond == J_SET:
        return f"{d_u} & {s_u}"
    if cond not in _SIGNED:
        return f"{d_u} {_CMP[cond]} {s_u}"
    if is32:
        pre.append(f"_d = r{d} & U32")
        d_s = f"(_d - {full} if _d & {half} else _d)"
    else:
        d_s = f"(r{d} - {full} if r{d} & {half} else r{d})"
    if s_s is None:
        if is32:
            pre.append(f"_s = r{slot[3]} & U32")
            s_s = f"(_s - {full} if _s & {half} else _s)"
        else:
            src = slot[3]
            s_s = f"(r{src} - {full} if r{src} & {half} else r{src})"
    return f"{d_s} {_CMP[cond]} {s_s}"


class _FrameWriter:
    """Accumulates the generated frame function line by line."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, indent: int, *stmts: str) -> None:
        """Append statements at the given indentation level."""
        pad = "    " * indent
        for stmt in stmts:
            self.lines.append(pad + stmt)

    def flush(self, indent: int, k: int) -> None:
        """Emit a clock/insns flush folding ``k`` statically-counted
        instructions into the dynamic ``pending`` — the exact sequence
        (and failure behaviour) of the fast path's flush points."""
        if k:
            self.emit(indent, f"pending += {k}")
        self.emit(indent,
                  "vm.insns_executed += pending",
                  "work(pending)",
                  "pending = 0")


def _emit_block(writer: _FrameWriter, slots: Tuple[tuple, ...],
                leader: int, block_of: Dict[int, int]) -> None:
    """Generate one basic block's body at dispatch indent."""
    n = len(slots)
    ind = 4           # inside: def / try / while / if b == N:
    idx = leader
    k = 0             # instructions executed since the last flush
    while True:
        if not 0 <= idx < n:
            if k:
                writer.emit(ind, f"pending += {k}")
            writer.emit(ind, f"raise BpfRuntimeError("
                             f"'pc out of range: {idx}')")
            return
        if idx != leader and idx in block_of:
            if k:
                writer.emit(ind, f"pending += {k}")
            writer.emit(ind, f"b = {block_of[idx]}", "continue")
            return
        slot = slots[idx]
        kind = slot[0]
        k += 1

        if kind == K_ALU64_K or kind == K_ALU64_X:
            writer.emit(ind, *_alu64(slot, kind == K_ALU64_X))
            idx += 1
            continue
        if kind == K_ALU32_K or kind == K_ALU32_X:
            writer.emit(ind, *_alu32(slot, kind == K_ALU32_X))
            idx += 1
            continue
        if kind == K_MOV64_K or kind == K_MOV32_K:
            writer.emit(ind, f"r{slot[1]} = {slot[2]!r}")
            idx += 1
            continue
        if kind == K_MOV64_X:
            writer.emit(ind, f"r{slot[1]} = r{slot[2]}")
            idx += 1
            continue
        if kind == K_MOV32_X:
            writer.emit(ind, f"r{slot[1]} = r{slot[2]} & U32")
            idx += 1
            continue
        if kind == K_LD_IMM64:
            writer.emit(ind, f"r{slot[1]} = {slot[2]!r}")
            idx = slot[3]
            continue

        if kind in (K_JMP_K, K_JMP_X, K_JMP32_K, K_JMP32_X):
            is_reg = kind in (K_JMP_X, K_JMP32_X)
            is32 = kind in (K_JMP32_K, K_JMP32_X)
            target, backward = (slot[4], slot[5]) if is_reg \
                else (slot[5], slot[6])
            pre: List[str] = []
            expr = _cond_expr(slot, is_reg, is32, pre)
            writer.emit(ind, *pre)
            writer.emit(ind, f"if {expr}:")
            if not 0 <= target < n:
                writer.emit(ind + 1, f"pending += {k}")
                writer.emit(ind + 1, f"raise BpfRuntimeError("
                                     f"'pc out of range: {target}')")
            elif backward:
                writer.flush(ind + 1, k)
                writer.emit(ind + 1, f"b = {block_of[target]}",
                            "continue")
            else:
                writer.emit(ind + 1, f"pending += {k}",
                            f"b = {block_of[target]}", "continue")
            idx += 1
            continue

        if kind == K_JA:
            target, backward = slot[1], slot[2]
            if not 0 <= target < n:
                writer.emit(ind, f"pending += {k}")
                writer.emit(ind, f"raise BpfRuntimeError("
                                 f"'pc out of range: {target}')")
                return
            if backward:
                writer.flush(ind, k)
            else:
                writer.emit(ind, f"pending += {k}")
            writer.emit(ind, f"b = {block_of[target]}", "continue")
            return

        if kind == K_LDX:
            writer.flush(ind, k)
            k = 0
            writer.emit(ind, f"r{slot[1]} = int_from_bytes(mem_read("
                             f"(r{slot[2]} + {slot[3]}) & U64, "
                             f"{slot[4]}, source=tag), 'little')")
            idx += 1
            continue
        if kind == K_STX:
            writer.flush(ind, k)
            k = 0
            writer.emit(ind, f"mem_write((r{slot[1]} + {slot[3]}) & "
                             f"U64, (r{slot[2]} & {slot[5]!r})"
                             f".to_bytes({slot[4]}, 'little'), "
                             f"source=tag)")
            idx += 1
            continue
        if kind == K_ST:
            writer.flush(ind, k)
            k = 0
            writer.emit(ind, f"mem_write((r{slot[1]} + {slot[2]}) & "
                             f"U64, {slot[3]!r}, source=tag)")
            idx += 1
            continue
        if kind == K_ATOMIC:
            writer.flush(ind, k)
            k = 0
            src = slot[2]
            writer.emit(ind, f"_r = {_REG_LIST}")
            writer.emit(ind, f"atomic(_r, {slot[5]!r}, "
                             f"(r{slot[1]} + {slot[3]}) & U64, "
                             f"{slot[4]}, {src}, mem, tag)")
            writer.emit(ind, "r0 = _r[0]")
            if src != 0:
                writer.emit(ind, f"r{src} = _r[{src}]")
            idx += 1
            continue

        if kind == K_CALL_HELPER:
            writer.flush(ind, k)
            k = 0
            writer.emit(ind,
                        f"r0 = call_helper({slot[1]!r}, {_REG_LIST})")
            idx += 1
            continue
        if kind == K_CALL_SUB:
            writer.flush(ind, k)
            k = 0
            writer.emit(ind, f"r0 = run_frame({slot[1]}, "
                             f"(0, r1, r2, r3, r4, r5), None, "
                             f"depth + 1)")
            idx += 1
            continue
        if kind == K_EXIT:
            writer.flush(ind, k)
            writer.emit(ind, "if depth == 0:")
            writer.emit(ind + 1, f"vm.last_exit_regs = {_REG_LIST}")
            writer.emit(ind, "return r0")
            return
        # K_BAD and anything unexpected: raise where the interpreters
        # raise, with the instruction itself already counted
        message = slot[1] if kind == K_BAD \
            else f"undecodable slot at {idx}"
        writer.emit(ind, f"pending += {k}")
        writer.emit(ind, f"raise BpfRuntimeError({message!r})")
        return


def render_source(decoded: PredecodedProgram) -> Tuple[str,
                                                       Dict[int, int]]:
    """Generate the frame function source for a predecoded program.

    Returns ``(source, entry_blocks)``; exposed separately from
    :func:`compile_program` so tests and tooling can inspect the
    lowering without executing anything.
    """
    slots = decoded.slots
    leaders = _leaders(slots)
    block_of = {leader: block for block, leader in enumerate(leaders)}
    writer = _FrameWriter()
    writer.emit(0, "def _frame(vm, caller_regs, ctx_addr, depth, b):")
    writer.emit(1,
                "if depth > 8:",
                "    raise BpfRuntimeError("
                "'call depth exceeded at run time')",
                "kernel = vm.kernel",
                "mem = kernel.mem",
                "mem_read = mem.read",
                "mem_write = mem.write",
                "work = kernel.work",
                "tag = vm.prog_tag",
                "atomic = vm._atomic_rmw",
                "call_helper = vm._call_helper",
                "run_frame = vm._run_frame",
                "stack = mem.kmalloc(512, type_name='bpf_stack', "
                "owner=tag)",
                "r0 = r6 = r7 = r8 = r9 = 0",
                "if ctx_addr is None:",
                "    r1 = caller_regs[1] & U64",
                "    r2 = caller_regs[2] & U64",
                "    r3 = caller_regs[3] & U64",
                "    r4 = caller_regs[4] & U64",
                "    r5 = caller_regs[5] & U64",
                "else:",
                "    r1 = ctx_addr & U64",
                "    r2 = r3 = r4 = r5 = 0",
                "r10 = stack.base + 512",
                "pending = 0",
                "try:",
                "    while True:")
    for block, leader in enumerate(leaders):
        head = "if" if block == 0 else "elif"
        writer.emit(3, f"{head} b == {block}:")
        _emit_block(writer, slots, leader, block_of)
    writer.emit(3, "else:",
                "    raise BpfRuntimeError('no block %r' % (b,))")
    writer.emit(1,
                "finally:",
                "    if pending:",
                "        vm.insns_executed += pending",
                "        work(pending)",
                "    if not stack.freed:",
                "        mem.kfree(stack)")
    return "\n".join(writer.lines) + "\n", block_of


def compile_program(decoded: PredecodedProgram) -> CompiledProgram:
    """Lower a predecoded program to its compiled frame function."""
    source, entry_blocks = render_source(decoded)
    namespace = {
        "BpfRuntimeError": BpfRuntimeError,
        "U64": U64, "U32": U32,
        "_H64": _H64, "_F64": _F64, "_H32": _H32, "_F32": _F32,
        "int_from_bytes": int.from_bytes,
    }
    code = compile(source, "<bpf-compiled>", "exec")
    exec(code, namespace)  # noqa: S102 - trusted load-time toolchain
    return CompiledProgram(namespace["_frame"], entry_blocks,
                           decoded.n_insns, source)
