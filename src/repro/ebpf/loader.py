"""The eBPF subsystem front end: maps, program loading, execution.

``BpfSubsystem`` is the ``bpf(2)`` surface of the simulated kernel:
create maps, load programs (which runs the in-kernel verifier and then
the JIT — Figure 1's loading pipeline), and run loaded programs on
contexts.  A :class:`VerifierInternalFault` during verification is
converted into a kernel oops attributed to the verifier, modeling the
[54] class of bugs where the verifier itself is the vulnerable
component.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.ebpf.bugs import BugConfig
from repro.ebpf.compile import CompiledProgram, compile_program
from repro.ebpf.engine import EngineLike, resolve_engine
from repro.ebpf.helpers.registry import HelperRegistry, \
    build_default_registry
from repro.ebpf.interpreter import BpfVm
from repro.ebpf.isa import Insn
from repro.ebpf.jit import JitResult, jit_compile
from repro.ebpf.maps import (
    ArrayMap,
    BpfMap,
    DevMap,
    HashMap,
    PercpuArrayMap,
    PercpuHashMap,
    PerfEventArrayMap,
    ProgArrayMap,
    RingBufMap,
    TaskStorageMap,
)
from repro.ebpf.predecode import PredecodedProgram, predecode
from repro.ebpf.progcache import CachedLoad, ProgramLoadCache, \
    fingerprint
from repro.ebpf.progs import ProgType
from repro.ebpf.verifier.analyzer import (
    Verifier,
    VerifierConfig,
    VerifierInternalFault,
    VerifierStats,
)
from repro.ebpf.verifier.limits import VerifierLimits
from repro.errors import BpfRuntimeError, KernelOops, VerifierError
from repro.kernel.kernel import Kernel


@dataclass
class LoadedProgram:
    """A verified, JIT-compiled program ready to run."""

    prog_id: int
    name: str
    prog_type: ProgType
    insns: List[Insn]
    verifier_stats: VerifierStats
    jit: Optional[JitResult] = None
    #: dispatch table over ``runnable_insns()``, attached at load time
    predecoded: Optional[PredecodedProgram] = None
    #: exec-compiled frame function (compiled tier), attached at load
    #: time when the subsystem's engine is ``compiled``
    compiled: Optional[CompiledProgram] = None
    #: per-program engine override; ``None`` follows the VM default
    engine: Optional[str] = None

    def runnable_insns(self) -> List[Insn]:
        """What the CPU actually executes: JIT output when present."""
        return self.jit.insns if self.jit is not None else self.insns


class BpfSubsystem:
    """One kernel's eBPF subsystem."""

    def __init__(self, kernel: Kernel,
                 registry: Optional[HelperRegistry] = None,
                 bugs: Optional[BugConfig] = None,
                 limits: Optional[VerifierLimits] = None,
                 use_jit: bool = True,
                 use_load_cache: bool = True,
                 fast_path: Optional[bool] = None,
                 engine: EngineLike = None) -> None:
        self.kernel = kernel
        self.registry = registry or build_default_registry()
        self.bugs = bugs or BugConfig()
        self.limits = limits or VerifierLimits()
        self.use_jit = use_jit
        #: compiled-tier artifact reuse across loads of the same bytes
        self.compile_cache_hits = 0
        self.compile_cache_misses = 0
        #: §3's signature-at-load-time model: accepted bytecode is
        #: keyed by content hash so identical reloads skip the
        #: verifier entirely
        self.load_cache: Optional[ProgramLoadCache] = \
            ProgramLoadCache() if use_load_cache else None
        self._maps: Dict[int, BpfMap] = {}
        self._progs: Dict[int, LoadedProgram] = {}
        self._next_fd = 3
        self._next_prog_id = 1
        self.vm = BpfVm(kernel, self, self.bugs, fast_path=fast_path,
                        engine=engine)
        #: the [22] sysctl: the kernel community's response to
        #: verifier distrust was to disallow unprivileged loading
        #: entirely — on by default since 2021
        self.unprivileged_bpf_disabled = True

    @classmethod
    def from_spec(cls, kernel: Kernel, spec: "object" = None,
                  registry: Optional[HelperRegistry] = None,
                  bugs: Optional[BugConfig] = None,
                  limits: Optional[VerifierLimits] = None,
                  ) -> "BpfSubsystem":
        """Stamp a subsystem from a kernel's declarative
        :class:`~repro.kernel.spec.KernelSpec` (defaults to the spec
        the kernel itself was booted from) — the subsystem half of
        the fleet's node factory."""
        spec = spec if spec is not None else kernel.spec
        return cls(kernel, registry=registry, bugs=bugs,
                   limits=limits, use_jit=spec.use_jit,
                   use_load_cache=spec.use_load_cache,
                   engine=spec.engine)

    # -- maps -----------------------------------------------------------------

    def create_map(self, map_type: str, *, key_size: int = 4,
                   value_size: int = 8, max_entries: int = 16,
                   with_spin_lock: bool = False) -> BpfMap:
        """Create a map of the given type and return it (fd assigned)."""
        map_fd = self._next_fd
        self._next_fd += 1
        if map_type == "array":
            bpf_map: BpfMap = ArrayMap(self.kernel, map_fd, key_size,
                                       value_size, max_entries,
                                       bugs=self.bugs)
        elif map_type == "percpu_array":
            bpf_map = PercpuArrayMap(self.kernel, map_fd, key_size,
                                     value_size, max_entries)
        elif map_type == "hash":
            bpf_map = HashMap(self.kernel, map_fd, key_size, value_size,
                              max_entries)
        elif map_type == "percpu_hash":
            bpf_map = PercpuHashMap(self.kernel, map_fd, key_size,
                                    value_size, max_entries)
        elif map_type == "ringbuf":
            bpf_map = RingBufMap(self.kernel, map_fd, max_entries)
        elif map_type == "perf_event_array":
            bpf_map = PerfEventArrayMap(self.kernel, map_fd,
                                        max_entries)
        elif map_type == "task_storage":
            bpf_map = TaskStorageMap(self.kernel, map_fd, value_size)
        elif map_type == "prog_array":
            bpf_map = ProgArrayMap(self.kernel, map_fd, max_entries)
        elif map_type == "devmap":
            bpf_map = DevMap(self.kernel, map_fd, max_entries)
        else:
            raise BpfRuntimeError(f"unknown map type {map_type!r}")
        if with_spin_lock:
            bpf_map.add_spin_lock()
        self._maps[map_fd] = bpf_map
        self.kernel.telemetry.record_map_created(bpf_map.map_type,
                                                 map_fd)
        return bpf_map

    def map_by_fd(self, map_fd: int) -> Optional[BpfMap]:
        """Resolve a map fd."""
        return self._maps.get(map_fd)

    def all_maps(self) -> List[BpfMap]:
        """Every live map."""
        return list(self._maps.values())

    def destroy_map(self, map_fd: int) -> None:
        """Tear a map down (close its last fd): release every backing
        kernel allocation, including outstanding ringbuf reservations."""
        bpf_map = self._maps.pop(map_fd, None)
        if bpf_map is None:
            raise BpfRuntimeError(f"no map with fd {map_fd}")
        bpf_map.destroy()
        self.kernel.telemetry.record_map_destroyed(bpf_map.map_type,
                                                   map_fd)

    def shutdown(self) -> None:
        """Tear down every live map (subsystem teardown)."""
        for map_fd in list(self._maps):
            self.destroy_map(map_fd)

    # -- program loading (Figure 1: verifier -> JIT) ----------------------------

    def load_program(self, insns: Sequence[Insn], prog_type: ProgType,
                     name: str = "prog", *,
                     allow_ptr_leaks: bool = False,
                     prune_states: bool = True,
                     limits: Optional[VerifierLimits] = None,
                     log_level: int = 1,
                     unprivileged: bool = False) -> LoadedProgram:
        """Verify and JIT a program.  Raises
        :class:`~repro.errors.VerifierError` on rejection and
        :class:`~repro.errors.KernelOops` if the verifier itself
        crashes (the [54] bug class).

        ``unprivileged=True`` models a non-root loader: refused
        outright while ``unprivileged_bpf_disabled`` is set (the [22]
        default), and otherwise verified under the tighter caps with
        pointer leaks always forbidden.

        With recovery enabled the trip is supervised: transient
        injected load errnos are retried with backoff, and a verifier
        crash is contained (scoped taint cleared) and surfaced as a
        plain :class:`~repro.errors.VerifierError` rejection."""
        supervisor = self.kernel.recovery
        if supervisor is not None and supervisor.active:
            return supervisor.load_ebpf(
                self, name,
                lambda: self._load_program_raw(
                    insns, prog_type, name,
                    allow_ptr_leaks=allow_ptr_leaks,
                    prune_states=prune_states, limits=limits,
                    log_level=log_level, unprivileged=unprivileged))
        return self._load_program_raw(
            insns, prog_type, name, allow_ptr_leaks=allow_ptr_leaks,
            prune_states=prune_states, limits=limits,
            log_level=log_level, unprivileged=unprivileged)

    def _load_program_raw(self, insns: Sequence[Insn],
                          prog_type: ProgType, name: str = "prog", *,
                          allow_ptr_leaks: bool = False,
                          prune_states: bool = True,
                          limits: Optional[VerifierLimits] = None,
                          log_level: int = 1,
                          unprivileged: bool = False) -> LoadedProgram:
        faults = self.kernel.faults
        if faults.armed:
            fault = faults.check("load.verify")
            if fault is not None and fault.kind != "delay":
                if fault.kind == "panic":
                    # the [54] bug class on demand: the verifier
                    # itself crashes while processing the program
                    self.kernel.log.record_oops(
                        self.kernel.clock.now_ns,
                        f"injected verifier fault loading ({name})",
                        category="fault-injection", source="verifier")
                    raise KernelOops(
                        f"injected verifier fault loading ({name})",
                        source="verifier")
                raise VerifierError(
                    f"injected load failure (errno {fault.errno}) "
                    f"for ({name})")
        if unprivileged:
            if self.unprivileged_bpf_disabled:
                raise VerifierError(
                    "unprivileged BPF is disabled "
                    "(kernel.unprivileged_bpf_disabled=1, see [22])")
            allow_ptr_leaks = False
            limits = limits or VerifierLimits.unprivileged()
        config = VerifierConfig(
            limits=limits or self.limits,
            bugs=self.bugs,
            allow_ptr_leaks=allow_ptr_leaks,
            prune_states=prune_states,
            log_level=log_level,
        )
        cache = self.load_cache
        cache_key: Optional[str] = None
        cached: Optional[CachedLoad] = None
        if cache is not None:
            cache_key = fingerprint(insns, prog_type, config,
                                    self._maps.items(), self.use_jit)
            cached = cache.lookup(cache_key)
        jit_ns = 0
        predecode_ns = 0
        compile_ns = 0
        compiled: Optional[CompiledProgram] = None
        if cached is not None:
            # §3's signature check: the bytes were accepted before
            # under this exact configuration — replay the artifacts
            stats = cached.stats_copy()
            jit = cached.jit
            decoded = cached.predecoded
            if self.vm.engine == "compiled":
                compiled = cached.compiled
                if compiled is None:
                    # first compiled-tier load of bytes cached under
                    # another engine: compile once, backfill the entry
                    stage_start = time.perf_counter()
                    compiled = compile_program(decoded)
                    compile_ns = int(
                        (time.perf_counter() - stage_start) * 1e9)
                    cached.compiled = compiled
                    self.compile_cache_misses += 1
                else:
                    self.compile_cache_hits += 1
            self.kernel.log.log(
                self.kernel.clock.now_ns,
                f"bpf: verification cache hit for ({name}), "
                f"skipping verifier")
        else:
            verifier = Verifier(insns, prog_type, self.registry,
                                self._maps, config)
            try:
                stats = verifier.verify()
            except VerifierInternalFault as fault:
                self.kernel.log.record_oops(
                    self.kernel.clock.now_ns, str(fault),
                    category="use-after-free", source="verifier")
                raise KernelOops(str(fault),
                                 source="verifier") from fault
            stage_start = time.perf_counter()
            jit = jit_compile(insns, self.bugs) if self.use_jit \
                else None
            jit_done = time.perf_counter()
            decoded = predecode(jit.insns if jit is not None
                                else list(insns))
            predecode_ns = int((time.perf_counter() - jit_done) * 1e9)
            jit_ns = int((jit_done - stage_start) * 1e9)
            if self.vm.engine == "compiled":
                stage_start = time.perf_counter()
                compiled = compile_program(decoded)
                compile_ns = int(
                    (time.perf_counter() - stage_start) * 1e9)
                self.compile_cache_misses += 1
            if cache is not None and cache_key is not None:
                cache.insert(cache_key,
                             CachedLoad(stats, jit, decoded, compiled))
        prog = LoadedProgram(
            prog_id=self._next_prog_id, name=name, prog_type=prog_type,
            insns=list(insns), verifier_stats=stats, jit=jit,
            predecoded=decoded, compiled=compiled)
        self._next_prog_id += 1
        self._progs[prog.prog_id] = prog
        self.kernel.telemetry.record_load(
            "ebpf", name, prog_id=prog.prog_id,
            cache_hit=cached is not None,
            verify_ns=0 if cached is not None
            else int(stats.wall_time_s * 1e9),
            jit_ns=jit_ns, predecode_ns=predecode_ns,
            compile_ns=compile_ns,
            insns=len(prog.insns),
            insns_processed=0 if cached is not None
            else stats.insns_processed,
            states_explored=0 if cached is not None
            else stats.states_explored)
        self.kernel.log.log(
            self.kernel.clock.now_ns,
            f"bpf: loaded prog {prog.prog_id} ({name}) "
            f"type={prog_type.value} insns={len(prog.insns)} "
            f"verified in {stats.insns_processed} steps")
        self.kernel.events.publish(
            "load", source=f"bpf:{name}", prog_id=prog.prog_id,
            prog_type=prog_type.value, insns=len(prog.insns),
            cache_hit=cached is not None)
        return prog

    # -- program management -------------------------------------------------------

    def prog_by_id(self, prog_id: int) -> Optional[LoadedProgram]:
        """Resolve a loaded program id."""
        return self._progs.get(prog_id)

    def all_progs(self) -> List[LoadedProgram]:
        """Every loaded program, in load order."""
        return [self._progs[pid] for pid in sorted(self._progs)]

    def set_engine(self, prog: LoadedProgram,
                   engine: EngineLike) -> None:
        """Pin a program to an execution tier (``None`` clears the
        override and the program follows the VM default again).
        Pinning ``compiled`` compiles eagerly so the cost lands at
        configuration time, not on the next invocation."""
        try:
            engine = resolve_engine(engine)
        except ValueError as error:
            raise BpfRuntimeError(str(error)) from None
        prog.engine = engine
        if engine == "compiled" and prog.compiled is None:
            decoded = prog.predecoded
            if decoded is None:
                decoded = predecode(prog.runnable_insns())
                prog.predecoded = decoded
            prog.compiled = compile_program(decoded)
            self.compile_cache_misses += 1

    # -- execution ---------------------------------------------------------------

    def _dispatch(self, prog: LoadedProgram, ctx_addr: int) -> int:
        """One program invocation, supervised when recovery is on.

        The unsupervised path pays exactly one attribute test over the
        bare ``vm.run`` — this is the hot path the benchmarks drive."""
        supervisor = self.kernel.recovery
        if supervisor is None or not supervisor.active:
            return self.vm.run(prog, ctx_addr)
        return supervisor.run_ebpf(
            self, prog, lambda: self.vm.run(prog, ctx_addr))

    def run(self, prog: LoadedProgram, ctx_addr: int) -> int:
        """Run a program on a raw context address."""
        return self._dispatch(prog, ctx_addr)

    def run_on_packet(self, prog: LoadedProgram,
                      payload: bytes) -> int:
        """Build an skb for ``payload`` and run (XDP/socket filter)."""
        skb = self.kernel.create_skb(payload)
        return self._dispatch(prog, skb.address)

    def run_on_current_task(self, prog: LoadedProgram) -> int:
        """Run a tracing program against a pt_regs-like context."""
        regs = self.kernel.mem.kmalloc(64, type_name="pt_regs",
                                       owner="trace")
        return self._dispatch(prog, regs.base)

    # -- attachment points --------------------------------------------------------

    def attach_xdp(self, prog: LoadedProgram,
                   priority: int = 0) -> None:
        """Attach a program to the kernel's XDP hook chain."""
        self.kernel.hooks.attach(
            "xdp", f"bpf:{prog.name}",
            lambda skb: self._dispatch(prog, skb.address),
            priority=priority)

    def attach_nic(self, prog: LoadedProgram, plane: "object",
                   nic: "object") -> "object":
        """Attach an XDP program to a simulated NIC through the data
        plane; returns the live :class:`~repro.net.pipeline.XdpHook`.
        Rejects non-XDP program types."""
        # imported here: net sits above ebpf in the layering
        from repro.net.pipeline import XdpHook

        return XdpHook(self, plane, prog, nic)

    def attach_trace(self, prog: LoadedProgram,
                     priority: int = 0) -> None:
        """Attach a program to the tracing hook."""
        self.kernel.hooks.attach(
            "trace", f"bpf:{prog.name}",
            lambda __: self.run_on_current_task(prog),
            priority=priority)
