"""System helper implementations: locks, strings, ringbuf, task
storage, ``bpf_loop``, ``bpf_tail_call`` and ``bpf_sys_bpf``.

This module contains the paper's headline escape hatches:

* ``bpf_sys_bpf`` with the CVE-2022-2785 NULL-in-union bug (§2.2),
* ``bpf_loop``, the building block of the RCU-stall attack (§2.2),
* ``bpf_get_task_stack`` / ``bpf_task_storage_get`` with their
  Table 1 bugs ([34], [42]).
"""

from __future__ import annotations

from repro.ebpf.helpers.base import HelperCallContext

EINVAL = 22
EFAULT = 14
ENOENT = 2
EPERM = 1
E2BIG = 7

#: BPF_MAX_LOOPS: bpf_loop accepts up to 1 << 23 iterations
BPF_MAX_LOOPS = 1 << 23

# bpf(2) commands understood by the modeled syscall
BPF_MAP_CREATE = 0
BPF_MAP_LOOKUP_ELEM = 1
BPF_MAP_UPDATE_ELEM = 2
BPF_MAP_DELETE_ELEM = 3
BPF_PROG_LOAD = 5


def bpf_spin_lock(ctx: HelperCallContext) -> int:
    """``long bpf_spin_lock(lock)`` — lock lives inside a map value."""
    bpf_map = ctx.vm.find_map_by_value_addr(ctx.args[0])
    if bpf_map is None or bpf_map.spin_lock is None:
        return -EINVAL
    bpf_map.spin_lock.lock(ctx.vm.prog_tag)
    return 0


def bpf_spin_unlock(ctx: HelperCallContext) -> int:
    """``long bpf_spin_unlock(lock)``."""
    bpf_map = ctx.vm.find_map_by_value_addr(ctx.args[0])
    if bpf_map is None or bpf_map.spin_lock is None:
        return -EINVAL
    bpf_map.spin_lock.unlock(ctx.vm.prog_tag)
    return 0


def bpf_strtol(ctx: HelperCallContext) -> int:
    """``long bpf_strtol(buf, buf_len, flags, res)``.

    A pure string-parsing routine exposed as kernel code solely
    because eBPF cannot express it — the paper's first example of a
    helper that safe-language extensions simply retire (§3.2, it maps
    to ``core::str::parse`` in Rust).
    """
    buf, buf_len, flags, res = ctx.args[:4]
    if flags not in (0, 10, 16):
        return -EINVAL
    raw = ctx.kernel.mem.read(buf, buf_len, source=ctx.vm.prog_tag)
    text = raw.split(b"\x00")[0].decode("latin-1").strip()
    base = flags if flags else 10
    # consume the longest valid prefix, as strtol does
    consumed, value = 0, 0
    sign = 1
    index = 0
    if index < len(text) and text[index] in "+-":
        sign = -1 if text[index] == "-" else 1
        index += 1
    digits = "0123456789abcdef"[:base]
    start = index
    while index < len(text) and text[index].lower() in digits:
        value = value * base + digits.index(text[index].lower())
        index += 1
    if index == start:
        return -EINVAL
    ctx.kernel.mem.write_u64(res, (sign * value) & ((1 << 64) - 1),
                             source=ctx.vm.prog_tag)
    return index


def bpf_strncmp(ctx: HelperCallContext) -> int:
    """``long bpf_strncmp(s1, s1_sz, s2)`` — another retired-class
    helper: expressible entirely in a safe language."""
    s1, s1_sz, s2 = ctx.args[:3]
    mem = ctx.kernel.mem
    a = mem.read(s1, s1_sz, source=ctx.vm.prog_tag)
    for index in range(s1_sz):
        b_byte = mem.read(s2 + index, 1, source=ctx.vm.prog_tag)[0]
        diff = a[index] - b_byte
        if diff:
            return 1 if diff > 0 else -1
        if a[index] == 0:
            return 0
    return 0


def bpf_ringbuf_output(ctx: HelperCallContext) -> int:
    """``long bpf_ringbuf_output(ringbuf, data, size, flags)``."""
    bpf_map = ctx.vm.resolve_map_ptr(ctx.args[0])
    if bpf_map is None or bpf_map.map_type != "ringbuf":
        return -EINVAL
    data = ctx.kernel.mem.read(ctx.args[1], ctx.args[2],
                               source=ctx.vm.prog_tag)
    return bpf_map.output(data)


def bpf_ringbuf_reserve(ctx: HelperCallContext) -> int:
    """``void *bpf_ringbuf_reserve(ringbuf, size, flags)``.

    Acquires referenced memory: the verifier demands a matching
    submit/discard on every path.
    """
    bpf_map = ctx.vm.resolve_map_ptr(ctx.args[0])
    if bpf_map is None or bpf_map.map_type != "ringbuf":
        return 0
    addr = bpf_map.reserve(ctx.args[1])
    return addr if addr is not None else 0


def bpf_ringbuf_submit(ctx: HelperCallContext) -> int:
    """``void bpf_ringbuf_submit(data, flags)``."""
    for candidate in ctx.vm.subsystem.all_maps():
        if candidate.map_type == "ringbuf":
            if candidate.submit(ctx.args[0]) == 0:
                return 0
    return -EINVAL


def bpf_ringbuf_discard(ctx: HelperCallContext) -> int:
    """``void bpf_ringbuf_discard(data, flags)`` — the reservation is
    consumed and its space returned without publishing a record."""
    for candidate in ctx.vm.subsystem.all_maps():
        if candidate.map_type == "ringbuf":
            if candidate.discard(ctx.args[0]) == 0:
                return 0
    return -EINVAL


def bpf_get_task_stack(ctx: HelperCallContext) -> int:
    """``long bpf_get_task_stack(task, buf, size, flags)``.

    The [34] bug: the helper walks the target task's kernel stack
    *without taking a reference on it*.  If the task exits concurrently
    (simulated by the stack allocation being freed), the walk is a
    use-after-free — a kernel crash caused by a verified program.
    The patched version uses the non-faulting read and returns -EFAULT.
    """
    task_addr, buf, size = ctx.args[0], ctx.args[1], ctx.args[2]
    mem = ctx.kernel.mem
    task = next((t for t in ctx.kernel.tasks
                 if t.address == task_addr), None)
    if task is None:
        return -EINVAL
    copy_len = min(size, task.kernel_stack.size)
    if ctx.vm.bugs.task_stack_missing_ref:
        # buggy path: raw read; faults (oops) if the stack died
        data = mem.read(task.kernel_stack.base, copy_len,
                        source=ctx.vm.prog_tag)
    else:
        # patched path [34]: pin the task, read non-faulting
        task.refs.get("bpf_get_task_stack")
        try:
            maybe = mem.try_read(task.kernel_stack.base, copy_len)
        finally:
            task.refs.put("bpf_get_task_stack")
        if maybe is None:
            return -EFAULT
        data = maybe
    mem.write(buf, data, source=ctx.vm.prog_tag)
    return copy_len


def bpf_task_storage_get(ctx: HelperCallContext) -> int:
    """``void *bpf_task_storage_get(map, task, value, flags)``.

    The [42] bug: the helper dereferences the owner ``task_struct``
    pointer without a NULL check.  The verifier cannot help — it has
    no idea which argument values are safe for this helper — so a
    verified program passing NULL crashes the kernel.
    """
    bpf_map = ctx.vm.resolve_map_ptr(ctx.args[0])
    task_addr, flags = ctx.args[1], ctx.args[3]
    if bpf_map is None or bpf_map.map_type != "task_storage":
        return 0
    if task_addr == 0 and not ctx.vm.bugs.task_storage_null_deref:
        return 0  # the patched NULL check [42]
    # deref the task to find its storage slot: with task_addr == 0
    # and the bug present, this is the NULL dereference
    ctx.kernel.mem.read(task_addr, 8, source=ctx.vm.prog_tag)
    create = bool(flags & 1)  # BPF_LOCAL_STORAGE_GET_F_CREATE
    addr = bpf_map.storage_for(task_addr, create)
    return addr if addr is not None else 0


def bpf_task_storage_delete(ctx: HelperCallContext) -> int:
    """``long bpf_task_storage_delete(map, task)``."""
    bpf_map = ctx.vm.resolve_map_ptr(ctx.args[0])
    task_addr = ctx.args[1]
    if bpf_map is None or bpf_map.map_type != "task_storage":
        return -EINVAL
    if task_addr == 0 and not ctx.vm.bugs.task_storage_null_deref:
        return -EINVAL
    ctx.kernel.mem.read(task_addr, 8, source=ctx.vm.prog_tag)
    return bpf_map.delete_for(task_addr)


def bpf_tail_call(ctx: HelperCallContext) -> int:
    """``long bpf_tail_call(ctx, prog_array_map, index)`` [44].

    On success never returns to the caller: the VM replaces the
    running program.  Chains are capped at 33 at run time.
    """
    bpf_map = ctx.vm.resolve_map_ptr(ctx.args[1])
    index = ctx.args[2]
    if bpf_map is None or bpf_map.map_type != "prog_array":
        return -EINVAL
    prog = bpf_map.get_prog(index)
    if prog is None:
        return -ENOENT
    ctx.vm.request_tail_call(prog)
    return 0  # unreachable on success; VM unwinds first


def bpf_loop(ctx: HelperCallContext) -> int:
    """``long bpf_loop(nr_loops, callback_fn, callback_ctx, flags)``.

    "Merely provides a loop mechanism" (§3.2) — and is the engine of
    the §2.2 termination attack: total runtime is linear in
    ``nr_loops``, and nesting multiplies it.
    """
    nr_loops, callback, cb_ctx, flags = ctx.args[:4]
    if flags != 0 or nr_loops > BPF_MAX_LOOPS:
        return -E2BIG
    callback_idx = ctx.vm.resolve_func_ptr(callback)
    if callback_idx is None:
        return -EINVAL
    return ctx.vm.execute_loop(callback_idx, nr_loops, cb_ctx)


def bpf_sys_bpf(ctx: HelperCallContext) -> int:
    """``long bpf_sys_bpf(cmd, attr, attr_size)``.

    The widest escape hatch: a verified program invoking the ``bpf(2)``
    syscall from kernel context.  Figure 3's maximum — 4845 functions
    in its call graph.

    ``attr`` is a *union* whose interpretation depends on ``cmd``;
    several variants embed userspace pointers.  The verifier checks
    only that ``attr`` points to ``attr_size`` readable bytes — it
    "does not perform deep argument inspection" (§2.2) — so pointer
    fields *inside* the union reach kernel code unchecked.  With the
    CVE-2022-2785 bug present, a NULL key/value pointer in the
    ``MAP_UPDATE_ELEM`` variant (or a NULL insns pointer in
    ``PROG_LOAD``) is dereferenced in kernel context: kernel crash.
    """
    cmd, attr_ptr, attr_size = ctx.args[:3]
    mem = ctx.kernel.mem
    vm = ctx.vm

    if cmd == BPF_MAP_CREATE:
        if attr_size < 16:
            return -EINVAL
        raw = mem.read(attr_ptr, 16, source=vm.prog_tag)
        key_size = int.from_bytes(raw[4:8], "little")
        value_size = int.from_bytes(raw[8:12], "little")
        max_entries = int.from_bytes(raw[12:16], "little")
        try:
            new_map = vm.subsystem.create_map(
                "hash", key_size=key_size, value_size=value_size,
                max_entries=max_entries)
        except Exception:
            return -EINVAL
        return new_map.map_fd

    if cmd in (BPF_MAP_LOOKUP_ELEM, BPF_MAP_UPDATE_ELEM,
               BPF_MAP_DELETE_ELEM):
        # union bpf_attr { u32 map_fd; u64 key; u64 value; u64 flags; }
        if attr_size < 32:
            return -EINVAL
        raw = mem.read(attr_ptr, 32, source=vm.prog_tag)
        map_fd = int.from_bytes(raw[0:4], "little")
        key_ptr = int.from_bytes(raw[8:16], "little")
        value_ptr = int.from_bytes(raw[16:24], "little")
        bpf_map = vm.subsystem.map_by_fd(map_fd)
        if bpf_map is None:
            return -EINVAL
        if not vm.bugs.sys_bpf_null_union:
            # patched: validate embedded pointers before dereferencing
            if not mem.valid_range(key_ptr, bpf_map.key_size):
                return -EFAULT
            if cmd == BPF_MAP_UPDATE_ELEM \
                    and not mem.valid_range(value_ptr, bpf_map.value_size):
                return -EFAULT
        # (buggy path: straight dereference — NULL key_ptr oopses here)
        key = mem.read(key_ptr, bpf_map.key_size, source="bpf_sys_bpf")
        if cmd == BPF_MAP_LOOKUP_ELEM:
            addr = bpf_map.lookup_addr(key)
            if addr is None:
                return -ENOENT
            value = mem.read(addr, bpf_map.value_size,
                             source="bpf_sys_bpf")
            mem.write(value_ptr, value, source="bpf_sys_bpf")
            return 0
        if cmd == BPF_MAP_UPDATE_ELEM:
            value = mem.read(value_ptr, bpf_map.value_size,
                             source="bpf_sys_bpf")
            return bpf_map.update(key, value)
        return bpf_map.delete(key)

    if cmd == BPF_PROG_LOAD:
        # union bpf_attr { u32 prog_type; u32 insn_cnt; u64 insns; ... }
        if attr_size < 16:
            return -EINVAL
        raw = mem.read(attr_ptr, 16, source=vm.prog_tag)
        insn_cnt = int.from_bytes(raw[4:8], "little")
        insns_ptr = int.from_bytes(raw[8:16], "little")
        if insn_cnt == 0 or insn_cnt > 4096:
            return -EINVAL
        if not vm.bugs.sys_bpf_null_union:
            if not mem.valid_range(insns_ptr, insn_cnt * 8):
                return -EFAULT
        # buggy path dereferences the embedded pointer directly
        mem.read(insns_ptr, insn_cnt * 8, source="bpf_sys_bpf")
        # nested program loading is parsed but refused in the model
        return -EPERM

    return -EINVAL
