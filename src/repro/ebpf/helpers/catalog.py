"""The full Linux-5.18 helper population (Figure 3 / Figure 4 data).

The paper measures 249 helper functions in Linux 5.18.  Thirty of them
are fully executable in this reproduction
(:func:`repro.ebpf.helpers.registry._implemented_specs`); this module
supplies the remaining 219 as *catalog entries* — real helper names
with metadata (introduction version, call-graph size, §3.2
classification) but no executable body.

Call-graph sizes are synthesized per helper so the *population*
matches the distribution the paper reports for Figure 3:

* 5 helpers call 0 other functions (floor: ``bpf_get_current_pid_tgid``),
* 52.2% (130/249) call 30+ functions,
* 34.5% (86/249) call 500+ functions,
* the maximum is ``bpf_sys_bpf`` at 4845.

Introduction versions are assigned so the cumulative count per kernel
version reproduces the Figure 4 growth curve (~50 helpers per 2 years).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.ebpf.helpers.base import FuncProto, HelperSpec, RetType

#: the version timeline used across Figure 2 / Figure 4
VERSION_TIMELINE = ["v3.18", "v4.3", "v4.9", "v4.14", "v4.20",
                    "v5.4", "v5.10", "v5.15", "v5.18", "v6.1"]

#: cumulative helper count per version (Figure 4 ground truth: the
#: paper reports 249 at v5.18 and "roughly 50 added every two years")
CUMULATIVE_HELPERS = {
    "v3.18": 10, "v4.3": 25, "v4.9": 45, "v4.14": 70, "v4.20": 98,
    "v5.4": 130, "v5.10": 170, "v5.15": 215, "v5.18": 249,
}

#: Figure 3 population buckets: (lo, hi_inclusive) -> helper count
SIZE_BUCKETS = [
    ((0, 0), 5),
    ((1, 29), 114),
    ((30, 499), 44),
    ((500, 4845), 86),
]

#: §3.2: helpers that exist only to compensate for missing language
#: expressiveness; per the preliminary study [33], 16 may be retired.
#: Four are implemented (bpf_tail_call, bpf_strtol, bpf_loop,
#: bpf_strncmp); these are the other twelve.
CATALOG_RETIRE = [
    "bpf_strtoul", "bpf_snprintf", "bpf_for_each_map_elem",
    "bpf_map_push_elem", "bpf_map_pop_elem", "bpf_map_peek_elem",
    "bpf_trace_vprintk", "bpf_seq_printf", "bpf_csum_diff",
    "bpf_get_func_arg_cnt", "bpf_rc_pointer_rel",
    "bpf_read_branch_records",
]

#: real helper names, in rough introduction order, used to populate
#: the catalog before falling back to synthesized names
_REAL_NAMES = [
    "bpf_skb_store_bytes", "bpf_l3_csum_replace", "bpf_l4_csum_replace",
    "bpf_clone_redirect", "bpf_skb_load_bytes", "bpf_get_cgroup_classid",
    "bpf_skb_vlan_push", "bpf_skb_vlan_pop", "bpf_skb_get_tunnel_key",
    "bpf_skb_set_tunnel_key", "bpf_redirect", "bpf_get_route_realm",
    "bpf_perf_event_output", "bpf_get_stackid", "bpf_csum_diff",
    "bpf_skb_change_proto", "bpf_skb_change_type", "bpf_skb_under_cgroup",
    "bpf_get_hash_recalc", "bpf_current_task_under_cgroup",
    "bpf_skb_change_tail", "bpf_skb_pull_data", "bpf_csum_update",
    "bpf_set_hash_invalid", "bpf_get_numa_node_id", "bpf_skb_change_head",
    "bpf_xdp_adjust_head", "bpf_probe_read_str", "bpf_get_socket_cookie",
    "bpf_get_socket_uid", "bpf_set_hash", "bpf_setsockopt",
    "bpf_skb_adjust_room", "bpf_redirect_map", "bpf_sk_redirect_map",
    "bpf_sock_map_update", "bpf_xdp_adjust_meta",
    "bpf_perf_event_read_value", "bpf_perf_prog_read_value",
    "bpf_getsockopt", "bpf_override_return", "bpf_sock_ops_cb_flags_set",
    "bpf_msg_redirect_map", "bpf_msg_apply_bytes", "bpf_msg_cork_bytes",
    "bpf_msg_pull_data", "bpf_bind", "bpf_xdp_adjust_tail",
    "bpf_skb_get_xfrm_state", "bpf_get_stack",
    "bpf_skb_load_bytes_relative", "bpf_fib_lookup",
    "bpf_sock_hash_update", "bpf_msg_redirect_hash", "bpf_sk_redirect_hash",
    "bpf_lwt_push_encap", "bpf_lwt_seg6_store_bytes",
    "bpf_lwt_seg6_adjust_srh", "bpf_lwt_seg6_action", "bpf_rc_repeat",
    "bpf_rc_keydown", "bpf_skb_cgroup_id", "bpf_get_current_cgroup_id",
    "bpf_get_local_storage", "bpf_sk_select_reuseport",
    "bpf_skb_ancestor_cgroup_id", "bpf_map_push_elem", "bpf_map_pop_elem",
    "bpf_map_peek_elem", "bpf_msg_push_data", "bpf_msg_pop_data",
    "bpf_rc_pointer_rel", "bpf_sk_fullsock", "bpf_tcp_sock",
    "bpf_skb_ecn_set_ce", "bpf_get_listener_sock", "bpf_skc_lookup_tcp",
    "bpf_tcp_check_syncookie", "bpf_sysctl_get_name",
    "bpf_sysctl_get_current_value", "bpf_sysctl_get_new_value",
    "bpf_sysctl_set_new_value", "bpf_strtoul", "bpf_sk_storage_get",
    "bpf_sk_storage_delete", "bpf_send_signal", "bpf_tcp_gen_syncookie",
    "bpf_skb_output", "bpf_probe_read_user", "bpf_probe_read_user_str",
    "bpf_probe_read_kernel_str", "bpf_tcp_send_ack",
    "bpf_send_signal_thread", "bpf_jiffies64", "bpf_read_branch_records",
    "bpf_get_ns_current_pid_tgid", "bpf_xdp_output", "bpf_get_netns_cookie",
    "bpf_get_current_ancestor_cgroup_id", "bpf_sk_assign",
    "bpf_ktime_get_boot_ns", "bpf_seq_printf", "bpf_seq_write",
    "bpf_sk_cgroup_id", "bpf_sk_ancestor_cgroup_id", "bpf_ringbuf_query",
    "bpf_csum_level", "bpf_skc_to_tcp6_sock", "bpf_skc_to_tcp_sock",
    "bpf_skc_to_tcp_timewait_sock", "bpf_skc_to_tcp_request_sock",
    "bpf_skc_to_udp6_sock", "bpf_get_task_btf", "bpf_bprm_opts_set",
    "bpf_ktime_get_coarse_ns", "bpf_ima_inode_hash", "bpf_sock_from_file",
    "bpf_check_mtu", "bpf_for_each_map_elem", "bpf_snprintf",
    "bpf_sys_close", "bpf_timer_init", "bpf_timer_set_callback",
    "bpf_timer_start", "bpf_timer_cancel", "bpf_get_func_ip",
    "bpf_get_attach_cookie", "bpf_task_pt_regs", "bpf_get_branch_snapshot",
    "bpf_trace_vprintk", "bpf_skc_to_unix_sock", "bpf_kallsyms_lookup_name",
    "bpf_find_vma", "bpf_get_func_arg", "bpf_get_func_ret",
    "bpf_get_func_arg_cnt", "bpf_get_retval", "bpf_set_retval",
    "bpf_xdp_get_buff_len", "bpf_xdp_load_bytes", "bpf_xdp_store_bytes",
    "bpf_copy_from_user", "bpf_copy_from_user_task", "bpf_snprintf_btf",
    "bpf_seq_printf_btf", "bpf_skb_cgroup_classid", "bpf_redirect_neigh",
    "bpf_per_cpu_ptr", "bpf_this_cpu_ptr", "bpf_redirect_peer",
    "bpf_inode_storage_get", "bpf_inode_storage_delete", "bpf_d_path",
    "bpf_sock_ops_load_hdr_opt", "bpf_sock_ops_store_hdr_opt",
    "bpf_sock_ops_reserve_hdr_opt", "bpf_load_hdr_opt",
    "bpf_get_current_task_btf", "bpf_ima_file_hash", "bpf_dynptr_from_mem",
    "bpf_ringbuf_reserve_dynptr", "bpf_ringbuf_submit_dynptr",
    "bpf_ringbuf_discard_dynptr", "bpf_dynptr_read", "bpf_dynptr_write",
    "bpf_dynptr_data", "bpf_tcp_raw_gen_syncookie_ipv4",
    "bpf_tcp_raw_check_syncookie_ipv4", "bpf_ktime_get_tai_ns",
    "bpf_user_ringbuf_drain", "bpf_cgrp_storage_get",
    "bpf_cgrp_storage_delete",
]


def _classify(name: str, size: int, rng: random.Random) -> str:
    """§3.2 category for a catalog helper."""
    if name in CATALOG_RETIRE:
        return "retire"
    if size >= 500:
        # deep kernel plumbing: unsafe core stays, interface wrapped
        return "wrap" if rng.random() < 0.45 else "simplify"
    if size >= 30:
        return "simplify" if rng.random() < 0.7 else "wrap"
    return "keep"


def catalog_specs(implemented: Sequence[HelperSpec],
                  seed: int = 518) -> List[HelperSpec]:
    """Build the 219 catalog entries complementing ``implemented``."""
    rng = random.Random(seed)

    # how many catalog entries each version must contribute
    remaining_per_version: Dict[str, int] = {}
    prev = 0
    for version in VERSION_TIMELINE:
        if version not in CUMULATIVE_HELPERS:
            continue
        new_total = CUMULATIVE_HELPERS[version] - prev
        prev = CUMULATIVE_HELPERS[version]
        already = sum(1 for s in implemented if s.introduced == version)
        remaining_per_version[version] = new_total - already
        if remaining_per_version[version] < 0:
            raise ValueError(
                f"{version}: implemented helpers exceed the Figure 4 "
                "cumulative target")

    # how many catalog entries each size bucket must contribute
    sizes: List[int] = []
    for (lo, hi), bucket_total in SIZE_BUCKETS:
        already = sum(1 for s in implemented
                      if lo <= s.callgraph_size <= hi)
        for __ in range(bucket_total - already):
            if lo == hi:
                sizes.append(lo)
            elif lo >= 500:
                # heavy tail within the top bucket, capped below the
                # bpf_sys_bpf maximum
                sizes.append(min(int(rng.lognormvariate(6.8, 0.55)) + lo,
                                 4400))
            else:
                sizes.append(rng.randint(lo, hi))
    rng.shuffle(sizes)

    # names: real ones first (era-ordered), synthesized afterwards
    names: List[str] = []
    seen = {s.name for s in implemented}
    for name in _REAL_NAMES:
        if name not in seen:
            names.append(name)
            seen.add(name)
    synth_index = 0
    total_needed = sum(remaining_per_version.values())
    while len(names) < total_needed:
        candidate = f"bpf_modeled_helper_{synth_index}"
        synth_index += 1
        if candidate not in seen:
            names.append(candidate)
            seen.add(candidate)

    if len(sizes) != total_needed:
        raise AssertionError(
            f"size plan ({len(sizes)}) != version plan ({total_needed})")

    specs: List[HelperSpec] = []
    next_id = 1000
    cursor = 0
    for version in VERSION_TIMELINE:
        for __ in range(remaining_per_version.get(version, 0)):
            name = names[cursor]
            size = sizes[cursor]
            cursor += 1
            specs.append(HelperSpec(
                helper_id=next_id,
                name=name,
                proto=FuncProto([], RetType.INTEGER),
                impl=None,
                introduced=version,
                callgraph_size=size,
                classification=_classify(name, size, rng),
            ))
            next_id += 1
    return specs
