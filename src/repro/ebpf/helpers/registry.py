"""The helper registry: every helper the modeled kernel exposes.

``build_default_registry()`` assembles the Linux-5.18 population used
throughout the reproduction: 30 fully executable helpers (including
every helper the paper discusses by name) plus catalog entries for the
rest of the 249, carrying the metadata the measurements need
(introduction version for Figure 4, call-graph size for Figure 3,
§3.2 classification for the retirement survey).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.ebpf.helpers import ids
from repro.ebpf.helpers import impls_core, impls_net, impls_sys
from repro.ebpf.helpers.base import ArgType, FuncProto, HelperSpec, RetType
from repro.kernel.funcdb import FunctionDatabase

A = ArgType
R = RetType


class HelperRegistry:
    """Lookup by id/name plus population-level queries."""

    def __init__(self) -> None:
        self._by_id: Dict[int, HelperSpec] = {}
        self._by_name: Dict[str, HelperSpec] = {}

    def register(self, spec: HelperSpec) -> HelperSpec:
        """Add a helper; ids and names must be unique."""
        if spec.helper_id in self._by_id:
            raise ValueError(f"duplicate helper id {spec.helper_id}")
        if spec.name in self._by_name:
            raise ValueError(f"duplicate helper name {spec.name}")
        self._by_id[spec.helper_id] = spec
        self._by_name[spec.name] = spec
        return spec

    def get(self, helper_id: int) -> Optional[HelperSpec]:
        """Spec by id (None for unknown helpers — verifier rejects)."""
        return self._by_id.get(helper_id)

    def by_name(self, name: str) -> Optional[HelperSpec]:
        """Spec by name."""
        return self._by_name.get(name)

    def all_specs(self) -> List[HelperSpec]:
        """All registered helpers ordered by id."""
        return [self._by_id[k] for k in sorted(self._by_id)]

    def implemented(self) -> List[HelperSpec]:
        """Helpers with executable models."""
        return [s for s in self.all_specs() if s.is_implemented]

    def __len__(self) -> int:
        return len(self._by_id)

    def count_at_version(self, version_order: List[str],
                         version: str) -> int:
        """Helpers present at ``version`` given the ordered timeline."""
        cutoff = version_order.index(version)
        return sum(1 for s in self.all_specs()
                   if s.introduced in version_order
                   and version_order.index(s.introduced) <= cutoff)

    def attach_to_funcdb(self, db: FunctionDatabase) -> Dict[str, int]:
        """Add every helper as a node in the synthetic kernel call
        graph, wired so its measured closure matches its documented
        ``callgraph_size``.  Returns name -> function id."""
        fn_ids: Dict[str, int] = {}
        for spec in self.all_specs():
            if db.lookup(spec.name) is not None:
                fn_ids[spec.name] = db.lookup(spec.name).fn_id
                continue
            if spec.callgraph_size <= 0:
                callees: List[int] = []
            else:
                callees = [db.entry_with_closure(spec.callgraph_size - 1)]
            fn_ids[spec.name] = db.add_function(
                spec.name, "bpf", loc=30 + spec.callgraph_size // 50,
                callees=callees)
        return fn_ids


def _implemented_specs() -> List[HelperSpec]:
    """The 30 executable helpers, with real Linux ids and protos."""
    mem_pair = [A.PTR_TO_MEM, A.CONST_SIZE]
    return [
        HelperSpec(
            ids.BPF_FUNC_map_lookup_elem, "bpf_map_lookup_elem",
            FuncProto([A.CONST_MAP_PTR, A.PTR_TO_MAP_KEY],
                      R.MAP_VALUE_OR_NULL, forbidden_under_spinlock=False),
            impls_core.bpf_map_lookup_elem, "v3.18", 50, "simplify"),
        HelperSpec(
            ids.BPF_FUNC_map_update_elem, "bpf_map_update_elem",
            FuncProto([A.CONST_MAP_PTR, A.PTR_TO_MAP_KEY,
                       A.PTR_TO_MAP_VALUE, A.ANYTHING], R.INTEGER,
                      forbidden_under_spinlock=False),
            impls_core.bpf_map_update_elem, "v3.18", 120, "simplify",
            bug_tags=["array_map_32bit_overflow"]),
        HelperSpec(
            ids.BPF_FUNC_map_delete_elem, "bpf_map_delete_elem",
            FuncProto([A.CONST_MAP_PTR, A.PTR_TO_MAP_KEY], R.INTEGER,
                      forbidden_under_spinlock=False),
            impls_core.bpf_map_delete_elem, "v3.18", 80, "simplify"),
        HelperSpec(
            ids.BPF_FUNC_probe_read, "bpf_probe_read",
            FuncProto([A.PTR_TO_UNINIT_MEM, A.CONST_SIZE, A.ANYTHING],
                      R.INTEGER),
            impls_core.bpf_probe_read, "v3.18", 30, "wrap",
            notes="reads arbitrary kernel memory"),
        HelperSpec(
            ids.BPF_FUNC_ktime_get_ns, "bpf_ktime_get_ns",
            FuncProto([], R.INTEGER, forbidden_under_spinlock=False),
            impls_core.bpf_ktime_get_ns, "v3.18", 5, "keep"),
        HelperSpec(
            ids.BPF_FUNC_trace_printk, "bpf_trace_printk",
            FuncProto(list(mem_pair), R.INTEGER),
            impls_core.bpf_trace_printk, "v3.18", 200, "keep"),
        HelperSpec(
            ids.BPF_FUNC_get_prandom_u32, "bpf_get_prandom_u32",
            FuncProto([], R.INTEGER, forbidden_under_spinlock=False),
            impls_core.bpf_get_prandom_u32, "v3.18", 3, "keep"),
        HelperSpec(
            ids.BPF_FUNC_get_smp_processor_id, "bpf_get_smp_processor_id",
            FuncProto([], R.INTEGER, forbidden_under_spinlock=False),
            impls_core.bpf_get_smp_processor_id, "v3.18", 1, "keep"),
        HelperSpec(
            ids.BPF_FUNC_perf_event_output, "bpf_perf_event_output",
            FuncProto([A.PTR_TO_CTX, A.CONST_MAP_PTR, A.ANYTHING,
                       A.PTR_TO_MEM, A.CONST_SIZE], R.INTEGER),
            impls_core.bpf_perf_event_output, "v4.3", 350, "simplify"),
        HelperSpec(
            ids.BPF_FUNC_probe_read_str, "bpf_probe_read_str",
            FuncProto([A.PTR_TO_UNINIT_MEM, A.CONST_SIZE, A.ANYTHING],
                      R.INTEGER),
            impls_core.bpf_probe_read_str, "v4.20", 32, "wrap"),
        HelperSpec(
            ids.BPF_FUNC_jiffies64, "bpf_jiffies64",
            FuncProto([], R.INTEGER, forbidden_under_spinlock=False),
            impls_core.bpf_jiffies64, "v5.4", 2, "keep"),
        HelperSpec(
            ids.BPF_FUNC_ktime_get_boot_ns, "bpf_ktime_get_boot_ns",
            FuncProto([], R.INTEGER, forbidden_under_spinlock=False),
            impls_core.bpf_ktime_get_boot_ns, "v5.10", 6, "keep"),
        HelperSpec(
            ids.BPF_FUNC_snprintf, "bpf_snprintf",
            FuncProto([A.PTR_TO_UNINIT_MEM, A.CONST_SIZE, A.ANYTHING,
                       A.PTR_TO_MEM, A.CONST_SIZE], R.INTEGER),
            impls_core.bpf_snprintf, "v5.15", 45, "retire",
            notes="pure formatting: format!/core::fmt in the proposed "
                  "framework (§3.2)"),
        HelperSpec(
            ids.BPF_FUNC_tail_call, "bpf_tail_call",
            FuncProto([A.PTR_TO_CTX, A.CONST_MAP_PTR, A.ANYTHING],
                      R.INTEGER),
            impls_sys.bpf_tail_call, "v4.3", 12, "retire",
            notes="exists because programs cannot call functions [44]"),
        HelperSpec(
            ids.BPF_FUNC_get_current_pid_tgid, "bpf_get_current_pid_tgid",
            FuncProto([], R.INTEGER, forbidden_under_spinlock=False),
            impls_core.bpf_get_current_pid_tgid, "v4.3", 0, "keep",
            notes="Figure 3 floor: calls no other kernel function"),
        HelperSpec(
            ids.BPF_FUNC_get_current_uid_gid, "bpf_get_current_uid_gid",
            FuncProto([], R.INTEGER, forbidden_under_spinlock=False),
            impls_core.bpf_get_current_uid_gid, "v4.3", 8, "keep"),
        HelperSpec(
            ids.BPF_FUNC_get_current_comm, "bpf_get_current_comm",
            FuncProto([A.PTR_TO_UNINIT_MEM, A.CONST_SIZE], R.INTEGER),
            impls_core.bpf_get_current_comm, "v4.3", 10, "keep"),
        HelperSpec(
            ids.BPF_FUNC_get_current_task, "bpf_get_current_task",
            FuncProto([], R.KERNEL_ADDR_SCALAR),
            impls_core.bpf_get_current_task, "v4.9", 0, "wrap",
            notes="returns a raw kernel address as a scalar"),
        HelperSpec(
            ids.BPF_FUNC_redirect_map, "bpf_redirect_map",
            FuncProto([A.CONST_MAP_PTR, A.ANYTHING, A.ANYTHING],
                      R.INTEGER, forbidden_under_spinlock=False),
            impls_net.bpf_redirect_map, "v4.14", 35, "simplify",
            notes="XDP devmap redirect; verdict consumed by the data "
                  "plane after program exit"),
        HelperSpec(
            ids.BPF_FUNC_sk_lookup_tcp, "bpf_sk_lookup_tcp",
            FuncProto([A.PTR_TO_CTX, A.PTR_TO_MEM, A.CONST_SIZE,
                       A.ANYTHING, A.ANYTHING],
                      R.SOCKET_OR_NULL, acquires="socket"),
            impls_net.bpf_sk_lookup_tcp, "v4.20", 650, "simplify",
            bug_tags=["sk_lookup_reqsk_leak"]),
        HelperSpec(
            ids.BPF_FUNC_sk_lookup_udp, "bpf_sk_lookup_udp",
            FuncProto([A.PTR_TO_CTX, A.PTR_TO_MEM, A.CONST_SIZE,
                       A.ANYTHING, A.ANYTHING],
                      R.SOCKET_OR_NULL, acquires="socket"),
            impls_net.bpf_sk_lookup_udp, "v4.20", 640, "simplify",
            bug_tags=["sk_lookup_reqsk_leak"]),
        HelperSpec(
            ids.BPF_FUNC_sk_release, "bpf_sk_release",
            FuncProto([A.PTR_TO_SOCKET], R.INTEGER, releases=True),
            impls_net.bpf_sk_release, "v4.20", 45, "simplify"),
        HelperSpec(
            ids.BPF_FUNC_spin_lock, "bpf_spin_lock",
            FuncProto([A.PTR_TO_SPIN_LOCK], R.VOID,
                      forbidden_under_spinlock=False),
            impls_sys.bpf_spin_lock, "v5.4", 2, "simplify",
            notes="the verifier grew single-lock discipline for it [48]"),
        HelperSpec(
            ids.BPF_FUNC_spin_unlock, "bpf_spin_unlock",
            FuncProto([A.PTR_TO_SPIN_LOCK], R.VOID,
                      forbidden_under_spinlock=False),
            impls_sys.bpf_spin_unlock, "v5.4", 2, "simplify"),
        HelperSpec(
            ids.BPF_FUNC_strtol, "bpf_strtol",
            FuncProto(mem_pair + [A.ANYTHING, A.PTR_TO_LONG], R.INTEGER),
            impls_sys.bpf_strtol, "v5.4", 15, "retire",
            notes="core::str::parse in the proposed framework (§3.2)"),
        HelperSpec(
            ids.BPF_FUNC_probe_read_kernel, "bpf_probe_read_kernel",
            FuncProto([A.PTR_TO_UNINIT_MEM, A.CONST_SIZE, A.ANYTHING],
                      R.INTEGER),
            impls_core.bpf_probe_read_kernel, "v5.10", 28, "wrap"),
        HelperSpec(
            ids.BPF_FUNC_ringbuf_output, "bpf_ringbuf_output",
            FuncProto([A.CONST_MAP_PTR] + mem_pair + [A.ANYTHING],
                      R.INTEGER),
            impls_sys.bpf_ringbuf_output, "v5.10", 90, "simplify"),
        HelperSpec(
            ids.BPF_FUNC_ringbuf_reserve, "bpf_ringbuf_reserve",
            FuncProto([A.CONST_MAP_PTR, A.CONST_SIZE, A.ANYTHING],
                      R.MEM_OR_NULL, acquires="ringbuf_mem"),
            impls_sys.bpf_ringbuf_reserve, "v5.10", 60, "simplify"),
        HelperSpec(
            ids.BPF_FUNC_ringbuf_submit, "bpf_ringbuf_submit",
            FuncProto([A.PTR_TO_ALLOC_MEM, A.ANYTHING], R.VOID,
                      releases=True),
            impls_sys.bpf_ringbuf_submit, "v5.10", 40, "simplify"),
        HelperSpec(
            ids.BPF_FUNC_ringbuf_discard, "bpf_ringbuf_discard",
            FuncProto([A.PTR_TO_ALLOC_MEM, A.ANYTHING], R.VOID,
                      releases=True),
            impls_sys.bpf_ringbuf_discard, "v5.10", 35, "simplify"),
        HelperSpec(
            ids.BPF_FUNC_get_task_stack, "bpf_get_task_stack",
            FuncProto([A.ANYTHING, A.PTR_TO_UNINIT_MEM, A.CONST_SIZE,
                       A.ANYTHING], R.INTEGER),
            impls_sys.bpf_get_task_stack, "v5.10", 320, "simplify",
            bug_tags=["task_stack_missing_ref"]),
        HelperSpec(
            ids.BPF_FUNC_task_storage_get, "bpf_task_storage_get",
            FuncProto([A.CONST_MAP_PTR, A.ANYTHING, A.ANYTHING,
                       A.ANYTHING], R.MAP_VALUE_OR_NULL),
            impls_sys.bpf_task_storage_get, "v5.15", 180, "wrap",
            bug_tags=["task_storage_null_deref"],
            notes="the verifier cannot see that the task arg is NULL [42]"),
        HelperSpec(
            ids.BPF_FUNC_task_storage_delete, "bpf_task_storage_delete",
            FuncProto([A.CONST_MAP_PTR, A.ANYTHING], R.INTEGER),
            impls_sys.bpf_task_storage_delete, "v5.15", 150, "wrap",
            bug_tags=["task_storage_null_deref"]),
        HelperSpec(
            ids.BPF_FUNC_sys_bpf, "bpf_sys_bpf",
            FuncProto([A.ANYTHING] + mem_pair, R.INTEGER),
            impls_sys.bpf_sys_bpf, "v5.15", 4845, "wrap",
            bug_tags=["sys_bpf_null_union"],
            notes="Figure 3 maximum: 4845 call-graph nodes; CVE-2022-2785"),
        HelperSpec(
            ids.BPF_FUNC_loop, "bpf_loop",
            FuncProto([A.ANYTHING, A.PTR_TO_FUNC, A.PTR_TO_STACK_OR_NULL,
                       A.ANYTHING], R.INTEGER),
            impls_sys.bpf_loop, "v5.18", 9, "retire",
            notes="merely provides a loop mechanism (§3.2)"),
        HelperSpec(
            ids.BPF_FUNC_strncmp, "bpf_strncmp",
            FuncProto(mem_pair + [A.ANYTHING], R.INTEGER),
            impls_sys.bpf_strncmp, "v5.18", 4, "retire",
            notes="implementable entirely in safe Rust (§3.2)"),
    ]


def build_default_registry() -> HelperRegistry:
    """The full Linux-5.18 helper population: 30 executable helpers
    plus catalog entries up to 249 total."""
    # imported here to avoid a cycle: catalog sizes itself relative to
    # the implemented specs
    from repro.ebpf.helpers.catalog import catalog_specs

    registry = HelperRegistry()
    implemented = _implemented_specs()
    for spec in implemented:
        registry.register(spec)
    for spec in catalog_specs(implemented):
        registry.register(spec)
    return registry
