"""Helper functions: the escape hatches of §2.2.

Helpers are "normal, unverified kernel functions" reachable from
verified bytecode.  This package models them three ways at once:

* as *verifier-facing protos* (:mod:`base`) — argument/return types the
  verifier checks shallowly,
* as *executable implementations* (:mod:`impls_core`, :mod:`impls_net`,
  :mod:`impls_sys`) — running against the simulated kernel, including
  the buggy code paths of Table 1,
* as *static-analysis subjects* (:mod:`catalog`) — all 249 helpers of
  Linux 5.18, each attached to the synthetic kernel call graph at its
  documented depth, powering the Figure 3 and Figure 4 measurements
  and the §3.2 retire/simplify/wrap survey.
"""

from repro.ebpf.helpers.base import (
    ArgType,
    FuncProto,
    HelperCallContext,
    HelperSpec,
    RetType,
)
from repro.ebpf.helpers.registry import HelperRegistry, build_default_registry

__all__ = [
    "ArgType",
    "FuncProto",
    "HelperCallContext",
    "HelperSpec",
    "RetType",
    "HelperRegistry",
    "build_default_registry",
]
