"""Core helper implementations: maps, time, current-task accessors.

Each function receives a :class:`~repro.ebpf.helpers.base.HelperCallContext`
and returns the value placed in R0.  Implementations operate on the
simulated kernel through real (checked) memory accesses, so a bad
pointer reaching a helper produces a genuine kernel fault.
"""

from __future__ import annotations

from typing import Optional

from repro.ebpf.helpers.base import HelperCallContext

EINVAL = 22
EFAULT = 14
ENOENT = 2

U64 = (1 << 64) - 1


def _resolve_map(ctx: HelperCallContext, value: int):
    """Map argument -> BpfMap (verifier guarantees this is a map ptr)."""
    return ctx.vm.resolve_map_ptr(value)


def bpf_map_lookup_elem(ctx: HelperCallContext) -> int:
    """``void *bpf_map_lookup_elem(map, key)`` — NULL (0) on miss."""
    bpf_map = _resolve_map(ctx, ctx.args[0])
    if bpf_map is None:
        return 0
    key = ctx.kernel.mem.read(ctx.args[1], bpf_map.key_size,
                              source=ctx.vm.prog_tag)
    addr = bpf_map.lookup_addr(key)
    return addr if addr is not None else 0


def bpf_map_update_elem(ctx: HelperCallContext) -> int:
    """``long bpf_map_update_elem(map, key, value, flags)``."""
    bpf_map = _resolve_map(ctx, ctx.args[0])
    if bpf_map is None:
        return -EINVAL
    mem = ctx.kernel.mem
    key = mem.read(ctx.args[1], bpf_map.key_size, source=ctx.vm.prog_tag)
    value = mem.read(ctx.args[2], bpf_map.value_size,
                     source=ctx.vm.prog_tag)
    return bpf_map.update(key, value)


def bpf_map_delete_elem(ctx: HelperCallContext) -> int:
    """``long bpf_map_delete_elem(map, key)``."""
    bpf_map = _resolve_map(ctx, ctx.args[0])
    if bpf_map is None:
        return -EINVAL
    key = ctx.kernel.mem.read(ctx.args[1], bpf_map.key_size,
                              source=ctx.vm.prog_tag)
    return bpf_map.delete(key)


def bpf_probe_read(ctx: HelperCallContext) -> int:
    """``long bpf_probe_read(dst, size, unsafe_ptr)``.

    Reads *arbitrary* kernel memory, but through the non-faulting path
    (exception tables in the real kernel), so a bad address returns
    -EFAULT rather than oopsing.  Note what this means for safety: a
    verified tracing program can still read any kernel data it can
    name — the verifier's "no arbitrary memory access" guarantee stops
    at this helper's boundary.
    """
    dst, size, unsafe_ptr = ctx.args[0], ctx.args[1], ctx.args[2]
    if size == 0:
        return 0
    data = ctx.kernel.mem.try_read(unsafe_ptr, size)
    if data is None:
        # zero the destination, as the real helper does on failure
        ctx.kernel.mem.try_write(dst, b"\x00" * size)
        return -EFAULT
    if not ctx.kernel.mem.try_write(dst, data):
        return -EFAULT
    return 0


def bpf_probe_read_kernel(ctx: HelperCallContext) -> int:
    """``long bpf_probe_read_kernel(dst, size, unsafe_ptr)``."""
    return bpf_probe_read(ctx)


def bpf_probe_read_str(ctx: HelperCallContext) -> int:
    """``long bpf_probe_read_str(dst, size, unsafe_ptr)`` — copy a
    NUL-terminated string, returning the length including the NUL."""
    dst, size, unsafe_ptr = ctx.args[0], ctx.args[1], ctx.args[2]
    if size == 0:
        return 0
    copied = bytearray()
    for index in range(size - 1):
        byte = ctx.kernel.mem.try_read(unsafe_ptr + index, 1)
        if byte is None:
            if index == 0:
                return -EFAULT
            break
        copied.append(byte[0])
        if byte[0] == 0:
            break
    if not copied or copied[-1] != 0:
        copied.append(0)
    if not ctx.kernel.mem.try_write(dst, bytes(copied)):
        return -EFAULT
    return len(copied)


def bpf_jiffies64(ctx: HelperCallContext) -> int:
    """``u64 bpf_jiffies64(void)`` — 250 HZ jiffies off the clock."""
    return ctx.kernel.clock.now_ns // 4_000_000


def bpf_ktime_get_boot_ns(ctx: HelperCallContext) -> int:
    """``u64 bpf_ktime_get_boot_ns(void)`` — same clock, boot base."""
    return ctx.kernel.clock.now_ns


def bpf_perf_event_output(ctx: HelperCallContext) -> int:
    """``long bpf_perf_event_output(ctx, map, flags, data, size)`` —
    stream a record to the perf buffer (modeled as a ring)."""
    bpf_map = ctx.vm.resolve_map_ptr(ctx.args[1])
    if bpf_map is None or bpf_map.map_type not in ("perf_event_array",
                                                   "ringbuf"):
        return -EINVAL
    data = ctx.kernel.mem.read(ctx.args[3], ctx.args[4],
                               source=ctx.vm.prog_tag)
    return bpf_map.output(data)


def bpf_snprintf(ctx: HelperCallContext) -> int:
    """``long bpf_snprintf(out, out_size, fmt, data, data_len)``.

    A pure formatting routine in the kernel purely because eBPF cannot
    express it — one of the 16 retire-class helpers (§3.2).  Supports
    the %d/%u/%x/%% subset over an array of u64 args."""
    out, out_size, fmt_ptr, data_ptr, data_len = ctx.args[:5]
    if out_size == 0 or data_len % 8 != 0:
        return -EINVAL
    mem = ctx.kernel.mem
    raw_fmt = bytearray()
    for index in range(256):
        byte = mem.try_read(fmt_ptr + index, 1)
        if byte is None:
            return -EFAULT
        if byte[0] == 0:
            break
        raw_fmt.append(byte[0])
    fmt = raw_fmt.decode("latin-1")
    values = [mem.read_u64(data_ptr + off, source=ctx.vm.prog_tag)
              for off in range(0, data_len, 8)]
    result = []
    arg_index = 0
    index = 0
    while index < len(fmt):
        char = fmt[index]
        if char != "%":
            result.append(char)
            index += 1
            continue
        if index + 1 >= len(fmt):
            return -EINVAL
        spec = fmt[index + 1]
        index += 2
        if spec == "%":
            result.append("%")
            continue
        if arg_index >= len(values):
            return -EINVAL
        value = values[arg_index]
        arg_index += 1
        if spec == "d":
            signed = value - (1 << 64) if value >> 63 else value
            result.append(str(signed))
        elif spec == "u":
            result.append(str(value))
        elif spec == "x":
            result.append(f"{value:x}")
        else:
            return -EINVAL
    encoded = "".join(result).encode("latin-1")[:out_size - 1] + b"\x00"
    mem.write(out, encoded, source=ctx.vm.prog_tag)
    return len(encoded)


def bpf_ktime_get_ns(ctx: HelperCallContext) -> int:
    """``u64 bpf_ktime_get_ns(void)``."""
    return ctx.kernel.clock.now_ns


def bpf_trace_printk(ctx: HelperCallContext) -> int:
    """``long bpf_trace_printk(fmt, fmt_size, ...)`` — logs to dmesg."""
    fmt_ptr, fmt_size = ctx.args[0], ctx.args[1]
    raw = ctx.kernel.mem.read(fmt_ptr, fmt_size, source=ctx.vm.prog_tag)
    text = raw.split(b"\x00")[0].decode("latin-1")
    ctx.kernel.log.log(ctx.kernel.clock.now_ns,
                       f"bpf_trace_printk: {text}")
    return len(text)


def bpf_get_prandom_u32(ctx: HelperCallContext) -> int:
    """``u32 bpf_get_prandom_u32(void)`` — deterministic in simulation."""
    return ctx.vm.next_prandom()


def bpf_get_smp_processor_id(ctx: HelperCallContext) -> int:
    """``u32 bpf_get_smp_processor_id(void)``."""
    return ctx.kernel.current_cpu.cpu_id


def bpf_get_current_pid_tgid(ctx: HelperCallContext) -> int:
    """``u64 bpf_get_current_pid_tgid(void)`` — tgid<<32 | pid.

    The paper's Figure 3 floor case: this helper calls no other kernel
    function.
    """
    task = ctx.kernel.current_task
    return ((task.tgid << 32) | task.pid) & U64


def bpf_get_current_uid_gid(ctx: HelperCallContext) -> int:
    """``u64 bpf_get_current_uid_gid(void)`` — root in the simulation."""
    return 0


def bpf_get_current_comm(ctx: HelperCallContext) -> int:
    """``long bpf_get_current_comm(buf, size_of_buf)``."""
    buf, size = ctx.args[0], ctx.args[1]
    if size == 0:
        return -EINVAL
    comm = ctx.kernel.current_task.comm.encode()[:size - 1]
    ctx.kernel.mem.write(buf, comm + b"\x00" * (size - len(comm)),
                         source=ctx.vm.prog_tag)
    return 0


def bpf_get_current_task(ctx: HelperCallContext) -> int:
    """``u64 bpf_get_current_task(void)``.

    Returns a raw ``task_struct`` kernel address *typed as a scalar* —
    the old ABI.  Anything the program does with it (store it in a
    user-readable map, pass it back into helpers) is invisible to the
    verifier's pointer tracking: a built-in kernel-pointer leak.
    """
    return ctx.kernel.current_task.address
