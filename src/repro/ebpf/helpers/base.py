"""Helper specifications: the verifier-visible contract.

A :class:`FuncProto` is what the verifier knows about a helper — the
analogue of ``struct bpf_func_proto``.  Crucially (and this is the
§2.2 escape hatch) the proto describes argument types only *shallowly*:
``ARG_PTR_TO_MEM`` says "readable memory of the paired size", nothing
about what the helper does with pointer fields *inside* that memory.
``bpf_sys_bpf``'s attr union is exactly such a blind spot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence


class ArgType(enum.Enum):
    """Verifier-checked argument types (subset of ``bpf_arg_type``)."""

    #: any initialized value, contents unchecked
    ANYTHING = "anything"
    #: a map reference loaded via BPF_PSEUDO_MAP_FD
    CONST_MAP_PTR = "const_map_ptr"
    #: stack pointer with key_size readable bytes
    PTR_TO_MAP_KEY = "map_key"
    #: stack pointer with value_size readable bytes
    PTR_TO_MAP_VALUE = "map_value"
    #: readable memory; paired with a following CONST_SIZE argument
    PTR_TO_MEM = "mem"
    #: writable (possibly uninitialized) memory; paired with CONST_SIZE
    PTR_TO_UNINIT_MEM = "uninit_mem"
    #: a size for the preceding mem argument; must have provable bounds
    CONST_SIZE = "const_size"
    #: like CONST_SIZE but 0 is allowed
    CONST_SIZE_OR_ZERO = "const_size_or_zero"
    #: the program's context pointer
    PTR_TO_CTX = "ctx"
    #: a referenced socket (from an acquiring helper)
    PTR_TO_SOCKET = "socket"
    #: a callback function (BPF_PSEUDO_FUNC ld_imm64)
    PTR_TO_FUNC = "func"
    #: stack pointer or NULL (callback context)
    PTR_TO_STACK_OR_NULL = "stack_or_null"
    #: map value containing a struct bpf_spin_lock
    PTR_TO_SPIN_LOCK = "spin_lock"
    #: stack pointer to an 8-byte result slot
    PTR_TO_LONG = "long"
    #: referenced memory from an allocating helper (ringbuf reserve)
    PTR_TO_ALLOC_MEM = "alloc_mem"


class RetType(enum.Enum):
    """Verifier-tracked helper return types."""

    INTEGER = "integer"
    VOID = "void"
    MAP_VALUE_OR_NULL = "map_value_or_null"
    SOCKET_OR_NULL = "socket_or_null"
    MEM_OR_NULL = "mem_or_null"
    #: a raw kernel address typed as scalar — the leak-prone old ABI
    #: of bpf_get_current_task
    KERNEL_ADDR_SCALAR = "kernel_addr_scalar"


@dataclass
class FuncProto:
    """What the verifier believes about a helper."""

    args: List[ArgType] = field(default_factory=list)
    ret: RetType = RetType.INTEGER
    #: reference kind acquired by a successful call (e.g. "socket")
    acquires: Optional[str] = None
    #: True when arg1 releases a previously acquired reference
    releases: bool = False
    #: bytes returned in a MEM_OR_NULL pointer, when fixed
    ret_mem_size: int = 0
    #: True if the helper may only run with no spin lock held
    forbidden_under_spinlock: bool = True


class HelperCallContext:
    """Everything a helper implementation can touch at run time."""

    def __init__(self, kernel: "Kernel", vm: "object",
                 args: Sequence[int], prog: "object") -> None:
        #: the simulated kernel
        self.kernel = kernel
        #: the executing VM (for bpf_loop callbacks / tail calls)
        self.vm = vm
        #: concrete r1..r5 values
        self.args = list(args)
        #: the running LoadedProgram
        self.prog = prog

    def map_by_fd(self, map_fd: int) -> "object":
        """Resolve a map argument."""
        return self.vm.subsystem.map_by_fd(map_fd)


@dataclass
class HelperSpec:
    """One helper function: contract, implementation, provenance.

    ``callgraph_size`` is the number of kernel functions the helper
    transitively calls (the Figure 3 metric) — taken from the paper
    where documented (0 for ``bpf_get_current_pid_tgid``, 4845 for
    ``bpf_sys_bpf``), synthesized to match the reported distribution
    otherwise.  ``classification`` is the §3.2 category: ``retire``
    (pure expressiveness, replaced by language features), ``simplify``
    (kernel interface whose error-prone parts move into safe code),
    ``wrap`` (unsafe code behind a sanitizing safe interface), or
    ``keep`` (already-minimal accessor).
    """

    helper_id: int
    name: str
    proto: FuncProto
    impl: Optional[Callable[[HelperCallContext], int]] = None
    introduced: str = "v3.18"
    callgraph_size: int = 1
    classification: str = "keep"
    #: paper/Table-1 bug tags reproduced in the implementation
    bug_tags: List[str] = field(default_factory=list)
    notes: str = ""

    @property
    def is_implemented(self) -> bool:
        """True when the helper has an executable model."""
        return self.impl is not None
