"""Networking helper implementations: socket lookup and release.

Models the ``sk_lookup`` family, including the request-sock reference
leak of the paper's Table 1 ([35]: "bpf: Fix request_sock leak in sk
lookup helpers").
"""

from __future__ import annotations

from repro.ebpf.helpers.base import HelperCallContext

EINVAL = 22

#: struct bpf_sock_tuple (ipv4): saddr(4) daddr(4) sport(2) dport(2)
SOCK_TUPLE_V4_SIZE = 12

#: TCP_NEW_SYN_RECV: connection has a pending request sock
TCP_NEW_SYN_RECV = 12


def bpf_sk_lookup_tcp(ctx: HelperCallContext) -> int:
    """``struct bpf_sock *bpf_sk_lookup_tcp(ctx, tuple, tuple_size,
    netns, flags)``.

    Looks up a socket by destination tuple and *acquires a reference*
    on it; the verifier requires the program to release it via
    ``bpf_sk_release`` before exit.

    The [35] bug: when the destination has a connection request in
    flight (listener in ``TCP_NEW_SYN_RECV`` handling), the kernel
    takes an extra reference on the ``request_sock`` during the lookup
    that the release path never drops.  The program can behave
    perfectly — call ``bpf_sk_release`` exactly once, satisfying the
    verifier — and the kernel still leaks a reference.
    """
    tuple_ptr, tuple_size = ctx.args[1], ctx.args[2]
    if tuple_size != SOCK_TUPLE_V4_SIZE:
        return 0
    raw = ctx.kernel.mem.read(tuple_ptr, tuple_size,
                              source=ctx.vm.prog_tag)
    daddr = int.from_bytes(raw[4:8], "little")
    dport = int.from_bytes(raw[10:12], "little")
    sock = ctx.kernel.lookup_socket(daddr, dport)
    if sock is None:
        return 0
    # the reference the program is responsible for
    sock.refs.get(ctx.vm.prog_tag)
    if ctx.vm.bugs.sk_lookup_reqsk_leak \
            and sock.read_field("state") == TCP_NEW_SYN_RECV:
        # buggy path: grab the pending request sock's ref and lose it
        reqsk = ctx.vm.find_request_sock_for(sock)
        if reqsk is not None:
            reqsk.refs.get("kernel-sk-lookup-lost")
    return sock.address


def bpf_sk_lookup_udp(ctx: HelperCallContext) -> int:
    """``struct bpf_sock *bpf_sk_lookup_udp(...)`` — same model."""
    return bpf_sk_lookup_tcp(ctx)


#: XDP verdicts the redirect helper can produce
XDP_ABORTED = 0
XDP_REDIRECT = 4


def bpf_redirect_map(ctx: HelperCallContext) -> int:
    """``long bpf_redirect_map(map, key, flags)`` — XDP redirect.

    Looks the slot ``key`` up in a devmap and, on a hit, stashes the
    target ifindex on the VM (consumed by the data plane *after* the
    program returns, mirroring ``xdp_do_redirect``) and returns
    ``XDP_REDIRECT``.  An empty slot or a non-devmap argument returns
    ``XDP_ABORTED``, matching the kernel's "flags as the fallback
    verdict" contract with flags=0.
    """
    bpf_map = ctx.vm.resolve_map_ptr(ctx.args[0])
    if bpf_map is None or bpf_map.map_type != "devmap":
        return XDP_ABORTED
    ifindex = bpf_map.target(ctx.args[1] & 0xFFFFFFFF)
    if ifindex is None:
        return XDP_ABORTED
    ctx.vm.pending_redirect = ifindex
    return XDP_REDIRECT


def bpf_sk_release(ctx: HelperCallContext) -> int:
    """``long bpf_sk_release(sock)`` — drop the acquired reference."""
    sock_addr = ctx.args[0]
    for sock in ctx.kernel.sockets:
        if sock.address == sock_addr:
            sock.refs.put(ctx.vm.prog_tag)
            return 0
    return -EINVAL
