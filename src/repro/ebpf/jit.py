"""The JIT compiler model.

The real JIT translates verified bytecode to native code — and is a
*second* trusted component that can betray the verifier's proof: the
paper cites CVE-2021-29154 [1], where miscompiled branch offsets let a
verified program hijack kernel control flow, and [38], formal
verification of JITs, as evidence.

Our JIT "lowers" bytecode to an equivalent instruction list (the VM
executes both identically).  With the ``jit_branch_miscompile`` bug
enabled, a conditional branch *immediately following a BPF_DIV
instruction* gets its offset off by one — the shape of the
CVE-2021-29154 pattern, where the branch displacement was computed
against mis-sized division stubs.  The landing pad is attacker-chosen,
so a program can place a bounds check at the verified target and have
execution skip straight past it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.ebpf import isa
from repro.ebpf.bugs import BugConfig
from repro.ebpf.isa import Insn


@dataclass
class JitResult:
    """Outcome of one JIT translation."""

    insns: List[Insn]
    #: indices whose branch offsets were corrupted by the modeled bug
    miscompiled: List[int] = field(default_factory=list)


def jit_compile(insns: Sequence[Insn],
                bugs: BugConfig = None) -> JitResult:
    """Lower a verified program to its executable form."""
    bugs = bugs or BugConfig()
    out: List[Insn] = []
    miscompiled: List[int] = []
    prev_was_div = False
    for index, insn in enumerate(insns):
        emitted = insn
        is_cond_jump = (
            insn.insn_class == isa.BPF_JMP
            and (insn.opcode & isa.JMP_OP_MASK) not in
            (isa.BPF_JA, isa.BPF_CALL, isa.BPF_EXIT)
        )
        if bugs.jit_branch_miscompile and prev_was_div \
                and is_cond_jump and insn.off > 0:
            # CVE-2021-29154 shape: displacement computed one insn long
            emitted = Insn(insn.opcode, insn.dst, insn.src,
                           insn.off + 1, insn.imm)
            miscompiled.append(index)
        prev_was_div = (
            insn.is_alu
            and (insn.opcode & isa.ALU_OP_MASK) in
            (isa.BPF_DIV, isa.BPF_MOD)
        )
        out.append(emitted)
    return JitResult(insns=out, miscompiled=miscompiled)
