"""Content-hash-keyed program load cache.

The paper's §3 argument is that load-time validation should be cheap:
a signature check over the bytes, not a symbolic re-execution of the
program.  This cache gives the simulated loader the same shape —
reloading bytecode the verifier has already accepted under the same
configuration is a hash lookup, skipping verification, JIT compilation
and predecoding entirely.

The key is a SHA-256 over everything that can change the verifier's
answer or the generated artifacts:

* every instruction field (opcode, dst, src, off, imm),
* the program type,
* the verifier configuration (limits, injected bugs, ptr-leak policy,
  state pruning, log level),
* whether the JIT is in use (and the JIT's bug knobs ride along with
  the config's ``bugs``),
* a fingerprint of every map the loader has handed out an fd for —
  map shape feeds the verifier's access checks, so two loads of the
  same bytecode against differently-shaped maps must not collide.

Only *accepted* programs are cached.  Rejections are re-derived on
every load: a rejection is cheap to reproduce (the verifier bails
early), and callers probing the verifier (the attack corpus, the
experiments) expect a fresh log each time.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import OrderedDict
from typing import Iterable, Optional, Tuple


@dataclasses.dataclass
class CachedLoad:
    """Artifacts of one accepted load: stats, JIT output, dispatch
    table, and (when the compiled tier is in use) the exec-compiled
    frame function.  ``compiled`` is backfilled on first compiled-tier
    load of an entry cached under another engine — the content hash
    already keys everything compilation depends on."""

    stats: object
    jit: Optional[object]
    predecoded: Optional[object]
    compiled: Optional[object] = None

    def stats_copy(self) -> object:
        """A per-load copy of the verifier stats, marked as a cache
        hit so callers can tell replayed stats from fresh ones."""
        return dataclasses.replace(self.stats, log=list(self.stats.log),
                                   from_cache=True)


class ProgramLoadCache:
    """LRU cache of accepted loads, keyed by content hash."""

    def __init__(self, max_entries: int = 128) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CachedLoad]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, key: str) -> Optional[CachedLoad]:
        """The cached load for ``key``, counting a hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def insert(self, key: str, entry: CachedLoad) -> None:
        """Cache an accepted load, evicting LRU entries over the cap."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()


def _maps_fingerprint(maps: Iterable[Tuple[int, object]]) -> str:
    parts = []
    for fd, bpf_map in sorted(maps, key=lambda item: item[0]):
        parts.append(
            f"{fd}:{type(bpf_map).__name__}"
            f":{getattr(bpf_map, 'key_size', 0)}"
            f":{getattr(bpf_map, 'value_size', 0)}"
            f":{getattr(bpf_map, 'max_entries', 0)}"
            f":{int(getattr(bpf_map, 'spin_lock', None) is not None)}")
    return "|".join(parts)


def insns_digest(insns: Iterable[object]) -> str:
    """SHA-256 over every instruction field — the bytecode half of the
    cache key, and the content hash the fleet's release registry signs
    (one serialization, so a signed release and a cached load agree on
    what "the same program" means)."""
    h = hashlib.sha256()
    for insn in insns:
        h.update(f"{insn.opcode},{insn.dst},{insn.src},"
                 f"{insn.off},{insn.imm};".encode())
    return h.hexdigest()


def fingerprint(insns: Iterable[object], prog_type: object,
                config: object, maps: Iterable[Tuple[int, object]],
                use_jit: bool) -> str:
    """Content hash of one load request (see module docstring)."""
    h = hashlib.sha256()
    h.update(insns_digest(insns).encode())
    h.update(f"|type={getattr(prog_type, 'value', prog_type)}".encode())
    h.update(f"|jit={use_jit}".encode())
    h.update(f"|leaks={config.allow_ptr_leaks}".encode())
    h.update(f"|prune={config.prune_states}".encode())
    h.update(f"|log={config.log_level}".encode())
    h.update(f"|limits={config.limits!r}".encode())
    h.update(f"|bugs={config.bugs!r}".encode())
    h.update(f"|maps={_maps_fingerprint(maps)}".encode())
    return h.hexdigest()
