"""eBPF disassembler.

Produces the ``bpftool``-style listing used in verifier logs and in
the examples, e.g. ``r0 = 42`` / ``if r1 != 0 goto +2`` /
``r2 = *(u32 *)(r1 +4)``.
"""

from __future__ import annotations

from typing import List

from repro.ebpf import isa
from repro.ebpf.isa import Insn

_SIZE_NAMES = {isa.BPF_B: "u8", isa.BPF_H: "u16",
               isa.BPF_W: "u32", isa.BPF_DW: "u64"}

_JMP_SYMBOLS = {
    isa.BPF_JEQ: "==", isa.BPF_JNE: "!=",
    isa.BPF_JGT: ">", isa.BPF_JGE: ">=",
    isa.BPF_JLT: "<", isa.BPF_JLE: "<=",
    isa.BPF_JSGT: "s>", isa.BPF_JSGE: "s>=",
    isa.BPF_JSLT: "s<", isa.BPF_JSLE: "s<=",
    isa.BPF_JSET: "&",
}

_ALU_SYMBOLS = {
    isa.BPF_ADD: "+=", isa.BPF_SUB: "-=", isa.BPF_MUL: "*=",
    isa.BPF_DIV: "/=", isa.BPF_OR: "|=", isa.BPF_AND: "&=",
    isa.BPF_LSH: "<<=", isa.BPF_RSH: ">>=", isa.BPF_MOD: "%=",
    isa.BPF_XOR: "^=", isa.BPF_MOV: "=", isa.BPF_ARSH: "s>>=",
}


def disasm_insn(insn: Insn, index: int = 0,
                next_insn: Insn = None) -> str:
    """Disassemble one instruction (``next_insn`` completes LD_IMM64)."""
    cls = insn.insn_class

    if insn.is_ld_imm64:
        hi = next_insn.imm if next_insn is not None else 0
        value = (hi << 32) | (insn.imm & 0xFFFFFFFF)
        if insn.src == isa.BPF_PSEUDO_MAP_FD:
            return f"r{insn.dst} = map_fd[{insn.imm}]"
        return f"r{insn.dst} = {value:#x} ll"

    if cls in (isa.BPF_ALU, isa.BPF_ALU64):
        op = insn.opcode & isa.ALU_OP_MASK
        suffix = "" if cls == isa.BPF_ALU64 else " (u32)"
        if op == isa.BPF_NEG:
            return f"r{insn.dst} = -r{insn.dst}{suffix}"
        if op == isa.BPF_END:
            return f"r{insn.dst} = bswap{insn.imm}(r{insn.dst})"
        sym = _ALU_SYMBOLS[op]
        if insn.opcode & isa.BPF_X:
            return f"r{insn.dst} {sym} r{insn.src}{suffix}"
        return f"r{insn.dst} {sym} {insn.imm}{suffix}"

    if cls in (isa.BPF_JMP, isa.BPF_JMP32):
        op = insn.opcode & isa.JMP_OP_MASK
        if op == isa.BPF_CALL:
            if insn.src == isa.BPF_PSEUDO_CALL:
                return f"call subprog{insn.imm:+d}"
            return f"call helper#{insn.imm}"
        if op == isa.BPF_EXIT:
            return "exit"
        if op == isa.BPF_JA:
            return f"goto {insn.off:+d}"
        sym = _JMP_SYMBOLS[op]
        # jmp32 compares the w (32-bit) subregisters
        reg_prefix = "w" if cls == isa.BPF_JMP32 else "r"
        rhs = f"{reg_prefix}{insn.src}" if insn.opcode & isa.BPF_X \
            else str(insn.imm)
        return (f"if {reg_prefix}{insn.dst} {sym} {rhs} "
                f"goto {insn.off:+d}")

    if cls == isa.BPF_LDX:
        size = _SIZE_NAMES[insn.opcode & isa.SIZE_MASK]
        return (f"r{insn.dst} = *({size} *)"
                f"(r{insn.src} {insn.off:+d})")

    if cls == isa.BPF_STX:
        size = _SIZE_NAMES[insn.opcode & isa.SIZE_MASK]
        if (insn.opcode & isa.MODE_MASK) == isa.BPF_ATOMIC:
            return (f"lock *({size} *)(r{insn.dst} {insn.off:+d})"
                    f" += r{insn.src}")
        return (f"*({size} *)(r{insn.dst} {insn.off:+d})"
                f" = r{insn.src}")

    if cls == isa.BPF_ST:
        size = _SIZE_NAMES[insn.opcode & isa.SIZE_MASK]
        return (f"*({size} *)(r{insn.dst} {insn.off:+d})"
                f" = {insn.imm}")

    return f".insn {insn.opcode:#04x}, {insn.dst}, {insn.src}, " \
           f"{insn.off}, {insn.imm}"


def disasm(program: List[Insn]) -> str:
    """Disassemble a whole program with instruction indices."""
    lines = []
    skip_next = False
    for index, insn in enumerate(program):
        if skip_next:
            skip_next = False
            continue
        nxt = program[index + 1] if index + 1 < len(program) else None
        if insn.is_ld_imm64:
            skip_next = True
        lines.append(f"{index:4d}: {disasm_insn(insn, index, nxt)}")
    return "\n".join(lines)
