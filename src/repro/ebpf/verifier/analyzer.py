"""The verifier's symbolic-execution engine (``do_check`` analogue).

Walks every reachable path of a program, tracking abstract register,
stack, reference and lock state, and rejects anything it cannot prove
safe — within hard complexity limits, which is precisely the tension
the paper examines: the limits bound verification cost but also bound
program expressiveness (§2.1), and what the proofs *don't* cover is
whatever happens inside helper functions (§2.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ebpf import isa
from repro.ebpf.bugs import BugConfig
from repro.ebpf.helpers.base import ArgType, FuncProto, HelperSpec
from repro.ebpf.helpers.registry import HelperRegistry
from repro.ebpf.isa import Insn
from repro.ebpf.verifier import bounds
from repro.ebpf.verifier.limits import VerifierLimits
from repro.ebpf.verifier.regstate import (
    ARITH_OK_TYPES,
    OR_NULL_TYPES,
    FuncFrame,
    RegState,
    RegType,
    SlotKind,
    StackSlot,
    S64_MAX,
    S64_MIN,
    U64_MAX,
    u64_to_s64,
    s64_to_u64,
)
from repro.ebpf.verifier.states import ExploredStates, VerifierState
from repro.ebpf.verifier.tnum import Tnum
from repro.errors import VerifierError, VerifierLimitExceeded
from repro.ebpf.progs import CtxFieldKind, PROG_TYPE_INFO, ProgType


class VerifierInternalFault(Exception):
    """The verifier *itself* crashed — models the use-after-free in the
    loop-inlining code [54].  The loader converts this into a kernel
    oops attributed to the verifier."""


@dataclass
class VerifierConfig:
    """Knobs for one verification run."""

    limits: VerifierLimits = field(default_factory=VerifierLimits)
    bugs: BugConfig = field(default_factory=BugConfig)
    #: privileged loaders may leak pointers (CAP_PERFMON behaviour)
    allow_ptr_leaks: bool = False
    #: explored-state pruning (ablation knob; off = path explosion)
    prune_states: bool = True
    #: 1 = errors only; 2 = per-instruction trace with register
    #: state, like ``bpftool prog load ... verifier_log``
    log_level: int = 1


@dataclass
class VerifierStats:
    """What one verification run cost — the §2.1 expense metrics."""

    insns_processed: int = 0
    states_explored: int = 0
    prune_hits: int = 0
    peak_pending: int = 0
    max_states_per_insn: int = 0
    wall_time_s: float = 0.0
    log: List[str] = field(default_factory=list)
    #: True when these stats were replayed from the load cache rather
    #: than produced by a fresh verification run
    from_cache: bool = False


class _WalkRecord:
    """Branch bookkeeping for one walk (the kernel's
    ``state->branches``).  A walk's checkpoints may only become prune
    bases once the walk *and every branch it forked* have completed —
    otherwise a pending backward branch can prune against a state
    whose loop-exit side was never proven, and the verifier accepts a
    program that spins forever at run time."""

    __slots__ = ("parent", "parent_pos", "open_branches", "done",
                 "trace", "inflight", "seq")

    def __init__(self, parent: Optional["_WalkRecord"],
                 parent_pos: int = 0) -> None:
        self.parent = parent
        #: how many checkpoints the parent had taken when it forked
        #: this walk — only those precede this walk on the execution
        #: path (later parent checkpoints belong to the fall path, and
        #: matching one of them is path convergence, not a cycle)
        self.parent_pos = parent_pos
        #: forked branches not yet fully explored (subtree-complete)
        self.open_branches = 0
        self.done = False
        #: checkpoints awaiting commit: (insn_idx, state snapshot)
        self.trace: List[Tuple[int, VerifierState]] = []
        #: checkpoint (position, state key) per insn, for loop
        #: detection across this walk and its descendants
        self.inflight: Dict[int, List[Tuple[int, tuple]]] = {}
        #: checkpoints taken so far (positions the entries above use)
        self.seq = 0


class Verifier:
    """Verify one program against one kernel configuration."""

    def __init__(self, insns: Sequence[Insn], prog_type: ProgType,
                 registry: HelperRegistry,
                 maps_by_fd: Dict[int, object],
                 config: Optional[VerifierConfig] = None) -> None:
        self.insns = list(insns)
        self.prog_type = prog_type
        self.type_info = PROG_TYPE_INFO[prog_type]
        self.registry = registry
        self.maps_by_fd = maps_by_fd
        self.config = config or VerifierConfig()
        self.stats = VerifierStats()
        self._jump_targets: Set[int] = set()
        self._ld64_second_slots: Set[int] = set()
        self._loop_inline_count = 0

    # -- public API ---------------------------------------------------------

    def verify(self) -> VerifierStats:
        """Run verification; raises :class:`VerifierError` on rejection."""
        start = time.perf_counter()
        try:
            self._structural_checks()
            self._symbolic_execution()
        finally:
            self.stats.wall_time_s = time.perf_counter() - start
        return self.stats

    # -- logging / errors -----------------------------------------------------

    def _log(self, message: str) -> None:
        if len(self.stats.log) < 10_000:
            self.stats.log.append(message)

    def _reject(self, message: str) -> None:
        self._log(message)
        raise VerifierError(message, log="\n".join(self.stats.log))

    def _reject_limit(self, message: str) -> None:
        self._log(message)
        raise VerifierLimitExceeded(message,
                                    log="\n".join(self.stats.log))

    # -- pass 1: structural checks ---------------------------------------------

    def _structural_checks(self) -> None:
        limits = self.config.limits
        count = len(self.insns)
        if count == 0:
            self._reject("empty program")
        if count > limits.max_insns:
            self._reject_limit(
                f"program too long: {count} insns "
                f"(max {limits.max_insns})")
        index = 0
        while index < count:
            insn = self.insns[index]
            if insn.is_ld_imm64:
                if index + 1 >= count:
                    self._reject("incomplete ld_imm64 at end of program")
                self._ld64_second_slots.add(index + 1)
                if insn.src == isa.BPF_PSEUDO_MAP_FD \
                        and insn.imm not in self.maps_by_fd:
                    self._reject(f"insn {index}: unknown map fd {insn.imm}")
                index += 2
                continue
            if insn.is_jump:
                op = insn.opcode & isa.JMP_OP_MASK
                if op not in (isa.BPF_CALL, isa.BPF_EXIT):
                    target = index + insn.off + 1
                    if not 0 <= target < count:
                        self._reject(
                            f"insn {index}: jump out of range to {target}")
                    self._jump_targets.add(target)
            index += 1
        for target in self._jump_targets:
            if target in self._ld64_second_slots:
                self._reject(
                    f"jump into the middle of an ld_imm64 at {target}")
        last = self.insns[-1]
        is_exit = last.is_jump and \
            (last.opcode & isa.JMP_OP_MASK) == isa.BPF_EXIT
        is_ja = last.is_jump and \
            (last.opcode & isa.JMP_OP_MASK) == isa.BPF_JA
        if not (is_exit or is_ja):
            self._reject("last insn is not an exit or unconditional jump")
        self._check_cfg_reachability()

    def _check_cfg_reachability(self) -> None:
        """``check_cfg``: every instruction must be statically
        reachable from insn 0 (the real verifier rejects dead code).
        Pseudo-call targets and pseudo-func callbacks count as edges."""
        count = len(self.insns)
        reachable = [False] * count
        stack = [0]
        while stack:
            index = stack.pop()
            if index < 0 or index >= count or reachable[index]:
                continue
            reachable[index] = True
            insn = self.insns[index]
            if insn.is_ld_imm64:
                if index + 1 < count:
                    reachable[index + 1] = True
                if insn.src == isa.BPF_PSEUDO_FUNC:
                    stack.append(index + insn.imm + 1)
                stack.append(index + 2)
                continue
            if insn.is_jump:
                op = insn.opcode & isa.JMP_OP_MASK
                if op == isa.BPF_EXIT:
                    continue
                if op == isa.BPF_JA:
                    stack.append(index + insn.off + 1)
                    continue
                if op == isa.BPF_CALL:
                    if insn.src == isa.BPF_PSEUDO_CALL:
                        stack.append(index + insn.imm + 1)
                    stack.append(index + 1)
                    continue
                stack.append(index + insn.off + 1)
            stack.append(index + 1)
        for index, is_reachable in enumerate(reachable):
            if not is_reachable:
                self._reject(f"unreachable insn {index}")

    # -- pass 2: symbolic execution ---------------------------------------------

    def _initial_state(self) -> VerifierState:
        state = VerifierState()
        state.cur.regs[1] = RegState.pointer(RegType.PTR_TO_CTX)
        return state

    def _symbolic_execution(self) -> None:
        explored = ExploredStates(enabled=self.config.prune_states)
        pending: List[
            Tuple[int, VerifierState, Optional[_WalkRecord], int]] = \
            [(0, self._initial_state(), None, 0)]
        while pending:
            self.stats.peak_pending = max(self.stats.peak_pending,
                                          len(pending))
            insn_idx, state, parent, fork_pos = pending.pop()
            self._walk(insn_idx, state, pending, explored, parent,
                       fork_pos)
        self.stats.prune_hits = explored.prune_hits
        self.stats.states_explored = explored.states_stored

    def _finish_walk(self, record: _WalkRecord,
                     explored: ExploredStates) -> None:
        """A walk ended safely.  Commit its checkpoints as prune bases
        only once its whole branch subtree is proven, cascading up to
        ancestors whose last open branch this completes (the kernel's
        ``update_branch_counts``)."""
        record.done = True
        node: Optional[_WalkRecord] = record
        while node is not None and node.done \
                and node.open_branches == 0:
            for insn_idx, snapshot in node.trace:
                explored.remember(insn_idx, snapshot)
            node.trace.clear()
            node.inflight.clear()
            parent, node.parent = node.parent, None
            if parent is not None:
                parent.open_branches -= 1
            node = parent

    def _walk(self, insn_idx: int, state: VerifierState,
              pending: List[Tuple[int, VerifierState,
                                  Optional[_WalkRecord], int]],
              explored: ExploredStates,
              parent: Optional[_WalkRecord] = None,
              fork_pos: int = 0) -> None:
        """Walk one path until exit, prune, or a fork's end."""
        record = _WalkRecord(parent, fork_pos)
        checkpoint_here = True  # walk start counts as a checkpoint
        visit_counts: Dict[int, int] = {}
        limits = self.config.limits

        while True:
            if not 0 <= insn_idx < len(self.insns):
                self._reject(f"fell off the program at insn {insn_idx}")
            if insn_idx in self._ld64_second_slots:
                self._reject(
                    f"execution reached the second half of an ld_imm64 "
                    f"at {insn_idx}")
            # checkpoint at walk starts and at jump targets — but when
            # a bounded loop revisits the same target thousands of
            # times, sample 1-in-8 (the kernel's miss-count heuristic)
            # so state copies don't dominate the walk
            at_target = insn_idx in self._jump_targets
            if at_target:
                count = visit_counts.get(insn_idx, 0)
                visit_counts[insn_idx] = count + 1
                at_target = count % 8 == 0
            if checkpoint_here or at_target:
                checkpoint_here = False
                key = state.state_key()
                # revisiting an earlier checkpoint of this execution
                # path with an identical state is a cycle making no
                # progress: a real infinite loop.  The path runs
                # through every ancestor walk, but only up to the
                # fork each child descends from.
                node: Optional[_WalkRecord] = record
                bound = record.seq
                while node is not None:
                    for pos, seen in node.inflight.get(insn_idx, ()):
                        if pos < bound and seen == key:
                            self._reject(
                                f"infinite loop detected at insn "
                                f"{insn_idx}")
                    bound = node.parent_pos
                    node = node.parent
                if explored.is_covered(insn_idx, state):
                    self.stats.prune_hits = explored.prune_hits
                    self._finish_walk(record, explored)
                    return
                record.inflight.setdefault(insn_idx, []).append(
                    (record.seq, key))
                record.seq += 1
                record.trace.append((insn_idx, state.copy()))

            if self.config.log_level >= 2:
                self._trace_insn(insn_idx, state)

            self.stats.insns_processed += 1
            if self.stats.insns_processed > limits.complexity_limit:
                self._reject_limit(
                    "BPF program is too large: processed "
                    f"{self.stats.insns_processed} insns "
                    f"(limit {limits.complexity_limit})")

            insn = self.insns[insn_idx]
            cls = insn.insn_class

            if insn.is_ld_imm64:
                self._do_ld_imm64(state, insn, insn_idx)
                insn_idx += 2
                continue

            if cls in (isa.BPF_ALU, isa.BPF_ALU64):
                self._do_alu(state, insn, insn_idx)
                insn_idx += 1
                continue

            if cls in (isa.BPF_LDX, isa.BPF_STX, isa.BPF_ST):
                self._do_mem(state, insn, insn_idx)
                insn_idx += 1
                continue

            if cls in (isa.BPF_JMP, isa.BPF_JMP32):
                op = insn.opcode & isa.JMP_OP_MASK
                if cls == isa.BPF_JMP32 and op in (
                        isa.BPF_JA, isa.BPF_CALL, isa.BPF_EXIT):
                    self._reject(f"insn {insn_idx}: invalid jmp32 "
                                 "opcode")
                if op == isa.BPF_JA:
                    insn_idx = insn_idx + insn.off + 1
                    continue
                if op == isa.BPF_EXIT:
                    done = self._do_exit(state, insn_idx)
                    if done:
                        self._finish_walk(record, explored)
                        return
                    # returned from a subprog/callback frame
                    insn_idx = self._pop_return_target
                    continue
                if op == isa.BPF_CALL:
                    next_idx = self._do_call(state, insn, insn_idx)
                    insn_idx = next_idx
                    continue
                # conditional jump: possibly fork
                result = self._do_cond_jmp(state, insn, insn_idx)
                taken_idx = insn_idx + insn.off + 1
                fall_idx = insn_idx + 1
                if result == "taken":
                    insn_idx = taken_idx
                elif result == "fall":
                    insn_idx = fall_idx
                else:
                    taken_state, fall_state = result
                    if len(pending) >= limits.max_pending_branches:
                        self._reject_limit(
                            "too many pending branch states "
                            f"({len(pending)})")
                    record.open_branches += 1
                    pending.append((taken_idx, taken_state, record,
                                    record.seq))
                    state = fall_state
                    insn_idx = fall_idx
                    checkpoint_here = True
                continue

            self._reject(
                f"insn {insn_idx}: unsupported opcode {insn.opcode:#04x}")

    def _trace_insn(self, insn_idx: int, state: VerifierState) -> None:
        """Verbose per-instruction trace (log_level 2)."""
        from repro.ebpf.disasm import disasm_insn
        insn = self.insns[insn_idx]
        nxt = self.insns[insn_idx + 1] \
            if insn_idx + 1 < len(self.insns) else None
        live = "; ".join(
            f"R{regno}={reg}" for regno, reg in
            enumerate(state.cur.regs)
            if reg.type != RegType.NOT_INIT and regno != 10)
        self._log(f"{insn_idx}: {disasm_insn(insn, insn_idx, nxt)}"
                  f"  [{live}]")

    # -- ld_imm64 -------------------------------------------------------------

    def _do_ld_imm64(self, state: VerifierState, insn: Insn,
                     insn_idx: int) -> None:
        self._check_reg_write(insn.dst, insn_idx)
        dst = state.cur.regs[insn.dst]
        if insn.src == isa.BPF_PSEUDO_MAP_FD:
            bpf_map = self.maps_by_fd.get(insn.imm)
            if bpf_map is None:
                self._reject(f"insn {insn_idx}: unknown map fd {insn.imm}")
            new = RegState.pointer(RegType.CONST_PTR_TO_MAP)
            new.map = bpf_map
            state.cur.regs[insn.dst] = new
        elif insn.src == isa.BPF_PSEUDO_FUNC:
            target = insn_idx + insn.imm + 1
            if not 0 <= target < len(self.insns):
                self._reject(
                    f"insn {insn_idx}: callback target {target} "
                    "out of range")
            new = RegState.pointer(RegType.PTR_TO_FUNC, off=target)
            state.cur.regs[insn.dst] = new
        else:
            hi = self.insns[insn_idx + 1].imm
            value = ((hi & 0xFFFFFFFF) << 32) | (insn.imm & 0xFFFFFFFF)
            state.cur.regs[insn.dst] = RegState.const_scalar(value)

    # -- ALU ---------------------------------------------------------------------

    def _check_reg_read(self, state: VerifierState, reg_no: int,
                        insn_idx: int) -> RegState:
        if not 0 <= reg_no < 11:
            self._reject(f"insn {insn_idx}: invalid register r{reg_no}")
        reg = state.cur.regs[reg_no]
        if reg.type == RegType.NOT_INIT:
            self._reject(f"insn {insn_idx}: R{reg_no} !read_ok "
                         "(uninitialized register)")
        return reg

    def _check_reg_write(self, reg_no: int, insn_idx: int) -> None:
        if not 0 <= reg_no < 10:
            self._reject(f"insn {insn_idx}: frame pointer R10 is "
                         "read only" if reg_no == 10 else
                         f"insn {insn_idx}: invalid register r{reg_no}")

    def _do_alu(self, state: VerifierState, insn: Insn,
                insn_idx: int) -> None:
        is64 = insn.insn_class == isa.BPF_ALU64
        op = insn.opcode & isa.ALU_OP_MASK
        op_name = isa.ALU_OP_NAMES.get(op)
        if op_name is None or op == isa.BPF_END:
            self._reject(f"insn {insn_idx}: unsupported ALU op")
        self._check_reg_write(insn.dst, insn_idx)

        if op == isa.BPF_NEG:
            dst = self._check_reg_read(state, insn.dst, insn_idx)
            if dst.is_pointer:
                self._reject(f"insn {insn_idx}: R{insn.dst} pointer "
                             "negation prohibited")
            bounds.alu_neg(dst)
            if not is64:
                self._truncate32(dst)
            return

        # source operand as a RegState
        if insn.opcode & isa.BPF_X:
            src = self._check_reg_read(state, insn.src, insn_idx).copy()
        else:
            src = RegState.const_scalar(insn.imm)

        if op == isa.BPF_MOV:
            if insn.opcode & isa.BPF_X:
                new = src  # already a copy
                if not is64:
                    if new.is_pointer:
                        new = RegState.unknown_scalar()
                    self._truncate32(new)
            else:
                new = RegState.const_scalar(insn.imm)
                if not is64:
                    self._truncate32(new)
            state.cur.regs[insn.dst] = new
            return

        dst = self._check_reg_read(state, insn.dst, insn_idx)

        # pointer arithmetic?
        if dst.is_pointer or src.is_pointer:
            self._do_ptr_alu(state, insn, insn_idx, op_name, dst, src,
                             is64)
            return

        # scalar op
        if op_name in ("lsh", "rsh", "arsh"):
            width = 64 if is64 else 32
            if src.is_const:
                if src.const_value >= width:
                    self._reject(
                        f"insn {insn_idx}: invalid shift "
                        f"{src.const_value}")
            else:
                dst.mark_unknown()
                if not is64:
                    self._truncate32(dst)
                return
        if op_name in ("div", "mod") \
                and not (insn.opcode & isa.BPF_X) and insn.imm == 0:
            # the kernel rejects immediate-zero divisors at load time;
            # a zero in a register divides to 0 at run time instead
            self._reject(f"insn {insn_idx}: division by zero")
        bounds.SCALAR_OPS[op_name](dst, src)
        if not is64:
            self._truncate32(dst)

    def _truncate32(self, reg: RegState) -> None:
        """ALU32 результат: zero-extend the low 32 bits."""
        if reg.type != RegType.SCALAR:
            reg.mark_unknown()
        reg.var_off = reg.var_off.cast(4)
        reg.smin, reg.smax = S64_MIN, S64_MAX
        reg.umin, reg.umax = 0, U64_MAX
        reg.settle_bounds()

    def _do_ptr_alu(self, state: VerifierState, insn: Insn,
                    insn_idx: int, op_name: str, dst: RegState,
                    src: RegState, is64: bool) -> None:
        """``adjust_ptr_min_max_vals``: pointer ± scalar."""
        if not is64:
            self._reject(f"insn {insn_idx}: 32-bit arithmetic on "
                         "pointer prohibited")
        if dst.is_pointer and src.is_pointer:
            if op_name == "sub" and dst.type == src.type:
                if self.config.allow_ptr_leaks:
                    new = RegState.unknown_scalar()
                    state.cur.regs[insn.dst] = new
                    return
                self._reject(f"insn {insn_idx}: R{insn.dst} pointer -= "
                             "pointer prohibited")
            self._reject(f"insn {insn_idx}: pointer arithmetic between "
                         "two pointers prohibited")
        if src.is_pointer and op_name == "sub":
            self._reject(f"insn {insn_idx}: scalar -= pointer prohibited")

        ptr, scalar = (dst, src) if dst.is_pointer else (src, dst)
        if op_name not in ("add", "sub"):
            self._reject(f"insn {insn_idx}: R{insn.dst} pointer "
                         f"arithmetic with {op_name} operation prohibited")

        if ptr.type not in ARITH_OK_TYPES:
            if ptr.type == RegType.PTR_TO_CTX and scalar.is_const:
                new = ptr.copy()
                delta = u64_to_s64(scalar.const_value)
                new.off += delta if op_name == "add" else -delta
                state.cur.regs[insn.dst] = new
                return
            if ptr.type in OR_NULL_TYPES \
                    and self.config.bugs.verifier_ptr_arith_unchecked:
                # CVE-2022-23222 model: arithmetic on a not-yet-null-
                # checked pointer is not sanitized.  After the null
                # check the attacker holds base+delta — with base NULL
                # at run time, an arbitrary kernel address.
                self._log(f"insn {insn_idx}: (buggy) allowing arithmetic "
                          f"on {ptr.type.value}")
                new = ptr.copy()
                if scalar.is_const:
                    delta = u64_to_s64(scalar.const_value)
                    new.off += delta if op_name == "add" else -delta
                else:
                    new.var_off = new.var_off.add(scalar.var_off)
                state.cur.regs[insn.dst] = new
                return
            self._reject(f"insn {insn_idx}: R{insn.dst} pointer "
                         f"arithmetic on {ptr.type.value} prohibited")

        new = ptr.copy()
        if op_name == "add":
            if scalar.is_const:
                new.off += u64_to_s64(scalar.const_value)
            else:
                var = scalar
                new.var_off = new.var_off.add(var.var_off)
                smin = new.smin + var.smin
                smax = new.smax + var.smax
                if smin < S64_MIN or smax > S64_MAX:
                    new.smin, new.smax = S64_MIN, S64_MAX
                else:
                    new.smin, new.smax = smin, smax
                umax = new.umax + var.umax
                if umax > U64_MAX:
                    new.umin, new.umax = 0, U64_MAX
                else:
                    new.umin, new.umax = new.umin + var.umin, umax
                new.settle_bounds()
        else:  # sub: ptr - scalar
            if scalar.is_const:
                new.off -= u64_to_s64(scalar.const_value)
            else:
                self._reject(
                    f"insn {insn_idx}: R{insn.dst} variable pointer "
                    "subtraction prohibited")
        state.cur.regs[insn.dst] = new

    # -- memory access ------------------------------------------------------------

    def _do_mem(self, state: VerifierState, insn: Insn,
                insn_idx: int) -> None:
        cls = insn.insn_class
        size = isa.SIZE_BYTES[insn.opcode & isa.SIZE_MASK]
        mode = insn.opcode & isa.MODE_MASK
        if mode == isa.BPF_ATOMIC:
            self._do_atomic(state, insn, insn_idx, size)
            return
        if mode != isa.BPF_MEM:
            self._reject(f"insn {insn_idx}: unsupported memory mode "
                         f"{mode:#x}")
        if cls == isa.BPF_LDX:
            base = self._check_reg_read(state, insn.src, insn_idx)
            self._check_reg_write(insn.dst, insn_idx)
            self._access(state, insn_idx, base, insn.off, size,
                         write=False, dst_regno=insn.dst)
        elif cls == isa.BPF_STX:
            base = self._check_reg_read(state, insn.dst, insn_idx)
            value = self._check_reg_read(state, insn.src, insn_idx)
            self._access(state, insn_idx, base, insn.off, size,
                         write=True, value_reg=value)
        else:  # BPF_ST (imm store)
            base = self._check_reg_read(state, insn.dst, insn_idx)
            self._access(state, insn_idx, base, insn.off, size,
                         write=True,
                         value_reg=RegState.const_scalar(insn.imm))

    def _do_atomic(self, state: VerifierState, insn: Insn,
                   insn_idx: int, size: int) -> None:
        """``check_atomic``: ADD/OR/AND/XOR (± FETCH), XCHG,
        CMPXCHG."""
        if insn.insn_class != isa.BPF_STX:
            self._reject(f"insn {insn_idx}: invalid atomic encoding")
        base_op = insn.imm & ~isa.BPF_FETCH
        fetches = bool(insn.imm & isa.BPF_FETCH)
        if insn.imm not in (isa.BPF_XCHG, isa.BPF_CMPXCHG) and \
                base_op not in (isa.BPF_ADD, isa.BPF_OR, isa.BPF_AND,
                                isa.BPF_XOR):
            self._reject(f"insn {insn_idx}: unsupported atomic op "
                         f"{insn.imm:#x}")
        if size not in (4, 8):
            self._reject(f"insn {insn_idx}: atomic operand must be "
                         "4 or 8 bytes")
        base = self._check_reg_read(state, insn.dst, insn_idx)
        value = self._check_reg_read(state, insn.src, insn_idx)
        if value.is_pointer:
            op_name = isa.ATOMIC_OP_NAMES.get(
                insn.imm, isa.ATOMIC_OP_NAMES.get(base_op, "op"))
            self._reject(f"insn {insn_idx}: atomic {op_name} of a "
                         "pointer leaks it into memory")
        if insn.imm == isa.BPF_CMPXCHG:
            # R0 is the comparand and receives the old value
            comparand = self._check_reg_read(state, 0, insn_idx)
            if comparand.is_pointer:
                self._reject(f"insn {insn_idx}: atomic cmpxchg "
                             "comparand in R0 is a pointer")
        # read-modify-write: both directions must be legal
        self._access(state, insn_idx, base, insn.off, size,
                     write=False, dst_regno=None)
        self._access(state, insn_idx, base, insn.off, size,
                     write=True, value_reg=RegState.unknown_scalar())
        if insn.imm == isa.BPF_CMPXCHG:
            state.cur.regs[0] = RegState.unknown_scalar()
        elif fetches:
            # the old value lands in the source register
            self._check_reg_write(insn.src, insn_idx)
            state.cur.regs[insn.src] = RegState.unknown_scalar()

    def _access(self, state: VerifierState, insn_idx: int,
                base: RegState, off: int, size: int, *, write: bool,
                dst_regno: Optional[int] = None,
                value_reg: Optional[RegState] = None) -> None:
        """``check_mem_access``: dispatch on the base pointer type."""
        if base.type == RegType.SCALAR:
            self._reject(f"insn {insn_idx}: invalid mem access "
                         "'scalar' (dereference of non-pointer)")
        if base.type in OR_NULL_TYPES:
            self._reject(f"insn {insn_idx}: invalid mem access "
                         f"'{base.type.value}' (pointer may be NULL; "
                         "check it first)")

        result: Optional[RegState] = None
        if base.type == RegType.PTR_TO_STACK:
            result = self._access_stack(state, insn_idx, base, off, size,
                                        write, value_reg)
        elif base.type == RegType.PTR_TO_MAP_VALUE:
            self._check_bounded(state, insn_idx, base, off, size,
                                limit=base.map.value_size,
                                what="map value")
            self._check_store_leak(insn_idx, write, value_reg,
                                   "map value")
            result = RegState.unknown_scalar()
        elif base.type == RegType.PTR_TO_CTX:
            result = self._access_ctx(state, insn_idx, base, off, size,
                                      write)
        elif base.type == RegType.PTR_TO_PACKET:
            self._check_bounded(state, insn_idx, base, off, size,
                                limit=state.packet_range,
                                what="packet")
            self._check_store_leak(insn_idx, write, value_reg, "packet")
            result = RegState.unknown_scalar()
        elif base.type == RegType.PTR_TO_PACKET_END:
            self._reject(f"insn {insn_idx}: cannot access memory via "
                         "pkt_end pointer")
        elif base.type == RegType.PTR_TO_SOCKET:
            if write:
                self._reject(f"insn {insn_idx}: cannot write into sock")
            self._check_bounded(state, insn_idx, base, off, size,
                                limit=32, what="sock")
            result = RegState.unknown_scalar()
        elif base.type == RegType.PTR_TO_MEM:
            self._check_bounded(state, insn_idx, base, off, size,
                                limit=base.mem_size, what="mem")
            result = RegState.unknown_scalar()
        else:
            self._reject(f"insn {insn_idx}: invalid mem access "
                         f"'{base.type.value}'")

        if not write and dst_regno is not None:
            state.cur.regs[dst_regno] = result \
                if result is not None else RegState.unknown_scalar()

    def _check_store_leak(self, insn_idx: int, write: bool,
                          value_reg: Optional[RegState],
                          where: str) -> None:
        """Reject stores of pointers into externally visible memory."""
        if not write or value_reg is None or not value_reg.is_pointer:
            return
        if self.config.allow_ptr_leaks:
            return
        if self.config.bugs.verifier_ptr_leak:
            # [13,14,32] model: the check that should fire here is
            # missing — kernel addresses flow into user-readable maps
            self._log(f"insn {insn_idx}: (buggy) pointer store into "
                      f"{where} not rejected")
            return
        self._reject(f"insn {insn_idx}: R leaks addr into {where}")

    def _check_bounded(self, state: VerifierState, insn_idx: int,
                       base: RegState, off: int, size: int, *,
                       limit: int, what: str) -> None:
        """Range-check ``base.off + var ± [0, size)`` against [0, limit)."""
        lo = base.off + off + base.smin
        hi = base.off + off + base.umax + size
        if base.smin < 0 and lo < 0:
            self._reject(f"insn {insn_idx}: {what} access min value "
                         f"{lo} is negative")
        if lo < 0:
            self._reject(f"insn {insn_idx}: invalid {what} access: "
                         f"off {lo} < 0")
        if base.umax >= (1 << 32):
            self._reject(f"insn {insn_idx}: {what} unbounded variable "
                         "offset")
        if hi > limit:
            self._reject(f"insn {insn_idx}: invalid access to {what}: "
                         f"off {base.off + off} + size {size} "
                         f"(+var max {base.umax}) > {limit}")

    def _access_stack(self, state: VerifierState, insn_idx: int,
                      base: RegState, off: int, size: int, write: bool,
                      value_reg: Optional[RegState]) -> Optional[RegState]:
        if not base.var_off.is_const:
            self._reject(f"insn {insn_idx}: variable stack access "
                         "prohibited")
        total = base.off + u64_to_s64(base.var_off.value) + off
        stack_size = self.config.limits.stack_size
        if total >= 0 or total + size > 0 or total < -stack_size:
            self._reject(f"insn {insn_idx}: invalid stack access "
                         f"off={total} size={size}")
        if total % size != 0:
            self._reject(f"insn {insn_idx}: misaligned stack access "
                         f"off={total} size={size}")
        slot = (-total - 1) // 8
        if not 0 <= base.frameno < len(state.frames):
            self._reject(f"insn {insn_idx}: stack pointer into a dead "
                         "frame")
        frame = state.frames[base.frameno]
        if write:
            assert value_reg is not None
            if size == 8 and (-total) % 8 == 0:
                frame.stack[slot] = StackSlot(SlotKind.SPILL,
                                              value_reg.copy())
            else:
                if value_reg.is_pointer:
                    self._reject(f"insn {insn_idx}: partial spill of a "
                                 "pointer is prohibited")
                existing = frame.stack.get(slot)
                if existing is not None and \
                        existing.kind == SlotKind.SPILL and \
                        existing.reg is not None and \
                        existing.reg.is_pointer:
                    self._reject(f"insn {insn_idx}: corrupting spilled "
                                 "pointer on stack")
                frame.stack[slot] = StackSlot(SlotKind.MISC)
            return None
        # read
        entry = frame.stack.get(slot)
        if entry is None or entry.kind == SlotKind.INVALID:
            self._reject(f"insn {insn_idx}: invalid read from stack "
                         f"off {total} (uninitialized)")
        if entry.kind == SlotKind.SPILL and size == 8 \
                and (-total) % 8 == 0:
            assert entry.reg is not None
            return entry.reg.copy()
        if entry.kind == SlotKind.SPILL and entry.reg is not None \
                and entry.reg.is_pointer:
            self._reject(f"insn {insn_idx}: partial read of spilled "
                         "pointer")
        if entry.kind == SlotKind.ZERO:
            return RegState.const_scalar(0)
        return RegState.unknown_scalar()

    def _access_ctx(self, state: VerifierState, insn_idx: int,
                    base: RegState, off: int, size: int,
                    write: bool) -> Optional[RegState]:
        total = base.off + off
        fld = self.type_info.field_at(total, size)
        if fld is None:
            self._reject(f"insn {insn_idx}: invalid bpf_context access "
                         f"off={total} size={size}")
        if write:
            if not fld.writable:
                self._reject(f"insn {insn_idx}: write to read-only "
                             f"context field '{fld.name}'")
            return None
        if fld.kind == CtxFieldKind.PACKET:
            if size != fld.size:
                self._reject(f"insn {insn_idx}: partial read of packet "
                             "pointer field")
            return RegState.pointer(RegType.PTR_TO_PACKET)
        if fld.kind == CtxFieldKind.PACKET_END:
            if size != fld.size:
                self._reject(f"insn {insn_idx}: partial read of packet "
                             "pointer field")
            return RegState.pointer(RegType.PTR_TO_PACKET_END)
        return RegState.unknown_scalar()

    # -- conditional jumps -----------------------------------------------------

    def _do_cond_jmp(self, state: VerifierState, insn: Insn,
                     insn_idx: int):
        """Returns "taken", "fall", or (taken_state, fall_state)."""
        op = insn.opcode & isa.JMP_OP_MASK
        op_name = isa.JMP_OP_NAMES[op]
        is32 = insn.insn_class == isa.BPF_JMP32
        dst = self._check_reg_read(state, insn.dst, insn_idx)

        if is32:
            # 32-bit subregister comparison.  We do not carry separate
            # 32-bit bounds (a simplification over the kernel's
            # s32/u32 tracking), but when both operands provably fit
            # in the positive 32-bit range the 32- and 64-bit
            # semantics coincide and the ordinary refinement applies.
            S32_MAX = (1 << 31) - 1
            if dst.is_pointer:
                self._reject(f"insn {insn_idx}: jmp32 on a pointer")
            if insn.opcode & isa.BPF_X:
                src32 = self._check_reg_read(state, insn.src, insn_idx)
                if src32.is_pointer:
                    self._reject(f"insn {insn_idx}: jmp32 on a pointer")
                if dst.is_const and src32.is_const:
                    taken = self._concrete_jump(
                        op_name, dst.const_value & 0xFFFFFFFF,
                        src32.const_value & 0xFFFFFFFF, width=32)
                    return "taken" if taken else "fall"
                if dst.umax <= S32_MAX and src32.umax <= S32_MAX:
                    pass  # fall through to the 64-bit path below
                else:
                    return (state.copy(), state.copy())
            elif dst.is_const:
                taken = self._concrete_jump(
                    op_name, dst.const_value & 0xFFFFFFFF,
                    insn.imm & 0xFFFFFFFF, width=32)
                return "taken" if taken else "fall"
            elif dst.umax <= S32_MAX and 0 <= insn.imm <= S32_MAX:
                pass  # semantics coincide; use the 64-bit refinement
            else:
                return (state.copy(), state.copy())

        if insn.opcode & isa.BPF_X:
            src: RegState = self._check_reg_read(state, insn.src,
                                                 insn_idx)
        else:
            src = RegState.const_scalar(insn.imm)

        # null-check pattern on or-null pointers
        if dst.type in OR_NULL_TYPES and op in (isa.BPF_JEQ, isa.BPF_JNE) \
                and src.is_const and src.const_value == 0:
            taken_state = state.copy()
            fall_state = state.copy()
            if op == isa.BPF_JEQ:
                self._mark_ptr_or_null(taken_state, dst.id, null=True)
                self._mark_ptr_or_null(fall_state, dst.id, null=False)
            else:
                self._mark_ptr_or_null(taken_state, dst.id, null=False)
                self._mark_ptr_or_null(fall_state, dst.id, null=True)
            return (taken_state, fall_state)

        # packet bounds pattern
        pkt_result = self._maybe_packet_check(state, insn_idx, op, dst,
                                              src)
        if pkt_result is not None:
            return pkt_result

        if dst.is_pointer or src.is_pointer:
            if dst.type == src.type or src.is_const:
                # pointer comparisons fork without refinement
                return (state.copy(), state.copy())
            self._reject(f"insn {insn_idx}: comparison of incompatible "
                         f"pointer types {dst.type.value} vs "
                         f"{src.type.value}")

        decided = self._is_branch_taken(op_name, dst, src)
        if decided is not None:
            return "taken" if decided else "fall"

        taken_state = state.copy()
        fall_state = state.copy()
        self._refine(taken_state, insn, op_name, True)
        self._refine(fall_state, insn, op_name, False)
        return (taken_state, fall_state)

    def _mark_ptr_or_null(self, state: VerifierState, reg_id: int,
                          null: bool) -> None:
        """``mark_ptr_or_null_regs``: resolve every copy of one helper
        result to NULL or to the full pointer type."""
        released: Set[int] = set()
        for frame in state.frames:
            candidates = list(enumerate(frame.regs)) + \
                [(None, s.reg) for s in frame.stack.values()
                 if s.reg is not None]
            for regno, reg in candidates:
                if reg is None or reg.id != reg_id \
                        or reg.type not in OR_NULL_TYPES:
                    continue
                if null:
                    if reg.ref_obj_id:
                        released.add(reg.ref_obj_id)
                    reg.type = RegType.SCALAR
                    reg.set_const(0)
                    reg.id = 0
                    reg.ref_obj_id = 0
                    reg.map = None
                else:
                    reg.type = OR_NULL_TYPES[reg.type]
                    reg.id = 0
        for ref_id in released:
            state.release_ref(ref_id)

    def _maybe_packet_check(self, state: VerifierState, insn_idx: int,
                            op: int, dst: RegState, src: RegState):
        """``find_good_pkt_pointers``: learn packet range from
        pkt vs pkt_end comparisons."""
        combos = {
            (RegType.PTR_TO_PACKET, RegType.PTR_TO_PACKET_END): "direct",
            (RegType.PTR_TO_PACKET_END, RegType.PTR_TO_PACKET): "flipped",
        }
        orient = combos.get((dst.type, src.type))
        if orient is None:
            return None
        pkt = dst if orient == "direct" else src
        if not pkt.var_off.is_const:
            return (state.copy(), state.copy())
        proven = pkt.off + u64_to_s64(pkt.var_off.value)

        # which branch proves pkt(+off) <= pkt_end?
        good_on_taken: Optional[bool] = None
        if orient == "direct":
            if op == isa.BPF_JLE:        # pkt <= end: taken is good
                good_on_taken = True
            elif op == isa.BPF_JGT:      # pkt > end: fall is good
                good_on_taken = False
        else:
            if op == isa.BPF_JGE:        # end >= pkt: taken is good
                good_on_taken = True
            elif op == isa.BPF_JLT:      # end < pkt: fall is good
                good_on_taken = False
        if good_on_taken is None:
            return (state.copy(), state.copy())
        taken_state = state.copy()
        fall_state = state.copy()
        good = taken_state if good_on_taken else fall_state
        good.packet_range = max(good.packet_range, proven)
        return (taken_state, fall_state)

    def _concrete_jump(self, op_name: str, dst_val: int, src_val: int,
                       width: int = 64) -> bool:
        """Evaluate a comparison on two known values."""
        mask = (1 << width) - 1
        dst_u, src_u = dst_val & mask, src_val & mask
        sign = 1 << (width - 1)
        dst_s = dst_u - (1 << width) if dst_u & sign else dst_u
        src_s = src_u - (1 << width) if src_u & sign else src_u
        table = {
            "jeq": dst_u == src_u, "jne": dst_u != src_u,
            "jgt": dst_u > src_u, "jge": dst_u >= src_u,
            "jlt": dst_u < src_u, "jle": dst_u <= src_u,
            "jset": bool(dst_u & src_u),
            "jsgt": dst_s > src_s, "jsge": dst_s >= src_s,
            "jslt": dst_s < src_s, "jsle": dst_s <= src_s,
        }
        return table[op_name]

    def _is_branch_taken(self, op_name: str, dst: RegState,
                         src: RegState) -> Optional[bool]:
        """Decide the branch statically when both ranges force it."""
        if not (dst.type == RegType.SCALAR and src.type == RegType.SCALAR):
            return None
        checks = {
            "jeq": (lambda: dst.is_const and src.is_const
                    and dst.const_value == src.const_value,
                    lambda: dst.umin > src.umax or dst.umax < src.umin),
            "jne": (lambda: dst.umin > src.umax or dst.umax < src.umin,
                    lambda: dst.is_const and src.is_const
                    and dst.const_value == src.const_value),
            "jgt": (lambda: dst.umin > src.umax,
                    lambda: dst.umax <= src.umin),
            "jge": (lambda: dst.umin >= src.umax,
                    lambda: dst.umax < src.umin),
            "jlt": (lambda: dst.umax < src.umin,
                    lambda: dst.umin >= src.umax),
            "jle": (lambda: dst.umax <= src.umin,
                    lambda: dst.umin > src.umax),
            "jsgt": (lambda: dst.smin > src.smax,
                     lambda: dst.smax <= src.smin),
            "jsge": (lambda: dst.smin >= src.smax,
                     lambda: dst.smax < src.smin),
            "jslt": (lambda: dst.smax < src.smin,
                     lambda: dst.smin >= src.smax),
            "jsle": (lambda: dst.smax <= src.smin,
                     lambda: dst.smin > src.smax),
        }
        pair = checks.get(op_name)
        if pair is None:
            return None
        always, never = pair
        if always():
            return True
        if never():
            return False
        return None

    def _refine(self, state: VerifierState, insn: Insn, op_name: str,
                taken: bool) -> None:
        """``reg_set_min_max``: tighten ranges on both branch sides."""
        dst = state.cur.regs[insn.dst]
        if insn.opcode & isa.BPF_X:
            src = state.cur.regs[insn.src]
        else:
            src = RegState.const_scalar(insn.imm)
        if dst.type != RegType.SCALAR or src.type != RegType.SCALAR:
            return

        if op_name == "jset" and src.is_const:
            if not taken:
                # dst & imm == 0: every tested bit is known zero
                keep = ~src.const_value & U64_MAX
                dst.var_off = dst.var_off.and_(Tnum.const(keep))
                dst.settle_bounds()
            return

        # normalize to an effective relation that holds on this side
        effective = {
            ("jeq", True): "eq", ("jeq", False): "ne",
            ("jne", True): "ne", ("jne", False): "eq",
            ("jgt", True): "gt", ("jgt", False): "le",
            ("jge", True): "ge", ("jge", False): "lt",
            ("jlt", True): "lt", ("jlt", False): "ge",
            ("jle", True): "le", ("jle", False): "gt",
            ("jsgt", True): "sgt", ("jsgt", False): "sle",
            ("jsge", True): "sge", ("jsge", False): "slt",
            ("jslt", True): "slt", ("jslt", False): "sge",
            ("jsle", True): "sle", ("jsle", False): "sgt",
        }.get((op_name, taken))
        if effective is None:
            return

        if effective == "eq":
            var_off = dst.var_off.intersect(src.var_off)
            for reg, other in ((dst, src), (src, dst)):
                reg.var_off = var_off
                reg.umin = max(reg.umin, other.umin)
                reg.umax = min(reg.umax, other.umax)
                reg.smin = max(reg.smin, other.smin)
                reg.smax = min(reg.smax, other.smax)
                reg.settle_bounds()
            return
        if effective == "ne":
            # only useful against constants at range edges
            if src.is_const:
                val = src.const_value
                if dst.umin == val and dst.umin < U64_MAX:
                    dst.umin += 1
                if dst.umax == val and dst.umax > 0:
                    dst.umax -= 1
                dst.settle_bounds()
            return
        unsigned = effective in ("gt", "ge", "lt", "le")
        strict = effective in ("gt", "lt", "sgt", "slt")
        dst_greater = effective in ("gt", "ge", "sgt", "sge")
        if unsigned:
            if dst_greater:
                dst.umin = max(dst.umin, src.umin + (1 if strict else 0))
                src.umax = min(src.umax,
                               dst.umax - (1 if strict else 0))
            else:
                dst.umax = min(dst.umax, src.umax - (1 if strict else 0))
                src.umin = max(src.umin,
                               dst.umin + (1 if strict else 0))
        else:
            if dst_greater:
                dst.smin = max(dst.smin, src.smin + (1 if strict else 0))
                src.smax = min(src.smax, dst.smax - (1 if strict else 0))
            else:
                dst.smax = min(dst.smax, src.smax - (1 if strict else 0))
                src.smin = max(src.smin, dst.smin + (1 if strict else 0))
        dst.settle_bounds()
        src.settle_bounds()

    # -- calls -------------------------------------------------------------------

    _pop_return_target: int = -1

    def _do_call(self, state: VerifierState, insn: Insn,
                 insn_idx: int) -> int:
        if insn.src == isa.BPF_PSEUDO_CALL:
            return self._do_pseudo_call(state, insn, insn_idx)
        return self._do_helper_call(state, insn, insn_idx)

    def _do_pseudo_call(self, state: VerifierState, insn: Insn,
                        insn_idx: int) -> int:
        """BPF-to-BPF call [45]: push a fresh frame."""
        target = insn_idx + insn.imm + 1
        if not 0 <= target < len(self.insns):
            self._reject(f"insn {insn_idx}: call target {target} "
                         "out of range")
        if len(state.frames) >= self.config.limits.max_call_frames:
            self._reject_limit(
                f"insn {insn_idx}: the call stack of "
                f"{len(state.frames)} frames is too deep")
        frame = FuncFrame.fresh(frameno=len(state.frames),
                                callsite=insn_idx)
        for regno in range(1, 6):
            frame.regs[regno] = state.cur.regs[regno].copy()
        state.frames.append(frame)
        return target

    def _do_helper_call(self, state: VerifierState, insn: Insn,
                        insn_idx: int) -> int:
        spec = self.registry.get(insn.imm)
        if spec is None or not spec.is_implemented:
            self._reject(f"insn {insn_idx}: invalid func unknown#"
                         f"{insn.imm}")
        proto = spec.proto
        if state.active_spin_lock is not None \
                and proto.forbidden_under_spinlock:
            self._reject(f"insn {insn_idx}: function calls are not "
                         "allowed while holding a lock")

        arg_map: Dict[int, RegState] = {}
        const_map_arg: Optional[object] = None
        const_size: Optional[int] = None
        callback_target: Optional[int] = None
        released_ref = False

        for position, arg_type in enumerate(proto.args):
            regno = position + 1
            reg = state.cur.regs[regno]
            arg_map[position] = reg
            if arg_type == ArgType.ANYTHING:
                self._check_reg_read(state, regno, insn_idx)
                continue
            if arg_type == ArgType.CONST_MAP_PTR:
                if reg.type != RegType.CONST_PTR_TO_MAP:
                    self._reject(self._arg_err(insn_idx, regno, spec,
                                               "expected map pointer"))
                const_map_arg = reg.map
                continue
            if arg_type in (ArgType.PTR_TO_MAP_KEY,
                            ArgType.PTR_TO_MAP_VALUE):
                if const_map_arg is None:
                    self._reject(self._arg_err(insn_idx, regno, spec,
                                               "map argument missing"))
                need = const_map_arg.key_size \
                    if arg_type == ArgType.PTR_TO_MAP_KEY \
                    else const_map_arg.value_size
                self._check_helper_mem(state, insn_idx, regno, reg, need,
                                       write=False)
                continue
            if arg_type in (ArgType.PTR_TO_MEM, ArgType.PTR_TO_UNINIT_MEM):
                size_reg = state.cur.regs[regno + 1]
                mem_size = self._resolve_const_size(insn_idx, regno + 1,
                                                    size_reg)
                self._check_helper_mem(
                    state, insn_idx, regno, reg, mem_size,
                    write=(arg_type == ArgType.PTR_TO_UNINIT_MEM))
                continue
            if arg_type in (ArgType.CONST_SIZE,
                            ArgType.CONST_SIZE_OR_ZERO):
                const_size = self._resolve_const_size(insn_idx, regno,
                                                      reg)
                continue
            if arg_type == ArgType.PTR_TO_CTX:
                if reg.type != RegType.PTR_TO_CTX:
                    self._reject(self._arg_err(insn_idx, regno, spec,
                                               "expected ctx pointer"))
                continue
            if arg_type == ArgType.PTR_TO_SOCKET:
                if reg.type != RegType.PTR_TO_SOCKET:
                    self._reject(self._arg_err(insn_idx, regno, spec,
                                               "expected socket"))
                if proto.releases:
                    if not reg.ref_obj_id \
                            or not state.release_ref(reg.ref_obj_id):
                        self._reject(
                            f"insn {insn_idx}: release of unreferenced "
                            "socket")
                    self._invalidate_ref(state, reg.ref_obj_id)
                    released_ref = True
                continue
            if arg_type == ArgType.PTR_TO_ALLOC_MEM:
                if reg.type != RegType.PTR_TO_MEM or not reg.ref_obj_id:
                    self._reject(self._arg_err(
                        insn_idx, regno, spec,
                        "expected referenced memory"))
                if proto.releases:
                    if not state.release_ref(reg.ref_obj_id):
                        self._reject(
                            f"insn {insn_idx}: release of unreferenced "
                            "memory")
                    self._invalidate_ref(state, reg.ref_obj_id)
                    released_ref = True
                continue
            if arg_type == ArgType.PTR_TO_FUNC:
                if reg.type != RegType.PTR_TO_FUNC:
                    self._reject(self._arg_err(insn_idx, regno, spec,
                                               "expected callback"))
                callback_target = reg.off
                continue
            if arg_type == ArgType.PTR_TO_STACK_OR_NULL:
                is_null = reg.type == RegType.SCALAR and reg.is_const \
                    and reg.const_value == 0
                if not is_null and reg.type != RegType.PTR_TO_STACK:
                    self._reject(self._arg_err(
                        insn_idx, regno, spec,
                        "expected stack pointer or NULL"))
                continue
            if arg_type == ArgType.PTR_TO_SPIN_LOCK:
                self._check_spin_lock_arg(state, insn_idx, regno, reg,
                                          spec)
                continue
            if arg_type == ArgType.PTR_TO_LONG:
                self._check_helper_mem(state, insn_idx, regno, reg, 8,
                                       write=True)
                continue
            self._reject(f"insn {insn_idx}: unhandled arg type "
                         f"{arg_type}")

        # the [54] verifier-UAF model: inlining a second constant-count
        # bpf_loop corrupts verifier state
        if spec.name == "bpf_loop":
            nr_reg = state.cur.regs[1]
            if nr_reg.type == RegType.SCALAR and nr_reg.is_const \
                    and nr_reg.const_value <= 16:
                self._loop_inline_count += 1
                if self._loop_inline_count >= 2 \
                        and self.config.bugs.verifier_loop_inline_uaf:
                    raise VerifierInternalFault(
                        "use-after-free in inline_bpf_loop while "
                        f"inlining call at insn {insn_idx}")

        # clobber caller-saved registers
        for regno in range(6):
            state.cur.regs[regno] = RegState.not_init()

        # set R0 per the return contract
        ret = proto.ret
        r0 = RegState.not_init()
        if ret.value in ("integer", "kernel_addr_scalar"):
            r0 = RegState.unknown_scalar()
        elif ret.value == "void":
            r0 = RegState.not_init()
        elif ret.value == "map_value_or_null":
            if const_map_arg is None:
                self._reject(f"insn {insn_idx}: helper returns map "
                             "value but no map argument given")
            r0 = RegState.pointer(RegType.PTR_TO_MAP_VALUE_OR_NULL)
            r0.map = const_map_arg
            r0.id = state.new_id()
        elif ret.value == "socket_or_null":
            r0 = RegState.pointer(RegType.PTR_TO_SOCKET_OR_NULL)
            r0.id = state.new_id()
            if proto.acquires:
                r0.ref_obj_id = state.acquire_ref(proto.acquires,
                                                  insn_idx)
        elif ret.value == "mem_or_null":
            r0 = RegState.pointer(RegType.PTR_TO_MEM_OR_NULL)
            r0.mem_size = const_size or 0
            r0.id = state.new_id()
            if proto.acquires:
                r0.ref_obj_id = state.acquire_ref(proto.acquires,
                                                  insn_idx)
        state.cur.regs[0] = r0

        # bpf_loop: verify the callback body once in its own frame
        if spec.name == "bpf_loop" and callback_target is not None:
            if len(state.frames) >= self.config.limits.max_call_frames:
                self._reject_limit(
                    f"insn {insn_idx}: callback nesting too deep")
            frame = FuncFrame.fresh(frameno=len(state.frames),
                                    callsite=insn_idx)
            frame.in_callback = True
            frame.regs[1] = RegState.unknown_scalar()  # index
            frame.regs[2] = arg_map[2].copy()          # callback ctx
            state.frames.append(frame)
            return callback_target

        del released_ref
        return insn_idx + 1

    def _arg_err(self, insn_idx: int, regno: int, spec: HelperSpec,
                 why: str) -> str:
        return (f"insn {insn_idx}: R{regno} type invalid for "
                f"{spec.name}: {why}")

    def _resolve_const_size(self, insn_idx: int, regno: int,
                            reg: RegState) -> int:
        """A size argument must have provable, reasonable bounds."""
        if reg.type != RegType.SCALAR:
            self._reject(f"insn {insn_idx}: R{regno} size argument "
                         "must be a scalar")
        if reg.is_const:
            value = reg.const_value
            if value > 65536:
                self._reject(f"insn {insn_idx}: R{regno} size {value} "
                             "too large")
            return value
        if reg.umax > 65536:
            self._reject(f"insn {insn_idx}: R{regno} unbounded memory "
                         "access: size umax={}".format(reg.umax))
        return reg.umax

    def _check_helper_mem(self, state: VerifierState, insn_idx: int,
                          regno: int, reg: RegState, size: int, *,
                          write: bool) -> None:
        """A helper mem argument must point to ``size`` accessible
        bytes (stack, map value, or proven packet)."""
        if size == 0:
            return
        if reg.type == RegType.PTR_TO_STACK:
            if not reg.var_off.is_const:
                self._reject(f"insn {insn_idx}: R{regno} variable "
                             "stack pointer to helper")
            total = reg.off + u64_to_s64(reg.var_off.value)
            if total >= 0 or total + size > 0 \
                    or total < -self.config.limits.stack_size:
                self._reject(f"insn {insn_idx}: R{regno} invalid stack "
                             f"range off={total} size={size}")
            first_slot = (-total - 1) // 8
            last_slot = (-(total + size - 1) - 1) // 8
            if not 0 <= reg.frameno < len(state.frames):
                self._reject(f"insn {insn_idx}: R{regno} stack pointer "
                             "into a dead frame")
            frame = state.frames[reg.frameno]
            for slot in range(last_slot, first_slot + 1):
                entry = frame.stack.get(slot)
                initialized = entry is not None \
                    and entry.kind != SlotKind.INVALID
                if write:
                    frame.stack[slot] = StackSlot(SlotKind.MISC)
                elif not initialized:
                    self._reject(
                        f"insn {insn_idx}: R{regno} invalid "
                        f"indirect read from stack (slot {slot} "
                        "uninitialized)")
            return
        if reg.type == RegType.PTR_TO_MAP_VALUE:
            self._check_bounded(state, insn_idx, reg, 0, size,
                                limit=reg.map.value_size,
                                what="map value")
            return
        if reg.type == RegType.PTR_TO_PACKET:
            self._check_bounded(state, insn_idx, reg, 0, size,
                                limit=state.packet_range, what="packet")
            return
        if reg.type == RegType.PTR_TO_MEM:
            self._check_bounded(state, insn_idx, reg, 0, size,
                                limit=reg.mem_size, what="mem")
            return
        self._reject(f"insn {insn_idx}: R{regno} type "
                     f"{reg.type.value} expected memory pointer")

    def _check_spin_lock_arg(self, state: VerifierState, insn_idx: int,
                             regno: int, reg: RegState,
                             spec: HelperSpec) -> None:
        """The [48] discipline: one lock, matched unlock, before exit."""
        if reg.type != RegType.PTR_TO_MAP_VALUE or reg.map is None \
                or getattr(reg.map, "spin_lock", None) is None:
            self._reject(self._arg_err(
                insn_idx, regno, spec,
                "expected map value containing a bpf_spin_lock"))
        if spec.name == "bpf_spin_lock":
            if state.active_spin_lock is not None:
                self._reject(f"insn {insn_idx}: only one bpf_spin_lock "
                             "may be held at a time")
            state.active_spin_lock = reg.map.map_fd
        else:
            if state.active_spin_lock != reg.map.map_fd:
                self._reject(f"insn {insn_idx}: bpf_spin_unlock of a "
                             "lock that is not held")
            state.active_spin_lock = None

    def _invalidate_ref(self, state: VerifierState, ref_id: int) -> None:
        """After a release, every copy of the pointer is dead."""
        for frame in state.frames:
            for reg in frame.regs:
                if reg.ref_obj_id == ref_id:
                    reg.mark_unknown()
            for slot_entry in frame.stack.values():
                if slot_entry.reg is not None \
                        and slot_entry.reg.ref_obj_id == ref_id:
                    slot_entry.reg.mark_unknown()

    # -- exit ----------------------------------------------------------------------

    def _do_exit(self, state: VerifierState, insn_idx: int) -> bool:
        """Returns True when the whole program exits; False after
        popping a subprog/callback frame (continue at stored target)."""
        r0 = state.cur.regs[0]
        if r0.type == RegType.NOT_INIT:
            self._reject(f"insn {insn_idx}: R0 !read_ok at exit")

        if len(state.frames) > 1:
            frame = state.frames.pop()
            if frame.in_callback:
                if r0.type != RegType.SCALAR:
                    self._reject(f"insn {insn_idx}: callback must "
                                 "return a scalar")
                # resume after the bpf_loop call; r0 is the helper's
                state.cur.regs[0] = RegState.unknown_scalar()
            else:
                returned = r0.copy()
                if returned.is_pointer \
                        and not self.config.allow_ptr_leaks:
                    self._reject(f"insn {insn_idx}: subprog returns a "
                                 "pointer")
                state.cur.regs[0] = returned
                for regno in range(1, 6):
                    state.cur.regs[regno] = RegState.not_init()
            self._pop_return_target = frame.callsite + 1
            return False

        # main-program exit: the global obligations
        if r0.is_pointer:
            self._reject(f"insn {insn_idx}: R0 must be a scalar at "
                         "program exit (pointer leak)")
        if state.active_spin_lock is not None:
            self._reject(f"insn {insn_idx}: bpf_spin_lock is still "
                         "held at program exit")
        if state.acquired_refs:
            ref = state.acquired_refs[0]
            self._reject(f"insn {insn_idx}: unreleased reference "
                         f"{ref.kind} acquired at insn "
                         f"{ref.acquired_at}")
        ret_range = self.type_info.ret_range
        if ret_range is not None:
            lo, hi = ret_range
            if r0.umin > hi or r0.umax < lo or r0.umax > hi:
                self._reject(
                    f"insn {insn_idx}: program return value "
                    f"[{r0.umin}, {r0.umax}] outside allowed "
                    f"[{lo}, {hi}]")
        return True
