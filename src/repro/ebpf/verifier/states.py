"""Whole-program verifier state and explored-state pruning.

A :class:`VerifierState` is the full abstract machine state at one
program point: the frame stack (registers + stack slots per frame),
the set of acquired references, the active spin lock, and the proven
packet range.  :class:`ExploredStates` implements the kernel's
``is_state_visited`` pruning: a new state at an instruction already
covered by a previously explored, safe state need not be walked again
— without this, verification time explodes with branch count (one of
the ablations in the verification-cost benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ebpf.verifier.regstate import FuncFrame


@dataclass
class AcquiredRef:
    """One helper-acquired reference awaiting release."""

    ref_id: int
    kind: str          # e.g. "socket", "ringbuf_mem"
    acquired_at: int   # instruction index, for error messages


class VerifierState:
    """Complete abstract state of the program at one point."""

    def __init__(self) -> None:
        self.frames: List[FuncFrame] = [FuncFrame.fresh()]
        self.acquired_refs: List[AcquiredRef] = []
        #: map fd whose embedded bpf_spin_lock is held, else None
        self.active_spin_lock: Optional[int] = None
        #: bytes of packet proven accessible by bounds checks
        self.packet_range: int = 0
        #: id allocator for or-null identities and references
        self.next_id: int = 1

    @property
    def cur(self) -> FuncFrame:
        """The innermost (current) frame."""
        return self.frames[-1]

    def new_id(self) -> int:
        """Allocate a fresh identity."""
        value = self.next_id
        self.next_id += 1
        return value

    def acquire_ref(self, kind: str, insn_idx: int) -> int:
        """Record a newly acquired reference; returns its id."""
        ref_id = self.new_id()
        self.acquired_refs.append(AcquiredRef(ref_id, kind, insn_idx))
        return ref_id

    def release_ref(self, ref_id: int) -> bool:
        """Drop a reference; False if it was not held."""
        for index, ref in enumerate(self.acquired_refs):
            if ref.ref_id == ref_id:
                del self.acquired_refs[index]
                return True
        return False

    def copy(self) -> "VerifierState":
        """Fork the state for branch exploration."""
        state = VerifierState.__new__(VerifierState)
        state.frames = [f.copy() for f in self.frames]
        state.acquired_refs = [AcquiredRef(r.ref_id, r.kind, r.acquired_at)
                               for r in self.acquired_refs]
        state.active_spin_lock = self.active_spin_lock
        state.packet_range = self.packet_range
        state.next_id = self.next_id
        return state

    def state_key(self) -> tuple:
        """Hashable exact-equality key (infinite-loop detection)."""
        return (tuple(f.state_key() for f in self.frames),
                tuple((r.ref_id, r.kind) for r in self.acquired_refs),
                self.active_spin_lock,
                self.packet_range)

    def subsumes(self, other: "VerifierState") -> bool:
        """``states_equal`` with range inclusion: does exploring from
        ``self`` prove everything ``other`` could do safe?"""
        if len(self.frames) != len(other.frames):
            return False
        if self.active_spin_lock != other.active_spin_lock:
            return False
        if self.packet_range > other.packet_range:
            # other has proven *less* packet accessible; covered only
            # if self assumed no more than other
            return False
        if len(self.acquired_refs) != len(other.acquired_refs):
            return False
        for mine, theirs in zip(self.acquired_refs, other.acquired_refs):
            if mine.kind != theirs.kind:
                return False
        for my_frame, their_frame in zip(self.frames, other.frames):
            if my_frame.callsite != their_frame.callsite:
                return False
            if my_frame.in_callback != their_frame.in_callback:
                return False
            for my_reg, their_reg in zip(my_frame.regs, their_frame.regs):
                if my_reg.type.value == "not_init":
                    continue  # we didn't rely on it; anything is fine
                if not my_reg.subsumes(their_reg):
                    return False
            # every stack slot we relied on must be covered
            for slot_index, my_slot in my_frame.stack.items():
                their_slot = their_frame.stack.get(slot_index)
                if my_slot.kind.value == "invalid":
                    continue
                if their_slot is None:
                    return False
                if my_slot.kind != their_slot.kind:
                    return False
                if my_slot.reg is not None:
                    if their_slot.reg is None \
                            or not my_slot.reg.subsumes(their_slot.reg):
                        return False
        return True


class ExploredStates:
    """Explored-state lists per instruction, with pruning stats."""

    def __init__(self, enabled: bool = True,
                 max_states_per_insn: int = 64) -> None:
        self.enabled = enabled
        self.max_states_per_insn = max_states_per_insn
        self._by_insn: Dict[int, List[VerifierState]] = {}
        self.prune_hits = 0
        self.states_stored = 0

    def is_covered(self, insn_idx: int, state: VerifierState) -> bool:
        """True if an already-explored state covers ``state``."""
        if not self.enabled:
            return False
        for seen in self._by_insn.get(insn_idx, ()):
            if seen.subsumes(state):
                self.prune_hits += 1
                return True
        return False

    def remember(self, insn_idx: int, state: VerifierState) -> None:
        """Record a state about to be explored from ``insn_idx``."""
        if not self.enabled:
            return
        bucket = self._by_insn.setdefault(insn_idx, [])
        if len(bucket) < self.max_states_per_insn:
            bucket.append(state.copy())
            self.states_stored += 1
