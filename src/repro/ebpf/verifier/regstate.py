"""Verifier register, stack and frame state.

Mirrors ``struct bpf_reg_state``: each register has a type from the
pointer lattice, a fixed offset, a tnum for the variable part, and
64-bit signed/unsigned range bounds.  The bounds-propagation helpers
(:meth:`RegState.update_bounds`, :meth:`RegState.deduce_bounds`,
:meth:`RegState.bound_offset`) are ports of the kernel's
``__update_reg_bounds`` / ``__reg_deduce_bounds`` /
``__reg_bound_offset``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ebpf.verifier.tnum import Tnum, U64

S64_MIN = -(1 << 63)
S64_MAX = (1 << 63) - 1
U64_MAX = U64


def u64_to_s64(x: int) -> int:
    """Reinterpret an unsigned 64-bit value as signed."""
    return x - (1 << 64) if x & (1 << 63) else x


def s64_to_u64(x: int) -> int:
    """Reinterpret a signed 64-bit value as unsigned."""
    return x & U64


class RegType(enum.Enum):
    """The pointer-type lattice (subset of ``enum bpf_reg_type``)."""

    NOT_INIT = "not_init"
    SCALAR = "scalar"
    PTR_TO_CTX = "ctx"
    PTR_TO_STACK = "fp"
    PTR_TO_MAP_VALUE = "map_value"
    PTR_TO_MAP_VALUE_OR_NULL = "map_value_or_null"
    CONST_PTR_TO_MAP = "map_ptr"
    PTR_TO_PACKET = "pkt"
    PTR_TO_PACKET_END = "pkt_end"
    PTR_TO_SOCKET = "sock"
    PTR_TO_SOCKET_OR_NULL = "sock_or_null"
    PTR_TO_MEM = "mem"
    PTR_TO_MEM_OR_NULL = "mem_or_null"
    PTR_TO_FUNC = "func"


#: types that may be NULL and must be null-checked before use
OR_NULL_TYPES = {
    RegType.PTR_TO_MAP_VALUE_OR_NULL: RegType.PTR_TO_MAP_VALUE,
    RegType.PTR_TO_SOCKET_OR_NULL: RegType.PTR_TO_SOCKET,
    RegType.PTR_TO_MEM_OR_NULL: RegType.PTR_TO_MEM,
}

#: pointer types an extension may do (bounded) arithmetic on
ARITH_OK_TYPES = {
    RegType.PTR_TO_STACK,
    RegType.PTR_TO_MAP_VALUE,
    RegType.PTR_TO_PACKET,
}


@dataclass
class RegState:
    """Abstract state of one register."""

    type: RegType = RegType.NOT_INIT
    #: fixed (compile-time known) offset from the pointer base
    off: int = 0
    #: variable part of the value / offset
    var_off: Tnum = field(default_factory=Tnum.unknown)
    smin: int = S64_MIN
    smax: int = S64_MAX
    umin: int = 0
    umax: int = U64_MAX
    #: identity for or-null tracking (same id = same helper result)
    id: int = 0
    #: non-zero when this register holds an acquired reference
    ref_obj_id: int = 0
    #: the map this pointer derives from (map_value / map_ptr types)
    map: Optional[object] = None
    #: size of the pointed-to memory for PTR_TO_MEM
    mem_size: int = 0
    #: which call frame a PTR_TO_STACK points into
    frameno: int = 0

    # -- constructors ----------------------------------------------------------

    @classmethod
    def not_init(cls) -> "RegState":
        """An uninitialized register."""
        return cls()

    @classmethod
    def unknown_scalar(cls) -> "RegState":
        """A scalar with no known bits or bounds."""
        return cls(type=RegType.SCALAR)

    @classmethod
    def const_scalar(cls, value: int) -> "RegState":
        """A fully known scalar."""
        reg = cls(type=RegType.SCALAR)
        reg.set_const(value)
        return reg

    @classmethod
    def pointer(cls, reg_type: RegType, off: int = 0, **kwargs) -> "RegState":
        """A pointer with a known offset and no variable part."""
        reg = cls(type=reg_type, off=off, var_off=Tnum.const(0),
                  smin=0, smax=0, umin=0, umax=0, **kwargs)
        return reg

    # -- mutation helpers --------------------------------------------------------

    def set_const(self, value: int) -> None:
        """Pin this scalar to one concrete value."""
        uval = value & U64
        self.var_off = Tnum.const(uval)
        self.umin = self.umax = uval
        self.smin = self.smax = u64_to_s64(uval)

    def mark_unknown(self) -> None:
        """Forget everything; the register is an unknown scalar."""
        self.type = RegType.SCALAR
        self.off = 0
        self.var_off = Tnum.unknown()
        self.smin, self.smax = S64_MIN, S64_MAX
        self.umin, self.umax = 0, U64_MAX
        self.id = 0
        self.ref_obj_id = 0
        self.map = None
        self.mem_size = 0

    # -- predicates ----------------------------------------------------------------

    @property
    def is_pointer(self) -> bool:
        """True for every non-scalar, initialized type."""
        return self.type not in (RegType.NOT_INIT, RegType.SCALAR)

    @property
    def is_const(self) -> bool:
        """True when a scalar has exactly one possible value."""
        return self.type == RegType.SCALAR and self.var_off.is_const

    @property
    def const_value(self) -> int:
        """The single value of a constant scalar (unsigned view)."""
        if not self.var_off.is_const:
            raise ValueError("register is not a known constant")
        return self.var_off.value

    # -- bounds propagation (ports of the kernel helpers) ------------------------

    def update_bounds(self) -> None:
        """``__update_reg_bounds``: tighten ranges from var_off."""
        sign_bit = 1 << 63
        self.smin = max(self.smin, u64_to_s64(
            self.var_off.value | (self.var_off.mask & sign_bit)))
        self.smax = min(self.smax, u64_to_s64(
            self.var_off.value | (self.var_off.mask & (U64 >> 1))))
        self.umin = max(self.umin, self.var_off.value)
        self.umax = min(self.umax, self.var_off.value | self.var_off.mask)

    def deduce_bounds(self) -> None:
        """``__reg64_deduce_bounds``: cross-derive signed/unsigned.

        If the signed range cannot cross the sign boundary, signed and
        unsigned orders agree and each tightens the other; otherwise
        only one side of the unsigned range is trustworthy.
        """
        if self.smin >= 0 or self.smax < 0:
            lo = max(s64_to_u64(self.smin), self.umin)
            hi = min(s64_to_u64(self.smax), self.umax)
            self.smin, self.umin = u64_to_s64(lo), lo
            self.smax, self.umax = u64_to_s64(hi), hi
            return
        if u64_to_s64(self.umax) >= 0:
            # whole unsigned range is non-negative as signed
            self.smin = u64_to_s64(self.umin)
            hi = min(s64_to_u64(self.smax), self.umax)
            self.smax, self.umax = u64_to_s64(hi), hi
        elif u64_to_s64(self.umin) < 0:
            # whole unsigned range is negative as signed
            lo = max(s64_to_u64(self.smin), self.umin)
            self.smin, self.umin = u64_to_s64(lo), lo
            self.smax = u64_to_s64(self.umax)

    def bound_offset(self) -> None:
        """``__reg_bound_offset``: feed ranges back into var_off."""
        self.var_off = self.var_off.intersect(
            Tnum.range(self.umin, self.umax))

    def settle_bounds(self) -> None:
        """Run the full propagation pipeline after an update."""
        self.update_bounds()
        self.deduce_bounds()
        self.bound_offset()

    # -- copying / comparison --------------------------------------------------------

    def copy(self) -> "RegState":
        """Deep-enough copy (tnums are immutable; map is shared)."""
        return RegState(
            type=self.type, off=self.off, var_off=self.var_off,
            smin=self.smin, smax=self.smax, umin=self.umin, umax=self.umax,
            id=self.id, ref_obj_id=self.ref_obj_id, map=self.map,
            mem_size=self.mem_size, frameno=self.frameno)

    def subsumes(self, other: "RegState") -> bool:
        """``regsafe``: is every behaviour of ``other`` covered by
        ``self``?  Used for explored-state pruning."""
        if self.type != other.type:
            # a known-safe unknown scalar covers any scalar
            return False
        if self.type == RegType.SCALAR:
            return (self.smin <= other.smin and self.smax >= other.smax
                    and self.umin <= other.umin and self.umax >= other.umax
                    and self.var_off.contains(other.var_off))
        return (self.off == other.off
                and self.var_off == other.var_off
                and self.map is other.map
                and self.mem_size == other.mem_size
                and self.ref_obj_id == other.ref_obj_id
                and self.frameno == other.frameno)

    def state_key(self) -> tuple:
        """Hashable exact-state key (infinite-loop detection)."""
        return (self.type, self.off, self.var_off.value, self.var_off.mask,
                self.smin, self.smax, self.umin, self.umax,
                self.id, self.ref_obj_id, id(self.map), self.mem_size,
                self.frameno)

    def __str__(self) -> str:
        if self.type == RegType.NOT_INIT:
            return "?"
        if self.type == RegType.SCALAR:
            if self.is_const:
                return f"{u64_to_s64(self.const_value)}"
            return (f"scalar(umin={self.umin},umax={self.umax},"
                    f"smin={self.smin},smax={self.smax})")
        extra = f"+{self.off}" if self.off else ""
        return f"{self.type.value}{extra}"


class SlotKind(enum.Enum):
    """What one 8-byte stack slot holds."""

    INVALID = "invalid"
    SPILL = "spill"
    MISC = "misc"
    ZERO = "zero"


@dataclass
class StackSlot:
    """Verifier view of one 8-byte stack slot."""

    kind: SlotKind = SlotKind.INVALID
    reg: Optional[RegState] = None

    def copy(self) -> "StackSlot":
        """Deep copy for state forking."""
        return StackSlot(self.kind,
                         self.reg.copy() if self.reg else None)

    def state_key(self) -> tuple:
        """Hashable exact-state key."""
        return (self.kind,
                self.reg.state_key() if self.reg else None)


@dataclass
class FuncFrame:
    """One call frame: registers plus stack."""

    regs: List[RegState]
    #: slot index (0 = [-8, 0) below fp) -> contents
    stack: Dict[int, StackSlot]
    #: index of this frame (0 = main program)
    frameno: int = 0
    #: instruction to return to in the caller
    callsite: int = -1
    #: set while verifying a helper-invoked callback (bpf_loop)
    in_callback: bool = False

    @classmethod
    def fresh(cls, frameno: int = 0, callsite: int = -1) -> "FuncFrame":
        """A frame with fp set up and everything else uninitialized."""
        regs = [RegState.not_init() for __ in range(11)]
        regs[10] = RegState.pointer(RegType.PTR_TO_STACK, off=0,
                                    frameno=frameno)
        return cls(regs=regs, stack={}, frameno=frameno, callsite=callsite)

    def copy(self) -> "FuncFrame":
        """Deep copy for state forking."""
        frame = FuncFrame(
            regs=[r.copy() for r in self.regs],
            stack={k: v.copy() for k, v in self.stack.items()},
            frameno=self.frameno, callsite=self.callsite,
            in_callback=self.in_callback)
        return frame

    def state_key(self) -> tuple:
        """Hashable exact-state key over regs and stack."""
        return (tuple(r.state_key() for r in self.regs),
                tuple(sorted((k, v.state_key())
                             for k, v in self.stack.items())),
                self.callsite, self.in_callback)
