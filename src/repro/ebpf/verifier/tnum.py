"""Tristate numbers: the verifier's bit-level abstract domain.

A tnum ``(value, mask)`` represents the set of 64-bit integers that
agree with ``value`` on every bit where ``mask`` is 0; bits where
``mask`` is 1 are unknown.  This is the abstraction the Linux verifier
uses for tracking partial knowledge of register contents
(``kernel/bpf/tnum.c``), proven sound and optimal for add/sub/mul by
Vishwanathan et al. [50].

The arithmetic below is a line-for-line port of the kernel's
implementation, with Python integers wrapped to 64 bits.
"""

from __future__ import annotations

from dataclasses import dataclass

U64 = (1 << 64) - 1


def _wrap(x: int) -> int:
    return x & U64


@dataclass(frozen=True)
class Tnum:
    """A tristate number.  Immutable; operations return new tnums."""

    value: int
    mask: int

    def __post_init__(self) -> None:
        if self.value & self.mask:
            raise ValueError(
                f"tnum invariant violated: value {self.value:#x} and "
                f"mask {self.mask:#x} overlap")
        if not (0 <= self.value <= U64 and 0 <= self.mask <= U64):
            raise ValueError("tnum fields must fit in 64 bits")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def const(cls, value: int) -> "Tnum":
        """A fully known value."""
        return cls(_wrap(value), 0)

    @classmethod
    def unknown(cls) -> "Tnum":
        """A fully unknown value."""
        return cls(0, U64)

    @classmethod
    def range(cls, umin: int, umax: int) -> "Tnum":
        """The tightest tnum containing every value in [umin, umax]."""
        chi = umin ^ umax
        bits = chi.bit_length()
        if bits > 63:
            return cls.unknown()
        delta = (1 << bits) - 1
        return cls(umin & ~delta, delta)

    # -- predicates ----------------------------------------------------------

    @property
    def is_const(self) -> bool:
        """True when every bit is known."""
        return self.mask == 0

    @property
    def is_unknown(self) -> bool:
        """True when no bit is known."""
        return self.mask == U64

    def is_aligned(self, size: int) -> bool:
        """True when the value is provably ``size``-aligned."""
        if size == 0:
            return True
        return ((self.value | self.mask) & (size - 1)) == 0

    def contains(self, other: "Tnum") -> bool:
        """``tnum_in``: is every concretization of ``other`` also a
        concretization of ``self``?"""
        if other.mask & ~self.mask:
            return False
        return self.value == (other.value & ~self.mask)

    def contains_value(self, value: int) -> bool:
        """Does ``value`` belong to this tnum's set?"""
        return (value & ~self.mask) == self.value

    # -- arithmetic ------------------------------------------------------------

    def add(self, other: "Tnum") -> "Tnum":
        """Abstract 64-bit addition (kernel ``tnum_add``)."""
        sm = _wrap(self.mask + other.mask)
        sv = _wrap(self.value + other.value)
        sigma = _wrap(sm + sv)
        chi = sigma ^ sv
        mu = chi | self.mask | other.mask
        return Tnum(sv & ~mu, mu)

    def sub(self, other: "Tnum") -> "Tnum":
        """Abstract 64-bit subtraction (kernel ``tnum_sub``)."""
        dv = _wrap(self.value - other.value)
        alpha = _wrap(dv + self.mask)
        beta = _wrap(dv - other.mask)
        chi = alpha ^ beta
        mu = chi | self.mask | other.mask
        return Tnum(dv & ~mu, mu)

    def and_(self, other: "Tnum") -> "Tnum":
        """Abstract bitwise AND."""
        alpha = self.value | self.mask
        beta = other.value | other.mask
        v = self.value & other.value
        return Tnum(v, alpha & beta & ~v)

    def or_(self, other: "Tnum") -> "Tnum":
        """Abstract bitwise OR."""
        v = self.value | other.value
        mu = self.mask | other.mask
        return Tnum(v, mu & ~v)

    def xor(self, other: "Tnum") -> "Tnum":
        """Abstract bitwise XOR."""
        v = self.value ^ other.value
        mu = self.mask | other.mask
        return Tnum(v & ~mu, mu)

    def mul(self, other: "Tnum") -> "Tnum":
        """Abstract 64-bit multiplication (kernel ``tnum_mul``,
        the half-multiply-accumulate formulation of [50])."""
        a, b = self, other
        acc_v = _wrap(a.value * b.value)
        acc_m = Tnum(0, 0)
        while a.value or a.mask:
            if a.value & 1:
                acc_m = acc_m.add(Tnum(0, b.mask))
            elif a.mask & 1:
                acc_m = acc_m.add(Tnum(0, b.value | b.mask))
            a = a.rshift(1)
            b = b.lshift(1)
        return Tnum(acc_v, 0).add(acc_m)

    def lshift(self, shift: int) -> "Tnum":
        """Abstract left shift by a known amount."""
        return Tnum(_wrap(self.value << shift), _wrap(self.mask << shift))

    def rshift(self, shift: int) -> "Tnum":
        """Abstract logical right shift by a known amount."""
        return Tnum(self.value >> shift, self.mask >> shift)

    def arshift(self, shift: int) -> "Tnum":
        """Abstract arithmetic right shift by a known amount."""
        def sar(x: int) -> int:
            if x & (1 << 63):
                return _wrap((x >> shift) | (U64 << (64 - shift)))
            return x >> shift
        if shift == 0:
            return self
        return Tnum(sar(self.value), sar(self.mask))

    def neg(self) -> "Tnum":
        """Abstract negation (0 - x)."""
        return Tnum.const(0).sub(self)

    # -- lattice ops -----------------------------------------------------------

    def intersect(self, other: "Tnum") -> "Tnum":
        """Combine two sources of knowledge about the same value."""
        v = self.value | other.value
        mu = self.mask & other.mask
        return Tnum(v & ~mu, mu)

    def union(self, other: "Tnum") -> "Tnum":
        """Least upper bound: forget bits on which the two disagree."""
        v = self.value & other.value
        mu = self.mask | other.mask | (self.value ^ other.value)
        return Tnum(v & ~mu, mu)

    def cast(self, size: int) -> "Tnum":
        """Truncate to ``size`` bytes (zero-extending semantics)."""
        if size == 8:
            return self
        keep = (1 << (size * 8)) - 1
        return Tnum(self.value & keep, self.mask & keep)

    # -- bounds helpers ----------------------------------------------------------

    @property
    def umin(self) -> int:
        """Smallest unsigned value in the set."""
        return self.value

    @property
    def umax(self) -> int:
        """Largest unsigned value in the set."""
        return self.value | self.mask

    def __str__(self) -> str:
        if self.is_const:
            return f"{self.value:#x}"
        if self.is_unknown:
            return "unknown"
        return f"(value={self.value:#x}; mask={self.mask:#x})"


TNUM_UNKNOWN = Tnum.unknown()
TNUM_ZERO = Tnum.const(0)
