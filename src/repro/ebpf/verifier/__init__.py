"""The in-kernel eBPF verifier model.

A path-sensitive symbolic executor with the architecture of the real
``kernel/bpf/verifier.c``: tristate numbers (:mod:`tnum`), signed and
unsigned 64-bit range tracking, a pointer-type lattice, per-frame
register and stack state (:mod:`regstate`), BPF-to-BPF call frames,
reference and spin-lock discipline, explored-state pruning
(:mod:`states`) and hard complexity limits (:mod:`limits`).

The analyzer also reproduces, behind :class:`repro.ebpf.bugs.BugConfig`
flags, the *verifier bugs* of the paper's Table 1: unchecked pointer
arithmetic, pointer leaks, and a use-after-free in the verifier's own
loop-handling code.
"""

from repro.ebpf.verifier.analyzer import Verifier, VerifierConfig
from repro.ebpf.verifier.tnum import Tnum
from repro.ebpf.verifier.regstate import RegState, RegType

__all__ = ["Verifier", "VerifierConfig", "Tnum", "RegState", "RegType"]
