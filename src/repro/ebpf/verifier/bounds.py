"""Scalar bounds arithmetic: ``adjust_scalar_min_max_vals``.

Given two scalar register states and an ALU op, compute the result's
tnum and 64-bit signed/unsigned ranges.  Ports the structure of the
kernel's per-op ``scalar_min_max_*`` helpers; where the kernel gives
up (division, unknown shifts) we give up identically, because that
imprecision is part of what the paper's §2.1 complains about (false
positives forcing developers to "massage correct eBPF code").
"""

from __future__ import annotations

from repro.ebpf.verifier.regstate import (
    RegState,
    S64_MAX,
    S64_MIN,
    U64_MAX,
    u64_to_s64,
)
from repro.ebpf.verifier.tnum import Tnum


def _wrap_u(x: int) -> int:
    return x & U64_MAX


def alu_add(dst: RegState, src: RegState) -> None:
    """dst += src."""
    # signed: overflow in either bound poisons both
    smin = dst.smin + src.smin
    smax = dst.smax + src.smax
    if smin < S64_MIN or smax > S64_MAX:
        dst.smin, dst.smax = S64_MIN, S64_MAX
    else:
        dst.smin, dst.smax = smin, smax
    # unsigned: wraparound check
    umin = dst.umin + src.umin
    umax = dst.umax + src.umax
    if umax > U64_MAX:
        dst.umin, dst.umax = 0, U64_MAX
    else:
        dst.umin, dst.umax = umin, umax
    dst.var_off = dst.var_off.add(src.var_off)
    dst.settle_bounds()


def alu_sub(dst: RegState, src: RegState) -> None:
    """dst -= src."""
    smin = dst.smin - src.smax
    smax = dst.smax - src.smin
    if smin < S64_MIN or smax > S64_MAX:
        dst.smin, dst.smax = S64_MIN, S64_MAX
    else:
        dst.smin, dst.smax = smin, smax
    if dst.umin < src.umax:
        # can wrap below zero
        dst.umin, dst.umax = 0, U64_MAX
    else:
        dst.umin = dst.umin - src.umax
        dst.umax = dst.umax - src.umin
    dst.var_off = dst.var_off.sub(src.var_off)
    dst.settle_bounds()


def alu_mul(dst: RegState, src: RegState) -> None:
    """dst *= src."""
    var_off = dst.var_off.mul(src.var_off)
    if dst.umax * src.umax <= U64_MAX:
        umin = dst.umin * src.umin
        umax = dst.umax * src.umax
        if dst.smin >= 0 and src.smin >= 0:
            smin, smax = u64_to_s64(umin) if umin <= S64_MAX else S64_MIN, \
                u64_to_s64(umax) if umax <= S64_MAX else S64_MAX
            if umax > S64_MAX:
                smin, smax = S64_MIN, S64_MAX
        else:
            smin, smax = S64_MIN, S64_MAX
        dst.umin, dst.umax = umin, umax
        dst.smin, dst.smax = smin, smax
    else:
        dst.umin, dst.umax = 0, U64_MAX
        dst.smin, dst.smax = S64_MIN, S64_MAX
    dst.var_off = var_off
    dst.settle_bounds()


def _reset_then_settle(dst: RegState, var_off: Tnum) -> None:
    """Derive all ranges from a freshly computed tnum."""
    dst.var_off = var_off
    dst.smin, dst.smax = S64_MIN, S64_MAX
    dst.umin, dst.umax = 0, U64_MAX
    dst.settle_bounds()


def alu_and(dst: RegState, src: RegState) -> None:
    """dst &= src — bounds follow the tnum; additionally the result
    cannot exceed either operand (kernel ``scalar_min_max_and``)."""
    var_off = dst.var_off.and_(src.var_off)
    upper = min(dst.umax, src.umax)
    _reset_then_settle(dst, var_off)
    dst.umax = min(dst.umax, upper)
    dst.settle_bounds()


def alu_or(dst: RegState, src: RegState) -> None:
    """dst |= src — result at least as large as either operand."""
    var_off = dst.var_off.or_(src.var_off)
    lower = max(dst.umin, src.umin)
    _reset_then_settle(dst, var_off)
    dst.umin = max(dst.umin, lower)
    dst.settle_bounds()


def alu_xor(dst: RegState, src: RegState) -> None:
    """dst ^= src."""
    _reset_then_settle(dst, dst.var_off.xor(src.var_off))


def alu_lsh(dst: RegState, src: RegState) -> None:
    """dst <<= src (src must be a known constant < 64; checked by
    the analyzer)."""
    shift = src.const_value
    _reset_then_settle(dst, dst.var_off.lshift(shift))


def alu_rsh(dst: RegState, src: RegState) -> None:
    """dst >>= src (logical)."""
    shift = src.const_value
    _reset_then_settle(dst, dst.var_off.rshift(shift))


def alu_arsh(dst: RegState, src: RegState) -> None:
    """dst s>>= src (arithmetic)."""
    shift = src.const_value
    _reset_then_settle(dst, dst.var_off.arshift(shift))


def alu_div(dst: RegState, src: RegState) -> None:
    """dst /= src (unsigned).  The kernel tracks nothing here."""
    if src.is_const and src.const_value != 0 and dst.umax <= U64_MAX:
        divisor = src.const_value
        umin = dst.umin // divisor
        umax = dst.umax // divisor
        _reset_then_settle(dst, Tnum.range(umin, umax))
        dst.umin, dst.umax = umin, umax
        dst.settle_bounds()
    else:
        dst.mark_unknown()


def alu_mod(dst: RegState, src: RegState) -> None:
    """dst %= src (unsigned) — result in [0, divisor-1] for known
    divisors."""
    if src.is_const and src.const_value != 0:
        divisor = src.const_value
        _reset_then_settle(dst, Tnum.range(0, divisor - 1))
        dst.umin, dst.umax = 0, divisor - 1
        dst.settle_bounds()
    else:
        dst.mark_unknown()


def alu_neg(dst: RegState) -> None:
    """dst = -dst."""
    _reset_then_settle(dst, dst.var_off.neg())


SCALAR_OPS = {
    "add": alu_add, "sub": alu_sub, "mul": alu_mul,
    "and": alu_and, "or": alu_or, "xor": alu_xor,
    "lsh": alu_lsh, "rsh": alu_rsh, "arsh": alu_arsh,
    "div": alu_div, "mod": alu_mod,
}
