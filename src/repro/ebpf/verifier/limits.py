"""Verifier complexity limits.

The paper (§2.1) observes that "the verifier needs to evaluate all
possible execution paths, [so] it has to limit the eBPF program size
and complexity to complete the verification in time".  These are those
limits, with the Linux values as defaults.  Experiments shrink them to
study rejection behaviour near the caps.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class VerifierLimits:
    """Hard caps enforced during verification."""

    #: maximum program length in instructions (unprivileged cap; the
    #: classic BPF_MAXINSNS)
    max_insns: int = 4096

    #: total instructions the symbolic executor may *process* across
    #: all paths (BPF_COMPLEXITY_LIMIT_INSNS)
    complexity_limit: int = 1_000_000

    #: maximum BPF-to-BPF call depth (MAX_CALL_FRAMES)
    max_call_frames: int = 8

    #: per-program stack bytes (MAX_BPF_STACK)
    stack_size: int = 512

    #: maximum pending branch states (BPF_COMPLEXITY_LIMIT_JMP_SEQ)
    max_pending_branches: int = 8192

    #: maximum tail-call chain at run time (MAX_TAIL_CALL_CNT)
    max_tail_calls: int = 33

    @classmethod
    def unprivileged(cls) -> "VerifierLimits":
        """The tighter caps applied to unprivileged loaders."""
        return cls(max_insns=4096, complexity_limit=131_072,
                   max_call_frames=8, stack_size=512)
